//! # vignat-repro — Rust reproduction of *A Formally Verified NAT* (SIGCOMM 2017)
//!
//! This umbrella crate re-exports the whole workspace so examples,
//! integration tests and downstream users can depend on one name:
//!
//! * [`packet`] — wire formats: Ethernet/IPv4/TCP/UDP views, RFC 1624
//!   incremental checksums, flow identifiers;
//! * [`libvig`] — the verified data-structure library (flow table,
//!   double chain, ring, …) with executable contracts and abstract
//!   models (paper property P3);
//! * [`spec`] — the executable RFC 3022 specification (paper §4.1);
//! * [`nat`] — VigNAT itself: the flow manager (unsharded and
//!   RSS-sharded behind the `FlowTable` seam) and the stateless loop
//!   body, written once, generic over domain and environment;
//! * [`symbex`] — the exhaustive symbolic execution engine (KLEE
//!   analog);
//! * [`validator`] — the Vigor Validator: lazy proofs discharging
//!   P1/P2/P4/P5 over symbolic traces;
//! * [`sim`] — the DPDK/testbed analog and RFC 2544 harness, including
//!   the `std::thread` per-shard parallel driver;
//! * [`baselines`] — the paper's comparison NFs (no-op, unverified
//!   NAT, NetFilter analog).
//!
//! ## Thirty-second tour
//!
//! Verify the NAT (the paper's headline result):
//!
//! ```
//! use vignat_repro::validator::{run_verification, ModelStyle};
//! use vignat_repro::nat::NatConfig;
//!
//! let report = run_verification(&NatConfig::paper_default(), ModelStyle::Faithful, 2);
//! assert!(report.ok(), "{:#?}", report.failures);
//! ```
//!
//! Push a packet through it:
//!
//! ```
//! use vignat_repro::nat::NatConfig;
//! use vignat_repro::sim::middlebox::{Middlebox, Verdict, VigNatMb};
//! use vignat_repro::packet::{builder::PacketBuilder, parse_l3l4, Direction, Ip4};
//! use vignat_repro::libvig::time::Time;
//!
//! let mut nat = VigNatMb::new(NatConfig::paper_default());
//! let mut frame = PacketBuilder::tcp(
//!     Ip4::new(192, 168, 0, 5), Ip4::new(93, 184, 216, 34), 44_000, 443,
//! ).build();
//! let verdict = nat.process(Direction::Internal, &mut frame, Time::from_secs(1));
//! assert_eq!(verdict, Verdict::Forward(Direction::External));
//! let (_, translated) = parse_l3l4(&frame).unwrap();
//! assert_eq!(translated.src_ip, NatConfig::paper_default().external_ip);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Wire formats (re-export of `vig-packet`).
pub use vig_packet as packet;

/// The verified data-structure library (re-export of `libvig`).
pub use libvig;

/// The executable RFC 3022 specification (re-export of `vig-spec`).
pub use vig_spec as spec;

/// VigNAT: flow manager + stateless loop (re-export of `vignat`).
pub use vignat as nat;

/// The symbolic execution engine (re-export of `vig-symbex`).
pub use vig_symbex as symbex;

/// The Vigor Validator (re-export of `vig-validator`).
pub use vig_validator as validator;

/// The DPDK/testbed analog (re-export of `netsim`).
pub use netsim as sim;

/// The comparison NFs (re-export of `vig-baselines`).
pub use vig_baselines as baselines;
