//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the subset of proptest's API the workspace's property
//! tests use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`);
//! * strategies: integer ranges, tuples (up to 5), [`Just`],
//!   [`collection::vec`], [`collection::hash_set`], `any::<T>()`,
//!   [`Strategy::prop_map`], and [`prop_oneof!`];
//! * assertions: [`prop_assert!`], [`prop_assert_eq!`], and
//!   [`TestCaseError`] for explicit failures.
//!
//! Unlike the real proptest there is no shrinking: a failing case
//! reports its seed and case index so it can be re-run, which is enough
//! for the deterministic suites here. Each test function derives its RNG
//! seed from its own name, so generated inputs are stable across runs
//! and machines.
//!
//! Like the real proptest, the `PROPTEST_CASES` environment variable
//! scales the per-property case count — with one deliberate
//! difference: it *raises* counts but never lowers them
//! (`effective = max(configured, env)`), so the nightly deep-coverage
//! CI job can run every suite at 10,000+ cases without each test
//! opting in, while suites that already configure more keep their
//! depth.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Re-export the RNG type strategies draw from.
pub type TestRng = StdRng;

/// Error carried by a failing property (what `prop_assert!` returns).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// An explicit failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Alias used by some call sites ("reject" behaves as failure here:
    /// the shim has no case-regeneration machinery).
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TestCaseError {}

impl From<String> for TestCaseError {
    fn from(s: String) -> TestCaseError {
        TestCaseError(s)
    }
}

impl From<&str> for TestCaseError {
    fn from(s: &str) -> TestCaseError {
        TestCaseError(s.to_string())
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of one type. The object-safe core is
/// [`Strategy::generate`]; combinators are provided on top.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (what [`prop_oneof!`] unions over).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (the [`prop_oneof!`] engine).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical "any value" strategy (the `Arbitrary` analog).
pub trait ArbitraryValue: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl<T: ArbitraryValue> ArbitraryValue for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        use rand::Rng;
        if rng.gen_bool(0.5) {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the arbitrary-value strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specifications: a fixed count, `a..b`, or `a..=b`.
    pub trait SizeRange {
        /// Draw a size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `vec(element, size)` — vectors of `element`-generated values.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>`; sizes are best-effort upper bounds
    /// (duplicates are dropped, as in real proptest's min-size-0 case).
    pub struct HashSetStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `hash_set(element, size)` — hash sets of generated values.
    pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: core::hash::Hash + Eq,
        R: SizeRange,
    {
        HashSetStrategy { element, size }
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: core::hash::Hash + Eq,
        R: SizeRange,
    {
        type Value = std::collections::HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use super::collection;
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Derive a stable 64-bit seed from a test's module path and name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a, good enough to decorrelate per-test streams.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The case count actually run for a property configured with
/// `configured` cases, honoring the `PROPTEST_CASES` floor (see the
/// module docs).
pub fn effective_cases(configured: u32, env: Option<u32>) -> u32 {
    configured.max(env.unwrap_or(0))
}

/// Read the `PROPTEST_CASES` override (ignored when unparseable).
pub fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Run `body` over `cases` generated inputs (raised to the
/// `PROPTEST_CASES` floor when set), panicking with seed/case context
/// on the first failure. Called by the [`proptest!`] expansion.
pub fn run_cases(
    name: &str,
    cases: u32,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let cases = effective_cases(cases, env_cases());
    let seed = seed_for(name);
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(case) << 32) ^ u64::from(case));
        if let Err(e) = body(&mut rng) {
            panic!("property '{name}' failed at case {case} (seed {seed:#x}): {e}");
        }
    }
}

/// Assert inside a property, failing the case (not aborting the process)
/// on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})", format!($($fmt)*), file!(), line!()
            )));
        }
    };
}

/// `assert_eq!` analog of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// `assert_ne!` analog of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}", a, b);
    }};
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The property-test macro. Supports one optional
/// `#![proptest_config(...)]` followed by any number of test functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    // Without: default config.
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each `fn` in a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                cfg.cases,
                |__rng| {
                    $(let $pat = $crate::Strategy::generate(&$strategy, __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = rand::SeedableRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (0u8..3).generate(&mut rng);
            assert!(v < 3);
            let (a, b) = ((0u16..5), any::<bool>()).generate(&mut rng);
            assert!(a < 5);
            let _: bool = b;
            let xs = collection::vec(0u64..10, 2..4).generate(&mut rng);
            assert!(xs.len() >= 2 && xs.len() < 4);
            assert!(xs.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn env_floor_raises_but_never_lowers() {
        assert_eq!(super::effective_cases(64, None), 64);
        assert_eq!(super::effective_cases(64, Some(10_000)), 10_000);
        assert_eq!(super::effective_cases(20_000, Some(10_000)), 20_000);
        assert_eq!(super::effective_cases(64, Some(0)), 64);
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = rand::SeedableRng::seed_from_u64(2);
        let s = prop_oneof![Just(0u8), Just(1u8), (2u8..4).prop_map(|x| x)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.contains(&0) && seen.contains(&1) && seen.contains(&2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The macro itself works end to end.
        #[test]
        fn macro_roundtrip(x in 0u32..100, ys in collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert!(ys.len() < 8);
        }
    }

    proptest! {
        /// Default-config form parses too.
        #[test]
        fn default_config_form(v in any::<Option<u16>>()) {
            if let Some(x) = v {
                prop_assert!(u32::from(x) <= 65_535);
            }
        }
    }
}
