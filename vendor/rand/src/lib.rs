//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides exactly the subset of the `rand 0.8` API the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic for a given seed, which is all the tests
//! and workload generators rely on (reproducibility, not crypto).
//!
//! The stream differs from the real `rand`'s; everything seeded here was
//! written against "some fixed pseudo-random sequence", never a specific
//! one, so that difference is unobservable to the test suites.

#![forbid(unsafe_code)]

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an [`RngCore`] (the `Standard`
/// distribution analog).
pub trait Standard: Sized {
    /// Draw one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full u64 domain
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as i64).wrapping_sub(lo as i64) as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Uniform draw from `0..span` (span > 0) with rejection to avoid modulo
/// bias; the bias is irrelevant for tests but rejection is cheap.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform value of an inferrable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the standard generator of this shim.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as xoshiro's authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling, as provided by `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10..20u16);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1..=4u8);
            assert!((1..=4).contains(&w));
            let u = r.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "100 elements virtually never shuffle to identity"
        );
    }
}
