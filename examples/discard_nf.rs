//! The paper's §3 worked example: the discard-protocol NF.
//!
//! An infinite loop receives packets, discards the ones addressed to
//! port 9 (RFC 863), buffers the rest in a libVig ring, and forwards
//! them when the link is free. The paper uses this NF to explain the
//! whole Vigor methodology; here it runs against the contract-checked
//! ring ([`libvig::ring::CheckedRing`]) and the trace-level spec
//! ([`vig_spec::discard::DiscardSpec`]), so both of the paper's target
//! properties are machine-checked throughout the run:
//!
//! 1. no emitted packet has target port 9;
//! 2. forwarding is FIFO, duplicate-free, and never invents packets.
//!
//! ```sh
//! cargo run --example discard_nf
//! ```

use vignat_repro::libvig::ring::CheckedRing;
use vignat_repro::spec::discard::{DiscardEvent, DiscardSpec};

/// The NF's packet, as in the paper's Fig. 1: just a target port (we
/// add an identity tag so the spec can detect reordering).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Packet {
    port: u16,
    tag: u64,
}

/// The loop invariant of the paper's Fig. 2: every packet stored in the
/// ring has target port != 9.
fn packet_constraints(p: &Packet) -> bool {
    p.port != 9
}

fn main() {
    const CAP: usize = 512; // the paper's Fig. 1, line 1

    let mut ring = CheckedRing::with_constraint(CAP, packet_constraints);
    let mut spec = DiscardSpec::new();

    // A deterministic traffic source: a mix of ports, one in six is the
    // discard port 9; the "link" is free two iterations out of three.
    let ports = [80u16, 9, 443, 53, 9, 8080, 22, 9, 123, 25];
    let mut sent = 0u64;
    let mut discarded = 0u64;

    for i in 0..100_000u64 {
        // -- loop_iteration_begin ------------------------------------
        // receive() + filter + push (Fig. 1 ll.9-11)
        if !ring.is_full() {
            let p = Packet {
                port: ports[(i as usize) % ports.len()],
                tag: i,
            };
            spec.observe(DiscardEvent::Received {
                port: p.port,
                tag: p.tag,
            })
            .expect("receive can never violate the spec");
            if p.port != 9 {
                ring.push_back(p).expect("guarded by !is_full");
            } else {
                discarded += 1;
            }
        }
        // can_send() + pop + send (Fig. 1 ll.12-14)
        let can_send = i % 3 != 0;
        if !ring.is_empty() && can_send {
            let p = ring.pop_front().expect("guarded by !is_empty");
            // The paper's target property, checked by the spec on every
            // send: port != 9, in order, exactly once.
            spec.observe(DiscardEvent::Sent {
                port: p.port,
                tag: p.tag,
            })
            .unwrap_or_else(|v| panic!("spec violation: {v}"));
            sent += 1;
        }
        // -- loop_iteration_end --------------------------------------
    }

    println!("discard NF ran 100,000 iterations under full spec checking:");
    println!("  forwarded: {sent}");
    println!("  discarded (port 9): {discarded}");
    println!("  still buffered: {}", spec.in_flight());
    assert!(discarded > 0 && sent > 0);

    // Show the spec catching the §3 bug: an NF that forgets the filter.
    let mut buggy_spec = DiscardSpec::new();
    buggy_spec
        .observe(DiscardEvent::Received { port: 9, tag: 1 })
        .unwrap();
    let err = buggy_spec
        .observe(DiscardEvent::Sent { port: 9, tag: 1 })
        .expect_err("forwarding port 9 must be flagged");
    println!("\nbuggy variant correctly rejected: {err}");
}
