//! Home-gateway scenario: many internal hosts behind one public IP.
//!
//! The workload the paper's introduction motivates — a NAT in a home /
//! small-office router: dozens of devices, bursts of short flows, a
//! small translation table that fills up and must recycle ports through
//! expiry. Demonstrates:
//!
//! * port multiplexing (distinct hosts sharing the external address),
//! * table exhaustion behaviour (new flows dropped, existing flows
//!   unharmed — exactly Fig. 6's semantics),
//! * port recycling after expiry,
//! * the occupancy statistics the operator would watch.
//!
//! ```sh
//! cargo run --example home_gateway
//! ```

use vignat_repro::libvig::time::Time;
use vignat_repro::nat::NatConfig;
use vignat_repro::packet::{builder::PacketBuilder, parse_l3l4, Direction, Ip4, Proto};
use vignat_repro::sim::middlebox::{Middlebox, Verdict, VigNatMb};

fn udp_frame(host: u8, src_port: u16, dst: Ip4, dst_port: u16) -> Vec<u8> {
    PacketBuilder::udp(Ip4::new(192, 168, 1, host), dst, src_port, dst_port).build()
}

fn main() {
    // A deliberately small gateway: 64 concurrent flows, 30 s expiry.
    let cfg = NatConfig {
        capacity: 64,
        expiry_ns: Time::from_secs(30).nanos(),
        external_ip: Ip4::new(198, 51, 100, 9),
        start_port: 50_000,
        ..NatConfig::paper_default()
    };
    let mut nat = VigNatMb::new(cfg);
    let dns = Ip4::new(9, 9, 9, 9);

    println!(
        "home gateway: {} flows max, ports {}..{}",
        cfg.capacity,
        cfg.start_port,
        cfg.start_port as usize + cfg.capacity - 1
    );

    // Ten devices each open five DNS flows.
    let mut translated = 0;
    for host in 1..=10u8 {
        for q in 0..5u16 {
            let mut f = udp_frame(host, 40_000 + q, dns, 53);
            match nat.process(Direction::Internal, &mut f, Time::from_secs(1)) {
                Verdict::Forward(Direction::External) => {
                    let (_, out) = parse_l3l4(&f).unwrap();
                    assert_eq!(out.src_ip, cfg.external_ip);
                    translated += 1;
                }
                v => panic!("unexpected verdict {v:?}"),
            }
        }
    }
    println!(
        "50 flows from 10 devices translated; occupancy {}/{}",
        nat.occupancy(),
        cfg.capacity
    );
    assert_eq!(translated, 50);

    // A burst from one more device hits the capacity wall at 64.
    let mut dropped = 0;
    for q in 0..20u16 {
        let mut f = udp_frame(11, 42_000 + q, dns, 53);
        match nat.process(Direction::Internal, &mut f, Time::from_secs(2)) {
            Verdict::Forward(_) => {}
            Verdict::Drop => dropped += 1,
        }
    }
    println!(
        "burst of 20 more flows: {} admitted, {} dropped (table full)",
        20 - dropped,
        dropped
    );
    assert_eq!(nat.occupancy(), 64);
    assert_eq!(dropped, 6, "64 - 50 = 14 admitted, 6 dropped");

    // Existing flows keep working while the table is full.
    let mut again = udp_frame(1, 40_000, dns, 53);
    assert_eq!(
        nat.process(Direction::Internal, &mut again, Time::from_secs(3)),
        Verdict::Forward(Direction::External),
        "established flows survive table pressure"
    );

    // Return traffic for one flow, proving the reverse mapping.
    let (_, probe) = {
        let mut f = udp_frame(2, 40_001, dns, 53);
        nat.process(Direction::Internal, &mut f, Time::from_secs(3));
        parse_l3l4(&f).unwrap()
    };
    let mut reply = PacketBuilder::udp(dns, cfg.external_ip, 53, probe.src_port).build();
    assert_eq!(
        nat.process(Direction::External, &mut reply, Time::from_secs(3)),
        Verdict::Forward(Direction::Internal)
    );
    let (_, back) = parse_l3l4(&reply).unwrap();
    println!(
        "reply to ext port {} delivered to {}:{}",
        probe.src_port, back.dst_ip, back.dst_port
    );
    assert_eq!(back.dst_ip, Ip4::new(192, 168, 1, 2));

    // Half a minute of silence: everything expires, ports recycle.
    let mut fresh = udp_frame(12, 47_000, dns, 53);
    assert_eq!(
        nat.process(Direction::Internal, &mut fresh, Time::from_secs(40)),
        Verdict::Forward(Direction::External)
    );
    println!(
        "after 30 s idle: {} flows expired, occupancy back to {}",
        nat.expired_total(),
        nat.occupancy()
    );
    assert_eq!(nat.occupancy(), 1);

    // TCP and UDP flows with identical tuples coexist (distinct proto).
    let mut t = PacketBuilder::tcp(Ip4::new(192, 168, 1, 12), dns, 47_000, 53).build();
    assert_eq!(
        nat.process(Direction::Internal, &mut t, Time::from_secs(40)),
        Verdict::Forward(Direction::External)
    );
    assert_eq!(nat.occupancy(), 2);
    let (_, tf) = parse_l3l4(&t).unwrap();
    assert_eq!(tf.proto, Proto::Tcp);

    println!("\nok — gateway semantics hold under pressure, expiry and recycling.");
}
