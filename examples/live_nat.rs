//! Live NAT: the verified loop body translating *real* traffic through
//! Linux `AF_PACKET` sockets — the paper's deployment shape (verified
//! NF over a trusted packet engine), with the kernel standing in for
//! DPDK.
//!
//! ```text
//! cargo run --release --example live_nat -- <int_if> <ext_if> \
//!     [queues] [shards] [seconds]
//! ```
//!
//! The README's "Running the live NAT" section walks through the
//! two-network-namespace topology (client ns ↔ NAT ↔ server ns over
//! two veth pairs) and the one sysctl the demo needs. The NAT binds
//! the two interfaces, classifies arrivals with the same RSS function
//! the sharded table routes by, drains queue events through the
//! verified batch loop, and rewrites/forwards frames in place.
//!
//! One demo-only liberty: forwarded frames get a broadcast
//! destination MAC (see [`L2Broadcast`]) so namespace peers accept
//! them without ARP or static neighbor setup. A production backend
//! would resolve next hops; the NAT itself never touches L2 either
//! way.

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("live_nat needs Linux (AF_PACKET raw sockets)");
    std::process::exit(1);
}

#[cfg(target_os = "linux")]
fn main() {
    linux::main()
}

#[cfg(target_os = "linux")]
mod linux {
    use vignat_repro::libvig::time::Time;
    use vignat_repro::nat::NatConfig;
    use vignat_repro::packet::{Direction, Ip4};
    use vignat_repro::sim::backend::os::OsBackend;
    use vignat_repro::sim::backend::PacketIo;
    use vignat_repro::sim::dpdk::{BufIdx, Mempool};
    use vignat_repro::sim::eventloop::BackendDriver;
    use vignat_repro::sim::middlebox::{Middlebox, ShardedVigNatMb, Verdict};
    use vignat_repro::sim::RssClassifier;

    /// Demo driver shim: after the verified NAT decides, do what a
    /// NIC's TX path would do for frames headed back into the kernel —
    ///
    /// * stamp a broadcast destination MAC, so the receiving
    ///   namespace's IP stack accepts frames without neighbor setup;
    /// * *complete* the IPv4 and L4 checksums. Kernels transmit over
    ///   veth with TX checksum offload: the UDP/TCP checksum field
    ///   holds only a pseudo-header partial sum, which the NAT's
    ///   RFC 1624 incremental update faithfully preserves as partial.
    ///   A hardware NIC's checksum-offload engine finishes the sum on
    ///   the way out; this shim is that engine.
    ///
    /// The wrapped NF (and its verification story) is untouched — both
    /// steps are the glue a real driver's TX path owns.
    struct L2Broadcast<M>(M);

    fn stamp(frame: &mut [u8]) {
        if frame.len() >= 6 {
            frame[..6].fill(0xff);
        }
        finish_checksums(frame);
    }

    /// Recompute the IPv4 header checksum and the full L4 checksum in
    /// place (TCP/UDP over IPv4 only; anything else is left alone).
    fn finish_checksums(frame: &mut [u8]) {
        use vignat_repro::packet::checksum;
        if frame.len() < 34 || frame[12] != 0x08 || frame[13] != 0x00 {
            return;
        }
        let ihl = usize::from(frame[14] & 0x0f) * 4;
        let l3 = 14;
        let l4 = l3 + ihl;
        if frame.len() < l4 {
            return;
        }
        // IPv4 header checksum.
        frame[l3 + 10] = 0;
        frame[l3 + 11] = 0;
        let ip_csum = checksum::checksum(&frame[l3..l4]);
        frame[l3 + 10..l3 + 12].copy_from_slice(&ip_csum.to_be_bytes());
        // L4 checksum over pseudo-header + segment.
        let proto = frame[l3 + 9];
        let src = u32::from_be_bytes(frame[l3 + 12..l3 + 16].try_into().unwrap());
        let dst = u32::from_be_bytes(frame[l3 + 16..l3 + 20].try_into().unwrap());
        let total_len = usize::from(u16::from_be_bytes(
            frame[l3 + 2..l3 + 4].try_into().unwrap(),
        ));
        let l4_end = (l3 + total_len).min(frame.len());
        let csum_off = match proto {
            17 if l4 + 8 <= l4_end => l4 + 6,  // UDP
            6 if l4 + 20 <= l4_end => l4 + 16, // TCP
            _ => return,
        };
        frame[csum_off] = 0;
        frame[csum_off + 1] = 0;
        let mut c = checksum::l4_checksum(src, dst, proto, &frame[l4..l4_end]);
        if proto == 17 && c == 0 {
            c = 0xffff; // RFC 768: zero means "no checksum"
        }
        frame[csum_off..csum_off + 2].copy_from_slice(&c.to_be_bytes());
    }

    impl<M: Middlebox> Middlebox for L2Broadcast<M> {
        fn name(&self) -> &'static str {
            self.0.name()
        }

        fn process(&mut self, dir: Direction, frame: &mut [u8], now: Time) -> Verdict {
            let v = self.0.process(dir, frame, now);
            if matches!(v, Verdict::Forward(_)) {
                stamp(frame);
            }
            v
        }

        fn process_burst(
            &mut self,
            dir: Direction,
            pool: &mut Mempool,
            bufs: &[BufIdx],
            now: Time,
        ) -> Vec<Verdict> {
            let verdicts = self.0.process_burst(dir, pool, bufs, now);
            for (&buf, v) in bufs.iter().zip(&verdicts) {
                if matches!(v, Verdict::Forward(_)) {
                    stamp(pool.frame_mut(buf));
                }
            }
            verdicts
        }

        fn occupancy(&self) -> usize {
            self.0.occupancy()
        }
    }

    pub fn main() {
        let args: Vec<String> = std::env::args().collect();
        if args.len() < 3 {
            eprintln!(
                "usage: live_nat <int_if> <ext_if> [queues] [shards] [seconds]\n\
                 (see README 'Running the live NAT' for the netns setup)"
            );
            std::process::exit(2);
        }
        let int_if = &args[1];
        let ext_if = &args[2];
        let arg = |i: usize, default: usize| {
            args.get(i)
                .map(|s| s.parse().expect("numeric argument"))
                .unwrap_or(default)
        };
        let queues = arg(3, 2);
        let shards = arg(4, 2);
        let seconds = arg(5, 0); // 0 = run until killed

        let cfg = NatConfig {
            capacity: 4096,
            expiry_ns: Time::from_secs(60).nanos(),
            external_ip: Ip4::new(10, 99, 1, 1),
            start_port: 10_000,
            ..NatConfig::paper_default()
        };
        let io = match OsBackend::open(int_if, ext_if, RssClassifier::for_nat(&cfg, queues), 512) {
            Ok(io) => io,
            Err(e) => {
                eprintln!("opening {int_if}/{ext_if}: {e} (need CAP_NET_RAW; run as root)");
                std::process::exit(1);
            }
        };
        let mut nf = L2Broadcast(ShardedVigNatMb::sharded(cfg, shards));
        let mut drv = BackendDriver::new(io);

        eprintln!(
            "live NAT up: {int_if} (internal) <-> {ext_if} (external), \
             external ip {}, ports {}+, {queues} queues x {shards} shards",
            cfg.external_ip, cfg.start_port
        );

        let start = std::time::Instant::now();
        let origin = Time::from_secs(1);
        let mut last_report = std::time::Instant::now();
        let (mut fwd, mut drop) = (0u64, 0u64);
        loop {
            let now = origin.plus(start.elapsed().as_nanos() as u64);
            let stats = drv.service_once(&mut nf, now);
            fwd += stats.forwarded;
            drop += stats.dropped;
            if stats.bursts == 0 {
                // Idle: sleep the poller's current backoff, like a
                // power-aware poll-mode driver.
                std::thread::sleep(std::time::Duration::from_nanos(drv.current_backoff_ns()));
            }
            if last_report.elapsed() >= std::time::Duration::from_secs(5) {
                let int_s = drv.io().port_stats(Direction::Internal);
                let ext_s = drv.io().port_stats(Direction::External);
                eprintln!(
                    "forwarded {fwd} dropped {drop} flows {} | int rx {} drop {} tx {} | \
                     ext rx {} drop {} tx {}",
                    nf.occupancy(),
                    int_s.rx,
                    int_s.rx_dropped,
                    int_s.tx,
                    ext_s.rx,
                    ext_s.rx_dropped,
                    ext_s.tx,
                );
                last_report = std::time::Instant::now();
            }
            if seconds > 0 && start.elapsed() >= std::time::Duration::from_secs(seconds as u64) {
                eprintln!(
                    "done: forwarded {fwd} dropped {drop} flows {}",
                    nf.occupancy()
                );
                return;
            }
        }
    }
}
