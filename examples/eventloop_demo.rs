//! The event-driven multi-queue harness, end to end: RSS-classify a
//! workload across Q RX queues, drain it with the epoll-style driver
//! (poller + weighted round-robin budgets) through an S-shard verified
//! NAT, and report per-queue statistics and the steady-state service
//! time.
//!
//! ```sh
//! cargo run --release --example eventloop_demo -- 4 2   # queues shards
//! ```
//!
//! This is also the release-mode CI smoke for the event-driven path
//! (4 queues × 2 shards).

use vignat_repro::libvig::time::Time;
use vignat_repro::nat::NatConfig;
use vignat_repro::packet::{Direction, Ip4, Proto};
use vignat_repro::sim::eventloop::{event_driven_service_times, EventLoop, MultiQueueTestbed};
use vignat_repro::sim::frame_env::RssClassifier;
use vignat_repro::sim::middlebox::{Middlebox, ShardedVigNatMb};
use vignat_repro::sim::tester::FlowGen;

fn main() {
    let mut args = std::env::args().skip(1);
    let queues: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let shards: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let cfg = NatConfig {
        capacity: 65_535,
        expiry_ns: Time::from_secs(60).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1,
        ..NatConfig::paper_default()
    };
    println!("event-driven driver: {queues} RX queues -> {shards}-shard verified NAT");

    // A visible drain: 10k flows offered through the classifier, one
    // event-driven drain, per-queue accounting afterwards.
    let mut nf = ShardedVigNatMb::sharded(cfg, shards);
    let mut tb = MultiQueueTestbed::new(RssClassifier::for_nat(&cfg, queues), 4096);
    let mut ev = EventLoop::new(queues);
    let gen = FlowGen::new(Proto::Udp);
    let flows = 10_000u32;
    // Stage in ring-sized rounds (a tester can always outrun Q rings);
    // one event-driven drain per round, stats accumulated.
    let round = (queues * 2_048) as u32;
    let mut forwarded = 0u64;
    let mut dropped = 0u64;
    let mut bursts = 0u64;
    let mut polls = 0u64;
    let mut now = Time::from_secs(1);
    for start in (0..flows).step_by(round as usize) {
        for i in start..flows.min(start + round) {
            let f = gen.background(i);
            assert!(
                tb.offer(Direction::Internal, |b| gen.write_frame(&f, b))
                    .is_some(),
                "rings sized for one round"
            );
        }
        now = now.plus(1_000);
        let stats = tb.drain_event_driven(&mut nf, now, &mut ev);
        forwarded += stats.forwarded;
        dropped += stats.dropped;
        bursts += stats.bursts;
        polls += stats.polls;
        let _ = tb.collect_tx(Direction::External);
    }
    println!(
        "drained {} frames in {bursts} bursts over {polls} polls ({forwarded} forwarded, {dropped} dropped)",
        forwarded + dropped,
    );
    for q in 0..queues {
        let s = tb.queue_stats(Direction::Internal, q);
        println!(
            "  internal rx queue {q}: rx {} dropped {} (share {:.1}%)",
            s.rx,
            s.rx_dropped,
            100.0 * s.rx as f64 / flows as f64
        );
    }
    assert_eq!(nf.occupancy(), flows as usize);
    assert_eq!(forwarded, u64::from(flows));

    // Steady-state service time through the event loop (all hits).
    let svc = event_driven_service_times(
        &cfg,
        queues,
        shards,
        8_192,
        40_000,
        Time::from_secs(60).nanos(),
        512,
    );
    println!(
        "steady-state per-packet service through the event loop: mean {:.1} ns, p99 {} ns",
        svc.mean(),
        svc.percentile(0.99)
    );
    println!("ok");
}
