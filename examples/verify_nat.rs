//! Run the full Vigor verification pipeline and watch it work — the
//! reproduction of the paper's §5 in one command.
//!
//! Performs, in order:
//!
//! 1. exhaustive symbolic execution of the *actual* stateless loop body
//!    against the libVig models (paper §5.2.1);
//! 2. parallel lazy-proof validation of every trace: P2 (low-level),
//!    P4 (library usage + leak check), P5 (model faithfulness),
//!    P1 (RFC 3022 semantics);
//! 3. the paper's §3 invalid-model experiments: an over-approximate
//!    model breaks the P2 proof, an under-approximate one fails P5 —
//!    demonstrating that a bad model can never produce a bad proof.
//!
//! ```sh
//! cargo run --release --example verify_nat
//! ```

use vignat_repro::libvig::time::Time;
use vignat_repro::nat::NatConfig;
use vignat_repro::packet::Ip4;
use vignat_repro::validator::{run_verification, ModelStyle};

fn main() {
    let cfg = NatConfig {
        capacity: 65_535,
        expiry_ns: Time::from_secs(2).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1,
        ..NatConfig::paper_default()
    };

    println!("=== VigNAT verification (faithful models) ===");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let report = run_verification(&cfg, ModelStyle::Faithful, threads);
    println!("{}", report.summary());
    assert!(
        report.ok(),
        "verification must succeed: {:#?}",
        report.failures
    );

    println!("\n=== sample symbolic trace (paper Fig. 9 analog) ===");
    // Re-run ESE once to render a forwarding trace.
    let ese = vignat_repro::validator::run_ese(&cfg, ModelStyle::Faithful, 10_000).unwrap();
    if let Some(t) = ese.traces.iter().find(|t| t.tx().is_some()) {
        print!("{}", t.render());
    }

    println!("\n=== invalid-model experiments (paper §3) ===");
    let over = run_verification(&cfg, ModelStyle::OverApproximate, threads);
    println!(
        "over-approximate model (b):  {} — {}",
        if over.ok() {
            "ACCEPTED (BUG!)"
        } else {
            "rejected"
        },
        over.failures
            .first()
            .map(|f| f.to_string())
            .unwrap_or_else(|| "no failure?!".into())
    );
    assert!(!over.ok());
    assert!(over.failures.iter().any(|f| f.property == "P2"));

    let under = run_verification(&cfg, ModelStyle::UnderApproximate, threads);
    println!(
        "under-approximate model (c): {} — {}",
        if under.ok() {
            "ACCEPTED (BUG!)"
        } else {
            "rejected"
        },
        under
            .failures
            .first()
            .map(|f| f.to_string())
            .unwrap_or_else(|| "no failure?!".into())
    );
    assert!(!under.ok());
    assert!(under.failures.iter().any(|f| f.property == "P5"));

    println!("\nall three outcomes match the paper: faithful models verify,");
    println!("broken models fail in exactly the predicted property.");
}
