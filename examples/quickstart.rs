//! Quickstart: build the verified NAT, push a session through it, watch
//! it expire.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vignat_repro::libvig::time::Time;
use vignat_repro::nat::NatConfig;
use vignat_repro::packet::{builder::PacketBuilder, parse_l3l4, Direction, Ip4};
use vignat_repro::sim::middlebox::{Middlebox, Verdict, VigNatMb};

fn main() {
    // The paper's configuration: 65,535 flows, 2 s expiry.
    let cfg = NatConfig {
        capacity: 65_535,
        expiry_ns: Time::from_secs(2).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1,
        ..NatConfig::paper_default()
    };
    let mut nat = VigNatMb::new(cfg);
    println!(
        "VigNAT up: external ip {}, capacity {}",
        cfg.external_ip, cfg.capacity
    );

    // An internal host opens a TCP connection to a web server.
    let mut syn = PacketBuilder::tcp(
        Ip4::new(192, 168, 0, 5),
        Ip4::new(93, 184, 216, 34),
        44_123,
        443,
    )
    .tcp_flags(vignat_repro::packet::tcp::flags::SYN)
    .build();
    let v = nat.process(Direction::Internal, &mut syn, Time::from_secs(1));
    assert_eq!(v, Verdict::Forward(Direction::External));
    let (_, out) = parse_l3l4(&syn).expect("translated frame parses");
    println!(
        "outbound: 192.168.0.5:44123 -> {}:{}  (rewritten source: {}:{})",
        out.dst_ip, out.dst_port, out.src_ip, out.src_port
    );
    let ext_port = out.src_port;

    // The server answers; the NAT maps the reply back.
    let mut synack = PacketBuilder::tcp(Ip4::new(93, 184, 216, 34), cfg.external_ip, 443, ext_port)
        .tcp_flags(vignat_repro::packet::tcp::flags::SYN | vignat_repro::packet::tcp::flags::ACK)
        .build();
    let v = nat.process(Direction::External, &mut synack, Time::from_secs(1));
    assert_eq!(v, Verdict::Forward(Direction::Internal));
    let (_, back) = parse_l3l4(&synack).unwrap();
    println!(
        "return:   {}:{} -> {}:{}  (restored destination)",
        back.src_ip, back.src_port, back.dst_ip, back.dst_port
    );
    assert_eq!(back.dst_ip, Ip4::new(192, 168, 0, 5));
    assert_eq!(back.dst_port, 44_123);

    // Two seconds of silence: the flow expires; the reply now bounces.
    let mut late =
        PacketBuilder::tcp(Ip4::new(93, 184, 216, 34), cfg.external_ip, 443, ext_port).build();
    let v = nat.process(Direction::External, &mut late, Time::from_secs(4));
    assert_eq!(v, Verdict::Drop);
    println!(
        "after 3 s idle: flow expired, late reply dropped (occupancy {})",
        nat.occupancy()
    );

    println!("\nok — this is the behaviour the validator proves for *all* packets;");
    println!("run `cargo run --example verify_nat` to watch the proof.");
}
