//! Short privileged cross-the-wire RFC 2544 run for CI.
//!
//! Runs the same three-way measurement (sim vs per-frame `AF_PACKET`
//! vs mmap-ring, over real veth wires) the fig. 14 bench commits, but
//! sized for a CI job, and writes the result to
//! `target/os_wire_rfc2544.json` so the workflow can upload it as an
//! artifact. Exits non-zero when the wire run is unavailable (missing
//! `CAP_NET_RAW`/`CAP_NET_ADMIN`), so a silently-skipped measurement
//! can never look green.
//!
//! Sizing via env (defaults fit a CI minute):
//! `OS_WIRE_FLOWS` (default 1024), `OS_WIRE_PACKETS` (default 12000).
//!
//! Run: `sudo -E cargo run --release -p vig-bench --example os_wire_rfc2544`

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let flows = env_usize("OS_WIRE_FLOWS", 1024);
    let packets = env_usize("OS_WIRE_PACKETS", 12_000);
    let section = vig_bench::os_wire::section_json(flows, packets);
    let json =
        format!("{{\n  \"bench\": \"os_wire_rfc2544\",\n  \"os_wire_rfc2544\": {section}\n}}\n");
    vig_bench::write_result_json("target/os_wire_rfc2544.json", &json);
    let doc = vig_bench::check::parse(&json).expect("section renders valid JSON");
    let available = doc.get("os_wire_rfc2544").and_then(|w| w.get("available"))
        == Some(&vig_bench::check::Json::Bool(true));
    if !available {
        eprintln!("os_wire_rfc2544: wire run unavailable — failing the CI measurement");
        std::process::exit(1);
    }
}
