//! Standalone fault-layer identity-overhead measurement.
//!
//! Re-measures just the `fault_overhead` section of
//! `BENCH_throughput.json` — the batched event-driven drive (2 queues
//! × 2 shards, sim backend) bare vs wrapped in an empty-schedule
//! `FaultIo`, interleaved trials, medians compared — and prints the
//! section JSON. Exits non-zero when the measured overhead is at or
//! above the 2% gate `vig_bench --check` enforces on the committed
//! trajectory, so the disarmed chaos seam cannot silently get
//! expensive.
//!
//! Sizing via env: `FAULT_OVERHEAD_TRIALS` (default 15),
//! `FAULT_OVERHEAD_PACKETS` (default `throughput_packets()`).
//!
//! Run: `cargo run --release -p vig-bench --example fault_overhead`

use libvig::time::Time;
use vig_packet::Ip4;
use vig_spec::NatConfig;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    // Same NF configuration as the fig. 14 bench that commits this
    // section.
    let cfg = NatConfig {
        capacity: 65_535,
        expiry_ns: Time::from_secs(60).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1,
        ..NatConfig::paper_default()
    };
    let trials = env_usize("FAULT_OVERHEAD_TRIALS", 15);
    let packets = env_usize("FAULT_OVERHEAD_PACKETS", vig_bench::throughput_packets());
    let fault = vig_bench::measure_fault_overhead(&cfg, trials, packets);
    println!(
        "fault-layer identity overhead: bare {:.2} Mpps, wrapped {:.2} Mpps, \
         overhead {:+.2}% (gate: < 2%)",
        fault.bare_mpps, fault.faultio_empty_mpps, fault.overhead_pct
    );
    println!("\n  {},", fault.section_json());
    if fault.overhead_pct >= 2.0 {
        eprintln!("fault_overhead: disarmed FaultIo costs >= 2% — identity fast path regressed");
        std::process::exit(1);
    }
}
