//! TAB-LOC — reproduction of the paper's §5.1.3 artifact-size
//! statistics:
//!
//! > "libVig contains 2.2 KLOC of C, 4K lines of pre- and
//! >  post-conditions and accompanying definitions, and 21.8K lines of
//! >  proof code (inlined annotations)."
//!
//! and §4.1: "The specification has 300 lines of separation logic."
//!
//! We report the equivalent inventory for this reproduction: per-layer
//! line counts, splitting implementation code from verification
//! artifacts (contracts/abstract models/checked wrappers live inline
//! with the implementation here, and the test layers play the role of
//! the machine-checked proof). The reproduced shape: the verification
//! artifacts dominate the implementation by a multiple, as in the
//! paper (C : contracts : proofs = 2.2 : 4 : 21.8).
//!
//! Run: `cargo bench -p vig-bench --bench tab_loc`

use std::path::{Path, PathBuf};
use vig_bench::print_table;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// Count (impl_lines, test_lines) of one Rust file: code lines before
/// vs inside `#[cfg(test)]`-gated modules; blank lines and pure comment
/// lines excluded.
fn count_file(p: &Path) -> (usize, usize) {
    let Ok(src) = std::fs::read_to_string(p) else {
        return (0, 0);
    };
    let mut impl_lines = 0;
    let mut test_lines = 0;
    let mut in_tests = false;
    for line in src.lines() {
        let t = line.trim();
        if t.contains("#[cfg(test)]") {
            in_tests = true;
        }
        if t.is_empty() || t.starts_with("//") {
            continue;
        }
        if in_tests {
            test_lines += 1;
        } else {
            impl_lines += 1;
        }
    }
    (impl_lines, test_lines)
}

fn count_dir(dir: &Path) -> (usize, usize) {
    let mut totals = (0, 0);
    let Ok(entries) = std::fs::read_dir(dir) else {
        return totals;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            let (i, t) = count_dir(&p);
            totals.0 += i;
            totals.1 += t;
        } else if p.extension().is_some_and(|x| x == "rs") {
            let (i, t) = count_file(&p);
            totals.0 += i;
            totals.1 += t;
        }
    }
    totals
}

fn main() {
    let root = repo_root();
    let layers: &[(&str, &str, &str)] = &[
        (
            "packet formats",
            "crates/packet/src",
            "(DPDK header structs)",
        ),
        ("libVig analog", "crates/libvig/src", "libVig: 2.2 KLOC C"),
        (
            "RFC 3022 spec",
            "crates/spec/src",
            "spec: 300 lines sep. logic",
        ),
        ("VigNAT", "crates/core/src", "VigNAT stateless + glue"),
        ("symbex engine", "crates/symbex/src", "(modified KLEE)"),
        (
            "Validator",
            "crates/validator/src",
            "Validator + VeriFast glue",
        ),
        ("testbed sim", "crates/netsim/src", "(MoonGen + testbed)"),
        (
            "baseline NFs",
            "crates/baselines/src",
            "Unverified NAT, NetFilter",
        ),
        ("bench harness", "crates/bench", "(eval scripts)"),
        ("integration tests", "tests", "(n/a)"),
        ("examples", "examples", "(n/a)"),
    ];

    let mut rows = Vec::new();
    let mut total_impl = 0usize;
    let mut total_test = 0usize;
    for (name, rel, paper) in layers {
        let (i, t) = count_dir(&root.join(rel));
        total_impl += i;
        total_test += t;
        rows.push(vec![
            name.to_string(),
            format!("{i}"),
            format!("{t}"),
            paper.to_string(),
        ]);
    }
    rows.push(vec![
        "TOTAL".into(),
        format!("{total_impl}"),
        format!("{total_test}"),
        "2.2K impl + 4K contracts + 21.8K proof".into(),
    ]);
    print_table(
        "TAB-LOC: artifact-size inventory (code lines, comments/blank excluded)",
        &[
            "layer",
            "impl+contracts",
            "inline tests",
            "paper counterpart",
        ],
        &rows,
    );
    println!(
        "\nnote: in this reproduction the contracts and abstract models are executable \
         and live inline with the implementation; the proptest/bounded-exhaustive layers \
         play the role of the paper's 21.8 KLOC VeriFast proof."
    );
    assert!(total_impl > 5_000, "inventory sanity");
}
