//! MICRO — flow-table microbenchmarks for the design choices DESIGN.md
//! §7 calls out, plus the **batched fast path headline**: the
//! steady-state NAT step (clock read, guarded expiry scan, flow lookup,
//! rejuvenate) executed single-packet vs batched at ≥50% occupancy —
//! the number this repo's batching work is gated on
//! (`BENCH_flowtable.json`).
//!
//! What the series explain:
//!
//! * **natstep single vs batched** — the burst path reads the clock and
//!   runs `expire_flows` once per 32-packet burst instead of once per
//!   packet (a clock read alone is ~25-40 ns on commodity hosts, on the
//!   order of the probe itself), and issues the burst's directory
//!   probes back to back;
//! * **single vs batched lookups** — the probe cost in isolation
//!   (`Map::get_batch_with_hash` hashes a burst in one pass and
//!   first-touches every start slot before probing);
//! * open addressing (verified `libvig::Map`) vs separate chaining
//!   (`ChainedMap`) at moderate and near-full occupancy — the source of
//!   the verified NAT's last-point uptick in Fig. 12;
//! * **scalar walk vs SWAR tag-group probe** (`open_addressing_*` vs
//!   `tag_probe_*` rows): the same verified map probed the
//!   pre-directory way (one slot load per position) and the default
//!   way (one control-word load per eight positions) — the 98%-miss
//!   row is the headline of the tag-directory work;
//! * **the churn step at a million flows** (`churn_step_wheel_1m` vs
//!   `churn_step_scan_1m`): expiry drain + mostly-hit lookup +
//!   rejuvenate/allocate under continuous arrival and expiry at 2^20
//!   table slots, timer-wheel vs LRU-scan expiry — the run asserts both
//!   engines expire *exactly* the same flows (wheel ≡ scan);
//! * hit vs miss lookups (misses probe the longest in open addressing);
//! * dchain allocate/rejuvenate — the per-packet bookkeeping;
//! * incremental (RFC 1624) vs full checksum recomputation.
//!
//! Run: `cargo bench -p vig-bench --bench micro_flowtable`

use libvig::map::MapKey;
use libvig::time::Time;
use std::hint::black_box;
use std::time::Instant;
use vig_baselines::ChainedMap;
use vig_bench::{print_table, write_result_json, Series};
use vig_packet::checksum::{checksum, Checksum};
use vig_packet::{FlowId, Ip4, Proto};
use vignat::{ExpiryMode, FlowManager, NatConfig, MAX_BURST};

/// Table capacity: the paper-scale flow table (also the largest the
/// VigNAT config invariant allows).
const CAP: usize = 65_535;

fn cfg() -> NatConfig {
    NatConfig {
        capacity: CAP,
        expiry_ns: Time::from_secs(3600).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1,
        ..NatConfig::paper_default()
    }
}

fn fid(i: u32) -> FlowId {
    FlowId {
        src_ip: Ip4(0x0a00_0000 | i),
        src_port: 10_000 + (i % 40_000) as u16,
        dst_ip: Ip4::new(1, 1, 1, 1),
        dst_port: 80,
        proto: Proto::Udp,
    }
}

/// Deterministic pseudo-random permutation walk over `0..n` (LCG with
/// odd stride), so consecutive queries hit unrelated cache lines the
/// way real traffic does.
fn scrambled(n: usize, len: usize) -> Vec<u32> {
    let stride = (n / 2 + 13) | 1;
    (0..len).map(|i| ((i * stride + 7) % n) as u32).collect()
}

/// The headline: the **steady-state NAT step** per packet — clock read,
/// guarded expiry scan, flow-table lookup, rejuvenate (Fig. 6's hit
/// path, everything but the header rewrite) — executed the single-packet
/// way (each packet pays each cost, as in `nat_loop_iteration`) vs the
/// batched way (clock and expiry amortized to once per `MAX_BURST`
/// burst, lookups through the batched directory probe, as in
/// `nat_process_batch`). Chunked identically so both series' samples
/// are per-chunk means over `MAX_BURST` packets.
fn bench_nat_step(occupancy: usize, rounds: usize) -> (Series, Series) {
    use libvig::time::{Clock, SystemClock};
    let clock = SystemClock::new();
    let texp = Time::from_secs(3600).nanos();
    let mut fm = FlowManager::new(&cfg());
    for i in 0..occupancy as u32 {
        fm.allocate(fid(i), clock.now()).expect("below capacity");
    }
    let queries = scrambled(occupancy, rounds * MAX_BURST);

    let mut single_ns: Vec<f64> = Vec::with_capacity(rounds);
    let mut batched_ns: Vec<f64> = Vec::with_capacity(rounds);

    // Reusable buffers, as the burst datapath keeps them (BurstScratch).
    let mut keys: Vec<FlowId> = Vec::with_capacity(MAX_BURST);
    let mut hashes: Vec<u64> = Vec::with_capacity(MAX_BURST);
    let mut slots: Vec<Option<usize>> = Vec::with_capacity(MAX_BURST);
    let mut out: Vec<Option<(usize, vig_packet::Flow)>> = Vec::with_capacity(MAX_BURST);

    // Interleave the two measurements chunk by chunk so frequency
    // scaling and cache pressure hit both paths alike.
    for chunk in queries.chunks_exact(MAX_BURST) {
        keys.clear();
        keys.extend(chunk.iter().map(|&i| fid(i)));

        // Single-packet path: every packet reads the clock, runs the
        // expiry scan, probes, rejuvenates — one nat_loop_iteration's
        // steady-state stateful work per packet.
        let t0 = Instant::now();
        for k in &keys {
            let now = clock.now();
            fm.expire(now.minus(texp));
            let (slot, _) = fm
                .lookup_internal(black_box(k))
                .expect("steady state: all hits");
            fm.rejuvenate(slot, now);
        }
        single_ns.push(t0.elapsed().as_nanos() as f64 / MAX_BURST as f64);

        // Batched path: one clock read + one expiry scan per burst,
        // one batched probe, per-packet rejuvenate — nat_process_batch's
        // steady-state stateful work.
        out.clear();
        let t0 = Instant::now();
        let now = clock.now();
        fm.expire(now.minus(texp));
        hashes.clear();
        hashes.extend(keys.iter().map(MapKey::key_hash));
        fm.lookup_internal_batch(black_box(&keys), black_box(&hashes), &mut slots, &mut out);
        for r in &out {
            let (slot, _) = r.expect("steady state: all hits");
            fm.rejuvenate(slot, now);
        }
        batched_ns.push(t0.elapsed().as_nanos() as f64 / MAX_BURST as f64);
        black_box(&out);
    }

    let pct = occupancy * 100 / CAP;
    (
        Series::from_samples(format!("natstep_single_{pct}pct"), &mut single_ns),
        Series::from_samples(format!("natstep_batched_{pct}pct"), &mut batched_ns),
    )
}

/// Pure flow-table lookups, single vs batched (no clock, no expiry, no
/// rejuvenation) — isolates the directory-probe cost.
fn bench_lookup_paths(occupancy: usize, rounds: usize) -> (Series, Series) {
    let mut fm = FlowManager::new(&cfg());
    for i in 0..occupancy as u32 {
        fm.allocate(fid(i), Time::from_secs(1))
            .expect("below capacity");
    }
    let queries = scrambled(occupancy, rounds * MAX_BURST);

    let mut single_ns: Vec<f64> = Vec::with_capacity(rounds);
    let mut batched_ns: Vec<f64> = Vec::with_capacity(rounds);
    let mut keys: Vec<FlowId> = Vec::with_capacity(MAX_BURST);
    let mut hashes: Vec<u64> = Vec::with_capacity(MAX_BURST);
    let mut slots: Vec<Option<usize>> = Vec::with_capacity(MAX_BURST);
    let mut out = Vec::with_capacity(MAX_BURST);

    for chunk in queries.chunks_exact(MAX_BURST) {
        keys.clear();
        keys.extend(chunk.iter().map(|&i| fid(i)));

        let t0 = Instant::now();
        let mut hits = 0usize;
        for k in &keys {
            if fm.lookup_internal(black_box(k)).is_some() {
                hits += 1;
            }
        }
        single_ns.push(t0.elapsed().as_nanos() as f64 / MAX_BURST as f64);
        assert_eq!(hits, MAX_BURST, "steady state must be all hits");

        out.clear();
        let t0 = Instant::now();
        hashes.clear();
        hashes.extend(keys.iter().map(MapKey::key_hash));
        fm.lookup_internal_batch(black_box(&keys), black_box(&hashes), &mut slots, &mut out);
        batched_ns.push(t0.elapsed().as_nanos() as f64 / MAX_BURST as f64);
        assert!(
            out.iter().all(Option::is_some),
            "batched lookups must hit too"
        );
        black_box(&out);
    }

    let pct = occupancy * 100 / CAP;
    (
        Series::from_samples(format!("lookup_single_{pct}pct"), &mut single_ns),
        Series::from_samples(format!("lookup_batched_{pct}pct"), &mut batched_ns),
    )
}

/// Open addressing vs separate chaining, hits and misses, as per-op ns.
///
/// Two variants of the verified map's probe are reported side by side:
///
/// * `open_addressing_*` — the **scalar reference walk**
///   (`get_with_hash_scalar`, one slot load + compare per probe
///   position), i.e. exactly what these rows measured before the tag
///   directory landed, kept so the committed trajectory stays
///   comparable across PRs;
/// * `tag_probe_*` — the default SWAR tag-group probe (`get`), which
///   scans eight positions per control-word load and only touches
///   slots whose tag matches. The miss rows at 98% occupancy are where
///   the directory pays: the scalar walk loads every slot on a
///   near-capacity probe chain, the tag walk rejects ~127/128 of them
///   without leaving the control word.
fn bench_open_vs_chained(occupancy: usize, rounds: usize) -> Vec<Series> {
    use libvig::map::MapKey as _;
    let mut open = libvig::map::Map::new(CAP);
    let mut chained: ChainedMap<u64, usize> = ChainedMap::with_capacity(CAP);
    for k in 0..occupancy as u64 {
        open.put(k, k as usize).unwrap();
        chained.insert(k, k as usize);
    }
    let pct = occupancy * 100 / CAP;
    let n = rounds * MAX_BURST;
    let mut out = Vec::new();
    let mut run = |name: String, mut f: Box<dyn FnMut(u64) -> bool>| {
        let mut samples: Vec<f64> = Vec::with_capacity(rounds);
        let mut q = 0u64;
        for _ in 0..rounds {
            let t0 = Instant::now();
            for _ in 0..MAX_BURST {
                q = (q + 0x9e37) % n as u64;
                black_box(f(q));
            }
            samples.push(t0.elapsed().as_nanos() as f64 / MAX_BURST as f64);
        }
        out.push(Series::from_samples(name, &mut samples));
    };
    {
        let open_hit = open.clone();
        let occ = occupancy as u64;
        run(
            format!("open_addressing_hit_{pct}pct"),
            Box::new(move |q| {
                let k = q % occ;
                open_hit.get_with_hash_scalar(&k, k.key_hash()).is_some()
            }),
        );
    }
    {
        let tag_hit = open.clone();
        let occ = occupancy as u64;
        run(
            format!("tag_probe_hit_{pct}pct"),
            Box::new(move |q| tag_hit.get(&(q % occ)).is_some()),
        );
    }
    {
        let chained_hit = chained.clone();
        let occ = occupancy as u64;
        run(
            format!("chaining_hit_{pct}pct"),
            Box::new(move |q| chained_hit.get(&(q % occ)).is_some()),
        );
    }
    {
        let open_miss = open.clone();
        run(
            format!("open_addressing_miss_{pct}pct"),
            Box::new(move |q| {
                let k = 1_000_000 + q;
                open_miss.get_with_hash_scalar(&k, k.key_hash()).is_some()
            }),
        );
    }
    {
        let tag_miss = open.clone();
        run(
            format!("tag_probe_miss_{pct}pct"),
            Box::new(move |q| tag_miss.get(&(1_000_000 + q)).is_some()),
        );
    }
    {
        let chained_miss = chained.clone();
        run(
            format!("chaining_miss_{pct}pct"),
            Box::new(move |q| chained_miss.get(&(1_000_000 + q)).is_some()),
        );
    }
    out
}

/// Million-flow churn step: table capacity (2^20 slots).
const CHURN_CAP: usize = 1 << 20;
/// Flows kept alive by round-robin refreshes (the sliding window).
const CHURN_ACTIVE: usize = 800_000;
/// Every n-th op opens a new flow and abandons the window's oldest.
const CHURN_NEW_EVERY: usize = 8;
/// Virtual nanoseconds per op.
const CHURN_DT_NS: u64 = 250;
/// Expiry timeout; the refresh cycle (200 ms virtual) stays inside it.
const CHURN_TEXP_NS: u64 = 350_000_000;

fn churn_cfg() -> NatConfig {
    NatConfig {
        capacity: CHURN_CAP,
        expiry_ns: CHURN_TEXP_NS,
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1024,
        ..NatConfig::paper_default()
    }
}

fn churn_fid(i: usize) -> FlowId {
    FlowId {
        src_ip: Ip4(0x0a00_0000 | (i as u32 & 0x00ff_ffff)),
        src_port: 9_999,
        dst_ip: Ip4::new(1, 1, 1, 1),
        dst_port: 80,
        proto: Proto::Udp,
    }
}

/// The steady-state NAT step under **million-flow churn**: per op, the
/// expiry drain (timer wheel or LRU scan), then a lookup that mostly
/// hits (refresh → rejuvenate) and periodically misses (new flow →
/// allocate). A sliding window of [`CHURN_ACTIVE`] flows is refreshed
/// round-robin; every [`CHURN_NEW_EVERY`]-th op opens a new flow and
/// retires the window's oldest to the expirator, so arrivals and
/// expiries balance at ~95% occupancy of the 2^20-slot table.
///
/// Returns the series plus the expired count and end occupancy over the
/// measured region — the two engines run the identical deterministic
/// schedule, so `main` asserts both agree exactly (wheel ≡ scan).
fn bench_churn_step(mode: ExpiryMode, rounds: usize) -> (Series, u64, usize) {
    let cfg = churn_cfg();
    let mut fm = FlowManager::with_expiry(&cfg, mode);
    let mut now = 0u64;
    for i in 0..CHURN_ACTIVE {
        now += CHURN_DT_NS;
        fm.allocate(churn_fid(i), Time(now))
            .expect("below capacity");
    }
    let (mut wbase, mut next_new, mut rr, mut seq) = (0usize, CHURN_ACTIVE, 0usize, 0usize);
    let mut step = |fm: &mut FlowManager, now: &mut u64| -> u64 {
        *now += CHURN_DT_NS;
        let i = if seq % CHURN_NEW_EVERY == 0 {
            wbase += 1;
            next_new += 1;
            next_new - 1
        } else {
            let f = wbase + (rr % CHURN_ACTIVE);
            rr += 1;
            f
        };
        seq += 1;
        let expired = fm.expire(Time(now.saturating_sub(CHURN_TEXP_NS))) as u64;
        let fid = churn_fid(i);
        match fm.lookup_internal(&fid) {
            Some((slot, _)) => {
                fm.rejuvenate(slot, Time(*now));
            }
            None => {
                fm.allocate(fid, Time(*now))
                    .expect("churn stays below capacity by design");
            }
        }
        expired
    };
    // Unmeasured warmup: one expiry timeout of churn, so abandoned
    // flows are draining at the arrival rate when measurement starts.
    // Expiries are counted from the start of churn: they cluster
    // unevenly across the refresh cycle, so a short measured window
    // alone could legitimately catch none.
    let mut expired_total = 0u64;
    let warm = (CHURN_TEXP_NS / CHURN_DT_NS) as usize + 200_000;
    for _ in 0..warm {
        expired_total += step(&mut fm, &mut now);
    }
    let mut samples: Vec<f64> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..MAX_BURST {
            expired_total += step(&mut fm, &mut now);
        }
        samples.push(t0.elapsed().as_nanos() as f64 / MAX_BURST as f64);
    }
    let name = match mode {
        ExpiryMode::Wheel => "churn_step_wheel_1m",
        ExpiryMode::Scan => "churn_step_scan_1m",
    };
    (
        Series::from_samples(name, &mut samples),
        expired_total,
        fm.len(),
    )
}

/// dchain allocate/rejuvenate and checksum strategies (per-op ns).
fn bench_bookkeeping(rounds: usize) -> Vec<Series> {
    let mut out = Vec::new();

    let mut ch = libvig::dchain::DoubleChain::new(4096);
    for t in 0..4096u64 {
        ch.allocate(Time(t)).unwrap();
    }
    let mut samples: Vec<f64> = Vec::with_capacity(rounds);
    let mut t = 5_000u64;
    let mut i = 0usize;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..MAX_BURST {
            i = (i + 1) % 4096;
            t += 1;
            black_box(ch.rejuvenate(i, Time(t)));
        }
        samples.push(t0.elapsed().as_nanos() as f64 / MAX_BURST as f64);
    }
    out.push(Series::from_samples("dchain_rejuvenate", &mut samples));

    let frame = vec![0xabu8; 1500];
    let mut samples: Vec<f64> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = Instant::now();
        black_box(checksum(black_box(&frame)));
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    out.push(Series::from_samples("checksum_full_1500B", &mut samples));

    let mut samples: Vec<f64> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..MAX_BURST {
            let c = Checksum::from_field(0x1234)
                .update_u32(0x0a000001, 0xcb007101)
                .update_u16(40_000, 61_234);
            black_box(c.to_field());
        }
        samples.push(t0.elapsed().as_nanos() as f64 / MAX_BURST as f64);
    }
    out.push(Series::from_samples(
        "checksum_incremental_rfc1624",
        &mut samples,
    ));
    out
}

fn main() {
    let rounds = if vig_bench::full_mode() {
        20_000
    } else {
        4_000
    };

    // Warm up, then measure: the batched-vs-single headline (the full
    // steady-state NAT step) at 50% and 99% occupancy.
    let _ = bench_nat_step(CAP / 8, rounds / 8);
    let (single_50, batched_50) = bench_nat_step(CAP / 2, rounds);
    let (single_99, batched_99) = bench_nat_step(CAP * 99 / 100, rounds);
    let speedup_50 = batched_50.ops_per_sec / single_50.ops_per_sec;
    let speedup_99 = batched_99.ops_per_sec / single_99.ops_per_sec;

    let mut all = vec![single_50, batched_50, single_99, batched_99];
    let (ls50, lb50) = bench_lookup_paths(CAP / 2, rounds / 2);
    let (ls99, lb99) = bench_lookup_paths(CAP * 99 / 100, rounds / 2);
    all.extend([ls50, lb50, ls99, lb99]);
    all.extend(bench_open_vs_chained(CAP / 2, rounds / 4));
    all.extend(bench_open_vs_chained(CAP * 99 / 100, rounds / 4));
    all.extend(bench_bookkeeping(rounds / 4));

    // Million-flow churn: the same deterministic schedule through both
    // expiry engines; their observable effects must agree exactly.
    let (churn_wheel, expired_wheel, occ_wheel) = bench_churn_step(ExpiryMode::Wheel, rounds / 4);
    let (churn_scan, expired_scan, occ_scan) = bench_churn_step(ExpiryMode::Scan, rounds / 4);
    assert_eq!(
        expired_wheel, expired_scan,
        "wheel and scan must expire identical counts under the same churn schedule"
    );
    assert_eq!(
        occ_wheel, occ_scan,
        "wheel and scan must end churn at identical occupancy"
    );
    assert!(
        expired_wheel > 0,
        "the measured churn region must actually expire flows"
    );
    all.extend([churn_wheel, churn_scan]);

    print_table(
        "MICRO: flow-table and bookkeeping costs (per-op)",
        &["series", "Mops/s", "p50 ns", "p99 ns"],
        &all.iter()
            .map(|s| {
                vec![
                    s.name.clone(),
                    format!("{:.2}", s.ops_per_sec / 1e6),
                    format!("{:.1}", s.p50_ns),
                    format!("{:.1}", s.p99_ns),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nbatched speedup over the single-packet NAT step (clock + expiry + lookup + rejuvenate):"
    );
    println!("  at 50% occupancy: {speedup_50:.2}x (gate: >= 1.3x)");
    println!("  at 99% occupancy: {speedup_99:.2}x");
    println!(
        "\nchurn at {CHURN_CAP} slots ({occ_wheel} resident at end): wheel and scan expired \
         {expired_wheel} flows each (parity exact)"
    );

    let json = format!(
        "{{\n  \"bench\": \"micro_flowtable\",\n  \"table_capacity\": {CAP},\n  \"burst\": {MAX_BURST},\n  \"batched_speedup_at_50pct\": {speedup_50:.3},\n  \"batched_speedup_at_99pct\": {speedup_99:.3},\n  \"churn\": {{\"table_capacity\": {CHURN_CAP}, \"active_window\": {CHURN_ACTIVE}, \"occupancy_end\": {occ_wheel}, \"expired_wheel\": {expired_wheel}, \"expired_scan\": {expired_scan}}},\n  \"series\": [\n    {}\n  ]\n}}\n",
        all.iter().map(Series::to_json).collect::<Vec<_>>().join(",\n    ")
    );
    write_result_json("BENCH_flowtable.json", &json);

    assert!(
        speedup_50 >= 1.3,
        "batched lookup path must be >= 1.3x the single-packet path at 50% occupancy \
         (measured {speedup_50:.2}x)"
    );
}
