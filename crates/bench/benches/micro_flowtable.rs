//! MICRO — Criterion microbenchmarks for the design choices DESIGN.md
//! §7 calls out. Not a paper figure; these explain the *causes* behind
//! Fig. 12/14:
//!
//! * open addressing (verified `libvig::Map`) vs separate chaining
//!   (`ChainedMap`) at moderate and near-full occupancy — the source of
//!   the verified NAT's last-point uptick in Fig. 12 and the ~10%
//!   throughput gap in Fig. 14;
//! * hit vs miss lookups (misses probe the longest in open addressing);
//! * dchain allocate/rejuvenate/expire — the per-packet bookkeeping;
//! * incremental (RFC 1624) vs full checksum recomputation — why NATs
//!   rewrite headers in O(1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use libvig::dchain::DoubleChain;
use libvig::map::{Map, MapKey};
use libvig::time::Time;
use std::hint::black_box;
use vig_baselines::ChainedMap;
use vig_packet::checksum::{checksum, Checksum};

#[derive(Debug, Clone, PartialEq, Eq)]
struct Key(u64);

impl MapKey for Key {
    fn key_hash(&self) -> u64 {
        self.0.key_hash()
    }
}

const CAP: usize = 65_536;

fn filled_open(occupancy: usize) -> Map<Key> {
    let mut m = Map::new(CAP);
    for k in 0..occupancy as u64 {
        m.put(Key(k), k as usize).unwrap();
    }
    m
}

fn filled_chained(occupancy: usize) -> ChainedMap<Key, usize> {
    let mut m = ChainedMap::with_capacity(CAP);
    for k in 0..occupancy as u64 {
        m.insert(Key(k), k as usize);
    }
    m
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("flowtable_lookup");
    for (label, occ) in [("50pct", CAP / 2), ("99pct", CAP * 99 / 100)] {
        let open = filled_open(occ);
        let chained = filled_chained(occ);
        g.bench_function(format!("open_addressing_hit_{label}"), |b| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 1) % occ as u64;
                black_box(open.get(&Key(k)))
            })
        });
        g.bench_function(format!("chaining_hit_{label}"), |b| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 1) % occ as u64;
                black_box(chained.get(&Key(k)))
            })
        });
        g.bench_function(format!("open_addressing_miss_{label}"), |b| {
            let mut k = 0u64;
            b.iter(|| {
                k += 1;
                black_box(open.get(&Key(1_000_000 + k)))
            })
        });
        g.bench_function(format!("chaining_miss_{label}"), |b| {
            let mut k = 0u64;
            b.iter(|| {
                k += 1;
                black_box(chained.get(&Key(1_000_000 + k)))
            })
        });
    }
    g.finish();
}

fn bench_dchain(c: &mut Criterion) {
    let mut g = c.benchmark_group("dchain");
    g.bench_function("allocate_expire_cycle", |b| {
        b.iter_batched_ref(
            || DoubleChain::new(4096),
            |ch| {
                for t in 0..64u64 {
                    let _ = black_box(ch.allocate(Time(t)));
                }
                while ch.expire_one(Time(u64::MAX)).is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("rejuvenate", |b| {
        let mut ch = DoubleChain::new(4096);
        for t in 0..4096u64 {
            ch.allocate(Time(t)).unwrap();
        }
        let mut i = 0usize;
        let mut t = 5_000u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            t += 1;
            black_box(ch.rejuvenate(i, Time(t)))
        })
    });
    g.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    let frame = vec![0xabu8; 1500];
    g.bench_function("full_recompute_1500B", |b| b.iter(|| black_box(checksum(&frame))));
    g.bench_function("incremental_rfc1624", |b| {
        b.iter(|| {
            let c = Checksum::from_field(0x1234)
                .update_u32(0x0a000001, 0xcb007101)
                .update_u16(40_000, 61_234);
            black_box(c.to_field())
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_lookup, bench_dchain, bench_checksum
}
criterion_main!(benches);
