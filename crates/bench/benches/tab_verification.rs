//! TAB-VERIF — reproduction of the paper's §5.2 verification
//! statistics:
//!
//! * §5.2.1: "the SEE checks all **108 paths** through VigNAT's
//!   stateless code in less than **1 minute**";
//! * §5.2.2: "to verify all **431 traces** resulting from the 108
//!   execution paths of stateless VigNAT takes **38 minutes on a
//!   single core and 11 minutes on a 4-core machine**" (covering P1,
//!   P4 and P5).
//!
//! We report the same quantities for our pipeline: feasible path count,
//! trace count including prefixes, ESE time, and single- vs multi-core
//! validation time with the speedup. Absolute times differ wildly (our
//! solver problems are far smaller than VeriFast's); the reproduced
//! shape is: path count of order 10², traces ≈ 3–5× paths via prefix
//! closure, ESE fast, validation parallelizes near-linearly.
//!
//! Run: `cargo bench -p vig-bench --bench tab_verification`

use libvig::time::Time;
use vig_bench::print_table;
use vig_packet::Ip4;
use vig_spec::NatConfig;
use vig_validator::{run_verification, ModelStyle};

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 65_535,
        expiry_ns: Time::from_secs(2).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1,
        ..NatConfig::paper_default()
    }
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let seq = run_verification(&cfg(), ModelStyle::Faithful, 1);
    assert!(seq.ok(), "verification must pass: {:#?}", seq.failures);
    let par = run_verification(&cfg(), ModelStyle::Faithful, cores);
    assert!(par.ok(), "parallel verification must pass");

    let rows = vec![
        vec!["ESE paths".into(), format!("{}", seq.paths), "108".into()],
        vec![
            "traces (incl. prefixes)".into(),
            format!("{}", seq.traces_with_prefixes),
            "431".into(),
        ],
        vec![
            "ESE time".into(),
            format!("{:.1?}", seq.ese_duration),
            "< 1 min".into(),
        ],
        vec![
            "validation, 1 core".into(),
            format!("{:.1?}", seq.validation_duration),
            "38 min".into(),
        ],
        vec![
            format!("validation, {cores} cores"),
            format!("{:.1?}", par.validation_duration),
            "11 min (4 cores)".into(),
        ],
        vec![
            "P2 obligations".into(),
            format!("{}", seq.p2_obligations),
            "(KLEE+UBSan asserts)".into(),
        ],
        vec![
            "P4 conditions".into(),
            format!("{}", seq.p4_checks),
            "(contract preconds)".into(),
        ],
        vec![
            "P5 model validations".into(),
            format!("{}", seq.p5_checks),
            "(lazy model checks)".into(),
        ],
        vec![
            "P1 semantic conditions".into(),
            format!("{}", seq.p1_checks),
            "(RFC 3022 weaving)".into(),
        ],
        vec!["verdict".into(), "VERIFIED".into(), "VERIFIED".into()],
    ];
    print_table(
        "TAB-VERIF: verification statistics (ours vs paper)",
        &["quantity", "this reproduction", "paper"],
        &rows,
    );

    let speedup =
        seq.validation_duration.as_secs_f64() / par.validation_duration.as_secs_f64().max(1e-9);
    println!("\nshape checks:");
    println!(
        "  paths of order 10^2: {} ({})",
        if (10..1000).contains(&seq.paths) {
            "ok"
        } else {
            "DEVIATION"
        },
        seq.paths
    );
    println!(
        "  traces > paths via prefix closure: {} ({} > {})",
        if seq.traces_with_prefixes > seq.paths {
            "ok"
        } else {
            "DEVIATION"
        },
        seq.traces_with_prefixes,
        seq.paths
    );
    println!("  parallel speedup: {speedup:.1}x on {cores} cores (paper: 3.5x on 4 cores)");

    // The invalid-model experiments, timed as well (paper §3).
    let over = run_verification(&cfg(), ModelStyle::OverApproximate, cores);
    let under = run_verification(&cfg(), ModelStyle::UnderApproximate, cores);
    println!(
        "\ninvalid models: over-approximate rejected at {} ({} failures), \
         under-approximate rejected at {} ({} failures)",
        over.failures.first().map(|f| f.property).unwrap_or("?"),
        over.failures.len(),
        under.failures.first().map(|f| f.property).unwrap_or("?"),
        under.failures.len()
    );
    assert!(!over.ok() && !under.ok());
}
