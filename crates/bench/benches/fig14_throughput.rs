//! FIG14 — reproduction of the paper's Figure 14: "Maximum throughput
//! with a maximum loss rate of 0.1%" as a function of the number of
//! flows, for No-op, Unverified NAT, Verified NAT and the Linux
//! (NetFilter) NAT.
//!
//! Methodology (RFC 2544, as in the paper): for each flow count, the
//! NF's steady-state per-packet service times are measured on the
//! all-hits workload ("flows that never expire, each producing 64-byte
//! packets"), MAD outlier rejection removes timer-noise samples (a
//! descheduled burst inflates a handful of samples by 100x and would
//! otherwise dominate the loss search — the rejected count is
//! reported), then the highest offered rate whose bounded-ring queue
//! simulation loses ≤ 0.1% of packets is found by binary search.
//!
//! Beyond the paper's figure, this bench also reports:
//!
//! * **real-clock mode** (`*_sysclock` series): the same NATs wrapped
//!   in [`SystemClockMb`], which reads the host's monotonic clock per
//!   process call instead of trusting the harness's virtual time — the
//!   per-packet fixed cost a production loop pays and the burst path
//!   amortizes, reported side by side with the virtual-time numbers;
//! * **the multi-queue sweep** (`multiqueue_sweep` object): the
//!   event-driven driver (`netsim::eventloop`) feeding an N-shard NAT
//!   from Q RSS-classified queues, swept over (queues × shards);
//! * **million-flow churn** (`churn` object): the sustained rate at
//!   2^20 table slots under continuous flow arrival and expiry, for
//!   both expiry engines (timer wheel vs LRU scan — the bench asserts
//!   their expiry counts agree exactly on the shared deterministic
//!   schedule), plus a Fig. 13-style latency CCDF of per-packet
//!   service time under churn;
//! * **bootstrap confidence intervals**: every main-series rate point
//!   carries a 95% CI from resampling per-trial rates
//!   ([`search_rate_with_ci`]), so run-to-run noise on shared CI hosts
//!   is visible in the committed trajectory instead of silently baked
//!   into point estimates.
//!
//! Paper result: Verified 1.8 Mpps ≈ 10% below Unverified 2.0 Mpps,
//! both far above Linux 0.6 Mpps, No-op highest, all flat in the flow
//! count. The shape checks below encode exactly those claims.
//!
//! Run: `cargo bench -p vig-bench --bench fig14_throughput`

use libvig::time::Time;
use netsim::eventloop::event_driven_service_times;
use netsim::harness::{
    parallel_scaling_curve, search_rate_filtered, search_rate_with_ci, sharded_throughput_sweep,
    steady_state_service_times, steady_state_service_times_batched, LatencySamples, RateEstimate,
    Testbed,
};
use netsim::middlebox::{Middlebox, NoopForwarder, SystemClockMb, Verdict, VigNatMb};
use std::hint::black_box;
use std::time::Instant;
use vig_baselines::{NetfilterNat, UnverifiedNat};
use vig_bench::{flow_sweep, print_table, throughput_packets, write_result_json};
use vig_packet::builder::PacketBuilder;
use vig_packet::{Direction, Ip4};
use vig_spec::NatConfig;
use vignat::ExpiryMode;

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 65_535,
        expiry_ns: Time::from_secs(60).nanos(), // flows never expire mid-run
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1,
        ..NatConfig::paper_default()
    }
}

/// One throughput measurement with the bootstrap 95% CI: the point
/// estimate is the RFC 2544 search over the full filtered series
/// (identical to the committed PR 3 methodology), the interval comes
/// from resampling per-trial rates ([`search_rate_with_ci`]).
fn measure(nf: &mut dyn Middlebox, flows: usize) -> RateEstimate {
    let mut tb = Testbed::new(512);
    let svc = steady_state_service_times(
        nf,
        &mut tb,
        flows,
        throughput_packets(),
        Time::from_secs(60).nanos(),
    );
    search_rate_with_ci(&svc, 512)
}

/// [`measure`] through the batched fast path.
fn measure_batched(nf: &mut dyn Middlebox, flows: usize) -> RateEstimate {
    let mut tb = Testbed::new(512);
    let svc = steady_state_service_times_batched(
        nf,
        &mut tb,
        flows,
        throughput_packets(),
        Time::from_secs(60).nanos(),
    );
    search_rate_with_ci(&svc, 512)
}

/// Million-flow churn: table capacity (2^20 slots — a multi-address
/// endpoint pool, 17 external IPs at this start port).
const CHURN_CAP: usize = 1 << 20;
/// Flows kept alive by refreshes at any instant (the sliding window).
const CHURN_ACTIVE: usize = 800_000;
/// Every `CHURN_NEW_EVERY`-th packet opens a brand-new flow (and slides
/// the window by one, abandoning its oldest flow to the expirator).
const CHURN_NEW_EVERY: usize = 8;
/// Virtual nanoseconds per packet (4 Mpps offered in virtual time).
const CHURN_DT_NS: u64 = 250;
/// Flow expiry under churn. The round-robin refresh revisits every
/// window flow within `CHURN_ACTIVE` packets = 200 ms of virtual time,
/// safely inside this timeout, so only abandoned flows expire.
const CHURN_TEXP_NS: u64 = 350_000_000;

fn churn_cfg() -> NatConfig {
    NatConfig {
        capacity: CHURN_CAP,
        expiry_ns: CHURN_TEXP_NS,
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1024,
        ..NatConfig::paper_default()
    }
}

/// The deterministic churn schedule: a sliding window of
/// [`CHURN_ACTIVE`] live flows, refreshed round-robin, with every
/// [`CHURN_NEW_EVERY`]-th packet opening a new flow and retiring the
/// window's oldest. Identical across expiry engines, so their expiry
/// counts must agree *exactly* — the bench asserts it.
struct ChurnSched {
    wbase: usize,
    next_new: usize,
    rr: usize,
    seq: usize,
}

impl ChurnSched {
    fn new() -> ChurnSched {
        ChurnSched {
            wbase: 0,
            next_new: CHURN_ACTIVE,
            rr: 0,
            seq: 0,
        }
    }

    /// Flow index for the next packet.
    fn next_flow(&mut self) -> usize {
        let flow = if self.seq.is_multiple_of(CHURN_NEW_EVERY) {
            self.wbase += 1;
            self.next_new += 1;
            self.next_new - 1
        } else {
            let f = self.wbase + (self.rr % CHURN_ACTIVE);
            self.rr += 1;
            f
        };
        self.seq += 1;
        flow
    }
}

/// What one churn run measured.
struct ChurnOutcome {
    svc: LatencySamples,
    expired: u64,
    occupancy_end: usize,
    new_flows: usize,
}

/// Drive the verified NAT through sustained million-flow churn and
/// record per-packet service times over `measured` packets.
///
/// Phases: fill the window (one packet per flow, timestamps staggered),
/// run unmeasured churn for one expiry timeout so the arrival/expiry
/// pipeline reaches steady state (abandoned flows start draining), then
/// measure. Frames are built outside the timed region; each timed
/// packet pays the full loop-body cost — clock-guarded expiry drain,
/// lookup or allocation, rejuvenation, header rewrite.
fn churn_service_times(mode: ExpiryMode, measured: usize) -> ChurnOutcome {
    let frame_of = |i: usize| {
        PacketBuilder::udp(
            Ip4(0x0a00_0000 | (i as u32 & 0x00ff_ffff)),
            Ip4::new(1, 1, 1, 1),
            9_999,
            53,
        )
        .build()
    };
    let mut nf = VigNatMb::with_expiry(churn_cfg(), mode);
    let mut now = 0u64;
    for i in 0..CHURN_ACTIVE {
        now += CHURN_DT_NS;
        let mut f = frame_of(i);
        let v = nf.process(Direction::Internal, &mut f, Time(now));
        assert!(matches!(v, Verdict::Forward(_)), "fill must forward");
    }
    let mut sched = ChurnSched::new();
    // Expiries are counted from the start of churn (warmup included):
    // they cluster unevenly across the refresh cycle, so the measured
    // window alone could legitimately catch none.
    let expired_before = nf.expired_total();
    let warm = (CHURN_TEXP_NS / CHURN_DT_NS) as usize + 200_000;
    for _ in 0..warm {
        now += CHURN_DT_NS;
        let mut f = frame_of(sched.next_flow());
        let v = nf.process(Direction::Internal, &mut f, Time(now));
        assert!(matches!(v, Verdict::Forward(_)), "warmup must forward");
    }
    let new_before = sched.next_new;
    let mut samples = Vec::with_capacity(measured);
    for _ in 0..measured {
        now += CHURN_DT_NS;
        let mut f = frame_of(sched.next_flow());
        let t0 = Instant::now();
        let v = nf.process(Direction::Internal, black_box(&mut f), Time(now));
        samples.push(t0.elapsed().as_nanos() as u64);
        assert!(
            matches!(v, Verdict::Forward(_)),
            "steady-state churn must forward (occupancy stays below capacity by design)"
        );
    }
    ChurnOutcome {
        svc: LatencySamples { ns: samples },
        expired: nf.expired_total() - expired_before,
        occupancy_end: nf.flow_manager().len(),
        new_flows: sched.next_new - new_before,
    }
}

fn main() {
    let sweep = flow_sweep();
    let mut rows = Vec::new();
    let mut series: [Vec<f64>; 7] = Default::default();
    let mut outliers_total = 0usize;

    let mut cis: [Vec<(f64, f64)>; 7] = Default::default();
    for &n in &sweep {
        let noop = measure(&mut NoopForwarder::new(), n);
        let unv = measure(&mut UnverifiedNat::new(cfg()), n);
        let ver = measure(&mut VigNatMb::new(cfg()), n);
        let verb = measure_batched(&mut VigNatMb::new(cfg()), n);
        let lin = measure(&mut NetfilterNat::new(cfg()), n);
        // Real-clock mode: the same NAT reading the host clock per
        // process call / per burst — side by side with virtual time.
        let ver_sys = measure(
            &mut SystemClockMb::new(VigNatMb::new(cfg()), "Verified NAT (sysclock)"),
            n,
        );
        let verb_sys = measure_batched(
            &mut SystemClockMb::new(VigNatMb::new(cfg()), "Verified batched (sysclock)"),
            n,
        );
        let all = [&noop, &unv, &ver, &lin, &verb, &ver_sys, &verb_sys];
        outliers_total += all.iter().map(|e| e.outliers_rejected).sum::<usize>();
        for (i, est) in all.into_iter().enumerate() {
            series[i].push(est.mpps);
            cis[i].push((est.ci95_lo_mpps, est.ci95_hi_mpps));
        }
        rows.push(vec![
            format!("{}", n / 1000),
            format!("{:.2}", noop.mpps),
            format!("{:.2}", unv.mpps),
            format!("{:.2}", ver.mpps),
            format!(
                "{:.2} [{:.2},{:.2}]",
                verb.mpps, verb.ci95_lo_mpps, verb.ci95_hi_mpps
            ),
            format!("{:.2}", ver_sys.mpps),
            format!("{:.2}", verb_sys.mpps),
            format!("{:.2}", lin.mpps),
        ]);
    }
    print_table(
        "FIG14: max throughput at <=0.1% loss (Mpps) vs flows",
        &[
            "flows (k)",
            "No-op",
            "Unverified NAT",
            "Verified NAT",
            "Verified (batched)",
            "Verified (sysclock)",
            "Batched (sysclock)",
            "Linux NAT",
        ],
        &rows,
    );
    println!(
        "paper reference: No-op > Unverified 2.0 > Verified 1.8 (-10%) >> Linux 0.6 Mpps, flat"
    );
    println!(
        "(MAD outlier rejection dropped {outliers_total} service-time samples across the run)"
    );

    // Machine-readable trajectory: Mpps per flow count for all series,
    // plus p50/p99 steady-state service times for the verified NAT in
    // both modes at the largest flow count.
    let (p50_seq, p99_seq, p50_bat, p99_bat) = {
        let flows = *sweep.last().expect("non-empty sweep");
        let texp = Time::from_secs(60).nanos();
        let pkts = throughput_packets() / 4;
        let mut tb = Testbed::new(512);
        let mut nf = VigNatMb::new(cfg());
        let s = steady_state_service_times(&mut nf, &mut tb, flows, pkts, texp);
        let mut tb = Testbed::new(512);
        let mut nf = VigNatMb::new(cfg());
        let b = steady_state_service_times_batched(&mut nf, &mut tb, flows, pkts, texp);
        (
            s.percentile(0.5),
            s.percentile(0.99),
            b.percentile(0.5),
            b.percentile(0.99),
        )
    };
    // Shard-count sweep (sharded flow table): per-shard batched service
    // times measured on real code at 50% occupancy, aggregated under
    // the multi-queue RSS model (N independent RX queues, one core
    // each); plus the wall-clock rate of the std::thread driver on
    // *this* host for honesty — it only scales when the host has the
    // cores the model assumes.
    let shard_counts = [1usize, 2, 4];
    let occupancy = 0.5;
    let points = sharded_throughput_sweep(
        &cfg(),
        &shard_counts,
        occupancy,
        throughput_packets() / 4,
        Time::from_secs(60).nanos(),
        512,
    );
    // The scaling curve: the *persistent pinned runtime* measured
    // end-to-end (dispatcher → SPSC rings → pinned workers → merge)
    // with the same RFC 2544 search + bootstrap CI as every other rate
    // here, at 1/2/4 workers. All wall-clock: these numbers only scale
    // when the host has the cores, and the per-point pin attribution
    // (pinned_workers, host_cores) says whether it did.
    let worker_counts = [1usize, 2, 4];
    let curve = parallel_scaling_curve(
        &cfg(),
        &worker_counts,
        occupancy,
        throughput_packets() / 8,
        512,
    );
    let wall_point = curve
        .points
        .iter()
        .find(|p| p.workers == 2)
        .expect("curve includes 2 workers");
    let wall_mpps = wall_point.wallclock_mpps;
    let wall_workers = wall_point.workers;
    let wall_pinned = wall_point.pinned_workers;
    let pinning_requested = curve.pinning_requested;
    let cores = curve.host_cores;
    let shard_rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.shards),
                format!("{:.2}", p.mpps),
                format!("{:.0}k", p.steps_per_sec / 1e3),
                format!("{:.1}", p.mean_step_ns),
                format!("{:.2}x", p.mpps / points[0].mpps),
            ]
        })
        .collect();
    print_table(
        "FIG14b: sharded NAT, multi-queue aggregate at 50% occupancy",
        &["shards", "Mpps", "steps/s", "mean step (ns)", "vs 1 shard"],
        &shard_rows,
    );
    println!(
        "  (persistent pinned runtime wall-clock at 2 workers on this {cores}-core host: {wall_mpps:.2} Mpps, {}/{} workers pinned)",
        wall_point.pinned_workers, wall_point.workers
    );

    let curve_rows: Vec<Vec<String>> = curve
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.workers),
                format!(
                    "{:.2} [{:.2},{:.2}]",
                    p.mpps, p.ci95_lo_mpps, p.ci95_hi_mpps
                ),
                format!("{:.2}", p.wallclock_mpps),
                format!("{:.1}", p.mean_step_ns),
                format!("{}/{}", p.pinned_workers, p.workers),
            ]
        })
        .collect();
    print_table(
        &format!("FIG14d: pinned-runtime scaling curve, wall-clock RFC 2544 ({cores}-core host)"),
        &[
            "workers",
            "Mpps [ci95]",
            "wallclock Mpps",
            "mean step (ns)",
            "pinned",
        ],
        &curve_rows,
    );

    // Multi-queue event-driven sweep (queues × shards): the epoll-style
    // driver feeding the N-shard NAT from Q RSS-classified queues, on
    // one core — what the event loop costs relative to the lockstep
    // single-queue drain, and how it scales in queues and shards. The
    // measurement runs through the backend-generic driver over
    // `SimBackend` (the PacketIo seam `backend::os::OsBackend` plugs
    // into), so this series prices exactly the event loop the live NAT
    // ships with.
    let mq_combos: [(usize, usize); 4] = [(1, 1), (2, 2), (4, 2), (4, 4)];
    let mq_flows = (cfg().capacity as f64 * occupancy) as usize;
    let mut mq_points = Vec::new();
    for &(queues, shards) in &mq_combos {
        let svc = event_driven_service_times(
            &cfg(),
            queues,
            shards,
            mq_flows,
            throughput_packets() / 4,
            Time::from_secs(60).nanos(),
            512,
        );
        let (mpps, mean, rejected) = search_rate_filtered(&svc, 512);
        mq_points.push((queues, shards, mpps, mean, rejected));
    }
    let mq_rows: Vec<Vec<String>> = mq_points
        .iter()
        .map(|&(q, s, mpps, mean, rej)| {
            vec![
                format!("{q}"),
                format!("{s}"),
                format!("{mpps:.2}"),
                format!("{mean:.1}"),
                format!("{rej}"),
            ]
        })
        .collect();
    print_table(
        "FIG14c: event-driven multi-queue driver at 50% occupancy (one core)",
        &["queues", "shards", "Mpps", "mean step (ns)", "outliers"],
        &mq_rows,
    );

    // Fault-layer identity overhead: the chaos seam (`FaultIo` with
    // the empty schedule) wrapped around the sim backend vs the bare
    // backend, driven by the identical event-driven batched loop.
    // `vig_bench --check` holds the committed overhead under 2% —
    // the disarmed seam must be free enough to stay compiled into
    // every chaos-capable build. (`cargo run -p vig-bench --example
    // fault_overhead` re-measures just this section.)
    let fault = vig_bench::measure_fault_overhead(&cfg(), 15, throughput_packets());
    println!(
        "\nFIG14f: fault-layer identity overhead (empty-schedule FaultIo on the batched \
         event-driven step): bare {:.2} Mpps, wrapped {:.2} Mpps, overhead {:+.2}% (gate: < 2%)",
        fault.bare_mpps, fault.faultio_empty_mpps, fault.overhead_pct
    );

    // Cross-the-wire RFC 2544: the same sharded NAT behind the same
    // event loop, measured three ways — simulated backend, per-frame
    // AF_PACKET transport, zero-copy mmap-ring transport — with the
    // OS points crossing real veth wires. Needs CAP_NET_RAW +
    // CAP_NET_ADMIN; degrades to {"available": false} without them
    // (which `vig_bench --check` refuses in a committed file).
    let os_wire_json = vig_bench::os_wire::section_json(4096, throughput_packets() / 4);
    let fault_overhead_json = fault.section_json();

    // Million-flow churn: sustained rate under continuous arrival and
    // expiry at 2^20 table capacity, timer-wheel vs LRU-scan expiry,
    // plus the Fig. 13-style latency CCDF for the wheel. Both engines
    // see the identical deterministic schedule, so their expiry counts
    // must agree exactly — the wheel ≡ scan theorem, live in the bench.
    let churn_pkts = throughput_packets();
    let churn_wheel = churn_service_times(ExpiryMode::Wheel, churn_pkts);
    let churn_scan = churn_service_times(ExpiryMode::Scan, churn_pkts);
    assert_eq!(
        churn_wheel.expired, churn_scan.expired,
        "wheel and scan must expire identical counts under the same churn schedule"
    );
    assert_eq!(
        churn_wheel.occupancy_end, churn_scan.occupancy_end,
        "wheel and scan must end churn at identical occupancy"
    );
    assert!(
        churn_wheel.occupancy_end >= CHURN_ACTIVE,
        "the live window must be resident at the end of the run"
    );
    assert!(churn_wheel.expired > 0, "churn must actually expire flows");
    let churn_wheel_est = search_rate_with_ci(&churn_wheel.svc, 512);
    let churn_scan_est = search_rate_with_ci(&churn_scan.svc, 512);
    let churn_rows: Vec<Vec<String>> = [("wheel", &churn_wheel_est), ("scan", &churn_scan_est)]
        .iter()
        .map(|(engine, est)| {
            vec![
                engine.to_string(),
                format!(
                    "{:.2} [{:.2},{:.2}]",
                    est.mpps, est.ci95_lo_mpps, est.ci95_hi_mpps
                ),
                format!("{:.1}", est.mean_ns),
                format!("{}", est.outliers_rejected),
            ]
        })
        .collect();
    print_table(
        &format!(
            "FIG14e: sustained churn at {CHURN_CAP} flow slots ({} resident, {} expired \
             during churn)",
            churn_wheel.occupancy_end, churn_wheel.expired
        ),
        &["expiry", "Mpps [ci95]", "mean svc (ns)", "outliers"],
        &churn_rows,
    );

    // Fig. 13-style CCDF of per-packet latency under churn (wheel
    // engine): x = latency, y = P(latency > x), from the measured
    // service-time distribution. Quantile ties collapse to the first
    // point so latencies stay strictly increasing.
    let ccdf_qs = [0.50, 0.75, 0.90, 0.95, 0.99, 0.995, 0.999, 0.9995];
    let mut ccdf_points: Vec<(u64, f64)> = Vec::new();
    for &q in &ccdf_qs {
        let lat = churn_wheel.svc.percentile(q);
        if ccdf_points.last().is_none_or(|&(prev, _)| lat > prev) {
            ccdf_points.push((lat, 1.0 - q));
        }
    }
    println!("\nFIG13-style latency CCDF under churn (wheel expiry):");
    for (lat, ccdf) in &ccdf_points {
        println!("  P(latency > {lat:>6} ns) = {ccdf:.4}");
    }

    let fmt_series = |name: &str, v: &[f64], ci: &[(f64, f64)]| {
        format!(
            r#"{{"name":"{name}","mpps_per_flow_count":[{}],"mpps_ci95_per_flow_count":[{}]}}"#,
            v.iter()
                .map(|x| format!("{x:.3}"))
                .collect::<Vec<_>>()
                .join(","),
            ci.iter()
                .map(|(lo, hi)| format!("[{lo:.3},{hi:.3}]"))
                .collect::<Vec<_>>()
                .join(",")
        )
    };
    let shard_points_json = points
        .iter()
        .map(|p| {
            format!(
                r#"{{"shards":{},"mpps":{:.3},"steps_per_sec":{:.1},"mean_step_ns":{:.1},"per_shard_mpps":[{}]}}"#,
                p.shards,
                p.mpps,
                p.steps_per_sec,
                p.mean_step_ns,
                p.per_shard_mpps
                    .iter()
                    .map(|x| format!("{x:.3}"))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    let mq_points_json = mq_points
        .iter()
        .map(|&(q, s, mpps, mean, rej)| {
            format!(
                r#"{{"queues":{q},"shards":{s},"mpps":{mpps:.3},"mean_step_ns":{mean:.1},"outliers_rejected":{rej}}}"#
            )
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    let churn_sustained_json = [("wheel", &churn_wheel_est), ("scan", &churn_scan_est)]
        .iter()
        .map(|(engine, est)| {
            format!(
                r#"{{"expiry":"{engine}","mpps":{:.3},"ci95_mpps":[{:.3},{:.3}],"mean_ns":{:.1},"outliers_rejected":{}}}"#,
                est.mpps, est.ci95_lo_mpps, est.ci95_hi_mpps, est.mean_ns, est.outliers_rejected
            )
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    let churn_ccdf_json = ccdf_points
        .iter()
        .map(|(lat, ccdf)| format!(r#"{{"latency_ns":{lat},"ccdf":{ccdf:.6}}}"#))
        .collect::<Vec<_>>()
        .join(",\n        ");
    let churn_json = format!(
        "\"churn\": {{\n    \"table_capacity\": {CHURN_CAP},\n    \"expiry_ns\": {CHURN_TEXP_NS},\n    \"active_window\": {CHURN_ACTIVE},\n    \"new_flow_every\": {CHURN_NEW_EVERY},\n    \"virtual_ns_per_packet\": {CHURN_DT_NS},\n    \"occupancy_end\": {},\n    \"new_flows_during_measurement\": {},\n    \"expired_during_churn\": {},\n    \"sustained\": [\n      {churn_sustained_json}\n    ],\n    \"latency_ccdf\": {{\"expiry\": \"wheel\", \"points\": [\n        {churn_ccdf_json}\n    ]}}\n  }}",
        churn_wheel.occupancy_end, churn_wheel.new_flows, churn_wheel.expired
    );
    let curve_points_json = curve
        .points
        .iter()
        .map(|p| {
            format!(
                r#"{{"workers":{},"mpps":{:.3},"ci95_mpps":[{:.3},{:.3}],"wallclock_mpps":{:.3},"mean_step_ns":{:.1},"outliers_rejected":{},"pinned_workers":{}}}"#,
                p.workers,
                p.mpps,
                p.ci95_lo_mpps,
                p.ci95_hi_mpps,
                p.wallclock_mpps,
                p.mean_step_ns,
                p.outliers_rejected,
                p.pinned_workers
            )
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    let json = format!(
        "{{\n  \"bench\": \"fig14_throughput\",\n  \"statistics\": {{\"outlier_rejection\": \"mad_z3.5\", \"rejected_total\": {outliers_total}, \"rate_ci\": \"bootstrap pct, {} trials x {} resamples\"}},\n  \"flow_counts\": [{}],\n  \"series\": [\n    {},\n    {},\n    {},\n    {},\n    {},\n    {},\n    {}\n  ],\n  \"verified_seq\": {{\"p50_ns\": {p50_seq}, \"p99_ns\": {p99_seq}}},\n  \"verified_batched\": {{\"p50_ns\": {p50_bat}, \"p99_ns\": {p99_bat}}},\n  \"sharded_sweep\": {{\n    \"occupancy\": {occupancy},\n    \"cores\": {cores},\n    \"workers\": {wall_workers},\n    \"pinning_requested\": {pinning_requested},\n    \"pinned_workers\": {wall_pinned},\n    \"parallel_wallclock_mpps\": {wall_mpps:.3},\n    \"points\": [\n      {shard_points_json}\n    ]\n  }},\n  \"scaling_curve\": {{\n    \"occupancy\": {occupancy},\n    \"host_cores\": {cores},\n    \"pinning_requested\": {pinning_requested},\n    \"runtime\": \"persistent pinned workers over spsc rings (netsim::runtime)\",\n    \"points\": [\n      {curve_points_json}\n    ]\n  }},\n  \"multiqueue_sweep\": {{\n    \"occupancy\": {occupancy},\n    \"driver\": \"eventloop (poll + wrr, one core, backend: sim)\",\n    \"points\": [\n      {mq_points_json}\n    ]\n  }},\n  {fault_overhead_json},\n  \"os_wire_rfc2544\": {os_wire_json},\n  {churn_json}\n}}\n",
        netsim::harness::RATE_CI_TRIALS,
        netsim::harness::RATE_CI_RESAMPLES,
        sweep.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(","),
        fmt_series("noop", &series[0], &cis[0]),
        fmt_series("unverified", &series[1], &cis[1]),
        fmt_series("verified", &series[2], &cis[2]),
        fmt_series("verified_batched", &series[4], &cis[4]),
        fmt_series("verified_sysclock", &series[5], &cis[5]),
        fmt_series("verified_batched_sysclock", &series[6], &cis[6]),
        fmt_series("linux", &series[3], &cis[3]),
    );
    write_result_json("BENCH_throughput.json", &json);

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (m_noop, m_unv, m_ver, m_lin) = (
        mean(&series[0]),
        mean(&series[1]),
        mean(&series[2]),
        mean(&series[3]),
    );
    println!("\nshape checks:");
    println!(
        "  No-op fastest: {} ({m_noop:.2} Mpps)",
        if m_noop >= m_unv && m_noop >= m_ver {
            "ok"
        } else {
            "DEVIATION"
        }
    );
    let gap = (m_unv - m_ver) / m_unv * 100.0;
    println!(
        "  Verified within ~10-20% of Unverified: {} (gap {gap:.1}%, paper 10%)",
        if gap > -5.0 && gap < 25.0 {
            "ok"
        } else {
            "DEVIATION"
        }
    );
    let factor = m_unv / m_lin;
    println!(
        "  DPDK NATs >> Linux NAT: {} (Unverified/Linux = {factor:.1}x, paper 3.3x)",
        if factor > 1.8 { "ok" } else { "DEVIATION" }
    );
    let flat = series[2].iter().all(|&v| (v - m_ver).abs() / m_ver < 0.5);
    println!(
        "  Verified flat in flow count: {}",
        if flat { "ok" } else { "DEVIATION" }
    );
    let m_verb = mean(&series[4]);
    println!(
        "  Batched fast path vs single-packet Verified: {:.2}x ({m_verb:.2} vs {m_ver:.2} Mpps)",
        m_verb / m_ver
    );
    let (m_ver_sys, m_verb_sys) = (mean(&series[5]), mean(&series[6]));
    println!(
        "  Real-clock vs virtual-time (the per-packet clock read): single {:.2}x ({m_ver_sys:.2} vs {m_ver:.2} Mpps), batched {:.2}x ({m_verb_sys:.2} vs {m_verb:.2} Mpps)",
        m_ver_sys / m_ver,
        m_verb_sys / m_verb
    );
    let shard_speedup = points[1].steps_per_sec / points[0].steps_per_sec;
    println!(
        "  2-shard batched step rate >= 1.5x 1-shard at 50% occupancy: {} ({shard_speedup:.2}x, {:.0}k vs {:.0}k steps/s)",
        if shard_speedup >= 1.5 { "ok" } else { "DEVIATION" },
        points[1].steps_per_sec / 1e3,
        points[0].steps_per_sec / 1e3,
    );
    let curve_1w = curve.points.first().expect("curve non-empty");
    let wall_speedup = wall_mpps / curve_1w.wallclock_mpps;
    println!(
        "  Pinned runtime 2-worker vs 1-worker wall-clock: {} ({wall_speedup:.2}x on {cores} host core(s), {wall_pinned}/{wall_workers} pinned)",
        if wall_speedup >= 1.5 {
            "ok"
        } else if cores < 2 {
            "flat (host lacks cores — scale-out modeled by the shard sweep)"
        } else {
            "DEVIATION"
        }
    );
    let mq_11 = mq_points[0].2;
    let mq_44 = mq_points[3].2;
    println!(
        "  Event-driven driver overhead (1q/1s vs lockstep batched): {:.2}x ({mq_11:.2} vs {m_verb:.2} Mpps)",
        mq_11 / m_verb
    );
    println!(
        "  Event-driven 4q/4s vs 1q/1s on one core: {:.2}x ({mq_44:.2} vs {mq_11:.2} Mpps)",
        mq_44 / mq_11
    );
    println!(
        "  Sustained churn at {CHURN_CAP} slots: wheel {:.2} vs scan {:.2} Mpps ({:.2}x), \
         expiry parity exact ({} flows expired)",
        churn_wheel_est.mpps,
        churn_scan_est.mpps,
        churn_wheel_est.mpps / churn_scan_est.mpps,
        churn_wheel.expired
    );
    println!(
        "  (note: the simulator's virtual clock and free NIC descriptors remove exactly the\n   \
         per-packet fixed costs a burst amortizes; with the per-iteration clock read modeled,\n   \
         micro_flowtable measures the batched NAT step at >2x the single-packet step)"
    );
}
