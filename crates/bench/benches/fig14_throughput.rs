//! FIG14 — reproduction of the paper's Figure 14: "Maximum throughput
//! with a maximum loss rate of 0.1%" as a function of the number of
//! flows, for No-op, Unverified NAT, Verified NAT and the Linux
//! (NetFilter) NAT.
//!
//! Methodology (RFC 2544, as in the paper): for each flow count, the
//! NF's steady-state per-packet service times are measured on the
//! all-hits workload ("flows that never expire, each producing 64-byte
//! packets"), then the highest offered rate whose bounded-ring queue
//! simulation loses ≤ 0.1% of packets is found by binary search.
//!
//! Paper result: Verified 1.8 Mpps ≈ 10% below Unverified 2.0 Mpps,
//! both far above Linux 0.6 Mpps, No-op highest, all flat in the flow
//! count. The shape checks below encode exactly those claims.
//!
//! Run: `cargo bench -p vig-bench --bench fig14_throughput`

use libvig::time::Time;
use netsim::harness::{throughput_search, Testbed};
use netsim::middlebox::{Middlebox, NoopForwarder, VigNatMb};
use vig_baselines::{NetfilterNat, UnverifiedNat};
use vig_bench::{flow_sweep, print_table, throughput_packets};
use vig_packet::Ip4;
use vig_spec::NatConfig;

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 65_535,
        expiry_ns: Time::from_secs(60).nanos(), // flows never expire mid-run
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1,
    }
}

fn measure(nf: &mut dyn Middlebox, flows: usize) -> (f64, f64) {
    let mut tb = Testbed::new(512);
    throughput_search(
        nf,
        &mut tb,
        flows,
        throughput_packets(),
        Time::from_secs(60).nanos(),
        512,
    )
}

fn main() {
    let sweep = flow_sweep();
    let mut rows = Vec::new();
    let mut series: [Vec<f64>; 4] = Default::default();

    for &n in &sweep {
        let (noop, _) = measure(&mut NoopForwarder::new(), n);
        let (unv, _) = measure(&mut UnverifiedNat::new(cfg()), n);
        let (ver, _) = measure(&mut VigNatMb::new(cfg()), n);
        let (lin, _) = measure(&mut NetfilterNat::new(cfg()), n);
        series[0].push(noop);
        series[1].push(unv);
        series[2].push(ver);
        series[3].push(lin);
        rows.push(vec![
            format!("{}", n / 1000),
            format!("{noop:.2}"),
            format!("{unv:.2}"),
            format!("{ver:.2}"),
            format!("{lin:.2}"),
        ]);
    }
    print_table(
        "FIG14: max throughput at <=0.1% loss (Mpps) vs flows",
        &["flows (k)", "No-op", "Unverified NAT", "Verified NAT", "Linux NAT"],
        &rows,
    );
    println!("paper reference: No-op > Unverified 2.0 > Verified 1.8 (-10%) >> Linux 0.6 Mpps, flat");

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (m_noop, m_unv, m_ver, m_lin) =
        (mean(&series[0]), mean(&series[1]), mean(&series[2]), mean(&series[3]));
    println!("\nshape checks:");
    println!(
        "  No-op fastest: {} ({m_noop:.2} Mpps)",
        if m_noop >= m_unv && m_noop >= m_ver { "ok" } else { "DEVIATION" }
    );
    let gap = (m_unv - m_ver) / m_unv * 100.0;
    println!(
        "  Verified within ~10-20% of Unverified: {} (gap {gap:.1}%, paper 10%)",
        if gap > -5.0 && gap < 25.0 { "ok" } else { "DEVIATION" }
    );
    let factor = m_unv / m_lin;
    println!(
        "  DPDK NATs >> Linux NAT: {} (Unverified/Linux = {factor:.1}x, paper 3.3x)",
        if factor > 1.8 { "ok" } else { "DEVIATION" }
    );
    let flat = series[2].iter().all(|&v| (v - m_ver).abs() / m_ver < 0.5);
    println!("  Verified flat in flow count: {}", if flat { "ok" } else { "DEVIATION" });
}
