//! FIG12 — reproduction of the paper's Figure 12: "Average latency for
//! probe flows" as a function of the number of background flows, for
//! No-op forwarding, the Unverified NAT and the Verified NAT.
//!
//! Paper setup: Texp = 2 s; background flows keep the table at a fixed
//! occupancy; probe flows expire between their packets, so each probe
//! packet is the worst case (miss → expiry work → allocate → insert).
//! Paper result: ~4.75 / 5.03 / 5.13 µs flat in occupancy, with the
//! Verified NAT curving up at the last (≈ full-table) point.
//!
//! Our absolute numbers are middlebox-residence times on this host; the
//! paper's include the testbed's wire/NIC path, reported here via the
//! documented `WIRE_BASE_NS` offset. The claims under test are the
//! *shape*: ordering No-op < Unverified < Verified, flatness in
//! occupancy, and the verified-only uptick at the last point.
//!
//! Run: `cargo bench -p vig-bench --bench fig12_latency`
//! (set `VIGNAT_BENCH_FULL=1` for the paper-scale sweep).

use libvig::time::Time;
use netsim::harness::{probe_latency, Testbed};
use netsim::middlebox::{Middlebox, NoopForwarder, SystemClockMb, VigNatMb};
use netsim::tester::WorkloadMix;
use vig_baselines::UnverifiedNat;
use vig_bench::{flow_sweep, print_table, probe_count, us, WIRE_BASE_NS};
use vig_packet::Ip4;
use vig_spec::NatConfig;

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 65_535,
        expiry_ns: Time::from_secs(2).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1,
        ..NatConfig::paper_default()
    }
}

fn mix(background: usize) -> WorkloadMix {
    WorkloadMix {
        background_flows: background,
        probe_packets: probe_count(),
        probe_batch: 64,
        texp_ns: Time::from_secs(2).nanos(),
        probe_pool: 1 << 23, // fresh tuple per probe: every probe misses
    }
}

fn measure(nf: &mut dyn Middlebox, background: usize) -> f64 {
    let mut tb = Testbed::new(512);
    let s = probe_latency(nf, &mut tb, &mix(background));
    s.mean()
}

fn main() {
    let sweep = flow_sweep();
    let mut rows = Vec::new();
    let mut noop_series = Vec::new();
    let mut unv_series = Vec::new();
    let mut ver_series = Vec::new();

    let mut sys_series = Vec::new();

    for &n in &sweep {
        let noop = measure(&mut NoopForwarder::new(), n);
        let unv = measure(&mut UnverifiedNat::new(cfg()), n);
        let ver = measure(&mut VigNatMb::new(cfg()), n);
        // Real-clock mode side by side: the same NAT reading the host's
        // monotonic clock per packet (the fixed cost virtual time
        // hides). Real time barely advances during a run, so probe
        // flows don't expire between their packets — this column
        // prices the clock read + miss/allocate path, while the
        // virtual-time column also carries the expiry work.
        let ver_sys = measure(
            &mut SystemClockMb::new(VigNatMb::new(cfg()), "Verified NAT (sysclock)"),
            n,
        );
        noop_series.push(noop);
        unv_series.push(unv);
        ver_series.push(ver);
        sys_series.push(ver_sys);
        rows.push(vec![
            format!("{}", n / 1000),
            format!("{:.0}", noop),
            format!("{:.0}", unv),
            format!("{:.0}", ver),
            format!("{:.0}", ver_sys),
            us(noop + WIRE_BASE_NS as f64),
            us(unv + WIRE_BASE_NS as f64),
            us(ver + WIRE_BASE_NS as f64),
        ]);
    }

    print_table(
        "FIG12: average probe-flow latency vs background flows (Texp = 2 s)",
        &[
            "bg flows (k)",
            "No-op ns",
            "Unverified ns",
            "Verified ns",
            "Verified sys ns",
            "No-op us*",
            "Unverified us*",
            "Verified us*",
        ],
        &rows,
    );
    println!("(*) with the documented +{WIRE_BASE_NS} ns wire/NIC offset (see EXPERIMENTS.md)");
    println!(
        "('Verified sys' reads the host clock per packet — real-clock middlebox mode; its probe\n \
         flows never expire in real microseconds, so it prices clock read + miss/allocate)"
    );
    println!(
        "paper reference: No-op 4.75 us, Unverified 5.03 us, Verified 5.13 us, flat; \
         Verified +~0.2 us at the last point"
    );

    // Shape assertions (the reproduction criteria).
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let m_noop = mean(&noop_series);
    let m_unv = mean(&unv_series);
    let m_ver = mean(&ver_series);
    println!("\nshape checks:");
    println!(
        "  ordering No-op < Unverified <= Verified: {} ({m_noop:.0} / {m_unv:.0} / {m_ver:.0} ns)",
        if m_noop < m_unv && m_unv <= m_ver * 1.15 {
            "ok"
        } else {
            "DEVIATION"
        },
    );
    // Flatness at the paper's scale: the paper reads the curve with the
    // wire/NIC base included (its y-axis starts at the no-op floor), so
    // "flat" means pre-last-point variation small relative to the total
    // latency, and the last point may tick up (theirs: 5.13 -> 5.3 us).
    let pre = &ver_series[..ver_series.len() - 1];
    let m_pre = mean(pre);
    let ver_flat = pre
        .iter()
        .all(|&v| ((v - m_pre).abs() + 0.0) / (m_pre + WIRE_BASE_NS as f64) < 0.1);
    println!(
        "  Verified flat before the last point (±10% of total): {}",
        if ver_flat { "ok" } else { "DEVIATION" }
    );
    let uptick = ver_series.last().unwrap() / m_pre;
    println!(
        "  Verified last-point uptick present but bounded: {} ({uptick:.1}x NAT-processing, paper ~1.5x)",
        if uptick > 1.0 && uptick < 20.0 { "ok" } else { "DEVIATION" }
    );
    let m_sys = mean(&sys_series);
    println!(
        "  Real-clock vs virtual-time probe path: {:.2}x ({m_sys:.0} vs {m_ver:.0} ns; \
         sysclock adds the clock read but skips the expiry work — see the table note)",
        m_sys / m_ver
    );
}
