//! TEXT-LAT60 — reproduction of the paper's §6 in-text second latency
//! experiment: the same probe/background mix as Fig. 12, but with the
//! NATs configured to expire flows after **60 seconds** of inactivity,
//! "hence neither the probe flows nor the background flows ever
//! expire".
//!
//! With nothing expiring, each of the 1,000 probe flows stays resident,
//! so after the first round every probe packet takes the *hit* path
//! (lookup + rejuvenate) instead of the miss path (allocate + insert) —
//! which is why the paper measures the Verified NAT slightly *faster*
//! here (5.07 µs) than in the 2 s experiment (5.13 µs), while the
//! Unverified NAT stays put (5.03 µs).
//!
//! Run: `cargo bench -p vig-bench --bench text_expiry60`

use libvig::time::Time;
use netsim::harness::{probe_latency, Testbed};
use netsim::middlebox::{Middlebox, VigNatMb};
use netsim::tester::WorkloadMix;
use vig_baselines::UnverifiedNat;
use vig_bench::{print_table, probe_count, us, WIRE_BASE_NS};
use vig_packet::Ip4;
use vig_spec::NatConfig;

const BACKGROUND: usize = 30_000;
const PROBE_POOL: usize = 1_000; // the paper's 1,000 probe flows

fn cfg(texp_s: u64) -> NatConfig {
    NatConfig {
        capacity: 65_535,
        expiry_ns: Time::from_secs(texp_s).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1,
        ..NatConfig::paper_default()
    }
}

fn probe_mean(nf: &mut dyn Middlebox, texp_s: u64, pool: usize) -> f64 {
    let mut tb = Testbed::new(512);
    // Measure 2x the probe count and keep the second half: with the
    // 60 s expiry the first `pool` probes are misses (cold start), the
    // steady state is all hits.
    let n = probe_count().max(PROBE_POOL / 4);
    let mix = WorkloadMix {
        background_flows: BACKGROUND,
        probe_packets: 2 * n,
        // With the 60 s expiry the whole probe pool must recur within
        // one refresh window so the pooled flows stay resident (the
        // paper's probe flows fire every ~2 s, far inside 60 s).
        probe_batch: if pool <= PROBE_POOL { pool } else { 64 },
        texp_ns: Time::from_secs(texp_s).nanos(),
        probe_pool: pool,
    };
    let s = probe_latency(nf, &mut tb, &mix);
    let tail = &s.ns[s.ns.len() / 2..];
    tail.iter().sum::<u64>() as f64 / tail.len() as f64
}

fn main() {
    // 2 s expiry: every probe misses (fresh tuples).
    let ver_2s = probe_mean(&mut VigNatMb::new(cfg(2)), 2, 1 << 23);
    let unv_2s = probe_mean(&mut UnverifiedNat::new(cfg(2)), 2, 1 << 23);
    // 60 s expiry: probes cycle through the pool and hit.
    let ver_60s = probe_mean(&mut VigNatMb::new(cfg(60)), 60, PROBE_POOL);
    let unv_60s = probe_mean(&mut UnverifiedNat::new(cfg(60)), 60, PROBE_POOL);

    let rows = vec![
        vec![
            "Texp = 2 s (probes miss)".to_string(),
            format!("{unv_2s:.0}"),
            format!("{ver_2s:.0}"),
            us(unv_2s + WIRE_BASE_NS as f64),
            us(ver_2s + WIRE_BASE_NS as f64),
        ],
        vec![
            "Texp = 60 s (probes hit)".to_string(),
            format!("{unv_60s:.0}"),
            format!("{ver_60s:.0}"),
            us(unv_60s + WIRE_BASE_NS as f64),
            us(ver_60s + WIRE_BASE_NS as f64),
        ],
    ];
    print_table(
        "TEXT-LAT60: probe latency with 2 s vs 60 s expiry (30k background flows)",
        &[
            "experiment",
            "Unverified ns",
            "Verified ns",
            "Unverified us*",
            "Verified us*",
        ],
        &rows,
    );
    println!("(*) +{WIRE_BASE_NS} ns wire/NIC offset");
    println!(
        "paper reference: Verified 5.13 -> 5.07 us (hits slightly cheaper than misses), \
         Unverified ~5.03 us in both"
    );

    println!("\nshape checks:");
    println!(
        "  Verified 60 s <= Verified 2 s (hit path cheaper than miss path): {} ({:.0} vs {:.0} ns)",
        if ver_60s <= ver_2s * 1.05 {
            "ok"
        } else {
            "DEVIATION"
        },
        ver_60s,
        ver_2s
    );
    let drift = (unv_60s - unv_2s).abs() / unv_2s;
    println!(
        "  Unverified roughly unchanged: {} (drift {:.0}%)",
        if drift < 0.35 { "ok" } else { "DEVIATION" },
        drift * 100.0
    );
}
