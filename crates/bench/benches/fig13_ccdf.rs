//! FIG13 — reproduction of the paper's Figure 13: the complementary
//! cumulative distribution (CCDF) of probe-flow latency at 60,000
//! background flows (≈ 92% table occupancy).
//!
//! Paper result: the Verified NAT has a slightly heavier tail than the
//! Unverified NAT; all three curves merge in the far tail, where the
//! outliers come from the shared environment (DPDK there, the host
//! OS/allocator here), not from NAT-specific processing.
//!
//! Run: `cargo bench -p vig-bench --bench fig13_ccdf`

use libvig::time::Time;
use netsim::harness::{probe_latency, LatencySamples, Testbed};
use netsim::middlebox::{Middlebox, NoopForwarder, VigNatMb};
use netsim::tester::WorkloadMix;
use vig_baselines::UnverifiedNat;
use vig_bench::{full_mode, print_table};
use vig_packet::Ip4;
use vig_spec::NatConfig;

const BACKGROUND: usize = 60_000;

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 65_535,
        expiry_ns: Time::from_secs(2).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1,
        ..NatConfig::paper_default()
    }
}

fn samples(nf: &mut dyn Middlebox) -> LatencySamples {
    let mut tb = Testbed::new(512);
    let mix = WorkloadMix {
        background_flows: BACKGROUND,
        probe_packets: if full_mode() { 2_000 } else { 300 },
        probe_batch: 64,
        texp_ns: Time::from_secs(2).nanos(),
        probe_pool: 1 << 23,
    };
    probe_latency(nf, &mut tb, &mix)
}

fn main() {
    let noop = samples(&mut NoopForwarder::new());
    let unv = samples(&mut UnverifiedNat::new(cfg()));
    let ver = samples(&mut VigNatMb::new(cfg()));

    // Report the latency at fixed CCDF levels (the y-axis of Fig. 13).
    let levels = [1.0, 0.8, 0.6, 0.4, 0.2, 0.1, 0.05, 0.01];
    let rows: Vec<Vec<String>> = levels
        .iter()
        .map(|&lvl| {
            let p = 1.0 - lvl; // CCDF level -> percentile
            vec![
                format!("{lvl:.2}"),
                format!("{}", noop.percentile(p)),
                format!("{}", unv.percentile(p)),
                format!("{}", ver.percentile(p)),
            ]
        })
        .collect();
    print_table(
        "FIG13: probe-flow latency CCDF at 60k background flows (ns at CCDF level)",
        &["P[X > x]", "No-op", "Unverified", "Verified"],
        &rows,
    );
    println!(
        "paper reference: Verified tail slightly heavier than Unverified; \
         curves coincide in the far tail"
    );

    // Shape checks.
    println!("\nshape checks:");
    let med_ok = noop.percentile(0.5) <= unv.percentile(0.5)
        && unv.percentile(0.5) as f64 <= ver.percentile(0.5) as f64 * 1.15;
    println!(
        "  median ordering No-op <= Unverified <= Verified: {}",
        if med_ok { "ok" } else { "DEVIATION" }
    );
    let tail_ver = ver.percentile(0.95);
    let tail_unv = unv.percentile(0.95);
    println!(
        "  Verified p95 >= Unverified p95 (heavier tail): {} ({tail_ver} vs {tail_unv} ns)",
        if tail_ver * 10 >= tail_unv * 9 {
            "ok"
        } else {
            "DEVIATION"
        }
    );
    let far_ver = ver.percentile(0.999) as f64;
    let far_unv = unv.percentile(0.999) as f64;
    let merge = if far_unv > 0.0 {
        far_ver / far_unv
    } else {
        1.0
    };
    println!("  far-tail ratio Verified/Unverified at p99.9: {merge:.2} (paper: ~1, shared-environment outliers)");
}
