//! `vig_bench --check`: schema validation for the committed
//! perf-trajectory files (`BENCH_flowtable.json`,
//! `BENCH_throughput.json`, `BENCH_matrix.json`).
//!
//! The trajectory files gate performance regressions across PRs, so a
//! bench refactor that silently emits a malformed file — a missing
//! gate metric, an inverted confidence interval, a series length that
//! no longer matches the flow-count axis — would disarm the gate
//! without anyone noticing. This module re-parses the committed files
//! with a tiny self-contained JSON reader (the environment is
//! offline: no serde) and checks the structural invariants every
//! consumer assumes. CI runs it as a cheap PR step.
//!
//! With `--baseline <file>`, a fresh run is additionally compared
//! against a committed baseline ([`compare_against_baseline`]) under a
//! [`BaselinePolicy`]: any named rate that dropped more than
//! `fail_under_pct` (default 10%) below the baseline median fails, a
//! smaller slowdown with non-overlapping bootstrap intervals (or past
//! the optional `warn_under_pct` median threshold) warns, series new
//! in this run are reported but never judged, and series whose
//! retained sample count is below `min_samples` are suppressed — too
//! short to judge honestly.

use std::fmt::Write as _;

/// A parsed JSON value (object keys keep file order).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (f64 is exact for every value the benches emit).
    Num(f64),
    /// String (escapes resolved).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in file order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document (strict enough for the bench files: objects,
/// arrays, strings with `\"`/`\\`/`\/`/`\n`/`\t`/`\uXXXX`, numbers,
/// booleans, null).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at offset {} (found {:?})",
            c as char,
            pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        fields.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(String::from)?;
                        let cp =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("unknown escape '\\{}'", esc as char)),
                }
            }
            _ => out.push(c as char),
        }
    }
    Err("unterminated string".into())
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

/// Accumulates check failures with a path-like context.
#[derive(Debug, Default)]
pub struct Problems(pub Vec<String>);

impl Problems {
    fn fail(&mut self, what: impl Into<String>) {
        self.0.push(what.into());
    }

    fn require_num(&mut self, v: &Json, path: &str, min_exclusive: f64) -> Option<f64> {
        match v.get(path).and_then(Json::num) {
            Some(n) if n > min_exclusive => Some(n),
            Some(n) => {
                self.fail(format!("{path}: {n} must be > {min_exclusive}"));
                None
            }
            None => {
                self.fail(format!("{path}: missing or not a number"));
                None
            }
        }
    }
}

/// One [`crate::Series`]-shaped object (the flowtable series rows).
fn check_series_row(p: &mut Problems, row: &Json, ctx: &str) {
    let Some(name) = row.get("name").and_then(Json::str) else {
        p.fail(format!("{ctx}: series row without a name"));
        return;
    };
    let ctx = format!("{ctx}.{name}");
    for field in ["ops_per_sec", "p50_ns", "p99_ns", "mean_ns"] {
        if row.get(field).and_then(Json::num).map(|n| n > 0.0) != Some(true) {
            p.fail(format!("{ctx}.{field}: missing or non-positive"));
        }
    }
    if row.get("ci95_ns").and_then(Json::num).map(|n| n >= 0.0) != Some(true) {
        p.fail(format!("{ctx}.ci95_ns: missing or negative"));
    }
    if row.get("samples").and_then(Json::num).map(|n| n >= 1.0) != Some(true) {
        p.fail(format!("{ctx}.samples: missing or < 1"));
    }
    if let (Some(p50), Some(p99)) = (
        row.get("p50_ns").and_then(Json::num),
        row.get("p99_ns").and_then(Json::num),
    ) {
        if p99 + 1e-9 < p50 {
            p.fail(format!("{ctx}: p99 ({p99}) < p50 ({p50})"));
        }
    }
}

/// Validate `BENCH_flowtable.json`: identity, gate metrics
/// (`batched_speedup_at_*`, the `lookup_batched_98pct` gate series),
/// well-formed statistics on every series row, and the million-flow
/// churn section with its exact wheel/scan expiry parity.
pub fn check_flowtable(doc: &Json) -> Problems {
    let mut p = Problems::default();
    if doc.get("bench").and_then(Json::str) != Some("micro_flowtable") {
        p.fail("bench: expected \"micro_flowtable\"");
    }
    p.require_num(doc, "table_capacity", 0.0);
    p.require_num(doc, "burst", 0.0);
    // The gate metrics the perf trajectory is judged on.
    p.require_num(doc, "batched_speedup_at_50pct", 0.0);
    p.require_num(doc, "batched_speedup_at_99pct", 0.0);
    match doc.get("series").and_then(Json::arr) {
        Some(rows) if !rows.is_empty() => {
            for row in rows {
                check_series_row(&mut p, row, "series");
            }
            for gate in [
                "lookup_batched_98pct",
                "natstep_batched_98pct",
                "churn_step_wheel_1m",
                "churn_step_scan_1m",
            ] {
                if !rows
                    .iter()
                    .any(|r| r.get("name").and_then(Json::str) == Some(gate))
                {
                    p.fail(format!("series: gate series '{gate}' missing"));
                }
            }
        }
        _ => p.fail("series: missing or empty"),
    }
    // The million-flow churn section: both expiry engines ran the same
    // deterministic schedule, so the committed file must witness exact
    // expiry parity — wheel ≡ scan, visible in the artifact.
    match doc.get("churn") {
        Some(ch) => {
            match ch.get("table_capacity").and_then(Json::num) {
                Some(c) if c >= (1u64 << 20) as f64 => {}
                _ => p.fail("churn.table_capacity: missing or below 2^20 (million-flow gate)"),
            }
            if ch.get("occupancy_end").and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                p.fail("churn.occupancy_end: missing or non-positive");
            }
            let wheel = ch.get("expired_wheel").and_then(Json::num);
            let scan = ch.get("expired_scan").and_then(Json::num);
            match (wheel, scan) {
                (Some(w), Some(s)) if w > 0.0 && s > 0.0 => {
                    if w != s {
                        p.fail(format!(
                            "churn: expired_wheel ({w}) != expired_scan ({s}) — \
                             wheel/scan expiry parity broken"
                        ));
                    }
                }
                _ => p.fail("churn.expired_wheel/expired_scan: missing or non-positive"),
            }
        }
        None => p.fail("churn: missing"),
    }
    p
}

/// Validate `BENCH_throughput.json`: identity, the flow-count axis,
/// per-series rate vectors aligned with it, well-formed bootstrap
/// confidence intervals, the sweep sections, and the million-flow churn
/// section (sustained rates for both expiry engines plus a well-formed
/// latency CCDF).
pub fn check_throughput(doc: &Json) -> Problems {
    let mut p = Problems::default();
    if doc.get("bench").and_then(Json::str) != Some("fig14_throughput") {
        p.fail("bench: expected \"fig14_throughput\"");
    }
    let axis_len = match doc.get("flow_counts").and_then(Json::arr) {
        Some(fc) if !fc.is_empty() => {
            let vals: Vec<f64> = fc.iter().filter_map(Json::num).collect();
            if vals.len() != fc.len() || vals.windows(2).any(|w| w[0] >= w[1]) {
                p.fail("flow_counts: must be strictly increasing numbers");
            }
            fc.len()
        }
        _ => {
            p.fail("flow_counts: missing or empty");
            0
        }
    };
    match doc.get("series").and_then(Json::arr) {
        Some(rows) if !rows.is_empty() => {
            for row in rows {
                let name = row.get("name").and_then(Json::str).unwrap_or("?");
                let ctx = format!("series.{name}");
                match row.get("mpps_per_flow_count").and_then(Json::arr) {
                    Some(v) if v.len() == axis_len => {
                        if !v.iter().all(|x| x.num().is_some_and(|n| n > 0.0)) {
                            p.fail(format!(
                                "{ctx}.mpps_per_flow_count: non-numeric or non-positive rate"
                            ));
                        }
                    }
                    Some(v) => p.fail(format!(
                        "{ctx}.mpps_per_flow_count: {} points for {} flow counts",
                        v.len(),
                        axis_len
                    )),
                    None => p.fail(format!("{ctx}.mpps_per_flow_count: missing")),
                }
                // Deliberately NOT checked: that the point estimate
                // lies inside its interval. The point comes from the
                // RFC 2544 search over the full filtered series while
                // the CI bootstraps per-trial sub-searches (different
                // statistics — see `search_rate_with_ci`), and on a
                // noisy host the no-op series legitimately lands
                // outside; enforcing containment would fail honest
                // data.
                match row.get("mpps_ci95_per_flow_count").and_then(Json::arr) {
                    Some(cis) if cis.len() == axis_len => {
                        for (i, ci) in cis.iter().enumerate() {
                            let pair: Vec<f64> = ci
                                .arr()
                                .map(|a| a.iter().filter_map(Json::num).collect())
                                .unwrap_or_default();
                            match pair.as_slice() {
                                [lo, hi] if 0.0 < *lo && lo <= hi => {}
                                _ => p.fail(format!(
                                    "{ctx}.mpps_ci95_per_flow_count[{i}]: not a [lo, hi] \
                                     pair with 0 < lo <= hi"
                                )),
                            }
                        }
                    }
                    Some(cis) => p.fail(format!(
                        "{ctx}.mpps_ci95_per_flow_count: {} intervals for {} flow counts",
                        cis.len(),
                        axis_len
                    )),
                    None => p.fail(format!("{ctx}.mpps_ci95_per_flow_count: missing")),
                }
            }
            // The gate series the trajectory is judged on.
            for gate in ["noop", "verified", "verified_batched"] {
                if !rows
                    .iter()
                    .any(|r| r.get("name").and_then(Json::str) == Some(gate))
                {
                    p.fail(format!("series: gate series '{gate}' missing"));
                }
            }
        }
        _ => p.fail("series: missing or empty"),
    }
    for section in ["verified_seq", "verified_batched"] {
        if let Some(obj) = doc.get(section) {
            let p50 = obj.get("p50_ns").and_then(Json::num);
            let p99 = obj.get("p99_ns").and_then(Json::num);
            match (p50, p99) {
                (Some(a), Some(b)) if 0.0 < a && a <= b => {}
                _ => p.fail(format!("{section}: needs 0 < p50_ns <= p99_ns")),
            }
        } else {
            p.fail(format!("{section}: missing"));
        }
    }
    for (sweep, axis) in [("sharded_sweep", "shards"), ("multiqueue_sweep", "queues")] {
        match doc
            .get(sweep)
            .and_then(|s| s.get("points"))
            .and_then(Json::arr)
        {
            Some(points) if !points.is_empty() => {
                for (i, pt) in points.iter().enumerate() {
                    if pt.get(axis).and_then(Json::num).map(|n| n >= 1.0) != Some(true) {
                        p.fail(format!("{sweep}.points[{i}].{axis}: missing or < 1"));
                    }
                    if pt.get("mpps").and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                        p.fail(format!("{sweep}.points[{i}].mpps: missing or non-positive"));
                    }
                }
            }
            _ => p.fail(format!("{sweep}.points: missing or empty")),
        }
    }
    // The pinned-runtime scaling curve. Deliberately NOT checked: any
    // speedup — the curve is honest wall-clock data, and a one-core
    // runner produces a legitimately flat curve. What must hold is the
    // attribution: real core counts, pin outcomes bounded by the worker
    // count, and well-formed bootstrap intervals.
    match doc.get("scaling_curve") {
        Some(curve) => {
            let cores = curve.get("host_cores").and_then(Json::num);
            if cores.map(|n| n >= 1.0) != Some(true) {
                p.fail("scaling_curve.host_cores: missing or < 1");
            }
            if curve.get("pinning_requested").is_none() {
                p.fail("scaling_curve.pinning_requested: missing");
            }
            match curve.get("points").and_then(Json::arr) {
                Some(points) if !points.is_empty() => {
                    let mut prev_workers = 0.0;
                    for (i, pt) in points.iter().enumerate() {
                        let workers = pt.get("workers").and_then(Json::num);
                        match workers {
                            Some(w) if w >= 1.0 && w > prev_workers => prev_workers = w,
                            _ => p.fail(format!(
                                "scaling_curve.points[{i}].workers: missing, < 1, or not \
                                 strictly increasing"
                            )),
                        }
                        for rate in ["mpps", "wallclock_mpps"] {
                            if pt.get(rate).and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                                p.fail(format!(
                                    "scaling_curve.points[{i}].{rate}: missing or non-positive"
                                ));
                            }
                        }
                        let ci: Vec<f64> = pt
                            .get("ci95_mpps")
                            .and_then(Json::arr)
                            .map(|a| a.iter().filter_map(Json::num).collect())
                            .unwrap_or_default();
                        match ci.as_slice() {
                            [lo, hi] if 0.0 < *lo && lo <= hi => {}
                            _ => p.fail(format!(
                                "scaling_curve.points[{i}].ci95_mpps: not a [lo, hi] pair \
                                 with 0 < lo <= hi"
                            )),
                        }
                        let pinned = pt.get("pinned_workers").and_then(Json::num);
                        match (pinned, workers) {
                            (Some(pn), Some(w)) if 0.0 <= pn && pn <= w => {}
                            _ => p.fail(format!(
                                "scaling_curve.points[{i}].pinned_workers: missing or not \
                                 in 0..=workers"
                            )),
                        }
                    }
                }
                _ => p.fail("scaling_curve.points: missing or empty"),
            }
        }
        None => p.fail("scaling_curve: missing"),
    }
    // The fault-layer identity gate: the chaos seam must be free when
    // disarmed. The committed trajectory carries the measured overhead
    // of an empty-schedule `FaultIo` on the batched event-driven step,
    // and it must stay under 2% — negative overhead (wrapped measured
    // faster) is host noise and passes.
    match doc.get("fault_overhead") {
        Some(fo) => {
            for field in ["bare_mpps", "faultio_empty_mpps"] {
                if fo.get(field).and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                    p.fail(format!("fault_overhead.{field}: missing or non-positive"));
                }
            }
            match fo.get("overhead_pct").and_then(Json::num) {
                Some(o) if o < 2.0 => {}
                Some(o) => p.fail(format!(
                    "fault_overhead.overhead_pct: {o}% — empty-schedule FaultIo must stay \
                     under the 2% identity gate"
                )),
                None => p.fail("fault_overhead.overhead_pct: missing"),
            }
        }
        None => p.fail("fault_overhead: missing"),
    }
    // The cross-the-wire RFC 2544 section: a committed trajectory must
    // carry a *real* wire run (available: true), both OS transports
    // with honest error counters, and the zero-copy speedup the mmap
    // backend is accountable to: ≥ 1.5x over the per-frame transport
    // on hosts with ≥ 2 cores. On a single-core rig the gate relaxes
    // to ≥ 1.15x: there every veth transmit (xmit + peer-delivery
    // softirq, ≈ 1.3 µs/frame measured) runs synchronously on the
    // measured core and is paid identically by both transports,
    // compressing the achievable ratio — zero-copy's savings are
    // RX-side (≈ 0.53 µs vs ≈ 0.99 µs per frame), which against the
    // shared transmit floor caps the whole-loop ratio near 1.25x.
    // See docs/BENCHMARKS.md, "Reading the speedup".
    match doc.get("os_wire_rfc2544") {
        Some(w) => {
            match w.get("available") {
                Some(Json::Bool(true)) => {
                    match w.get("sim") {
                        Some(sim) => {
                            if sim.get("mpps").and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                                p.fail("os_wire_rfc2544.sim.mpps: missing or non-positive");
                            }
                        }
                        None => p.fail("os_wire_rfc2544.sim: missing"),
                    }
                    for transport in ["os_frame", "os_mmap"] {
                        let ctx = format!("os_wire_rfc2544.{transport}");
                        let Some(pt) = w.get(transport) else {
                            p.fail(format!("{ctx}: missing"));
                            continue;
                        };
                        if pt.get("mpps").and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                            p.fail(format!("{ctx}.mpps: missing or non-positive"));
                        }
                        let ci: Vec<f64> = pt
                            .get("ci95_mpps")
                            .and_then(Json::arr)
                            .map(|a| a.iter().filter_map(Json::num).collect())
                            .unwrap_or_default();
                        match ci.as_slice() {
                            [lo, hi] if 0.0 < *lo && lo <= hi => {}
                            _ => p.fail(format!(
                                "{ctx}.ci95_mpps: not a [lo, hi] pair with 0 < lo <= hi"
                            )),
                        }
                        if pt.get("kernel_drops").and_then(Json::num).is_none() {
                            p.fail(format!("{ctx}.kernel_drops: missing"));
                        }
                        // A rate measured with failed sends or receive
                        // errors is not a rate: the honesty counters
                        // must witness a clean run.
                        for counter in ["tx_errors", "rx_errors"] {
                            match pt.get(counter).and_then(Json::num) {
                                Some(0.0) => {}
                                Some(n) => p.fail(format!(
                                    "{ctx}.{counter}: {n} — the committed wire run must be clean"
                                )),
                                None => p.fail(format!("{ctx}.{counter}: missing")),
                            }
                        }
                    }
                    let cores = w.get("host_cores").and_then(Json::num);
                    if !matches!(cores, Some(c) if c >= 1.0) {
                        p.fail("os_wire_rfc2544.host_cores: missing or < 1");
                    }
                    let gate = if cores.map(|c| c >= 2.0) == Some(true) {
                        1.5
                    } else {
                        1.15
                    };
                    match w.get("mmap_vs_frame_speedup").and_then(Json::num) {
                        Some(s) if s >= gate => {}
                        Some(s) => p.fail(format!(
                            "os_wire_rfc2544.mmap_vs_frame_speedup: {s} below the {gate}x \
                             zero-copy gate"
                        )),
                        None => p.fail("os_wire_rfc2544.mmap_vs_frame_speedup: missing"),
                    }
                }
                Some(Json::Bool(false)) => p.fail(
                    "os_wire_rfc2544.available: false — the committed trajectory must carry \
                     a real wire run (regenerate with CAP_NET_RAW/CAP_NET_ADMIN)",
                ),
                _ => p.fail("os_wire_rfc2544.available: missing or not a bool"),
            }
        }
        None => p.fail("os_wire_rfc2544: missing"),
    }
    // Million-flow churn: sustained rates for both expiry engines and a
    // Fig. 13-style latency CCDF (strictly increasing latencies,
    // non-increasing tail probabilities in (0, 1]).
    match doc.get("churn") {
        Some(ch) => {
            let cap = ch.get("table_capacity").and_then(Json::num);
            match cap {
                Some(c) if c >= (1u64 << 20) as f64 => {}
                _ => p.fail("churn.table_capacity: missing or below 2^20 (million-flow gate)"),
            }
            match (ch.get("occupancy_end").and_then(Json::num), cap) {
                (Some(o), Some(c)) if 0.0 < o && o <= c => {}
                _ => p.fail("churn.occupancy_end: missing or not in (0, table_capacity]"),
            }
            if ch
                .get("expired_during_churn")
                .and_then(Json::num)
                .map(|n| n > 0.0)
                != Some(true)
            {
                p.fail("churn.expired_during_churn: missing or non-positive");
            }
            match ch.get("sustained").and_then(Json::arr) {
                Some(rows) if !rows.is_empty() => {
                    for (i, row) in rows.iter().enumerate() {
                        if row.get("mpps").and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                            p.fail(format!(
                                "churn.sustained[{i}].mpps: missing or non-positive"
                            ));
                        }
                        let ci: Vec<f64> = row
                            .get("ci95_mpps")
                            .and_then(Json::arr)
                            .map(|a| a.iter().filter_map(Json::num).collect())
                            .unwrap_or_default();
                        match ci.as_slice() {
                            [lo, hi] if 0.0 < *lo && lo <= hi => {}
                            _ => p.fail(format!(
                                "churn.sustained[{i}].ci95_mpps: not a [lo, hi] pair with \
                                 0 < lo <= hi"
                            )),
                        }
                    }
                    for engine in ["wheel", "scan"] {
                        if !rows
                            .iter()
                            .any(|r| r.get("expiry").and_then(Json::str) == Some(engine))
                        {
                            p.fail(format!("churn.sustained: expiry engine '{engine}' missing"));
                        }
                    }
                }
                _ => p.fail("churn.sustained: missing or empty"),
            }
            match ch
                .get("latency_ccdf")
                .and_then(|c| c.get("points"))
                .and_then(Json::arr)
            {
                Some(points) if points.len() >= 2 => {
                    let mut prev_lat = 0.0f64;
                    let mut prev_ccdf = f64::INFINITY;
                    for (i, pt) in points.iter().enumerate() {
                        match pt.get("latency_ns").and_then(Json::num) {
                            Some(l) if l > prev_lat => prev_lat = l,
                            _ => p.fail(format!(
                                "churn.latency_ccdf.points[{i}].latency_ns: missing, \
                                 non-positive, or not strictly increasing"
                            )),
                        }
                        match pt.get("ccdf").and_then(Json::num) {
                            Some(c) if 0.0 < c && c <= 1.0 && c <= prev_ccdf => prev_ccdf = c,
                            Some(c) if 0.0 < c && c <= 1.0 => p.fail(format!(
                                "churn.latency_ccdf.points[{i}].ccdf: must be non-increasing"
                            )),
                            _ => p.fail(format!(
                                "churn.latency_ccdf.points[{i}].ccdf: missing or not in (0, 1]"
                            )),
                        }
                    }
                }
                _ => p.fail("churn.latency_ccdf.points: missing or fewer than 2 points"),
            }
        }
        None => p.fail("churn: missing"),
    }
    p
}

/// Validate `BENCH_matrix.json`: identity, the declared axes, and —
/// the property the scenario matrix exists for — that the cells cover
/// the axes' cross product *exactly*: every combination present
/// exactly once, no extras. A matrix runner that silently dropped a
/// cell class (an occupancy that stopped being swept, a backend that
/// fell out of the loop) would otherwise keep validating forever on
/// stale coverage. Per-cell statistics must be well-formed (positive
/// rate, `0 < lo <= hi` bootstrap interval, flows within capacity).
pub fn check_matrix(doc: &Json) -> Problems {
    let mut p = Problems::default();
    if doc.get("bench").and_then(Json::str) != Some("scenario_matrix") {
        p.fail("bench: expected \"scenario_matrix\"");
    }
    let capacity = p.require_num(doc, "table_capacity", 0.0);
    p.require_num(doc, "packets_per_cell", 0.0);
    // Per-class lifetimes: the matrix must run the heterogeneous
    // config (distinct TCP classes), or the TCP-mix axis silently
    // stops exercising the per-class wheels.
    let udp = p.require_num(doc, "expiry_ns", 0.0);
    let transitory = p.require_num(doc, "tcp_transitory_ns", 0.0);
    let established = p.require_num(doc, "tcp_established_ns", 0.0);
    if let (Some(u), Some(t), Some(e)) = (udp, transitory, established) {
        if u == t && t == e {
            p.fail(
                "expiry_ns/tcp_transitory_ns/tcp_established_ns: all equal — the matrix \
                 must run heterogeneous per-class lifetimes",
            );
        }
    }
    // The declared axes. `backend` holds strings, the rest numbers;
    // axis values are rendered to strings so coverage keys are uniform.
    let axis = |p: &mut Problems, name: &str| -> Vec<String> {
        let Some(vals) = doc
            .get("axes")
            .and_then(|a| a.get(name))
            .and_then(Json::arr)
        else {
            p.fail(format!("axes.{name}: missing or not an array"));
            return Vec::new();
        };
        if vals.is_empty() {
            p.fail(format!("axes.{name}: empty"));
        }
        vals.iter()
            .filter_map(|v| match v {
                Json::Num(n) => Some(format!("{n}")),
                Json::Str(s) => Some(s.clone()),
                _ => {
                    p.fail(format!("axes.{name}: non-scalar axis value"));
                    None
                }
            })
            .collect()
    };
    let axes: Vec<(&str, Vec<String>)> = [
        "occupancy_pct",
        "shards",
        "queues",
        "backend",
        "tcp_permille",
    ]
    .into_iter()
    .map(|name| (name, axis(&mut p, name)))
    .collect();
    let expected: usize = axes.iter().map(|(_, v)| v.len()).product();
    let cell_key = |cell: &Json| -> Option<String> {
        let mut key = Vec::with_capacity(axes.len());
        for (name, _) in &axes {
            match cell.get(name) {
                Some(Json::Num(n)) => key.push(format!("{n}")),
                Some(Json::Str(s)) => key.push(s.clone()),
                _ => return None,
            }
        }
        Some(key.join("/"))
    };
    match doc.get("cells").and_then(Json::arr) {
        Some(cells) if !cells.is_empty() => {
            let mut seen = std::collections::BTreeMap::<String, usize>::new();
            for (i, cell) in cells.iter().enumerate() {
                let ctx = format!("cells[{i}]");
                match cell_key(cell) {
                    Some(k) => *seen.entry(k).or_insert(0) += 1,
                    None => p.fail(format!("{ctx}: missing an axis coordinate")),
                }
                match (cell.get("flows").and_then(Json::num), capacity) {
                    (Some(f), Some(c)) if 1.0 <= f && f <= c => {}
                    (Some(_), None) => {}
                    _ => p.fail(format!("{ctx}.flows: missing or not in 1..=table_capacity")),
                }
                if cell.get("mpps").and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                    p.fail(format!("{ctx}.mpps: missing or non-positive"));
                }
                if cell.get("mean_ns").and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                    p.fail(format!("{ctx}.mean_ns: missing or non-positive"));
                }
                if cell.get("samples").and_then(Json::num).map(|n| n >= 1.0) != Some(true) {
                    p.fail(format!("{ctx}.samples: missing or < 1"));
                }
                let ci: Vec<f64> = cell
                    .get("ci95_mpps")
                    .and_then(Json::arr)
                    .map(|a| a.iter().filter_map(Json::num).collect())
                    .unwrap_or_default();
                match ci.as_slice() {
                    [lo, hi] if 0.0 < *lo && lo <= hi => {}
                    _ => p.fail(format!(
                        "{ctx}.ci95_mpps: not a [lo, hi] pair with 0 < lo <= hi"
                    )),
                }
            }
            // Exact cross-product coverage: every declared combination
            // exactly once, nothing undeclared.
            if expected > 0 {
                for combo in cross_product(&axes) {
                    match seen.get(&combo).copied().unwrap_or(0) {
                        1 => {}
                        0 => p.fail(format!(
                            "cells: declared combination {combo} missing — coverage hole"
                        )),
                        n => p.fail(format!("cells: combination {combo} appears {n} times")),
                    }
                }
                if cells.len() != expected {
                    p.fail(format!(
                        "cells: {} cells for a {} -combination axis product",
                        cells.len(),
                        expected
                    ));
                }
            }
        }
        _ => p.fail("cells: missing or empty"),
    }
    p
}

/// All axis-value combinations, each rendered as the `/`-joined key
/// [`check_matrix`] indexes cells by.
fn cross_product(axes: &[(&str, Vec<String>)]) -> Vec<String> {
    let mut combos = vec![String::new()];
    for (_, vals) in axes {
        combos = combos
            .iter()
            .flat_map(|prefix| {
                vals.iter().map(move |v| {
                    if prefix.is_empty() {
                        v.clone()
                    } else {
                        format!("{prefix}/{v}")
                    }
                })
            })
            .collect();
    }
    combos
}

/// Check one file against the validator picked by its `bench` field.
/// Returns a human-readable failure report, or `Ok(bench_name)`.
pub fn check_file(path: &std::path::Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let doc = parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    let bench = doc
        .get("bench")
        .and_then(Json::str)
        .unwrap_or("<missing bench field>")
        .to_string();
    let problems = match bench.as_str() {
        "micro_flowtable" => check_flowtable(&doc),
        "fig14_throughput" => check_throughput(&doc),
        "scenario_matrix" => check_matrix(&doc),
        other => {
            return Err(format!(
                "{}: unknown bench kind '{other}' (expected micro_flowtable, \
                 fig14_throughput or scenario_matrix)",
                path.display()
            ))
        }
    };
    if problems.0.is_empty() {
        Ok(bench)
    } else {
        let mut msg = format!("{}: {} problem(s)\n", path.display(), problems.0.len());
        for prob in &problems.0 {
            let _ = writeln!(msg, "  - {prob}");
        }
        Err(msg)
    }
}

/// Parse one trajectory file into its [`Json`] document.
pub fn load(path: &std::path::Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN rates"));
    v[v.len() / 2]
}

/// One named rate as flattened out of a trajectory document for
/// baseline comparison.
#[derive(Debug, Clone)]
struct RatePoint {
    /// Stable series name (coordinates only, no measured values).
    name: String,
    /// The rate (Mpps or ops/s — whatever the series' unit is).
    rate: f64,
    /// Bootstrap 95% CI, where the document carries one.
    ci: Option<(f64, f64)>,
    /// Series length, where the document states one: the retained
    /// sample count for single-point series, the axis length for
    /// per-flow-count sweeps. `None` means unknown — such a series is
    /// judged normally (the `min_samples` suppress rule only fires on
    /// series *known* to be short).
    samples: Option<f64>,
}

/// A two-element `ci95_mpps` array, or `None` for any other shape.
fn ci_pair(v: &Json) -> Option<(f64, f64)> {
    let pair: Vec<f64> = v.arr()?.iter().filter_map(Json::num).collect();
    match pair.as_slice() {
        [lo, hi] => Some((*lo, *hi)),
        _ => None,
    }
}

/// Every named rate a trajectory document carries, flattened to
/// `(name, rate, optional bootstrap CI)` for baseline comparison.
/// Multi-point series (the per-flow-count vectors) collapse to their
/// medians so a single noisy sweep point cannot trip the gate alone.
fn rate_points(doc: &Json) -> Vec<RatePoint> {
    let mut out: Vec<RatePoint> = Vec::new();
    if let Some(rows) = doc.get("series").and_then(Json::arr) {
        for row in rows {
            let Some(name) = row.get("name").and_then(Json::str) else {
                continue;
            };
            if let Some(v) = row.get("mpps_per_flow_count").and_then(Json::arr) {
                // fig14 sweep series: median rate, element-wise median CI.
                let mut vals: Vec<f64> = v.iter().filter_map(Json::num).collect();
                if vals.is_empty() {
                    continue;
                }
                let ci = row
                    .get("mpps_ci95_per_flow_count")
                    .and_then(Json::arr)
                    .and_then(|cis| {
                        let mut lo = Vec::new();
                        let mut hi = Vec::new();
                        for c in cis {
                            let (l, h) = ci_pair(c)?;
                            lo.push(l);
                            hi.push(h);
                        }
                        (!lo.is_empty()).then(|| (median(&mut lo), median(&mut hi)))
                    });
                out.push(RatePoint {
                    name: format!("series.{name}"),
                    rate: median(&mut vals),
                    ci,
                    samples: Some(v.len() as f64),
                });
            } else if let Some(ops) = row.get("ops_per_sec").and_then(Json::num) {
                // micro_flowtable series: ops/s point estimate.
                out.push(RatePoint {
                    name: format!("series.{name}"),
                    rate: ops,
                    ci: None,
                    samples: row.get("samples").and_then(Json::num),
                });
            }
        }
    }
    if let Some(points) = doc
        .get("scaling_curve")
        .and_then(|c| c.get("points"))
        .and_then(Json::arr)
    {
        for pt in points {
            if let (Some(w), Some(m)) = (
                pt.get("workers").and_then(Json::num),
                pt.get("mpps").and_then(Json::num),
            ) {
                let ci = pt.get("ci95_mpps").and_then(ci_pair);
                out.push(RatePoint {
                    name: format!("scaling_curve.workers{w}"),
                    rate: m,
                    ci,
                    samples: None,
                });
            }
        }
    }
    if let Some(rows) = doc
        .get("churn")
        .and_then(|c| c.get("sustained"))
        .and_then(Json::arr)
    {
        for row in rows {
            if let (Some(engine), Some(m)) = (
                row.get("expiry").and_then(Json::str),
                row.get("mpps").and_then(Json::num),
            ) {
                let ci = row.get("ci95_mpps").and_then(ci_pair);
                out.push(RatePoint {
                    name: format!("churn.{engine}"),
                    rate: m,
                    ci,
                    samples: None,
                });
            }
        }
    }
    for (section, key_a, key_b) in [
        ("multiqueue_sweep", "queues", Some("shards")),
        ("sharded_sweep", "shards", None),
    ] {
        if let Some(points) = doc
            .get(section)
            .and_then(|s| s.get("points"))
            .and_then(Json::arr)
        {
            for pt in points {
                let (Some(a), Some(m)) = (
                    pt.get(key_a).and_then(Json::num),
                    pt.get("mpps").and_then(Json::num),
                ) else {
                    continue;
                };
                let name = match key_b.and_then(|k| pt.get(k).and_then(Json::num)) {
                    Some(b) => format!("{section}.{key_a}{a}x{b}"),
                    None => format!("{section}.{key_a}{a}"),
                };
                out.push(RatePoint {
                    name,
                    rate: m,
                    ci: None,
                    samples: None,
                });
            }
        }
    }
    if let Some(w) = doc.get("os_wire_rfc2544") {
        for transport in ["sim", "os_frame", "os_mmap"] {
            if let Some(pt) = w.get(transport) {
                if let Some(m) = pt.get("mpps").and_then(Json::num) {
                    let ci = pt.get("ci95_mpps").and_then(ci_pair);
                    out.push(RatePoint {
                        name: format!("os_wire.{transport}"),
                        rate: m,
                        ci,
                        samples: None,
                    });
                }
            }
        }
    }
    // Scenario-matrix cells: one rate per cell, named by coordinates,
    // so the baseline gate covers the whole scenario space.
    if let Some(cells) = doc.get("cells").and_then(Json::arr) {
        for cell in cells {
            let (Some(o), Some(q), Some(s), Some(b), Some(t), Some(m)) = (
                cell.get("occupancy_pct").and_then(Json::num),
                cell.get("queues").and_then(Json::num),
                cell.get("shards").and_then(Json::num),
                cell.get("backend").and_then(Json::str),
                cell.get("tcp_permille").and_then(Json::num),
                cell.get("mpps").and_then(Json::num),
            ) else {
                continue;
            };
            out.push(RatePoint {
                name: format!("cell.o{o}.q{q}.s{s}.{b}.tcp{t}"),
                rate: m,
                ci: cell.get("ci95_mpps").and_then(ci_pair),
                samples: cell.get("samples").and_then(Json::num),
            });
        }
    }
    out
}

/// Thresholds and suppress rules for the baseline comparison — the
/// knobs `vig_bench --check --baseline` exposes as `--fail-under`,
/// `--warn-under` and `--min-samples`.
#[derive(Debug, Clone, Copy)]
pub struct BaselinePolicy {
    /// Hard-failure threshold on the median delta, percent: a rate
    /// more than this far below the baseline fails the gate.
    pub fail_under_pct: f64,
    /// Optional soft threshold on the median delta, percent: a drop
    /// past it warns even when bootstrap intervals overlap (or are
    /// absent). `None` keeps the CI-overlap rule as the only warning
    /// source.
    pub warn_under_pct: Option<f64>,
    /// Suppress series whose *known* retained sample count (or sweep
    /// length) is below this — a handful of samples cannot honestly
    /// judge a 10% delta. Series of unknown length are judged
    /// normally; `0.0` disables the rule.
    pub min_samples: f64,
}

impl Default for BaselinePolicy {
    fn default() -> BaselinePolicy {
        BaselinePolicy {
            fail_under_pct: 10.0,
            warn_under_pct: None,
            min_samples: 0.0,
        }
    }
}

/// Outcome of comparing a fresh run against a committed baseline.
#[derive(Debug, Default)]
pub struct BaselineReport {
    /// Hard regressions: a rate dropped past the fail threshold, or a
    /// baseline series vanished from this run. Non-empty fails
    /// `vig_bench --check --baseline`.
    pub failures: Vec<String>,
    /// Soft signals: the run is slower and the bootstrap intervals
    /// don't overlap (or the drop passed the warn threshold), but it
    /// stays within the failure budget.
    pub warnings: Vec<String>,
    /// Series present in this run but not in the baseline — reported,
    /// never judged (a new series has no history to regress against).
    pub new_series: Vec<String>,
    /// Series present in both but too short to judge under the
    /// policy's `min_samples` — reported, never judged.
    pub suppressed: Vec<String>,
    /// Series compared against the baseline.
    pub compared: usize,
}

/// [`compare_against_baseline_with`] under the default policy (fail
/// past 10%, CI-overlap warnings only, no length suppression) — the
/// behavior of plain `--baseline` with no threshold flags.
pub fn compare_against_baseline(current: &Json, baseline: &Json) -> BaselineReport {
    compare_against_baseline_with(current, baseline, &BaselinePolicy::default())
}

/// Compare a freshly generated trajectory document against a committed
/// baseline of the same bench kind: fail any rate that dropped more
/// than `policy.fail_under_pct` below the baseline median (or vanished
/// outright), warn when a smaller slowdown is still outside both
/// bootstrap intervals or past `policy.warn_under_pct`, suppress
/// series shorter than `policy.min_samples` (in either run), and
/// report — never judge — series that are new in this run.
pub fn compare_against_baseline_with(
    current: &Json,
    baseline: &Json,
    policy: &BaselinePolicy,
) -> BaselineReport {
    let mut report = BaselineReport::default();
    let cur = rate_points(current);
    let base = rate_points(baseline);
    let fail_frac = 1.0 - policy.fail_under_pct / 100.0;
    let too_short = |samples: Option<f64>| samples.is_some_and(|n| n < policy.min_samples);
    for b in &base {
        let name = &b.name;
        let Some(c) = cur.iter().find(|c| c.name == *name) else {
            report.failures.push(format!(
                "{name}: present in baseline but missing from this run — a vanished series \
                 disarms the gate"
            ));
            continue;
        };
        // Too short to judge — on either side: a truncated fresh run
        // must not be held to the gate, and a truncated baseline is no
        // reference to judge against.
        if too_short(c.samples) || too_short(b.samples) {
            report.suppressed.push(format!(
                "{name}: {} sample(s) vs baseline {} — below the {:.0}-sample floor",
                c.samples.map_or("?".into(), |n| format!("{n:.0}")),
                b.samples.map_or("?".into(), |n| format!("{n:.0}")),
                policy.min_samples
            ));
            continue;
        }
        report.compared += 1;
        if c.rate < b.rate * fail_frac {
            report.failures.push(format!(
                "{name}: {:.3} is {:.1}% below baseline {:.3} (budget: {:.0}%)",
                c.rate,
                (1.0 - c.rate / b.rate) * 100.0,
                b.rate,
                policy.fail_under_pct
            ));
            continue;
        }
        let ci_gap = match (b.ci, c.ci) {
            (Some((b_lo, _)), Some((_, c_hi))) => c.rate < b.rate && c_hi < b_lo,
            _ => false,
        };
        let past_warn = policy
            .warn_under_pct
            .is_some_and(|w| c.rate < b.rate * (1.0 - w / 100.0));
        if ci_gap {
            report.warnings.push(format!(
                "{name}: {:.3} vs baseline {:.3} — slower with non-overlapping 95% \
                 intervals (within the {:.0}% budget)",
                c.rate, b.rate, policy.fail_under_pct
            ));
        } else if past_warn {
            report.warnings.push(format!(
                "{name}: {:.3} is {:.1}% below baseline {:.3} (warn threshold: {:.0}%)",
                c.rate,
                (1.0 - c.rate / b.rate) * 100.0,
                b.rate,
                policy.warn_under_pct.unwrap_or(0.0)
            ));
        }
    }
    for c in &cur {
        if !base.iter().any(|b| b.name == c.name) {
            report.new_series.push(c.name.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_roundtrips_the_shapes_the_benches_emit() {
        let doc =
            parse(r#"{"a": 1.5, "b": [1, 2e3, -4], "c": {"d": "x\ny", "e": true, "f": null}}"#)
                .unwrap();
        assert_eq!(doc.get("a").and_then(Json::num), Some(1.5));
        assert_eq!(doc.get("b").and_then(Json::arr).unwrap().len(), 3);
        assert_eq!(
            doc.get("c").and_then(|c| c.get("d")).and_then(Json::str),
            Some("x\ny")
        );
        assert_eq!(doc.get("c").and_then(|c| c.get("f")), Some(&Json::Null));
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("{} garbage").is_err());
    }

    fn minimal_flowtable() -> String {
        let row = |name: &str| {
            format!(
                r#"{{"name":"{name}","ops_per_sec":1.0,"p50_ns":10.0,"p99_ns":20.0,"mean_ns":11.0,"ci95_ns":0.1,"samples":100,"outliers_rejected":0}}"#
            )
        };
        format!(
            r#"{{"bench":"micro_flowtable","table_capacity":100,"burst":32,
                "batched_speedup_at_50pct":2.0,"batched_speedup_at_99pct":1.5,
                "churn":{{"table_capacity":1048576,"active_window":800000,
                    "occupancy_end":950000,"expired_wheel":4000,"expired_scan":4000}},
                "series":[{},{},{},{}]}}"#,
            row("lookup_batched_98pct"),
            row("natstep_batched_98pct"),
            row("churn_step_wheel_1m"),
            row("churn_step_scan_1m")
        )
    }

    #[test]
    fn flowtable_validator_accepts_good_and_flags_broken() {
        let good = parse(&minimal_flowtable()).unwrap();
        assert!(
            check_flowtable(&good).0.is_empty(),
            "{:?}",
            check_flowtable(&good).0
        );

        // Drop the gate metric: must be flagged.
        let broken = minimal_flowtable().replace("batched_speedup_at_50pct", "renamed_away");
        let doc = parse(&broken).unwrap();
        let probs = check_flowtable(&doc);
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("batched_speedup_at_50pct")));

        // Remove the gate series: must be flagged.
        let broken = minimal_flowtable().replace("lookup_batched_98pct", "lookup_other");
        let probs = check_flowtable(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("lookup_batched_98pct")));

        // Inverted percentiles: must be flagged.
        let broken = minimal_flowtable().replace(r#""p99_ns":20.0"#, r#""p99_ns":5.0"#);
        let probs = check_flowtable(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("p99")));

        // Wheel/scan expiry-count divergence: the parity witness the
        // churn section exists for.
        let broken =
            minimal_flowtable().replace(r#""expired_scan":4000"#, r#""expired_scan":3999"#);
        let probs = check_flowtable(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("parity broken")));

        // Churn at sub-million capacity must not satisfy the gate.
        let broken =
            minimal_flowtable().replace(r#""table_capacity":1048576"#, r#""table_capacity":65535"#);
        let probs = check_flowtable(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("below 2^20")));

        // Dropping the churn section entirely must be flagged.
        let broken = minimal_flowtable().replace(r#""churn""#, r#""churn_renamed""#);
        let probs = check_flowtable(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("churn: missing")));

        // The churn gate series must be present.
        let broken = minimal_flowtable().replace("churn_step_wheel_1m", "churn_step_other");
        let probs = check_flowtable(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("churn_step_wheel_1m") && p.contains("missing")));
    }

    fn minimal_throughput() -> String {
        let series = |name: &str| {
            format!(
                r#"{{"name":"{name}","mpps_per_flow_count":[1.0,2.0],"mpps_ci95_per_flow_count":[[0.9,1.1],[1.8,2.2]]}}"#
            )
        };
        format!(
            r#"{{"bench":"fig14_throughput","flow_counts":[1000,64000],
                "series":[{},{},{}],
                "verified_seq":{{"p50_ns":100,"p99_ns":300}},
                "verified_batched":{{"p50_ns":80,"p99_ns":200}},
                "sharded_sweep":{{"points":[{{"shards":1,"mpps":10.0}}]}},
                "scaling_curve":{{"host_cores":1,"pinning_requested":true,
                    "points":[{{"workers":1,"mpps":5.0,"ci95_mpps":[4.5,5.5],"wallclock_mpps":4.0,"pinned_workers":1}},
                              {{"workers":2,"mpps":6.0,"ci95_mpps":[5.5,6.5],"wallclock_mpps":4.5,"pinned_workers":2}}]}},
                "multiqueue_sweep":{{"points":[{{"queues":1,"shards":1,"mpps":8.0}}]}},
                "fault_overhead":{{"trials":5,"bare_mpps":8.0,"faultio_empty_mpps":7.95,"overhead_pct":0.6}},
                "os_wire_rfc2544":{{"available":true,"queues":2,"shards":2,"host_cores":2,
                    "sim":{{"mpps":4.0,"ci95_mpps":[3.8,4.2]}},
                    "os_frame":{{"mpps":0.5,"ci95_mpps":[0.45,0.55],"kernel_drops":0,"tx_errors":0,"rx_errors":0}},
                    "os_mmap":{{"mpps":1.0,"ci95_mpps":[0.9,1.1],"kernel_drops":0,"tx_errors":0,"rx_errors":0}},
                    "mmap_vs_frame_speedup":2.0}},
                "churn":{{"table_capacity":1048576,"occupancy_end":970000,
                    "expired_during_churn":7500,
                    "sustained":[{{"expiry":"wheel","mpps":3.0,"ci95_mpps":[2.8,3.2]}},
                                 {{"expiry":"scan","mpps":2.9,"ci95_mpps":[2.7,3.1]}}],
                    "latency_ccdf":{{"expiry":"wheel","points":[{{"latency_ns":200,"ccdf":0.5}},{{"latency_ns":400,"ccdf":0.01}}]}}}}}}"#,
            series("noop"),
            series("verified"),
            series("verified_batched")
        )
    }

    #[test]
    fn throughput_validator_accepts_good_and_flags_broken() {
        let good = parse(&minimal_throughput()).unwrap();
        assert!(
            check_throughput(&good).0.is_empty(),
            "{:?}",
            check_throughput(&good).0
        );

        // Axis mismatch: one rate for two flow counts.
        let broken = minimal_throughput().replace(
            r#""mpps_per_flow_count":[1.0,2.0]"#,
            r#""mpps_per_flow_count":[1.0]"#,
        );
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("points for")));

        // Non-numeric rates of the right length must not pass
        // vacuously.
        let broken = minimal_throughput().replace(
            r#""mpps_per_flow_count":[1.0,2.0]"#,
            r#""mpps_per_flow_count":[null,null]"#,
        );
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("non-numeric")));

        // Inverted interval.
        let broken = minimal_throughput().replace("[0.9,1.1]", "[1.1,0.9]");
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("lo <= hi")));

        // Missing gate series.
        let broken = minimal_throughput().replace(r#""name":"verified_batched""#, r#""name":"x""#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("verified_batched") && p.contains("missing")));

        // Missing scaling curve entirely.
        let broken = minimal_throughput().replace(r#""scaling_curve""#, r#""renamed_curve""#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("scaling_curve: missing")));

        // Worker counts must increase strictly.
        let broken = minimal_throughput().replace(r#""workers":2"#, r#""workers":1"#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("strictly increasing")));

        // Pin attribution must be bounded by the worker count.
        let broken = minimal_throughput().replace(r#""pinned_workers":2"#, r#""pinned_workers":3"#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("pinned_workers")));

        // Inverted bootstrap interval on a curve point.
        let broken = minimal_throughput().replace("[4.5,5.5]", "[5.5,4.5]");
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("ci95_mpps") && p.contains("lo <= hi")));

        // Dropping the churn section entirely must be flagged.
        let broken = minimal_throughput().replace(r#""churn""#, r#""churn_renamed""#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("churn: missing")));

        // Both expiry engines must appear in the sustained rates.
        let broken = minimal_throughput().replace(r#""expiry":"scan""#, r#""expiry":"lru""#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("expiry engine 'scan' missing")));

        // Inverted sustained-rate interval.
        let broken = minimal_throughput().replace("[2.8,3.2]", "[3.2,2.8]");
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("churn.sustained") && p.contains("lo <= hi")));

        // CCDF latencies must increase strictly.
        let broken = minimal_throughput().replace(r#""latency_ns":400"#, r#""latency_ns":200"#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("latency_ns") && p.contains("strictly increasing")));

        // CCDF tail probabilities must not increase with latency.
        let broken = minimal_throughput().replace(r#""ccdf":0.01"#, r#""ccdf":0.75"#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("non-increasing")));

        // CCDF values must stay inside (0, 1].
        let broken = minimal_throughput().replace(r#""ccdf":0.5"#, r#""ccdf":1.5"#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("not in (0, 1]")));

        // A skipped wire run must not validate as a committed
        // trajectory.
        let broken = minimal_throughput().replace(
            r#""available":true"#,
            r#""available":false,"reason":"EPERM""#,
        );
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("available: false") && p.contains("real wire run")));

        // Dropping the wire section entirely must be flagged.
        let broken = minimal_throughput().replace(r#""os_wire_rfc2544""#, r#""renamed_wire""#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("os_wire_rfc2544: missing")));

        // The zero-copy speedup gate: below 1.5x must fail on a
        // multi-core host.
        let broken = minimal_throughput().replace(
            r#""mmap_vs_frame_speedup":2.0"#,
            r#""mmap_vs_frame_speedup":1.2"#,
        );
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("1.5x")));

        // On a single-core rig the same ratio passes the relaxed gate
        // (both transports share the synchronous veth transmit there),
        // but a ratio below even the relaxed floor still fails.
        let single = broken.replace(r#""host_cores":2"#, r#""host_cores":1"#);
        let probs = check_throughput(&parse(&single).unwrap());
        assert!(
            !probs.0.iter().any(|p| p.contains("zero-copy gate")),
            "{:?}",
            probs.0
        );
        let single_low = minimal_throughput()
            .replace(
                r#""mmap_vs_frame_speedup":2.0"#,
                r#""mmap_vs_frame_speedup":1.05"#,
            )
            .replace(r#""host_cores":2"#, r#""host_cores":1"#);
        let probs = check_throughput(&parse(&single_low).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("1.15x")));

        // The gate cannot be dodged by omitting the core count.
        let no_cores = minimal_throughput().replace(r#""host_cores":2,"#, "");
        let probs = check_throughput(&parse(&no_cores).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("os_wire_rfc2544.host_cores")));

        // A wire run with failed sends is not a measurement.
        let broken = minimal_throughput().replace(
            r#""mpps":1.0,"ci95_mpps":[0.9,1.1],"kernel_drops":0,"tx_errors":0"#,
            r#""mpps":1.0,"ci95_mpps":[0.9,1.1],"kernel_drops":0,"tx_errors":3"#,
        );
        assert_ne!(broken, minimal_throughput());
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("os_mmap.tx_errors") && p.contains("clean")));

        // A missing transport point must be flagged.
        let broken = minimal_throughput().replace(r#""os_mmap""#, r#""os_other""#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("os_wire_rfc2544.os_mmap: missing")));

        // The fault-layer identity gate: overhead at or above 2% fails.
        let broken = minimal_throughput().replace(r#""overhead_pct":0.6"#, r#""overhead_pct":3.4"#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("overhead_pct") && p.contains("2% identity gate")));

        // Negative overhead (wrapped measured faster — host noise) is
        // honest data and passes.
        let noisy = minimal_throughput().replace(r#""overhead_pct":0.6"#, r#""overhead_pct":-0.3"#);
        let probs = check_throughput(&parse(&noisy).unwrap());
        assert!(probs.0.is_empty(), "{:?}", probs.0);

        // Dropping the section disarms the gate — flagged.
        let broken = minimal_throughput().replace(r#""fault_overhead""#, r#""renamed_fault""#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("fault_overhead: missing")));

        // A one-point CCDF is not a curve.
        let broken = minimal_throughput().replace(r#",{"latency_ns":400,"ccdf":0.01}"#, "");
        assert_ne!(
            broken,
            minimal_throughput(),
            "fixture must contain the point"
        );
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("fewer than 2 points")));
    }

    #[test]
    fn baseline_compare_fails_big_drops_warns_ci_gaps_suppresses_new_series() {
        let baseline = parse(&minimal_throughput()).unwrap();

        // Identical run: clean bill.
        let same = compare_against_baseline(&baseline, &baseline);
        assert!(same.failures.is_empty(), "{:?}", same.failures);
        assert!(same.warnings.is_empty(), "{:?}", same.warnings);
        assert!(same.new_series.is_empty());
        assert!(same.compared >= 10, "compared only {}", same.compared);

        // >10% median drop on a sweep series: hard failure.
        let slow = minimal_throughput().replace(
            r#""name":"verified","mpps_per_flow_count":[1.0,2.0]"#,
            r#""name":"verified","mpps_per_flow_count":[0.8,1.6]"#,
        );
        let report = compare_against_baseline(&parse(&slow).unwrap(), &baseline);
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("series.verified") && f.contains("below baseline")),
            "{:?}",
            report.failures
        );

        // Slower but within budget, with disjoint intervals: a warning,
        // not a failure. (Baseline os_mmap: 1.0 [0.9, 1.1].)
        let wobble = minimal_throughput().replace(
            r#""os_mmap":{"mpps":1.0,"ci95_mpps":[0.9,1.1]"#,
            r#""os_mmap":{"mpps":0.92,"ci95_mpps":[0.85,0.89]"#,
        );
        let report = compare_against_baseline(&parse(&wobble).unwrap(), &baseline);
        assert!(
            !report
                .failures
                .iter()
                .any(|f| f.contains("os_wire.os_mmap")),
            "{:?}",
            report.failures
        );
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("os_wire.os_mmap") && w.contains("non-overlapping")),
            "{:?}",
            report.warnings
        );

        // A series only in the current run is reported, never judged.
        let grown = minimal_throughput().replace(
            r#""series":[{"name":"noop""#,
            r#""series":[{"name":"brand_new","mpps_per_flow_count":[9.0,9.0],"mpps_ci95_per_flow_count":[[8.0,10.0],[8.0,10.0]]},{"name":"noop""#,
        );
        let report = compare_against_baseline(&parse(&grown).unwrap(), &baseline);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(report.new_series.contains(&"series.brand_new".to_string()));

        // A series that vanished from the current run is a failure —
        // deleting a slow series must not green the gate.
        let report = compare_against_baseline(&baseline, &parse(&grown).unwrap());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("series.brand_new") && f.contains("vanished")));

        // Flowtable documents compare on ops_per_sec.
        let ft_base = parse(&minimal_flowtable()).unwrap();
        let ft_slow = minimal_flowtable().replace(
            r#""name":"lookup_batched_98pct","ops_per_sec":1.0"#,
            r#""name":"lookup_batched_98pct","ops_per_sec":0.5"#,
        );
        let report = compare_against_baseline(&parse(&ft_slow).unwrap(), &ft_base);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("series.lookup_batched_98pct")));
    }

    fn matrix_cell(backend: &str, tcp: u16, mpps: f64) -> String {
        format!(
            r#"{{"occupancy_pct":25,"shards":1,"queues":1,"backend":"{backend}","tcp_permille":{tcp},"flows":16383,"mpps":{mpps},"ci95_mpps":[{:.3},{:.3}],"mean_ns":150.0,"samples":7000,"outliers_rejected":64}}"#,
            mpps * 0.95,
            mpps * 1.05
        )
    }

    fn minimal_matrix() -> String {
        format!(
            r#"{{"bench":"scenario_matrix","table_capacity":65535,"packets_per_cell":7064,
                "expiry_ns":60000000000,"tcp_transitory_ns":4000000000,"tcp_established_ns":120000000000,
                "axes":{{"occupancy_pct":[25],"shards":[1],"queues":[1],"backend":["sim","faultio"],"tcp_permille":[0,1000]}},
                "cells":[{},{},{},{}]}}"#,
            matrix_cell("sim", 0, 6.0),
            matrix_cell("sim", 1000, 5.5),
            matrix_cell("faultio", 0, 5.9),
            matrix_cell("faultio", 1000, 5.4)
        )
    }

    #[test]
    fn matrix_validator_accepts_good_and_flags_broken() {
        let good = parse(&minimal_matrix()).unwrap();
        assert!(
            check_matrix(&good).0.is_empty(),
            "{:?}",
            check_matrix(&good).0
        );

        // A dropped cell is a coverage hole, not a smaller valid file.
        let broken =
            minimal_matrix().replace(&format!(",{}", matrix_cell("faultio", 1000, 5.4)), "");
        assert_ne!(broken, minimal_matrix(), "fixture must contain the cell");
        let probs = check_matrix(&parse(&broken).unwrap());
        assert!(
            probs.0.iter().any(|p| p.contains("coverage hole")),
            "{:?}",
            probs.0
        );

        // A duplicated cell must be flagged too (same combination
        // twice means some other combination is missing or the runner
        // double-counted).
        let broken = minimal_matrix().replace(
            &matrix_cell("faultio", 1000, 5.4),
            &matrix_cell("faultio", 0, 5.4),
        );
        let probs = check_matrix(&parse(&broken).unwrap());
        assert!(
            probs.0.iter().any(|p| p.contains("appears 2 times")),
            "{:?}",
            probs.0
        );

        // An undeclared axis value in a cell: the combination key
        // misses every declared combination.
        let broken = minimal_matrix().replace(
            r#""occupancy_pct":25,"shards":1,"queues":1,"backend":"faultio","tcp_permille":1000"#,
            r#""occupancy_pct":90,"shards":1,"queues":1,"backend":"faultio","tcp_permille":1000"#,
        );
        let probs = check_matrix(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("coverage hole")));

        // Inverted bootstrap interval on a cell.
        let broken = minimal_matrix().replace("[5.225,5.775]", "[5.775,5.225]");
        assert_ne!(broken, minimal_matrix());
        let probs = check_matrix(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("lo <= hi")));

        // Homogeneous lifetimes: the TCP-mix axis would stop
        // exercising the per-class wheels.
        let broken = minimal_matrix()
            .replace(
                r#""tcp_transitory_ns":4000000000"#,
                r#""tcp_transitory_ns":60000000000"#,
            )
            .replace(
                r#""tcp_established_ns":120000000000"#,
                r#""tcp_established_ns":60000000000"#,
            );
        let probs = check_matrix(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("heterogeneous")));

        // A missing axis must be flagged.
        let broken = minimal_matrix().replace(r#""queues":[1]"#, r#""queues_renamed":[1]"#);
        let probs = check_matrix(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("axes.queues")));

        // Zero-sample cells are not measurements.
        let broken = minimal_matrix().replace(r#""samples":7000"#, r#""samples":0"#);
        let probs = check_matrix(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("samples")));
    }

    #[test]
    fn baseline_policy_thresholds_and_suppression() {
        let baseline = parse(&minimal_matrix()).unwrap();

        // A 7% drop on one cell: passes the default 10% gate...
        let slow7 = minimal_matrix().replace(
            &matrix_cell("sim", 1000, 5.5),
            &matrix_cell("sim", 1000, 5.5 * 0.93),
        );
        let doc7 = parse(&slow7).unwrap();
        let report = compare_against_baseline(&doc7, &baseline);
        assert!(report.failures.is_empty(), "{:?}", report.failures);

        // ...fails a tightened --fail-under 5...
        let tight = BaselinePolicy {
            fail_under_pct: 5.0,
            ..BaselinePolicy::default()
        };
        let report = compare_against_baseline_with(&doc7, &baseline, &tight);
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("cell.o25.q1.s1.sim.tcp1000") && f.contains("budget: 5%")),
            "{:?}",
            report.failures
        );

        // ...and warns under --warn-under 3 even though the shifted
        // bootstrap intervals still overlap the baseline's.
        let soft = BaselinePolicy {
            warn_under_pct: Some(3.0),
            ..BaselinePolicy::default()
        };
        let report = compare_against_baseline_with(&doc7, &baseline, &soft);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("cell.o25.q1.s1.sim.tcp1000") && w.contains("warn threshold")),
            "{:?}",
            report.warnings
        );

        // A big drop on a series the current run measured with too few
        // samples is suppressed under --min-samples, not failed — and
        // the suppression is visible in the report.
        let short = slow7.replace(
            &matrix_cell("sim", 1000, 5.5 * 0.93),
            &matrix_cell("sim", 1000, 2.0).replace(r#""samples":7000"#, r#""samples":3"#),
        );
        let doc_short = parse(&short).unwrap();
        let floor = BaselinePolicy {
            min_samples: 100.0,
            ..BaselinePolicy::default()
        };
        let report = compare_against_baseline_with(&doc_short, &baseline, &floor);
        assert!(
            !report
                .failures
                .iter()
                .any(|f| f.contains("cell.o25.q1.s1.sim.tcp1000")),
            "{:?}",
            report.failures
        );
        assert!(
            report
                .suppressed
                .iter()
                .any(|s| s.contains("cell.o25.q1.s1.sim.tcp1000") && s.contains("100-sample floor")),
            "{:?}",
            report.suppressed
        );
        // Without the floor, the same short series fails — suppression
        // is opt-in.
        let report = compare_against_baseline(&doc_short, &baseline);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("cell.o25.q1.s1.sim.tcp1000")));
    }

    #[test]
    fn the_committed_trajectory_files_pass() {
        // The actual gate CI runs: the trajectory files at the
        // workspace root must validate (if this fails, a bench
        // refactor broke them).
        for name in [
            "BENCH_flowtable.json",
            "BENCH_throughput.json",
            "BENCH_matrix.json",
        ] {
            let path = crate::workspace_root().join(name);
            match check_file(&path) {
                Ok(_) => {}
                Err(e) => panic!("{e}"),
            }
        }
    }
}
