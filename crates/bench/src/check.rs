//! `vig_bench --check`: schema validation for the committed
//! perf-trajectory files (`BENCH_flowtable.json`,
//! `BENCH_throughput.json`).
//!
//! The trajectory files gate performance regressions across PRs, so a
//! bench refactor that silently emits a malformed file — a missing
//! gate metric, an inverted confidence interval, a series length that
//! no longer matches the flow-count axis — would disarm the gate
//! without anyone noticing. This module re-parses the committed files
//! with a tiny self-contained JSON reader (the environment is
//! offline: no serde) and checks the structural invariants every
//! consumer assumes. CI runs it as a cheap PR step.
//!
//! With `--baseline <file>`, a fresh run is additionally compared
//! against a committed baseline ([`compare_against_baseline`]): any
//! named rate that dropped more than 10% below the baseline median
//! fails, a smaller slowdown with non-overlapping bootstrap intervals
//! warns, and series new in this run are reported but never judged.

use std::fmt::Write as _;

/// A parsed JSON value (object keys keep file order).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (f64 is exact for every value the benches emit).
    Num(f64),
    /// String (escapes resolved).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in file order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document (strict enough for the bench files: objects,
/// arrays, strings with `\"`/`\\`/`\/`/`\n`/`\t`/`\uXXXX`, numbers,
/// booleans, null).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at offset {} (found {:?})",
            c as char,
            pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        fields.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(String::from)?;
                        let cp =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("unknown escape '\\{}'", esc as char)),
                }
            }
            _ => out.push(c as char),
        }
    }
    Err("unterminated string".into())
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

/// Accumulates check failures with a path-like context.
#[derive(Debug, Default)]
pub struct Problems(pub Vec<String>);

impl Problems {
    fn fail(&mut self, what: impl Into<String>) {
        self.0.push(what.into());
    }

    fn require_num(&mut self, v: &Json, path: &str, min_exclusive: f64) -> Option<f64> {
        match v.get(path).and_then(Json::num) {
            Some(n) if n > min_exclusive => Some(n),
            Some(n) => {
                self.fail(format!("{path}: {n} must be > {min_exclusive}"));
                None
            }
            None => {
                self.fail(format!("{path}: missing or not a number"));
                None
            }
        }
    }
}

/// One [`crate::Series`]-shaped object (the flowtable series rows).
fn check_series_row(p: &mut Problems, row: &Json, ctx: &str) {
    let Some(name) = row.get("name").and_then(Json::str) else {
        p.fail(format!("{ctx}: series row without a name"));
        return;
    };
    let ctx = format!("{ctx}.{name}");
    for field in ["ops_per_sec", "p50_ns", "p99_ns", "mean_ns"] {
        if row.get(field).and_then(Json::num).map(|n| n > 0.0) != Some(true) {
            p.fail(format!("{ctx}.{field}: missing or non-positive"));
        }
    }
    if row.get("ci95_ns").and_then(Json::num).map(|n| n >= 0.0) != Some(true) {
        p.fail(format!("{ctx}.ci95_ns: missing or negative"));
    }
    if row.get("samples").and_then(Json::num).map(|n| n >= 1.0) != Some(true) {
        p.fail(format!("{ctx}.samples: missing or < 1"));
    }
    if let (Some(p50), Some(p99)) = (
        row.get("p50_ns").and_then(Json::num),
        row.get("p99_ns").and_then(Json::num),
    ) {
        if p99 + 1e-9 < p50 {
            p.fail(format!("{ctx}: p99 ({p99}) < p50 ({p50})"));
        }
    }
}

/// Validate `BENCH_flowtable.json`: identity, gate metrics
/// (`batched_speedup_at_*`, the `lookup_batched_98pct` gate series),
/// well-formed statistics on every series row, and the million-flow
/// churn section with its exact wheel/scan expiry parity.
pub fn check_flowtable(doc: &Json) -> Problems {
    let mut p = Problems::default();
    if doc.get("bench").and_then(Json::str) != Some("micro_flowtable") {
        p.fail("bench: expected \"micro_flowtable\"");
    }
    p.require_num(doc, "table_capacity", 0.0);
    p.require_num(doc, "burst", 0.0);
    // The gate metrics the perf trajectory is judged on.
    p.require_num(doc, "batched_speedup_at_50pct", 0.0);
    p.require_num(doc, "batched_speedup_at_99pct", 0.0);
    match doc.get("series").and_then(Json::arr) {
        Some(rows) if !rows.is_empty() => {
            for row in rows {
                check_series_row(&mut p, row, "series");
            }
            for gate in [
                "lookup_batched_98pct",
                "natstep_batched_98pct",
                "churn_step_wheel_1m",
                "churn_step_scan_1m",
            ] {
                if !rows
                    .iter()
                    .any(|r| r.get("name").and_then(Json::str) == Some(gate))
                {
                    p.fail(format!("series: gate series '{gate}' missing"));
                }
            }
        }
        _ => p.fail("series: missing or empty"),
    }
    // The million-flow churn section: both expiry engines ran the same
    // deterministic schedule, so the committed file must witness exact
    // expiry parity — wheel ≡ scan, visible in the artifact.
    match doc.get("churn") {
        Some(ch) => {
            match ch.get("table_capacity").and_then(Json::num) {
                Some(c) if c >= (1u64 << 20) as f64 => {}
                _ => p.fail("churn.table_capacity: missing or below 2^20 (million-flow gate)"),
            }
            if ch.get("occupancy_end").and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                p.fail("churn.occupancy_end: missing or non-positive");
            }
            let wheel = ch.get("expired_wheel").and_then(Json::num);
            let scan = ch.get("expired_scan").and_then(Json::num);
            match (wheel, scan) {
                (Some(w), Some(s)) if w > 0.0 && s > 0.0 => {
                    if w != s {
                        p.fail(format!(
                            "churn: expired_wheel ({w}) != expired_scan ({s}) — \
                             wheel/scan expiry parity broken"
                        ));
                    }
                }
                _ => p.fail("churn.expired_wheel/expired_scan: missing or non-positive"),
            }
        }
        None => p.fail("churn: missing"),
    }
    p
}

/// Validate `BENCH_throughput.json`: identity, the flow-count axis,
/// per-series rate vectors aligned with it, well-formed bootstrap
/// confidence intervals, the sweep sections, and the million-flow churn
/// section (sustained rates for both expiry engines plus a well-formed
/// latency CCDF).
pub fn check_throughput(doc: &Json) -> Problems {
    let mut p = Problems::default();
    if doc.get("bench").and_then(Json::str) != Some("fig14_throughput") {
        p.fail("bench: expected \"fig14_throughput\"");
    }
    let axis_len = match doc.get("flow_counts").and_then(Json::arr) {
        Some(fc) if !fc.is_empty() => {
            let vals: Vec<f64> = fc.iter().filter_map(Json::num).collect();
            if vals.len() != fc.len() || vals.windows(2).any(|w| w[0] >= w[1]) {
                p.fail("flow_counts: must be strictly increasing numbers");
            }
            fc.len()
        }
        _ => {
            p.fail("flow_counts: missing or empty");
            0
        }
    };
    match doc.get("series").and_then(Json::arr) {
        Some(rows) if !rows.is_empty() => {
            for row in rows {
                let name = row.get("name").and_then(Json::str).unwrap_or("?");
                let ctx = format!("series.{name}");
                match row.get("mpps_per_flow_count").and_then(Json::arr) {
                    Some(v) if v.len() == axis_len => {
                        if !v.iter().all(|x| x.num().is_some_and(|n| n > 0.0)) {
                            p.fail(format!(
                                "{ctx}.mpps_per_flow_count: non-numeric or non-positive rate"
                            ));
                        }
                    }
                    Some(v) => p.fail(format!(
                        "{ctx}.mpps_per_flow_count: {} points for {} flow counts",
                        v.len(),
                        axis_len
                    )),
                    None => p.fail(format!("{ctx}.mpps_per_flow_count: missing")),
                }
                // Deliberately NOT checked: that the point estimate
                // lies inside its interval. The point comes from the
                // RFC 2544 search over the full filtered series while
                // the CI bootstraps per-trial sub-searches (different
                // statistics — see `search_rate_with_ci`), and on a
                // noisy host the no-op series legitimately lands
                // outside; enforcing containment would fail honest
                // data.
                match row.get("mpps_ci95_per_flow_count").and_then(Json::arr) {
                    Some(cis) if cis.len() == axis_len => {
                        for (i, ci) in cis.iter().enumerate() {
                            let pair: Vec<f64> = ci
                                .arr()
                                .map(|a| a.iter().filter_map(Json::num).collect())
                                .unwrap_or_default();
                            match pair.as_slice() {
                                [lo, hi] if 0.0 < *lo && lo <= hi => {}
                                _ => p.fail(format!(
                                    "{ctx}.mpps_ci95_per_flow_count[{i}]: not a [lo, hi] \
                                     pair with 0 < lo <= hi"
                                )),
                            }
                        }
                    }
                    Some(cis) => p.fail(format!(
                        "{ctx}.mpps_ci95_per_flow_count: {} intervals for {} flow counts",
                        cis.len(),
                        axis_len
                    )),
                    None => p.fail(format!("{ctx}.mpps_ci95_per_flow_count: missing")),
                }
            }
            // The gate series the trajectory is judged on.
            for gate in ["noop", "verified", "verified_batched"] {
                if !rows
                    .iter()
                    .any(|r| r.get("name").and_then(Json::str) == Some(gate))
                {
                    p.fail(format!("series: gate series '{gate}' missing"));
                }
            }
        }
        _ => p.fail("series: missing or empty"),
    }
    for section in ["verified_seq", "verified_batched"] {
        if let Some(obj) = doc.get(section) {
            let p50 = obj.get("p50_ns").and_then(Json::num);
            let p99 = obj.get("p99_ns").and_then(Json::num);
            match (p50, p99) {
                (Some(a), Some(b)) if 0.0 < a && a <= b => {}
                _ => p.fail(format!("{section}: needs 0 < p50_ns <= p99_ns")),
            }
        } else {
            p.fail(format!("{section}: missing"));
        }
    }
    for (sweep, axis) in [("sharded_sweep", "shards"), ("multiqueue_sweep", "queues")] {
        match doc
            .get(sweep)
            .and_then(|s| s.get("points"))
            .and_then(Json::arr)
        {
            Some(points) if !points.is_empty() => {
                for (i, pt) in points.iter().enumerate() {
                    if pt.get(axis).and_then(Json::num).map(|n| n >= 1.0) != Some(true) {
                        p.fail(format!("{sweep}.points[{i}].{axis}: missing or < 1"));
                    }
                    if pt.get("mpps").and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                        p.fail(format!("{sweep}.points[{i}].mpps: missing or non-positive"));
                    }
                }
            }
            _ => p.fail(format!("{sweep}.points: missing or empty")),
        }
    }
    // The pinned-runtime scaling curve. Deliberately NOT checked: any
    // speedup — the curve is honest wall-clock data, and a one-core
    // runner produces a legitimately flat curve. What must hold is the
    // attribution: real core counts, pin outcomes bounded by the worker
    // count, and well-formed bootstrap intervals.
    match doc.get("scaling_curve") {
        Some(curve) => {
            let cores = curve.get("host_cores").and_then(Json::num);
            if cores.map(|n| n >= 1.0) != Some(true) {
                p.fail("scaling_curve.host_cores: missing or < 1");
            }
            if curve.get("pinning_requested").is_none() {
                p.fail("scaling_curve.pinning_requested: missing");
            }
            match curve.get("points").and_then(Json::arr) {
                Some(points) if !points.is_empty() => {
                    let mut prev_workers = 0.0;
                    for (i, pt) in points.iter().enumerate() {
                        let workers = pt.get("workers").and_then(Json::num);
                        match workers {
                            Some(w) if w >= 1.0 && w > prev_workers => prev_workers = w,
                            _ => p.fail(format!(
                                "scaling_curve.points[{i}].workers: missing, < 1, or not \
                                 strictly increasing"
                            )),
                        }
                        for rate in ["mpps", "wallclock_mpps"] {
                            if pt.get(rate).and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                                p.fail(format!(
                                    "scaling_curve.points[{i}].{rate}: missing or non-positive"
                                ));
                            }
                        }
                        let ci: Vec<f64> = pt
                            .get("ci95_mpps")
                            .and_then(Json::arr)
                            .map(|a| a.iter().filter_map(Json::num).collect())
                            .unwrap_or_default();
                        match ci.as_slice() {
                            [lo, hi] if 0.0 < *lo && lo <= hi => {}
                            _ => p.fail(format!(
                                "scaling_curve.points[{i}].ci95_mpps: not a [lo, hi] pair \
                                 with 0 < lo <= hi"
                            )),
                        }
                        let pinned = pt.get("pinned_workers").and_then(Json::num);
                        match (pinned, workers) {
                            (Some(pn), Some(w)) if 0.0 <= pn && pn <= w => {}
                            _ => p.fail(format!(
                                "scaling_curve.points[{i}].pinned_workers: missing or not \
                                 in 0..=workers"
                            )),
                        }
                    }
                }
                _ => p.fail("scaling_curve.points: missing or empty"),
            }
        }
        None => p.fail("scaling_curve: missing"),
    }
    // The fault-layer identity gate: the chaos seam must be free when
    // disarmed. The committed trajectory carries the measured overhead
    // of an empty-schedule `FaultIo` on the batched event-driven step,
    // and it must stay under 2% — negative overhead (wrapped measured
    // faster) is host noise and passes.
    match doc.get("fault_overhead") {
        Some(fo) => {
            for field in ["bare_mpps", "faultio_empty_mpps"] {
                if fo.get(field).and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                    p.fail(format!("fault_overhead.{field}: missing or non-positive"));
                }
            }
            match fo.get("overhead_pct").and_then(Json::num) {
                Some(o) if o < 2.0 => {}
                Some(o) => p.fail(format!(
                    "fault_overhead.overhead_pct: {o}% — empty-schedule FaultIo must stay \
                     under the 2% identity gate"
                )),
                None => p.fail("fault_overhead.overhead_pct: missing"),
            }
        }
        None => p.fail("fault_overhead: missing"),
    }
    // The cross-the-wire RFC 2544 section: a committed trajectory must
    // carry a *real* wire run (available: true), both OS transports
    // with honest error counters, and the zero-copy speedup the mmap
    // backend is accountable to: ≥ 1.5x over the per-frame transport
    // on hosts with ≥ 2 cores. On a single-core rig the gate relaxes
    // to ≥ 1.15x: there every veth transmit (xmit + peer-delivery
    // softirq, ≈ 1.3 µs/frame measured) runs synchronously on the
    // measured core and is paid identically by both transports,
    // compressing the achievable ratio — zero-copy's savings are
    // RX-side (≈ 0.53 µs vs ≈ 0.99 µs per frame), which against the
    // shared transmit floor caps the whole-loop ratio near 1.25x.
    // See docs/BENCHMARKS.md, "Reading the speedup".
    match doc.get("os_wire_rfc2544") {
        Some(w) => {
            match w.get("available") {
                Some(Json::Bool(true)) => {
                    match w.get("sim") {
                        Some(sim) => {
                            if sim.get("mpps").and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                                p.fail("os_wire_rfc2544.sim.mpps: missing or non-positive");
                            }
                        }
                        None => p.fail("os_wire_rfc2544.sim: missing"),
                    }
                    for transport in ["os_frame", "os_mmap"] {
                        let ctx = format!("os_wire_rfc2544.{transport}");
                        let Some(pt) = w.get(transport) else {
                            p.fail(format!("{ctx}: missing"));
                            continue;
                        };
                        if pt.get("mpps").and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                            p.fail(format!("{ctx}.mpps: missing or non-positive"));
                        }
                        let ci: Vec<f64> = pt
                            .get("ci95_mpps")
                            .and_then(Json::arr)
                            .map(|a| a.iter().filter_map(Json::num).collect())
                            .unwrap_or_default();
                        match ci.as_slice() {
                            [lo, hi] if 0.0 < *lo && lo <= hi => {}
                            _ => p.fail(format!(
                                "{ctx}.ci95_mpps: not a [lo, hi] pair with 0 < lo <= hi"
                            )),
                        }
                        if pt.get("kernel_drops").and_then(Json::num).is_none() {
                            p.fail(format!("{ctx}.kernel_drops: missing"));
                        }
                        // A rate measured with failed sends or receive
                        // errors is not a rate: the honesty counters
                        // must witness a clean run.
                        for counter in ["tx_errors", "rx_errors"] {
                            match pt.get(counter).and_then(Json::num) {
                                Some(0.0) => {}
                                Some(n) => p.fail(format!(
                                    "{ctx}.{counter}: {n} — the committed wire run must be clean"
                                )),
                                None => p.fail(format!("{ctx}.{counter}: missing")),
                            }
                        }
                    }
                    let cores = w.get("host_cores").and_then(Json::num);
                    if !matches!(cores, Some(c) if c >= 1.0) {
                        p.fail("os_wire_rfc2544.host_cores: missing or < 1");
                    }
                    let gate = if cores.map(|c| c >= 2.0) == Some(true) {
                        1.5
                    } else {
                        1.15
                    };
                    match w.get("mmap_vs_frame_speedup").and_then(Json::num) {
                        Some(s) if s >= gate => {}
                        Some(s) => p.fail(format!(
                            "os_wire_rfc2544.mmap_vs_frame_speedup: {s} below the {gate}x \
                             zero-copy gate"
                        )),
                        None => p.fail("os_wire_rfc2544.mmap_vs_frame_speedup: missing"),
                    }
                }
                Some(Json::Bool(false)) => p.fail(
                    "os_wire_rfc2544.available: false — the committed trajectory must carry \
                     a real wire run (regenerate with CAP_NET_RAW/CAP_NET_ADMIN)",
                ),
                _ => p.fail("os_wire_rfc2544.available: missing or not a bool"),
            }
        }
        None => p.fail("os_wire_rfc2544: missing"),
    }
    // Million-flow churn: sustained rates for both expiry engines and a
    // Fig. 13-style latency CCDF (strictly increasing latencies,
    // non-increasing tail probabilities in (0, 1]).
    match doc.get("churn") {
        Some(ch) => {
            let cap = ch.get("table_capacity").and_then(Json::num);
            match cap {
                Some(c) if c >= (1u64 << 20) as f64 => {}
                _ => p.fail("churn.table_capacity: missing or below 2^20 (million-flow gate)"),
            }
            match (ch.get("occupancy_end").and_then(Json::num), cap) {
                (Some(o), Some(c)) if 0.0 < o && o <= c => {}
                _ => p.fail("churn.occupancy_end: missing or not in (0, table_capacity]"),
            }
            if ch
                .get("expired_during_churn")
                .and_then(Json::num)
                .map(|n| n > 0.0)
                != Some(true)
            {
                p.fail("churn.expired_during_churn: missing or non-positive");
            }
            match ch.get("sustained").and_then(Json::arr) {
                Some(rows) if !rows.is_empty() => {
                    for (i, row) in rows.iter().enumerate() {
                        if row.get("mpps").and_then(Json::num).map(|n| n > 0.0) != Some(true) {
                            p.fail(format!(
                                "churn.sustained[{i}].mpps: missing or non-positive"
                            ));
                        }
                        let ci: Vec<f64> = row
                            .get("ci95_mpps")
                            .and_then(Json::arr)
                            .map(|a| a.iter().filter_map(Json::num).collect())
                            .unwrap_or_default();
                        match ci.as_slice() {
                            [lo, hi] if 0.0 < *lo && lo <= hi => {}
                            _ => p.fail(format!(
                                "churn.sustained[{i}].ci95_mpps: not a [lo, hi] pair with \
                                 0 < lo <= hi"
                            )),
                        }
                    }
                    for engine in ["wheel", "scan"] {
                        if !rows
                            .iter()
                            .any(|r| r.get("expiry").and_then(Json::str) == Some(engine))
                        {
                            p.fail(format!("churn.sustained: expiry engine '{engine}' missing"));
                        }
                    }
                }
                _ => p.fail("churn.sustained: missing or empty"),
            }
            match ch
                .get("latency_ccdf")
                .and_then(|c| c.get("points"))
                .and_then(Json::arr)
            {
                Some(points) if points.len() >= 2 => {
                    let mut prev_lat = 0.0f64;
                    let mut prev_ccdf = f64::INFINITY;
                    for (i, pt) in points.iter().enumerate() {
                        match pt.get("latency_ns").and_then(Json::num) {
                            Some(l) if l > prev_lat => prev_lat = l,
                            _ => p.fail(format!(
                                "churn.latency_ccdf.points[{i}].latency_ns: missing, \
                                 non-positive, or not strictly increasing"
                            )),
                        }
                        match pt.get("ccdf").and_then(Json::num) {
                            Some(c) if 0.0 < c && c <= 1.0 && c <= prev_ccdf => prev_ccdf = c,
                            Some(c) if 0.0 < c && c <= 1.0 => p.fail(format!(
                                "churn.latency_ccdf.points[{i}].ccdf: must be non-increasing"
                            )),
                            _ => p.fail(format!(
                                "churn.latency_ccdf.points[{i}].ccdf: missing or not in (0, 1]"
                            )),
                        }
                    }
                }
                _ => p.fail("churn.latency_ccdf.points: missing or fewer than 2 points"),
            }
        }
        None => p.fail("churn: missing"),
    }
    p
}

/// Check one file against the validator picked by its `bench` field.
/// Returns a human-readable failure report, or `Ok(bench_name)`.
pub fn check_file(path: &std::path::Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let doc = parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    let bench = doc
        .get("bench")
        .and_then(Json::str)
        .unwrap_or("<missing bench field>")
        .to_string();
    let problems = match bench.as_str() {
        "micro_flowtable" => check_flowtable(&doc),
        "fig14_throughput" => check_throughput(&doc),
        other => {
            return Err(format!(
                "{}: unknown bench kind '{other}' (expected micro_flowtable or fig14_throughput)",
                path.display()
            ))
        }
    };
    if problems.0.is_empty() {
        Ok(bench)
    } else {
        let mut msg = format!("{}: {} problem(s)\n", path.display(), problems.0.len());
        for prob in &problems.0 {
            let _ = writeln!(msg, "  - {prob}");
        }
        Err(msg)
    }
}

/// Parse one trajectory file into its [`Json`] document.
pub fn load(path: &std::path::Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN rates"));
    v[v.len() / 2]
}

/// One named rate with its optional bootstrap CI, as flattened out of
/// a trajectory document for baseline comparison.
type RatePoint = (String, f64, Option<(f64, f64)>);

/// A two-element `ci95_mpps` array, or `None` for any other shape.
fn ci_pair(v: &Json) -> Option<(f64, f64)> {
    let pair: Vec<f64> = v.arr()?.iter().filter_map(Json::num).collect();
    match pair.as_slice() {
        [lo, hi] => Some((*lo, *hi)),
        _ => None,
    }
}

/// Every named rate a trajectory document carries, flattened to
/// `(name, rate, optional bootstrap CI)` for baseline comparison.
/// Multi-point series (the per-flow-count vectors) collapse to their
/// medians so a single noisy sweep point cannot trip the gate alone.
fn rate_points(doc: &Json) -> Vec<RatePoint> {
    let mut out: Vec<RatePoint> = Vec::new();
    if let Some(rows) = doc.get("series").and_then(Json::arr) {
        for row in rows {
            let Some(name) = row.get("name").and_then(Json::str) else {
                continue;
            };
            if let Some(v) = row.get("mpps_per_flow_count").and_then(Json::arr) {
                // fig14 sweep series: median rate, element-wise median CI.
                let mut vals: Vec<f64> = v.iter().filter_map(Json::num).collect();
                if vals.is_empty() {
                    continue;
                }
                let ci = row
                    .get("mpps_ci95_per_flow_count")
                    .and_then(Json::arr)
                    .and_then(|cis| {
                        let mut lo = Vec::new();
                        let mut hi = Vec::new();
                        for c in cis {
                            let (l, h) = ci_pair(c)?;
                            lo.push(l);
                            hi.push(h);
                        }
                        (!lo.is_empty()).then(|| (median(&mut lo), median(&mut hi)))
                    });
                out.push((format!("series.{name}"), median(&mut vals), ci));
            } else if let Some(ops) = row.get("ops_per_sec").and_then(Json::num) {
                // micro_flowtable series: ops/s point estimate.
                out.push((format!("series.{name}"), ops, None));
            }
        }
    }
    if let Some(points) = doc
        .get("scaling_curve")
        .and_then(|c| c.get("points"))
        .and_then(Json::arr)
    {
        for pt in points {
            if let (Some(w), Some(m)) = (
                pt.get("workers").and_then(Json::num),
                pt.get("mpps").and_then(Json::num),
            ) {
                let ci = pt.get("ci95_mpps").and_then(ci_pair);
                out.push((format!("scaling_curve.workers{w}"), m, ci));
            }
        }
    }
    if let Some(rows) = doc
        .get("churn")
        .and_then(|c| c.get("sustained"))
        .and_then(Json::arr)
    {
        for row in rows {
            if let (Some(engine), Some(m)) = (
                row.get("expiry").and_then(Json::str),
                row.get("mpps").and_then(Json::num),
            ) {
                let ci = row.get("ci95_mpps").and_then(ci_pair);
                out.push((format!("churn.{engine}"), m, ci));
            }
        }
    }
    for (section, key_a, key_b) in [
        ("multiqueue_sweep", "queues", Some("shards")),
        ("sharded_sweep", "shards", None),
    ] {
        if let Some(points) = doc
            .get(section)
            .and_then(|s| s.get("points"))
            .and_then(Json::arr)
        {
            for pt in points {
                let (Some(a), Some(m)) = (
                    pt.get(key_a).and_then(Json::num),
                    pt.get("mpps").and_then(Json::num),
                ) else {
                    continue;
                };
                let name = match key_b.and_then(|k| pt.get(k).and_then(Json::num)) {
                    Some(b) => format!("{section}.{key_a}{a}x{b}"),
                    None => format!("{section}.{key_a}{a}"),
                };
                out.push((name, m, None));
            }
        }
    }
    if let Some(w) = doc.get("os_wire_rfc2544") {
        for transport in ["sim", "os_frame", "os_mmap"] {
            if let Some(pt) = w.get(transport) {
                if let Some(m) = pt.get("mpps").and_then(Json::num) {
                    let ci = pt.get("ci95_mpps").and_then(ci_pair);
                    out.push((format!("os_wire.{transport}"), m, ci));
                }
            }
        }
    }
    out
}

/// Outcome of comparing a fresh run against a committed baseline.
#[derive(Debug, Default)]
pub struct BaselineReport {
    /// Hard regressions: a rate dropped more than 10% below baseline,
    /// or a baseline series vanished from this run. Non-empty fails
    /// `vig_bench --check --baseline`.
    pub failures: Vec<String>,
    /// Soft signals: the run is slower and the bootstrap intervals
    /// don't overlap, but the drop is within the 10% budget.
    pub warnings: Vec<String>,
    /// Series present in this run but not in the baseline — reported,
    /// never judged (a new series has no history to regress against).
    pub new_series: Vec<String>,
    /// Series compared against the baseline.
    pub compared: usize,
}

/// Compare a freshly generated trajectory document against a committed
/// baseline of the same bench kind: fail any rate that dropped more
/// than 10% below the baseline median (or vanished outright), warn
/// when a smaller slowdown is still outside both bootstrap intervals,
/// and suppress series that are new in this run.
pub fn compare_against_baseline(current: &Json, baseline: &Json) -> BaselineReport {
    let mut report = BaselineReport::default();
    let cur = rate_points(current);
    let base = rate_points(baseline);
    for (name, b_rate, b_ci) in &base {
        let Some((_, c_rate, c_ci)) = cur.iter().find(|(n, _, _)| n == name) else {
            report.failures.push(format!(
                "{name}: present in baseline but missing from this run — a vanished series \
                 disarms the gate"
            ));
            continue;
        };
        report.compared += 1;
        if *c_rate < b_rate * 0.9 {
            report.failures.push(format!(
                "{name}: {c_rate:.3} is {:.1}% below baseline {b_rate:.3} (budget: 10%)",
                (1.0 - c_rate / b_rate) * 100.0
            ));
        } else if let (Some((b_lo, _)), Some((_, c_hi))) = (b_ci, c_ci) {
            if c_rate < b_rate && c_hi < b_lo {
                report.warnings.push(format!(
                    "{name}: {c_rate:.3} vs baseline {b_rate:.3} — slower with \
                     non-overlapping 95% intervals (within the 10% budget)"
                ));
            }
        }
    }
    for (name, _, _) in &cur {
        if !base.iter().any(|(n, _, _)| n == name) {
            report.new_series.push(name.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_roundtrips_the_shapes_the_benches_emit() {
        let doc =
            parse(r#"{"a": 1.5, "b": [1, 2e3, -4], "c": {"d": "x\ny", "e": true, "f": null}}"#)
                .unwrap();
        assert_eq!(doc.get("a").and_then(Json::num), Some(1.5));
        assert_eq!(doc.get("b").and_then(Json::arr).unwrap().len(), 3);
        assert_eq!(
            doc.get("c").and_then(|c| c.get("d")).and_then(Json::str),
            Some("x\ny")
        );
        assert_eq!(doc.get("c").and_then(|c| c.get("f")), Some(&Json::Null));
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("{} garbage").is_err());
    }

    fn minimal_flowtable() -> String {
        let row = |name: &str| {
            format!(
                r#"{{"name":"{name}","ops_per_sec":1.0,"p50_ns":10.0,"p99_ns":20.0,"mean_ns":11.0,"ci95_ns":0.1,"samples":100,"outliers_rejected":0}}"#
            )
        };
        format!(
            r#"{{"bench":"micro_flowtable","table_capacity":100,"burst":32,
                "batched_speedup_at_50pct":2.0,"batched_speedup_at_99pct":1.5,
                "churn":{{"table_capacity":1048576,"active_window":800000,
                    "occupancy_end":950000,"expired_wheel":4000,"expired_scan":4000}},
                "series":[{},{},{},{}]}}"#,
            row("lookup_batched_98pct"),
            row("natstep_batched_98pct"),
            row("churn_step_wheel_1m"),
            row("churn_step_scan_1m")
        )
    }

    #[test]
    fn flowtable_validator_accepts_good_and_flags_broken() {
        let good = parse(&minimal_flowtable()).unwrap();
        assert!(
            check_flowtable(&good).0.is_empty(),
            "{:?}",
            check_flowtable(&good).0
        );

        // Drop the gate metric: must be flagged.
        let broken = minimal_flowtable().replace("batched_speedup_at_50pct", "renamed_away");
        let doc = parse(&broken).unwrap();
        let probs = check_flowtable(&doc);
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("batched_speedup_at_50pct")));

        // Remove the gate series: must be flagged.
        let broken = minimal_flowtable().replace("lookup_batched_98pct", "lookup_other");
        let probs = check_flowtable(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("lookup_batched_98pct")));

        // Inverted percentiles: must be flagged.
        let broken = minimal_flowtable().replace(r#""p99_ns":20.0"#, r#""p99_ns":5.0"#);
        let probs = check_flowtable(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("p99")));

        // Wheel/scan expiry-count divergence: the parity witness the
        // churn section exists for.
        let broken =
            minimal_flowtable().replace(r#""expired_scan":4000"#, r#""expired_scan":3999"#);
        let probs = check_flowtable(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("parity broken")));

        // Churn at sub-million capacity must not satisfy the gate.
        let broken =
            minimal_flowtable().replace(r#""table_capacity":1048576"#, r#""table_capacity":65535"#);
        let probs = check_flowtable(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("below 2^20")));

        // Dropping the churn section entirely must be flagged.
        let broken = minimal_flowtable().replace(r#""churn""#, r#""churn_renamed""#);
        let probs = check_flowtable(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("churn: missing")));

        // The churn gate series must be present.
        let broken = minimal_flowtable().replace("churn_step_wheel_1m", "churn_step_other");
        let probs = check_flowtable(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("churn_step_wheel_1m") && p.contains("missing")));
    }

    fn minimal_throughput() -> String {
        let series = |name: &str| {
            format!(
                r#"{{"name":"{name}","mpps_per_flow_count":[1.0,2.0],"mpps_ci95_per_flow_count":[[0.9,1.1],[1.8,2.2]]}}"#
            )
        };
        format!(
            r#"{{"bench":"fig14_throughput","flow_counts":[1000,64000],
                "series":[{},{},{}],
                "verified_seq":{{"p50_ns":100,"p99_ns":300}},
                "verified_batched":{{"p50_ns":80,"p99_ns":200}},
                "sharded_sweep":{{"points":[{{"shards":1,"mpps":10.0}}]}},
                "scaling_curve":{{"host_cores":1,"pinning_requested":true,
                    "points":[{{"workers":1,"mpps":5.0,"ci95_mpps":[4.5,5.5],"wallclock_mpps":4.0,"pinned_workers":1}},
                              {{"workers":2,"mpps":6.0,"ci95_mpps":[5.5,6.5],"wallclock_mpps":4.5,"pinned_workers":2}}]}},
                "multiqueue_sweep":{{"points":[{{"queues":1,"shards":1,"mpps":8.0}}]}},
                "fault_overhead":{{"trials":5,"bare_mpps":8.0,"faultio_empty_mpps":7.95,"overhead_pct":0.6}},
                "os_wire_rfc2544":{{"available":true,"queues":2,"shards":2,"host_cores":2,
                    "sim":{{"mpps":4.0,"ci95_mpps":[3.8,4.2]}},
                    "os_frame":{{"mpps":0.5,"ci95_mpps":[0.45,0.55],"kernel_drops":0,"tx_errors":0,"rx_errors":0}},
                    "os_mmap":{{"mpps":1.0,"ci95_mpps":[0.9,1.1],"kernel_drops":0,"tx_errors":0,"rx_errors":0}},
                    "mmap_vs_frame_speedup":2.0}},
                "churn":{{"table_capacity":1048576,"occupancy_end":970000,
                    "expired_during_churn":7500,
                    "sustained":[{{"expiry":"wheel","mpps":3.0,"ci95_mpps":[2.8,3.2]}},
                                 {{"expiry":"scan","mpps":2.9,"ci95_mpps":[2.7,3.1]}}],
                    "latency_ccdf":{{"expiry":"wheel","points":[{{"latency_ns":200,"ccdf":0.5}},{{"latency_ns":400,"ccdf":0.01}}]}}}}}}"#,
            series("noop"),
            series("verified"),
            series("verified_batched")
        )
    }

    #[test]
    fn throughput_validator_accepts_good_and_flags_broken() {
        let good = parse(&minimal_throughput()).unwrap();
        assert!(
            check_throughput(&good).0.is_empty(),
            "{:?}",
            check_throughput(&good).0
        );

        // Axis mismatch: one rate for two flow counts.
        let broken = minimal_throughput().replace(
            r#""mpps_per_flow_count":[1.0,2.0]"#,
            r#""mpps_per_flow_count":[1.0]"#,
        );
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("points for")));

        // Non-numeric rates of the right length must not pass
        // vacuously.
        let broken = minimal_throughput().replace(
            r#""mpps_per_flow_count":[1.0,2.0]"#,
            r#""mpps_per_flow_count":[null,null]"#,
        );
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("non-numeric")));

        // Inverted interval.
        let broken = minimal_throughput().replace("[0.9,1.1]", "[1.1,0.9]");
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("lo <= hi")));

        // Missing gate series.
        let broken = minimal_throughput().replace(r#""name":"verified_batched""#, r#""name":"x""#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("verified_batched") && p.contains("missing")));

        // Missing scaling curve entirely.
        let broken = minimal_throughput().replace(r#""scaling_curve""#, r#""renamed_curve""#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("scaling_curve: missing")));

        // Worker counts must increase strictly.
        let broken = minimal_throughput().replace(r#""workers":2"#, r#""workers":1"#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("strictly increasing")));

        // Pin attribution must be bounded by the worker count.
        let broken = minimal_throughput().replace(r#""pinned_workers":2"#, r#""pinned_workers":3"#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("pinned_workers")));

        // Inverted bootstrap interval on a curve point.
        let broken = minimal_throughput().replace("[4.5,5.5]", "[5.5,4.5]");
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("ci95_mpps") && p.contains("lo <= hi")));

        // Dropping the churn section entirely must be flagged.
        let broken = minimal_throughput().replace(r#""churn""#, r#""churn_renamed""#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("churn: missing")));

        // Both expiry engines must appear in the sustained rates.
        let broken = minimal_throughput().replace(r#""expiry":"scan""#, r#""expiry":"lru""#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("expiry engine 'scan' missing")));

        // Inverted sustained-rate interval.
        let broken = minimal_throughput().replace("[2.8,3.2]", "[3.2,2.8]");
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("churn.sustained") && p.contains("lo <= hi")));

        // CCDF latencies must increase strictly.
        let broken = minimal_throughput().replace(r#""latency_ns":400"#, r#""latency_ns":200"#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("latency_ns") && p.contains("strictly increasing")));

        // CCDF tail probabilities must not increase with latency.
        let broken = minimal_throughput().replace(r#""ccdf":0.01"#, r#""ccdf":0.75"#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("non-increasing")));

        // CCDF values must stay inside (0, 1].
        let broken = minimal_throughput().replace(r#""ccdf":0.5"#, r#""ccdf":1.5"#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("not in (0, 1]")));

        // A skipped wire run must not validate as a committed
        // trajectory.
        let broken = minimal_throughput().replace(
            r#""available":true"#,
            r#""available":false,"reason":"EPERM""#,
        );
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("available: false") && p.contains("real wire run")));

        // Dropping the wire section entirely must be flagged.
        let broken = minimal_throughput().replace(r#""os_wire_rfc2544""#, r#""renamed_wire""#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("os_wire_rfc2544: missing")));

        // The zero-copy speedup gate: below 1.5x must fail on a
        // multi-core host.
        let broken = minimal_throughput().replace(
            r#""mmap_vs_frame_speedup":2.0"#,
            r#""mmap_vs_frame_speedup":1.2"#,
        );
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("1.5x")));

        // On a single-core rig the same ratio passes the relaxed gate
        // (both transports share the synchronous veth transmit there),
        // but a ratio below even the relaxed floor still fails.
        let single = broken.replace(r#""host_cores":2"#, r#""host_cores":1"#);
        let probs = check_throughput(&parse(&single).unwrap());
        assert!(
            !probs.0.iter().any(|p| p.contains("zero-copy gate")),
            "{:?}",
            probs.0
        );
        let single_low = minimal_throughput()
            .replace(
                r#""mmap_vs_frame_speedup":2.0"#,
                r#""mmap_vs_frame_speedup":1.05"#,
            )
            .replace(r#""host_cores":2"#, r#""host_cores":1"#);
        let probs = check_throughput(&parse(&single_low).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("1.15x")));

        // The gate cannot be dodged by omitting the core count.
        let no_cores = minimal_throughput().replace(r#""host_cores":2,"#, "");
        let probs = check_throughput(&parse(&no_cores).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("os_wire_rfc2544.host_cores")));

        // A wire run with failed sends is not a measurement.
        let broken = minimal_throughput().replace(
            r#""mpps":1.0,"ci95_mpps":[0.9,1.1],"kernel_drops":0,"tx_errors":0"#,
            r#""mpps":1.0,"ci95_mpps":[0.9,1.1],"kernel_drops":0,"tx_errors":3"#,
        );
        assert_ne!(broken, minimal_throughput());
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("os_mmap.tx_errors") && p.contains("clean")));

        // A missing transport point must be flagged.
        let broken = minimal_throughput().replace(r#""os_mmap""#, r#""os_other""#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("os_wire_rfc2544.os_mmap: missing")));

        // The fault-layer identity gate: overhead at or above 2% fails.
        let broken = minimal_throughput().replace(r#""overhead_pct":0.6"#, r#""overhead_pct":3.4"#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("overhead_pct") && p.contains("2% identity gate")));

        // Negative overhead (wrapped measured faster — host noise) is
        // honest data and passes.
        let noisy = minimal_throughput().replace(r#""overhead_pct":0.6"#, r#""overhead_pct":-0.3"#);
        let probs = check_throughput(&parse(&noisy).unwrap());
        assert!(probs.0.is_empty(), "{:?}", probs.0);

        // Dropping the section disarms the gate — flagged.
        let broken = minimal_throughput().replace(r#""fault_overhead""#, r#""renamed_fault""#);
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs
            .0
            .iter()
            .any(|p| p.contains("fault_overhead: missing")));

        // A one-point CCDF is not a curve.
        let broken = minimal_throughput().replace(r#",{"latency_ns":400,"ccdf":0.01}"#, "");
        assert_ne!(
            broken,
            minimal_throughput(),
            "fixture must contain the point"
        );
        let probs = check_throughput(&parse(&broken).unwrap());
        assert!(probs.0.iter().any(|p| p.contains("fewer than 2 points")));
    }

    #[test]
    fn baseline_compare_fails_big_drops_warns_ci_gaps_suppresses_new_series() {
        let baseline = parse(&minimal_throughput()).unwrap();

        // Identical run: clean bill.
        let same = compare_against_baseline(&baseline, &baseline);
        assert!(same.failures.is_empty(), "{:?}", same.failures);
        assert!(same.warnings.is_empty(), "{:?}", same.warnings);
        assert!(same.new_series.is_empty());
        assert!(same.compared >= 10, "compared only {}", same.compared);

        // >10% median drop on a sweep series: hard failure.
        let slow = minimal_throughput().replace(
            r#""name":"verified","mpps_per_flow_count":[1.0,2.0]"#,
            r#""name":"verified","mpps_per_flow_count":[0.8,1.6]"#,
        );
        let report = compare_against_baseline(&parse(&slow).unwrap(), &baseline);
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("series.verified") && f.contains("below baseline")),
            "{:?}",
            report.failures
        );

        // Slower but within budget, with disjoint intervals: a warning,
        // not a failure. (Baseline os_mmap: 1.0 [0.9, 1.1].)
        let wobble = minimal_throughput().replace(
            r#""os_mmap":{"mpps":1.0,"ci95_mpps":[0.9,1.1]"#,
            r#""os_mmap":{"mpps":0.92,"ci95_mpps":[0.85,0.89]"#,
        );
        let report = compare_against_baseline(&parse(&wobble).unwrap(), &baseline);
        assert!(
            !report
                .failures
                .iter()
                .any(|f| f.contains("os_wire.os_mmap")),
            "{:?}",
            report.failures
        );
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("os_wire.os_mmap") && w.contains("non-overlapping")),
            "{:?}",
            report.warnings
        );

        // A series only in the current run is reported, never judged.
        let grown = minimal_throughput().replace(
            r#""series":[{"name":"noop""#,
            r#""series":[{"name":"brand_new","mpps_per_flow_count":[9.0,9.0],"mpps_ci95_per_flow_count":[[8.0,10.0],[8.0,10.0]]},{"name":"noop""#,
        );
        let report = compare_against_baseline(&parse(&grown).unwrap(), &baseline);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(report.new_series.contains(&"series.brand_new".to_string()));

        // A series that vanished from the current run is a failure —
        // deleting a slow series must not green the gate.
        let report = compare_against_baseline(&baseline, &parse(&grown).unwrap());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("series.brand_new") && f.contains("vanished")));

        // Flowtable documents compare on ops_per_sec.
        let ft_base = parse(&minimal_flowtable()).unwrap();
        let ft_slow = minimal_flowtable().replace(
            r#""name":"lookup_batched_98pct","ops_per_sec":1.0"#,
            r#""name":"lookup_batched_98pct","ops_per_sec":0.5"#,
        );
        let report = compare_against_baseline(&parse(&ft_slow).unwrap(), &ft_base);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("series.lookup_batched_98pct")));
    }

    #[test]
    fn the_committed_trajectory_files_pass() {
        // The actual gate CI runs: the two files at the workspace root
        // must validate (if this fails, a bench refactor broke them).
        for name in ["BENCH_flowtable.json", "BENCH_throughput.json"] {
            let path = crate::workspace_root().join(name);
            match check_file(&path) {
                Ok(_) => {}
                Err(e) => panic!("{e}"),
            }
        }
    }
}
