//! Shared plumbing for the benchmark harness (table rendering, run
//! sizing, the wire-latency constant).
//!
//! Every bench target prints a paper-style table to stdout; the
//! `EXPERIMENTS.md` tables are regenerated from these outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Documented constant added when reporting *absolute* latencies
/// (nanoseconds): the paper's numbers include wire, PCIe and NIC DMA
/// time on both sides of the middlebox, which the simulator does not
/// model. The no-op baseline measured ~4.75 µs on the paper's testbed,
/// of which NAT-specific processing is zero, so we use the paper's
/// no-op figure minus our measured no-op processing as the fixed
/// environment offset. Reported in both raw and offset forms; the
/// *shape* claims never depend on it.
pub const WIRE_BASE_NS: u64 = 4_650;

/// Run benches in full (paper-scale) mode when `VIGNAT_BENCH_FULL=1`;
/// default is a quick mode sized to finish the whole suite in minutes.
pub fn full_mode() -> bool {
    std::env::var("VIGNAT_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Background-flow counts for the x-axis of Fig. 12/13/14.
/// Paper: 1k .. 64k. Quick mode trims the sweep.
pub fn flow_sweep() -> Vec<usize> {
    if full_mode() {
        vec![
            1_000, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 64_000,
        ]
    } else {
        vec![1_000, 8_000, 24_000, 48_000, 64_000]
    }
}

/// Probe packets per latency point.
pub fn probe_count() -> usize {
    if full_mode() {
        400
    } else {
        60
    }
}

/// Packets measured per throughput point.
pub fn throughput_packets() -> usize {
    if full_mode() {
        400_000
    } else {
        60_000
    }
}

/// Render an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format nanoseconds as microseconds with two decimals.
pub fn us(ns: f64) -> String {
    format!("{:.2}", ns / 1_000.0)
}

/// The workspace root (where `BENCH_*.json` results land), resolved
/// from this crate's manifest directory so it works no matter which
/// directory `cargo bench` runs the target from.
pub fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| std::path::PathBuf::from("."))
}

/// Write a machine-readable result file at the workspace root and echo
/// its path, so every bench run leaves a perf-trajectory artifact for
/// later PRs to compare against.
pub fn write_result_json(filename: &str, json: &str) {
    let path = workspace_root().join(filename);
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("\nwrote {}", path.display());
}

/// Summary statistics of one benchmark series, JSON-serializable via
/// [`Series::to_json`].
#[derive(Debug, Clone)]
pub struct Series {
    /// Series name (e.g. "lookup_single_50pct").
    pub name: String,
    /// Operations per second (packets, lookups — the series' unit).
    pub ops_per_sec: f64,
    /// Median per-op latency, nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile per-op latency, nanoseconds.
    pub p99_ns: f64,
}

impl Series {
    /// Build a series from per-op nanosecond samples.
    pub fn from_samples(name: impl Into<String>, per_op_ns: &mut [f64]) -> Series {
        assert!(!per_op_ns.is_empty(), "series needs samples");
        per_op_ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let pick = |p: f64| {
            let rank = ((p * per_op_ns.len() as f64).ceil() as usize).clamp(1, per_op_ns.len());
            per_op_ns[rank - 1]
        };
        let mean = per_op_ns.iter().sum::<f64>() / per_op_ns.len() as f64;
        Series {
            name: name.into(),
            ops_per_sec: if mean > 0.0 { 1e9 / mean } else { 0.0 },
            p50_ns: pick(0.50),
            p99_ns: pick(0.99),
        }
    }

    /// One JSON object line for this series.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"name":"{}","ops_per_sec":{:.1},"p50_ns":{:.1},"p99_ns":{:.1}}}"#,
            self.name, self.ops_per_sec, self.p50_ns, self.p99_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_sane() {
        let s = flow_sweep();
        assert!(s.first().copied().unwrap() >= 1_000);
        assert_eq!(s.last().copied().unwrap(), 64_000);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn formatting() {
        assert_eq!(us(5_130.0), "5.13");
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
