//! Shared plumbing for the benchmark harness (table rendering, run
//! sizing, the wire-latency constant).
//!
//! Every bench target prints a paper-style table to stdout; the
//! `EXPERIMENTS.md` tables are regenerated from these outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Documented constant added when reporting *absolute* latencies
/// (nanoseconds): the paper's numbers include wire, PCIe and NIC DMA
/// time on both sides of the middlebox, which the simulator does not
/// model. The no-op baseline measured ~4.75 µs on the paper's testbed,
/// of which NAT-specific processing is zero, so we use the paper's
/// no-op figure minus our measured no-op processing as the fixed
/// environment offset. Reported in both raw and offset forms; the
/// *shape* claims never depend on it.
pub const WIRE_BASE_NS: u64 = 4_650;

/// Run benches in full (paper-scale) mode when `VIGNAT_BENCH_FULL=1`;
/// default is a quick mode sized to finish the whole suite in minutes.
pub fn full_mode() -> bool {
    std::env::var("VIGNAT_BENCH_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Background-flow counts for the x-axis of Fig. 12/13/14.
/// Paper: 1k .. 64k. Quick mode trims the sweep.
pub fn flow_sweep() -> Vec<usize> {
    if full_mode() {
        vec![1_000, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 64_000]
    } else {
        vec![1_000, 8_000, 24_000, 48_000, 64_000]
    }
}

/// Probe packets per latency point.
pub fn probe_count() -> usize {
    if full_mode() {
        400
    } else {
        60
    }
}

/// Packets measured per throughput point.
pub fn throughput_packets() -> usize {
    if full_mode() {
        400_000
    } else {
        60_000
    }
}

/// Render an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format nanoseconds as microseconds with two decimals.
pub fn us(ns: f64) -> String {
    format!("{:.2}", ns / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_sane() {
        let s = flow_sweep();
        assert!(s.first().copied().unwrap() >= 1_000);
        assert_eq!(s.last().copied().unwrap(), 64_000);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn formatting() {
        assert_eq!(us(5_130.0), "5.13");
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
