//! Shared plumbing for the benchmark harness (table rendering, run
//! sizing, the wire-latency constant).
//!
//! Every bench target prints a paper-style table to stdout; the
//! `EXPERIMENTS.md` tables are regenerated from these outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod matrix;
pub mod os_wire;

/// Documented constant added when reporting *absolute* latencies
/// (nanoseconds): the paper's numbers include wire, PCIe and NIC DMA
/// time on both sides of the middlebox, which the simulator does not
/// model. The no-op baseline measured ~4.75 µs on the paper's testbed,
/// of which NAT-specific processing is zero, so we use the paper's
/// no-op figure minus our measured no-op processing as the fixed
/// environment offset. Reported in both raw and offset forms; the
/// *shape* claims never depend on it.
pub const WIRE_BASE_NS: u64 = 4_650;

/// Run benches in full (paper-scale) mode when `VIGNAT_BENCH_FULL=1`;
/// default is a quick mode sized to finish the whole suite in minutes.
pub fn full_mode() -> bool {
    std::env::var("VIGNAT_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Background-flow counts for the x-axis of Fig. 12/13/14.
/// Paper: 1k .. 64k. Quick mode trims the sweep.
pub fn flow_sweep() -> Vec<usize> {
    if full_mode() {
        vec![
            1_000, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 64_000,
        ]
    } else {
        vec![1_000, 8_000, 24_000, 48_000, 64_000]
    }
}

/// Probe packets per latency point.
pub fn probe_count() -> usize {
    if full_mode() {
        400
    } else {
        60
    }
}

/// Packets measured per throughput point.
pub fn throughput_packets() -> usize {
    if full_mode() {
        400_000
    } else {
        60_000
    }
}

/// Measured identity price of the disarmed fault layer (the PR 9
/// `fault_overhead` section of `BENCH_throughput.json`).
#[derive(Debug, Clone, Copy)]
pub struct FaultOverhead {
    /// Interleaved trials per side.
    pub trials: usize,
    /// Median rate of the bare sim backend, Mpps.
    pub bare_mpps: f64,
    /// Median rate wrapped in `FaultIo(FaultPlan::none())`, Mpps.
    pub faultio_empty_mpps: f64,
    /// Median over trials of the paired per-trial delta of *median*
    /// per-packet service times,
    /// `(wrapped_median_ns − bare_median_ns) / bare_median_ns`,
    /// percent. A run's median is untouched by scheduler/steal bursts
    /// that contaminate under half its samples, and the outer median
    /// discards the pairs a burst straddled — stable on a shared host
    /// where mean- or rate-based deltas swing several percent, and
    /// what the under-2% gate `vig_bench --check` enforces.
    pub overhead_pct: f64,
}

impl FaultOverhead {
    /// The `"fault_overhead": {...}` JSON section, ready to embed.
    pub fn section_json(&self) -> String {
        format!(
            "\"fault_overhead\": {{\n    \"driver\": \"event-driven batched drive, sim backend, \
             2 queues x 2 shards\",\n    \"trials\": {},\n    \"bare_mpps\": {:.3},\n    \
             \"faultio_empty_mpps\": {:.3},\n    \"overhead_pct\": {:.3}\n  }}",
            self.trials, self.bare_mpps, self.faultio_empty_mpps, self.overhead_pct
        )
    }
}

/// Measure the fault layer's identity overhead: the batched
/// event-driven drive (2 queues × 2 shards, cache-resident flow
/// working set, sim backend) bare vs wrapped in an empty-schedule
/// `FaultIo`. `bare_mpps`/`faultio_empty_mpps` come from the same
/// RFC 2544 rate search as every other trajectory rate; the gated
/// `overhead_pct` is the noise-robust paired-median statistic (see
/// [`FaultOverhead::overhead_pct`]). Trials alternate measurement
/// order so slow host drift hits both sides equally.
pub fn measure_fault_overhead(
    cfg: &vig_spec::NatConfig,
    trials: usize,
    packets: usize,
) -> FaultOverhead {
    use netsim::backend::{FaultIo, FaultPlan, SimBackend};
    use netsim::eventloop::event_driven_service_times_on;
    use netsim::frame_env::RssClassifier;
    use netsim::harness::search_rate_filtered;
    use netsim::middlebox::ShardedVigNatMb;

    // Small flow working set, deliberately: a cache-resident baseline
    // is the *strictest* setting for a relative overhead gate (the
    // wrapper's fixed cost divides by the cheapest per-packet time),
    // and it keeps the untimed populate phase short so the paired
    // bare/wrapped runs interleave tightly in wall time.
    let flows = 1024.min(cfg.capacity / 2);
    // Per run: (loss-search rate in Mpps, median per-packet ns).
    let stats_of = |mut svc: netsim::harness::LatencySamples| {
        let mpps = search_rate_filtered(&svc, 512).0;
        svc.ns.sort_unstable();
        (mpps, svc.ns[svc.ns.len() / 2] as f64)
    };
    let run_bare = |_: usize| {
        let mut nf = ShardedVigNatMb::sharded(*cfg, 2);
        stats_of(event_driven_service_times_on(
            SimBackend::new(RssClassifier::for_nat(cfg, 2), 512),
            &mut nf,
            flows,
            packets,
            cfg.expiry_ns,
        ))
    };
    let run_wrapped = |_: usize| {
        let mut nf = ShardedVigNatMb::sharded(*cfg, 2);
        stats_of(event_driven_service_times_on(
            FaultIo::new(
                SimBackend::new(RssClassifier::for_nat(cfg, 2), 512),
                FaultPlan::none(),
            ),
            &mut nf,
            flows,
            packets,
            cfg.expiry_ns,
        ))
    };
    let mut bare_rates = Vec::with_capacity(trials);
    let mut fault_rates = Vec::with_capacity(trials);
    let mut overheads = Vec::with_capacity(trials);
    for t in 0..trials {
        // Alternate measurement order within each pair so warm-up and
        // slow host drift hit both sides equally. Each run's statistic
        // is the *median* per-packet service time (untouched by
        // scheduler bursts contaminating under half the run), and the
        // pairs a burst straddled fall to the outer median below —
        // far steadier than a delta of means or loss-search rates.
        let (bare, wrapped) = if t % 2 == 0 {
            let b = run_bare(t);
            (b, run_wrapped(t))
        } else {
            let w = run_wrapped(t);
            (run_bare(t), w)
        };
        bare_rates.push(bare.0);
        fault_rates.push(wrapped.0);
        overheads.push((wrapped.1 - bare.1) / bare.1 * 100.0);
    }
    let median_of = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN rates"));
        v[v.len() / 2]
    };
    FaultOverhead {
        trials,
        bare_mpps: median_of(&mut bare_rates),
        faultio_empty_mpps: median_of(&mut fault_rates),
        overhead_pct: median_of(&mut overheads),
    }
}

/// Render an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format nanoseconds as microseconds with two decimals.
pub fn us(ns: f64) -> String {
    format!("{:.2}", ns / 1_000.0)
}

/// The workspace root (where `BENCH_*.json` results land), resolved
/// from this crate's manifest directory so it works no matter which
/// directory `cargo bench` runs the target from.
pub fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| std::path::PathBuf::from("."))
}

/// Write a machine-readable result file at the workspace root and echo
/// its path, so every bench run leaves a perf-trajectory artifact for
/// later PRs to compare against.
pub fn write_result_json(filename: &str, json: &str) {
    let path = workspace_root().join(filename);
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("\nwrote {}", path.display());
}

/// MAD outlier rejection (float and integer-ns variants) plus the
/// Iglewicz–Hoaglin cutoff — the canonical implementation lives in the
/// measurement harness (`netsim::harness`), where every RFC 2544 rate
/// search applies it; re-exported here so bench statistics
/// ([`Series`]) and rate searches can never diverge.
pub use netsim::harness::{mad_filter, mad_filter_ns, MAD_Z_CUTOFF};

/// Bootstrap confidence intervals for the RFC 2544 rate searches (the
/// per-trial resampling machinery lives beside the searches in
/// `netsim::harness`; re-exported here like the MAD filter so bench
/// statistics and rate searches share one implementation).
pub use netsim::harness::{
    bootstrap_mean_ci95, per_trial_rates, search_rate_with_ci, RateEstimate, RATE_CI_RESAMPLES,
    RATE_CI_TRIALS,
};

/// Summary statistics of one benchmark series, JSON-serializable via
/// [`Series::to_json`]. Built with MAD outlier rejection and a 95%
/// confidence interval on the mean (the ROADMAP's "criterion-grade
/// statistics" for the vendored-offline environment, which has no
/// criterion).
#[derive(Debug, Clone)]
pub struct Series {
    /// Series name (e.g. "lookup_single_50pct").
    pub name: String,
    /// Operations per second (packets, lookups — the series' unit),
    /// from the outlier-rejected mean.
    pub ops_per_sec: f64,
    /// Median per-op latency, nanoseconds (post-rejection).
    pub p50_ns: f64,
    /// 99th-percentile per-op latency, nanoseconds (post-rejection).
    pub p99_ns: f64,
    /// Mean per-op latency, nanoseconds (post-rejection).
    pub mean_ns: f64,
    /// Half-width of the 95% confidence interval of the mean
    /// (`1.96·s/√n` over the retained samples), nanoseconds.
    pub ci95_ns: f64,
    /// Samples the series was computed over (post-rejection).
    pub samples: usize,
    /// Samples rejected as MAD outliers.
    pub outliers_rejected: usize,
}

impl Series {
    /// Build a series from per-op nanosecond samples: MAD-reject
    /// outliers, then compute rate, percentiles, mean, and the 95% CI
    /// over the retained samples. (`per_op_ns` is sorted in place.)
    pub fn from_samples(name: impl Into<String>, per_op_ns: &mut [f64]) -> Series {
        assert!(!per_op_ns.is_empty(), "series needs samples");
        per_op_ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let (kept, outliers_rejected) = mad_filter(per_op_ns);
        let pick = |p: f64| {
            let rank = ((p * kept.len() as f64).ceil() as usize).clamp(1, kept.len());
            kept[rank - 1]
        };
        let n = kept.len() as f64;
        let mean = kept.iter().sum::<f64>() / n;
        let var = kept.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n.max(1.0);
        let ci95 = if kept.len() > 1 {
            1.96 * (var / n).sqrt()
        } else {
            0.0
        };
        Series {
            name: name.into(),
            ops_per_sec: if mean > 0.0 { 1e9 / mean } else { 0.0 },
            p50_ns: pick(0.50),
            p99_ns: pick(0.99),
            mean_ns: mean,
            ci95_ns: ci95,
            samples: kept.len(),
            outliers_rejected,
        }
    }

    /// One JSON object line for this series.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"name":"{}","ops_per_sec":{:.1},"p50_ns":{:.1},"p99_ns":{:.1},"mean_ns":{:.1},"ci95_ns":{:.1},"samples":{},"outliers_rejected":{}}}"#,
            self.name,
            self.ops_per_sec,
            self.p50_ns,
            self.p99_ns,
            self.mean_ns,
            self.ci95_ns,
            self.samples,
            self.outliers_rejected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_sane() {
        let s = flow_sweep();
        assert!(s.first().copied().unwrap() >= 1_000);
        assert_eq!(s.last().copied().unwrap(), 64_000);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn formatting() {
        assert_eq!(us(5_130.0), "5.13");
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn mad_filter_rejects_the_descheduled_burst() {
        // 99 quiet samples around 100 ns plus one 100x outlier (the
        // BENCH_throughput.json pathology): the outlier goes, the quiet
        // samples stay.
        let mut samples: Vec<f64> = (0..99).map(|i| 95.0 + (i % 11) as f64).collect();
        samples.push(10_000.0);
        let (kept, rejected) = mad_filter(&samples);
        assert_eq!(rejected, 1);
        assert_eq!(kept.len(), 99);
        assert!(kept.iter().all(|&x| x < 1_000.0));
    }

    #[test]
    fn mad_filter_keeps_everything_when_quiet() {
        let samples = vec![100.0; 64];
        let (kept, rejected) = mad_filter(&samples);
        assert_eq!((kept.len(), rejected), (64, 0), "zero MAD: no rejection");
        let jittered: Vec<f64> = (0..64).map(|i| 100.0 + (i % 7) as f64).collect();
        let (kept, rejected) = mad_filter(&jittered);
        assert_eq!(
            (kept.len(), rejected),
            (64, 0),
            "small jitter: no rejection"
        );
    }

    #[test]
    fn series_reports_ci_and_outliers() {
        let mut samples: Vec<f64> = (0..200).map(|i| 90.0 + (i % 21) as f64).collect();
        samples.push(50_000.0);
        let s = Series::from_samples("t", &mut samples);
        assert_eq!(s.outliers_rejected, 1);
        assert_eq!(s.samples, 200);
        assert!(s.mean_ns > 89.0 && s.mean_ns < 112.0, "mean {}", s.mean_ns);
        assert!(s.ci95_ns > 0.0 && s.ci95_ns < 5.0, "ci {}", s.ci95_ns);
        let json = s.to_json();
        assert!(json.contains("\"ci95_ns\""));
        assert!(json.contains("\"outliers_rejected\":1"));
    }

    #[test]
    fn mad_filter_ns_roundtrips_integers() {
        let (kept, rejected) = mad_filter_ns(&[100, 101, 99, 100, 9_000, 100, 101, 99, 100]);
        assert_eq!(rejected, 1);
        assert!(kept.iter().all(|&x| x < 1_000));
    }
}
