//! The cross-the-wire RFC 2544 section of `BENCH_throughput.json`.
//!
//! One function, [`section_json`], runs the three-way saturation
//! measurement — simulated backend, per-frame `AF_PACKET` transport,
//! zero-copy mmap-ring transport — over real veth wires
//! (`netsim::backend::os::os_wire_rfc2544`) and renders the JSON
//! object the trajectory file commits. The fig. 14 bench and the CI
//! example both call it, so the committed section and the CI artifact
//! can never drift apart in shape.
//!
//! The run needs `CAP_NET_RAW` + `CAP_NET_ADMIN` (it creates veth
//! pairs). Without them — or off Linux — the section degrades to
//! `{"available": false, "reason": ...}`, which `vig_bench --check`
//! rejects in a *committed* file: the trajectory must carry a real
//! wire run.

/// RSS queues per direction for the wire measurement.
pub const QUEUES: usize = 2;
/// NAT shards behind the event loop.
pub const SHARDS: usize = 2;
/// Descriptor-ring size (frames per queue FIFO).
pub const RING: usize = 256;

/// Escape a reason string into a JSON literal body.
fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn unavailable(reason: &str) -> String {
    println!("os_wire_rfc2544: SKIPPED ({reason})");
    format!(r#"{{"available": false, "reason": "{}"}}"#, esc(reason))
}

/// Run the three-way cross-wire RFC 2544 measurement and render the
/// `os_wire_rfc2544` JSON section (plus a one-line stdout summary).
/// `flows` background flows, `packets` measured packets per transport.
#[cfg(target_os = "linux")]
pub fn section_json(flows: usize, packets: usize) -> String {
    use libvig::time::Time;
    use netsim::backend::os::{os_wire_rfc2544, OsWirePoint};
    use vig_packet::Ip4;
    use vig_spec::NatConfig;

    let cfg = NatConfig {
        capacity: 65_535,
        expiry_ns: Time::from_secs(60).nanos(), // flows never expire mid-run
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1,
        ..NatConfig::paper_default()
    };
    let report = match os_wire_rfc2544(&cfg, QUEUES, SHARDS, flows, packets, RING, "vgw") {
        Ok(r) => r,
        Err(e) => return unavailable(&format!("wire run failed: {e}")),
    };

    let point = |p: &OsWirePoint| {
        format!(
            r#"{{"mpps": {:.3}, "ci95_mpps": [{:.3}, {:.3}], "mean_ns": {:.1}, "outliers_rejected": {}, "kernel_drops": {}, "tx_errors": {}, "rx_errors": {}}}"#,
            p.rate.mpps,
            p.rate.ci95_lo_mpps,
            p.rate.ci95_hi_mpps,
            p.rate.mean_ns,
            p.rate.outliers_rejected,
            p.kernel_drops,
            p.tx_errors,
            p.rx_errors
        )
    };
    let speedup = report.os_mmap.rate.mpps / report.os_frame.rate.mpps;
    // Recorded so `vig_bench --check` can scale the zero-copy gate to
    // what the host can express: on a single-core rig every veth
    // transmit is synchronous on the measured core and shared by both
    // transports, compressing the achievable ratio (see
    // docs/BENCHMARKS.md, "Reading the speedup").
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "os_wire_rfc2544: sim {:.2} | per-frame {:.2} | mmap {:.2} Mpps (mmap/per-frame {speedup:.2}x; \
         drops f={} m={}, tx_err f={} m={})",
        report.sim.mpps,
        report.os_frame.rate.mpps,
        report.os_mmap.rate.mpps,
        report.os_frame.kernel_drops,
        report.os_mmap.kernel_drops,
        report.os_frame.tx_errors,
        report.os_mmap.tx_errors,
    );
    format!(
        "{{\n    \"available\": true,\n    \"queues\": {QUEUES},\n    \"shards\": {SHARDS},\n    \"ring\": {RING},\n    \"flows\": {flows},\n    \"packets\": {packets},\n    \"host_cores\": {host_cores},\n    \"wire\": \"veth pairs, AF_PACKET both transports\",\n    \"sim\": {{\"mpps\": {:.3}, \"ci95_mpps\": [{:.3}, {:.3}], \"mean_ns\": {:.1}, \"outliers_rejected\": {}}},\n    \"os_frame\": {},\n    \"os_mmap\": {},\n    \"mmap_vs_frame_speedup\": {speedup:.3}\n  }}",
        report.sim.mpps,
        report.sim.ci95_lo_mpps,
        report.sim.ci95_hi_mpps,
        report.sim.mean_ns,
        report.sim.outliers_rejected,
        point(&report.os_frame),
        point(&report.os_mmap),
    )
}

/// Off Linux there is no `AF_PACKET`: the section is honestly absent.
#[cfg(not(target_os = "linux"))]
pub fn section_json(_flows: usize, _packets: usize) -> String {
    unavailable("AF_PACKET transports need Linux")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unavailable_sections_are_valid_json_with_escaped_reasons() {
        let s = unavailable("veth \"create\" failed\nEPERM");
        let doc = crate::check::parse(&s).expect("valid JSON");
        assert_eq!(doc.get("available"), Some(&crate::check::Json::Bool(false)));
        assert!(doc
            .get("reason")
            .and_then(crate::check::Json::str)
            .unwrap()
            .contains("EPERM"));
    }
}
