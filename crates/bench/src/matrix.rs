//! `vig_bench --matrix`: the scenario-matrix CI runner.
//!
//! One benchmark per *cell* of the cross product
//!
//! ```text
//! occupancy × shards × queues × backend × TCP/UDP mix
//! ```
//!
//! Every cell drives the same sharded NAT through the same
//! event-driven RFC 2544 measurement loop
//! ([`netsim::eventloop::event_driven_service_times_gen`]); only the
//! cell's coordinates change. The TCP/UDP-mix axis routes flows
//! through the per-class expiry wheels (TCP flows carry distinct
//! transitory/established lifetimes in the cell config), so a new
//! behavior added to the NAT is automatically priced across the whole
//! scenario space instead of only at the single configuration a
//! hand-picked bench happens to measure. The `backend` axis runs each
//! cell bare (`sim`) and wrapped in the disarmed fault layer
//! (`faultio`), extending the fault-overhead identity gate from one
//! configuration to the full matrix.
//!
//! The emitted `BENCH_matrix.json` carries one JSON object per cell
//! (rate, bootstrap CI, mean service time, retained sample count).
//! `vig_bench --check` validates the file structurally — including
//! that the cells cover the declared axes *exactly* (no silently
//! dropped cell can green the gate) — and `--baseline` judges every
//! cell's rate against a committed run.

use netsim::backend::{FaultIo, FaultPlan, SimBackend};
use netsim::eventloop::event_driven_service_times_gen;
use netsim::frame_env::RssClassifier;
use netsim::harness::{search_rate_with_ci, RateEstimate};
use netsim::middlebox::ShardedVigNatMb;
use netsim::tester::FlowGen;
use vig_packet::Ip4;
use vig_spec::NatConfig;

/// Flow-table capacity of every cell (single external IP, full port
/// range — the fig14 configuration).
pub const TABLE_CAPACITY: usize = 65_535;

/// Occupancy axis, percent of [`TABLE_CAPACITY`] resident during the
/// timed rounds.
pub const OCCUPANCY_PCT: [usize; 2] = [25, 90];

/// Shard-count axis (flow-table shards behind the RSS classifier).
pub const SHARDS: [usize; 2] = [1, 2];

/// RX-queue axis (RSS queues feeding the event loop).
pub const QUEUES: [usize; 2] = [1, 2];

/// Backend axis: the bare simulated NIC, and the same NIC wrapped in
/// an empty-schedule [`FaultIo`] — the disarmed chaos seam must stay
/// free in every cell class, not just the one `fault_overhead`
/// measures.
pub const BACKENDS: [&str; 2] = ["sim", "faultio"];

/// Workload-mix axis: per-thousand share of TCP flows (the rest UDP).
pub const TCP_PERMILLE: [u16; 3] = [0, 500, 1000];

/// Cell config: per-class lifetimes are heterogeneous on purpose, so
/// every TCP-bearing cell runs the per-class wheel path rather than
/// collapsing to the homogeneous single-wheel fast case.
fn cell_cfg() -> NatConfig {
    NatConfig {
        capacity: TABLE_CAPACITY,
        expiry_ns: libvig::time::Time::from_secs(60).nanos(),
        tcp_transitory_ns: libvig::time::Time::from_secs(4).nanos(),
        tcp_established_ns: libvig::time::Time::from_secs(120).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1,
        ..NatConfig::paper_default()
    }
}

/// One measured cell of the scenario matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Occupancy coordinate, percent of [`TABLE_CAPACITY`].
    pub occupancy_pct: usize,
    /// Shard-count coordinate.
    pub shards: usize,
    /// Queue-count coordinate.
    pub queues: usize,
    /// Backend coordinate (`"sim"` or `"faultio"`).
    pub backend: &'static str,
    /// TCP share coordinate, per thousand flows.
    pub tcp_permille: u16,
    /// Resident flows during the timed rounds.
    pub flows: usize,
    /// Timed packets measured in this cell.
    pub packets: usize,
    /// The RFC 2544 rate estimate with its bootstrap CI.
    pub est: RateEstimate,
}

impl Cell {
    /// The cell's name in baseline comparisons (stable across runs:
    /// coordinates only, no measured values).
    pub fn name(&self) -> String {
        format!(
            "cell.o{}.q{}.s{}.{}.tcp{}",
            self.occupancy_pct, self.queues, self.shards, self.backend, self.tcp_permille
        )
    }

    /// The cell's JSON object line.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"occupancy_pct":{},"shards":{},"queues":{},"backend":"{}","tcp_permille":{},"flows":{},"mpps":{:.3},"ci95_mpps":[{:.3},{:.3}],"mean_ns":{:.1},"samples":{},"outliers_rejected":{}}}"#,
            self.occupancy_pct,
            self.shards,
            self.queues,
            self.backend,
            self.tcp_permille,
            self.flows,
            self.est.mpps,
            self.est.ci95_lo_mpps,
            self.est.ci95_hi_mpps,
            self.est.mean_ns,
            self.samples(),
            self.est.outliers_rejected
        )
    }

    /// Service-time samples retained after MAD rejection — the series
    /// length the `--min-samples` suppress rule reads.
    pub fn samples(&self) -> usize {
        self.packets.saturating_sub(self.est.outliers_rejected)
    }
}

/// Measure one cell: an `shards`-shard NAT behind a `queues`-queue RSS
/// classifier, `flows` mixed-protocol flows resident, timed all-hit
/// rounds through the event-driven driver.
fn measure_cell(
    occupancy_pct: usize,
    shards: usize,
    queues: usize,
    backend: &'static str,
    tcp_permille: u16,
    packets: usize,
) -> Cell {
    let cfg = cell_cfg();
    let flows = TABLE_CAPACITY * occupancy_pct / 100;
    let gen = FlowGen::mixed(tcp_permille);
    let texp = cfg.min_lifetime_ns();
    let mut nf = ShardedVigNatMb::sharded(cfg, shards);
    let svc = match backend {
        "sim" => event_driven_service_times_gen(
            SimBackend::new(RssClassifier::for_nat(&cfg, queues), 512),
            &mut nf,
            &gen,
            flows,
            packets,
            texp,
        ),
        "faultio" => event_driven_service_times_gen(
            FaultIo::new(
                SimBackend::new(RssClassifier::for_nat(&cfg, queues), 512),
                FaultPlan::none(),
            ),
            &mut nf,
            &gen,
            flows,
            packets,
            texp,
        ),
        other => unreachable!("unknown backend axis value {other}"),
    };
    let est = search_rate_with_ci(&svc, 512);
    Cell {
        occupancy_pct,
        shards,
        queues,
        backend,
        tcp_permille,
        flows,
        packets,
        est,
    }
}

/// Run the full scenario matrix (`packets` timed packets per cell) and
/// return the measured cells in axis order (occupancy outermost,
/// TCP mix innermost).
pub fn run_matrix(packets: usize) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &occ in &OCCUPANCY_PCT {
        for &shards in &SHARDS {
            for &queues in &QUEUES {
                for &backend in BACKENDS.iter() {
                    for &mix in &TCP_PERMILLE {
                        cells.push(measure_cell(occ, shards, queues, backend, mix, packets));
                    }
                }
            }
        }
    }
    cells
}

/// The `BENCH_matrix.json` document for a measured matrix.
pub fn matrix_json(cells: &[Cell], packets: usize) -> String {
    let cfg = cell_cfg();
    let axes = format!(
        r#""axes": {{"occupancy_pct": [{}], "shards": [{}], "queues": [{}], "backend": [{}], "tcp_permille": [{}]}}"#,
        join(&OCCUPANCY_PCT),
        join(&SHARDS),
        join(&QUEUES),
        BACKENDS
            .iter()
            .map(|b| format!("\"{b}\""))
            .collect::<Vec<_>>()
            .join(","),
        join(&TCP_PERMILLE),
    );
    let cell_lines = cells
        .iter()
        .map(Cell::to_json)
        .collect::<Vec<_>>()
        .join(",\n    ");
    format!(
        "{{\n  \"bench\": \"scenario_matrix\",\n  \"driver\": \"eventloop (poll + wrr, one core) over sim backend, RFC 2544 search, mad_z3.5, bootstrap ci\",\n  \"table_capacity\": {TABLE_CAPACITY},\n  \"packets_per_cell\": {packets},\n  \"expiry_ns\": {},\n  \"tcp_transitory_ns\": {},\n  \"tcp_established_ns\": {},\n  {axes},\n  \"cells\": [\n    {cell_lines}\n  ]\n}}\n",
        cfg.expiry_ns, cfg.tcp_transitory_ns, cfg.tcp_established_ns
    )
}

fn join<T: std::fmt::Display>(v: &[T]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}
