//! The `vig_bench` CLI: trajectory-file validation (`--check`) and
//! the baseline regression guard (`--check --baseline FILE`).
//!
//! ```text
//! vig_bench --check [--baseline FILE] [FILE...]
//! ```
//!
//! With no files, validates the committed `BENCH_flowtable.json` and
//! `BENCH_throughput.json` at the workspace root. Exits non-zero (with
//! a per-field problem list) when any file is malformed — the cheap CI
//! step that keeps a bench refactor from silently disarming the perf
//! gates.
//!
//! With `--baseline FILE`, each checked file of the same bench kind is
//! additionally compared against the baseline document: a rate more
//! than 10% below the baseline median (or a series that vanished)
//! fails, a smaller slowdown outside both bootstrap intervals warns,
//! and series new in this run are listed but never judged.

fn usage() -> ! {
    eprintln!(
        "usage: vig_bench --check [--baseline FILE] [FILE...]\n\
         validates committed BENCH_*.json trajectory files \
         (schema, gate metrics, CI intervals); with --baseline, \
         additionally guards rates against a committed baseline \
         (fail >10% drop, warn on CI non-overlap, new series exempt)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("--check") {
        usage();
    }
    let mut rest: Vec<String> = args[1..].to_vec();
    let baseline = match rest.iter().position(|a| a == "--baseline") {
        Some(i) => {
            if i + 1 >= rest.len() {
                usage();
            }
            let path = std::path::PathBuf::from(rest.remove(i + 1));
            rest.remove(i);
            match vig_bench::check::load(&path) {
                Ok(doc) => Some((path, doc)),
                Err(e) => {
                    eprintln!("FAIL: baseline {e}");
                    std::process::exit(1);
                }
            }
        }
        None => None,
    };
    let files: Vec<std::path::PathBuf> = if !rest.is_empty() {
        rest.iter().map(std::path::PathBuf::from).collect()
    } else {
        ["BENCH_flowtable.json", "BENCH_throughput.json"]
            .iter()
            .map(|n| vig_bench::workspace_root().join(n))
            .collect()
    };
    let mut failed = false;
    for f in &files {
        match vig_bench::check::check_file(f) {
            Ok(kind) => {
                println!("ok: {} ({kind})", f.display());
                let Some((base_path, base_doc)) = &baseline else {
                    continue;
                };
                // Compare only like against like — a flowtable run has
                // nothing to say about a throughput baseline.
                let base_kind = base_doc
                    .get("bench")
                    .and_then(vig_bench::check::Json::str)
                    .unwrap_or("");
                if base_kind != kind {
                    println!(
                        "  baseline: skipped ({} is {base_kind}, this file is {kind})",
                        base_path.display()
                    );
                    continue;
                }
                let doc = match vig_bench::check::load(f) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("FAIL: {e}");
                        failed = true;
                        continue;
                    }
                };
                let report = vig_bench::check::compare_against_baseline(&doc, base_doc);
                println!(
                    "  baseline {}: {} rate(s) compared, {} new",
                    base_path.display(),
                    report.compared,
                    report.new_series.len()
                );
                for w in &report.warnings {
                    println!("  warn: {w}");
                }
                for n in &report.new_series {
                    println!("  new (not judged): {n}");
                }
                for e in &report.failures {
                    eprintln!("FAIL: {}: {e}", f.display());
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
