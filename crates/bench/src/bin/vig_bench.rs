//! The `vig_bench` CLI: trajectory-file validation (`--check`), the
//! baseline regression guard (`--check --baseline FILE`), and the
//! scenario-matrix runner (`--matrix`).
//!
//! ```text
//! vig_bench --check [--baseline FILE] [--fail-under PCT] [--warn-under PCT]
//!                   [--min-samples N] [FILE...]
//! vig_bench --matrix [--packets N]
//! ```
//!
//! With no files, `--check` validates the committed
//! `BENCH_flowtable.json`, `BENCH_throughput.json` and
//! `BENCH_matrix.json` at the workspace root. Exits non-zero (with a
//! per-field problem list) when any file is malformed — the cheap CI
//! step that keeps a bench refactor from silently disarming the perf
//! gates.
//!
//! With `--baseline FILE`, each checked file of the same bench kind is
//! additionally compared against the baseline document under the
//! configured policy: a rate more than `--fail-under` percent (default
//! 10) below the baseline median — or a series that vanished — fails;
//! a smaller slowdown outside both bootstrap intervals, or past
//! `--warn-under` percent, warns; series new in this run are listed
//! but never judged; series shorter than `--min-samples` (in either
//! run) are suppressed as too short to judge.
//!
//! `--matrix` measures the full occupancy × shards × queues × backend
//! × TCP/UDP-mix scenario matrix and writes `BENCH_matrix.json` at the
//! workspace root (see `vig_bench::matrix`).

use vig_bench::check::BaselinePolicy;

fn usage() -> ! {
    eprintln!(
        "usage: vig_bench --check [--baseline FILE] [--fail-under PCT] \
         [--warn-under PCT] [--min-samples N] [FILE...]\n       \
         vig_bench --matrix [--packets N]\n\
         --check validates committed BENCH_*.json trajectory files \
         (schema, gate metrics, CI intervals); with --baseline, \
         additionally guards rates against a committed baseline \
         (fail past --fail-under %, default 10; warn on CI non-overlap \
         or past --warn-under %; series shorter than --min-samples \
         suppressed; new series exempt).\n\
         --matrix runs the occupancy x shards x queues x backend x \
         TCP-mix scenario matrix and writes BENCH_matrix.json"
    );
    std::process::exit(2);
}

/// Pull `--flag VALUE` out of `rest`, parsed as `T`.
fn take_opt<T: std::str::FromStr>(rest: &mut Vec<String>, flag: &str) -> Option<T> {
    let i = rest.iter().position(|a| a == flag)?;
    if i + 1 >= rest.len() {
        usage();
    }
    let raw = rest.remove(i + 1);
    rest.remove(i);
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("bad value for {flag}: {raw}");
            std::process::exit(2);
        }
    }
}

fn run_matrix(mut rest: Vec<String>) -> ! {
    let packets: usize =
        take_opt(&mut rest, "--packets").unwrap_or(vig_bench::throughput_packets() / 8);
    if !rest.is_empty() {
        usage();
    }
    let cells = vig_bench::matrix::run_matrix(packets);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                format!("{}%", c.occupancy_pct),
                format!("{}", c.queues),
                format!("{}", c.shards),
                c.backend.to_string(),
                format!("{}", c.tcp_permille),
                format!("{}", c.flows),
                format!(
                    "{:.2} [{:.2},{:.2}]",
                    c.est.mpps, c.est.ci95_lo_mpps, c.est.ci95_hi_mpps
                ),
                format!("{:.1}", c.est.mean_ns),
            ]
        })
        .collect();
    vig_bench::print_table(
        &format!(
            "scenario matrix: {} cells x {packets} packets (RFC 2544, mad_z3.5)",
            cells.len()
        ),
        &[
            "occ",
            "queues",
            "shards",
            "backend",
            "tcp\u{2030}",
            "flows",
            "Mpps [ci95]",
            "mean ns",
        ],
        &rows,
    );
    vig_bench::write_result_json(
        "BENCH_matrix.json",
        &vig_bench::matrix::matrix_json(&cells, packets),
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => {}
        Some("--matrix") => run_matrix(args[1..].to_vec()),
        _ => usage(),
    }
    let mut rest: Vec<String> = args[1..].to_vec();
    let mut policy = BaselinePolicy::default();
    if let Some(pct) = take_opt::<f64>(&mut rest, "--fail-under") {
        policy.fail_under_pct = pct;
    }
    policy.warn_under_pct = take_opt::<f64>(&mut rest, "--warn-under");
    if let Some(n) = take_opt::<f64>(&mut rest, "--min-samples") {
        policy.min_samples = n;
    }
    let baseline = match rest.iter().position(|a| a == "--baseline") {
        Some(i) => {
            if i + 1 >= rest.len() {
                usage();
            }
            let path = std::path::PathBuf::from(rest.remove(i + 1));
            rest.remove(i);
            match vig_bench::check::load(&path) {
                Ok(doc) => Some((path, doc)),
                Err(e) => {
                    eprintln!("FAIL: baseline {e}");
                    std::process::exit(1);
                }
            }
        }
        None => None,
    };
    if rest.iter().any(|a| a.starts_with("--")) {
        usage();
    }
    let files: Vec<std::path::PathBuf> = if !rest.is_empty() {
        rest.iter().map(std::path::PathBuf::from).collect()
    } else {
        [
            "BENCH_flowtable.json",
            "BENCH_throughput.json",
            "BENCH_matrix.json",
        ]
        .iter()
        .map(|n| vig_bench::workspace_root().join(n))
        .collect()
    };
    let mut failed = false;
    for f in &files {
        match vig_bench::check::check_file(f) {
            Ok(kind) => {
                println!("ok: {} ({kind})", f.display());
                let Some((base_path, base_doc)) = &baseline else {
                    continue;
                };
                // Compare only like against like — a flowtable run has
                // nothing to say about a throughput baseline.
                let base_kind = base_doc
                    .get("bench")
                    .and_then(vig_bench::check::Json::str)
                    .unwrap_or("");
                if base_kind != kind {
                    println!(
                        "  baseline: skipped ({} is {base_kind}, this file is {kind})",
                        base_path.display()
                    );
                    continue;
                }
                let doc = match vig_bench::check::load(f) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("FAIL: {e}");
                        failed = true;
                        continue;
                    }
                };
                let report =
                    vig_bench::check::compare_against_baseline_with(&doc, base_doc, &policy);
                println!(
                    "  baseline {}: {} rate(s) compared, {} new, {} suppressed",
                    base_path.display(),
                    report.compared,
                    report.new_series.len(),
                    report.suppressed.len()
                );
                for w in &report.warnings {
                    println!("  warn: {w}");
                }
                for n in &report.new_series {
                    println!("  new (not judged): {n}");
                }
                for s in &report.suppressed {
                    println!("  suppressed (too short): {s}");
                }
                for e in &report.failures {
                    eprintln!("FAIL: {}: {e}", f.display());
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
