//! The `vig_bench` CLI: trajectory-file validation (`--check`).
//!
//! ```text
//! vig_bench --check [FILE...]
//! ```
//!
//! With no files, validates the committed `BENCH_flowtable.json` and
//! `BENCH_throughput.json` at the workspace root. Exits non-zero (with
//! a per-field problem list) when any file is malformed — the cheap CI
//! step that keeps a bench refactor from silently disarming the perf
//! gates.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => {
            let files: Vec<std::path::PathBuf> = if args.len() > 1 {
                args[1..].iter().map(std::path::PathBuf::from).collect()
            } else {
                ["BENCH_flowtable.json", "BENCH_throughput.json"]
                    .iter()
                    .map(|n| vig_bench::workspace_root().join(n))
                    .collect()
            };
            let mut failed = false;
            for f in &files {
                match vig_bench::check::check_file(f) {
                    Ok(kind) => println!("ok: {} ({kind})", f.display()),
                    Err(e) => {
                        eprintln!("FAIL: {e}");
                        failed = true;
                    }
                }
            }
            if failed {
                std::process::exit(1);
            }
        }
        _ => {
            eprintln!(
                "usage: vig_bench --check [FILE...]\n\
                 validates committed BENCH_*.json trajectory files \
                 (schema, gate metrics, CI intervals)"
            );
            std::process::exit(2);
        }
    }
}
