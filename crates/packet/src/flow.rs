//! Flow identifiers — the keys of the RFC 3022 translation table.
//!
//! A Traditional NAT keys its state two ways:
//!
//! * packets arriving on the **internal** interface are matched by the full
//!   internal 5-tuple ([`FlowId`]);
//! * packets arriving on the **external** interface are matched by the
//!   *translated* tuple ([`ExtKey`]): the allocated external port plus the
//!   remote endpoint.
//!
//! This is exactly why libVig's flow table is a *double-keyed* map.

use crate::ipv4::Ip4;

/// L4 protocol of a translated session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Proto {
    /// TCP (IP protocol 6).
    Tcp,
    /// UDP (IP protocol 17).
    Udp,
}

impl Proto {
    /// The IP protocol number.
    pub fn number(self) -> u8 {
        match self {
            Proto::Tcp => crate::ipv4::PROTO_TCP,
            Proto::Udp => crate::ipv4::PROTO_UDP,
        }
    }

    /// From an IP protocol number.
    pub fn from_number(n: u8) -> Option<Proto> {
        match n {
            crate::ipv4::PROTO_TCP => Some(Proto::Tcp),
            crate::ipv4::PROTO_UDP => Some(Proto::Udp),
            _ => None,
        }
    }
}

/// Which NAT interface a packet arrived on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// From the private network (the "inside").
    Internal,
    /// From the public network (the "outside").
    External,
}

impl Direction {
    /// The opposite interface — where a forwarded packet leaves.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Internal => Direction::External,
            Direction::External => Direction::Internal,
        }
    }
}

/// The internal-side flow identifier: the 5-tuple as seen on the private
/// network. This is `F(P)` for internal packets in the paper's Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId {
    /// Private host address.
    pub src_ip: Ip4,
    /// Private host port.
    pub src_port: u16,
    /// Remote (public) address.
    pub dst_ip: Ip4,
    /// Remote port.
    pub dst_port: u16,
    /// Session protocol.
    pub proto: Proto,
}

impl core::fmt::Display for FlowId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:?} {}:{} -> {}:{}",
            self.proto, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

/// The external-side flow identifier: how a *return* packet addresses the
/// session. `(ext_ip, ext_port)` is the pool endpoint the NAT allocated;
/// the remote endpoint is the packet's source on the external side.
///
/// With a single-address pool (the paper's configuration) `ext_ip` is
/// the one external interface address on every key, so matching reduces
/// to the paper's `(ext_port, remote ip, remote port, proto)` test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExtKey {
    /// The NAT-allocated external address (the return packet's dst ip,
    /// canonicalized by the NAT's pool configuration).
    pub ext_ip: Ip4,
    /// The NAT-allocated external port (the return packet's dst port).
    pub ext_port: u16,
    /// Remote address (the return packet's src ip).
    pub dst_ip: Ip4,
    /// Remote port (the return packet's src port).
    pub dst_port: u16,
    /// Session protocol.
    pub proto: Proto,
}

impl core::fmt::Display for ExtKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:?} ext {}:{} <- {}:{}",
            self.proto, self.ext_ip, self.ext_port, self.dst_ip, self.dst_port
        )
    }
}

/// A complete translation-table entry: the internal 5-tuple plus the
/// allocated external endpoint. The external key is derived, never stored
/// separately, so the two views can never disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Flow {
    /// Internal-side identifier.
    pub int_key: FlowId,
    /// Allocated external (pool) address.
    pub ext_ip: Ip4,
    /// Allocated external port.
    pub ext_port: u16,
}

impl Flow {
    /// The external-side key under which return traffic finds this flow.
    pub fn ext_key(&self) -> ExtKey {
        ExtKey {
            ext_ip: self.ext_ip,
            ext_port: self.ext_port,
            dst_ip: self.int_key.dst_ip,
            dst_port: self.int_key.dst_port,
            proto: self.int_key.proto,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid() -> FlowId {
        FlowId {
            src_ip: Ip4::new(192, 168, 0, 10),
            src_port: 41000,
            dst_ip: Ip4::new(1, 2, 3, 4),
            dst_port: 80,
            proto: Proto::Tcp,
        }
    }

    #[test]
    fn ext_key_mirrors_remote_endpoint() {
        let flow = Flow {
            int_key: fid(),
            ext_ip: Ip4::new(10, 1, 0, 1),
            ext_port: 61234,
        };
        let ek = flow.ext_key();
        assert_eq!(ek.ext_ip, Ip4::new(10, 1, 0, 1));
        assert_eq!(ek.ext_port, 61234);
        assert_eq!(ek.dst_ip, fid().dst_ip);
        assert_eq!(ek.dst_port, fid().dst_port);
        assert_eq!(ek.proto, Proto::Tcp);
    }

    #[test]
    fn direction_flip_is_involution() {
        assert_eq!(Direction::Internal.flip(), Direction::External);
        assert_eq!(Direction::External.flip().flip(), Direction::External);
    }

    #[test]
    fn proto_number_roundtrip() {
        for p in [Proto::Tcp, Proto::Udp] {
            assert_eq!(Proto::from_number(p.number()), Some(p));
        }
        assert_eq!(Proto::from_number(1), None);
    }

    #[test]
    fn flow_ids_hash_and_compare() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(fid());
        let mut other = fid();
        other.src_port = 41001;
        assert!(!s.contains(&other));
        assert!(s.contains(&fid()));
    }
}
