//! Packet formats for the VigNAT reproduction.
//!
//! This crate provides the wire-format substrate the NAT operates on:
//!
//! * typed, bounds-checked **views** over raw byte buffers for Ethernet,
//!   IPv4, TCP and UDP headers (in the style of `smoltcp`: no allocation,
//!   no copying, every accessor reads/writes big-endian fields in place);
//! * the **internet checksum** ([`checksum`]), including the RFC 1624
//!   incremental-update rules a NAT relies on when it rewrites addresses
//!   and ports without touching the payload;
//! * **flow identifiers** ([`flow::FlowId`]) — the 5-tuple plus receiving
//!   interface that RFC 3022 keys its translation table on;
//! * small **builders** for synthesizing valid packets in tests, examples
//!   and the traffic generator.
//!
//! Everything is `#![forbid(unsafe_code)]` and panic-free on untrusted
//! input: parsing returns [`ParseError`] instead of slicing out of bounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod checksum;
pub mod ethernet;
pub mod flow;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use builder::PacketBuilder;
pub use ethernet::{EtherType, EthernetFrame, MacAddr, ETHERNET_HEADER_LEN};
pub use flow::{Direction, ExtKey, Flow, FlowId, Proto};
pub use ipv4::{Ip4, Ipv4Packet, IPV4_MIN_HEADER_LEN};
pub use tcp::{TcpSegment, TCP_MIN_HEADER_LEN};
pub use udp::{UdpDatagram, UDP_HEADER_LEN};

/// Errors returned when parsing a packet from raw bytes.
///
/// The NAT's stateless code treats every variant as "drop the packet";
/// none of them abort processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the fixed part of the header.
    Truncated {
        /// Header that failed to parse.
        layer: Layer,
        /// Bytes that were available.
        have: usize,
        /// Bytes that were required.
        need: usize,
    },
    /// A length field inside the header is inconsistent with the buffer.
    BadLength {
        /// Header whose length field is inconsistent.
        layer: Layer,
    },
    /// The EtherType is not IPv4 (the only L3 protocol the NAT handles).
    NotIpv4,
    /// The IPv4 version field is not 4.
    BadVersion,
    /// The IP protocol is neither TCP nor UDP (RFC 3022 NAT translates
    /// only TCP/UDP sessions; everything else is dropped).
    UnsupportedProto(u8),
    /// The IPv4 header checksum does not verify.
    BadChecksum {
        /// Header whose checksum failed.
        layer: Layer,
    },
    /// The packet is an IPv4 fragment with a non-zero offset; the port
    /// fields are not present so the flow cannot be identified.
    Fragment,
}

/// Protocol layer names used in [`ParseError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Ethernet II framing.
    Ethernet,
    /// IPv4 header.
    Ipv4,
    /// TCP header.
    Tcp,
    /// UDP header.
    Udp,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseError::Truncated { layer, have, need } => {
                write!(
                    f,
                    "{layer:?} header truncated: have {have} bytes, need {need}"
                )
            }
            ParseError::BadLength { layer } => write!(f, "{layer:?} length field inconsistent"),
            ParseError::NotIpv4 => write!(f, "EtherType is not IPv4"),
            ParseError::BadVersion => write!(f, "IP version is not 4"),
            ParseError::UnsupportedProto(p) => write!(f, "unsupported IP protocol {p}"),
            ParseError::BadChecksum { layer } => write!(f, "{layer:?} checksum mismatch"),
            ParseError::Fragment => write!(f, "non-first IPv4 fragment"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A fully parsed TCP/UDP-over-IPv4-over-Ethernet packet: the header
/// offsets within one contiguous buffer.
///
/// This is what VigNAT's stateless code extracts once per packet; all
/// subsequent header rewrites go through these offsets so no re-parsing
/// is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderOffsets {
    /// Offset of the IPv4 header (== Ethernet header length).
    pub l3: usize,
    /// Offset of the TCP/UDP header.
    pub l4: usize,
    /// IP protocol (TCP or UDP).
    pub proto: Proto,
    /// Total frame length that was validated.
    pub frame_len: usize,
}

/// Parse and validate an Ethernet/IPv4/{TCP,UDP} frame, returning the
/// header offsets and the flow 5-tuple fields.
///
/// Checks performed (each failure is a distinct, testable path — these are
/// exactly the parse branches the symbolic-execution engine enumerates):
///
/// 1. frame long enough for Ethernet + minimal IPv4;
/// 2. EtherType is IPv4;
/// 3. IP version is 4 and IHL is within bounds;
/// 4. IPv4 `total_len` consistent with the buffer;
/// 5. protocol is TCP or UDP;
/// 6. not a non-first fragment;
/// 7. frame long enough for the L4 header.
///
/// The IPv4 header checksum is *not* verified here (DPDK NICs verify it in
/// hardware; VigNAT assumes it). [`Ipv4Packet::verify_checksum`] is
/// available for callers that want the software check.
pub fn parse_l3l4(frame: &[u8]) -> Result<(HeaderOffsets, FlowFields), ParseError> {
    let eth = EthernetFrame::parse(frame)?;
    if eth.ethertype() != EtherType::IPV4 {
        return Err(ParseError::NotIpv4);
    }
    let l3 = ETHERNET_HEADER_LEN;
    let ip = Ipv4Packet::parse(&frame[l3..])?;
    if ip.more_fragments() || ip.fragment_offset() != 0 {
        return Err(ParseError::Fragment);
    }
    let proto = match ip.protocol() {
        ipv4::PROTO_TCP => Proto::Tcp,
        ipv4::PROTO_UDP => Proto::Udp,
        other => return Err(ParseError::UnsupportedProto(other)),
    };
    let l4 = l3 + ip.header_len();
    let l4_need = match proto {
        Proto::Tcp => TCP_MIN_HEADER_LEN,
        Proto::Udp => UDP_HEADER_LEN,
    };
    let l4_have = frame.len().saturating_sub(l4);
    if l4_have < l4_need {
        return Err(ParseError::Truncated {
            layer: if proto == Proto::Tcp {
                Layer::Tcp
            } else {
                Layer::Udp
            },
            have: l4_have,
            need: l4_need,
        });
    }
    let (src_port, dst_port) = match proto {
        Proto::Tcp => {
            let seg = TcpSegment::parse(&frame[l4..])?;
            (seg.src_port(), seg.dst_port())
        }
        Proto::Udp => {
            let dg = UdpDatagram::parse(&frame[l4..])?;
            (dg.src_port(), dg.dst_port())
        }
    };
    Ok((
        HeaderOffsets {
            l3,
            l4,
            proto,
            frame_len: frame.len(),
        },
        FlowFields {
            src_ip: ip.src(),
            dst_ip: ip.dst(),
            src_port,
            dst_port,
            proto,
        },
    ))
}

/// The five fields of the classic 5-tuple, as parsed off the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowFields {
    /// IPv4 source address.
    pub src_ip: Ip4,
    /// IPv4 destination address.
    pub dst_ip: Ip4,
    /// L4 source port.
    pub src_port: u16,
    /// L4 destination port.
    pub dst_port: u16,
    /// L4 protocol.
    pub proto: Proto,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;

    fn sample() -> Vec<u8> {
        PacketBuilder::udp(Ip4::new(10, 0, 0, 1), Ip4::new(93, 184, 216, 34), 5555, 80)
            .payload(b"hello")
            .build()
    }

    #[test]
    fn parse_roundtrip() {
        let frame = sample();
        let (off, ff) = parse_l3l4(&frame).expect("valid frame parses");
        assert_eq!(off.l3, ETHERNET_HEADER_LEN);
        assert_eq!(off.l4, ETHERNET_HEADER_LEN + IPV4_MIN_HEADER_LEN);
        assert_eq!(ff.src_ip, Ip4::new(10, 0, 0, 1));
        assert_eq!(ff.dst_ip, Ip4::new(93, 184, 216, 34));
        assert_eq!(ff.src_port, 5555);
        assert_eq!(ff.dst_port, 80);
        assert_eq!(ff.proto, Proto::Udp);
    }

    #[test]
    fn truncated_ethernet_rejected() {
        let frame = sample();
        for cut in 0..ETHERNET_HEADER_LEN {
            assert!(parse_l3l4(&frame[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn truncated_l4_rejected() {
        let frame = sample();
        let l4_end = ETHERNET_HEADER_LEN + IPV4_MIN_HEADER_LEN + UDP_HEADER_LEN;
        for cut in ETHERNET_HEADER_LEN..l4_end {
            assert!(parse_l3l4(&frame[..cut]).is_err(), "cut at {cut} must fail");
        }
        // Exactly the L4 boundary parses (UDP length field still covers
        // payload, but header-only access is validated).
        let mut exact = frame[..l4_end].to_vec();
        // Fix up IPv4 total_len + UDP length to make the truncation
        // self-consistent. Patch total_len raw first: the typed view
        // refuses to parse while the stale length exceeds the buffer.
        {
            let new_total = (IPV4_MIN_HEADER_LEN + UDP_HEADER_LEN) as u16;
            exact[ETHERNET_HEADER_LEN + 2..ETHERNET_HEADER_LEN + 4]
                .copy_from_slice(&new_total.to_be_bytes());
            let mut ip = Ipv4Packet::parse_mut(&mut exact[ETHERNET_HEADER_LEN..]).unwrap();
            ip.fill_checksum();
        }
        {
            let l4 = ETHERNET_HEADER_LEN + IPV4_MIN_HEADER_LEN;
            exact[l4 + 4..l4 + 6].copy_from_slice(&(UDP_HEADER_LEN as u16).to_be_bytes());
            let mut udp = UdpDatagram::parse_mut(&mut exact[l4..]).unwrap();
            udp.set_checksum(0); // checksum optional for UDP/IPv4
        }
        parse_l3l4(&exact).expect("header-only UDP frame parses");
    }

    #[test]
    fn non_ipv4_rejected() {
        let mut frame = sample();
        frame[12] = 0x86; // EtherType -> 0x86dd (IPv6)
        frame[13] = 0xdd;
        assert_eq!(parse_l3l4(&frame), Err(ParseError::NotIpv4));
    }

    #[test]
    fn unsupported_proto_rejected() {
        let mut frame = sample();
        frame[ETHERNET_HEADER_LEN + 9] = 1; // ICMP
                                            // (checksum now stale; parse_l3l4 does not verify it, per DPDK offload)
        assert_eq!(parse_l3l4(&frame), Err(ParseError::UnsupportedProto(1)));
    }

    #[test]
    fn fragment_rejected() {
        let mut frame = sample();
        // fragment offset = 1 (8-byte units)
        frame[ETHERNET_HEADER_LEN + 6] = 0x00;
        frame[ETHERNET_HEADER_LEN + 7] = 0x01;
        assert_eq!(parse_l3l4(&frame), Err(ParseError::Fragment));
    }

    #[test]
    fn more_fragments_rejected() {
        let mut frame = sample();
        frame[ETHERNET_HEADER_LEN + 6] = 0x20; // MF flag
        assert_eq!(parse_l3l4(&frame), Err(ParseError::Fragment));
    }
}
