//! Ethernet II framing.
//!
//! Only untagged Ethernet II frames are supported — the same restriction
//! smoltcp documents and the one VigNAT's testbed used (no 802.1Q).

use crate::{Layer, ParseError};

/// Length of an Ethernet II header: two MACs plus the EtherType.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used as a placeholder by the simulator.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// A locally administered unicast address derived from a small id;
    /// handy for giving simulated devices distinct, readable MACs.
    pub fn local(id: u8) -> MacAddr {
        MacAddr([0x02, 0, 0, 0, 0, id])
    }

    /// True if the least-significant bit of the first octet is set
    /// (group/multicast bit).
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// An EtherType value (big-endian u16 on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EtherType(pub u16);

impl EtherType {
    /// IPv4.
    pub const IPV4: EtherType = EtherType(0x0800);
    /// ARP (recognized so the simulator can generate/ignore it; the NAT
    /// drops it).
    pub const ARP: EtherType = EtherType(0x0806);
    /// IPv6 (always dropped by VigNAT).
    pub const IPV6: EtherType = EtherType(0x86dd);
}

/// An immutable view of an Ethernet II frame.
///
/// The view borrows the buffer; construction validates only that the fixed
/// header fits, so accessors can never slice out of bounds.
#[derive(Debug)]
pub struct EthernetFrame<'a> {
    buf: &'a [u8],
}

impl<'a> EthernetFrame<'a> {
    /// Parse a frame, checking the buffer holds a full Ethernet header.
    pub fn parse(buf: &'a [u8]) -> Result<Self, ParseError> {
        if buf.len() < ETHERNET_HEADER_LEN {
            return Err(ParseError::Truncated {
                layer: Layer::Ethernet,
                have: buf.len(),
                need: ETHERNET_HEADER_LEN,
            });
        }
        Ok(EthernetFrame { buf })
    }

    /// Destination MAC.
    pub fn dst(&self) -> MacAddr {
        let mut m = [0u8; 6];
        m.copy_from_slice(&self.buf[0..6]);
        MacAddr(m)
    }

    /// Source MAC.
    pub fn src(&self) -> MacAddr {
        let mut m = [0u8; 6];
        m.copy_from_slice(&self.buf[6..12]);
        MacAddr(m)
    }

    /// EtherType.
    pub fn ethertype(&self) -> EtherType {
        EtherType(u16::from_be_bytes([self.buf[12], self.buf[13]]))
    }

    /// The L3 payload (everything after the header).
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[ETHERNET_HEADER_LEN..]
    }
}

/// A mutable view of an Ethernet II frame.
#[derive(Debug)]
pub struct EthernetFrameMut<'a> {
    buf: &'a mut [u8],
}

impl<'a> EthernetFrameMut<'a> {
    /// Parse a mutable frame, checking the header fits.
    pub fn parse(buf: &'a mut [u8]) -> Result<Self, ParseError> {
        if buf.len() < ETHERNET_HEADER_LEN {
            return Err(ParseError::Truncated {
                layer: Layer::Ethernet,
                have: buf.len(),
                need: ETHERNET_HEADER_LEN,
            });
        }
        Ok(EthernetFrameMut { buf })
    }

    /// Set the destination MAC.
    pub fn set_dst(&mut self, mac: MacAddr) {
        self.buf[0..6].copy_from_slice(&mac.0);
    }

    /// Set the source MAC.
    pub fn set_src(&mut self, mac: MacAddr) {
        self.buf[6..12].copy_from_slice(&mac.0);
    }

    /// Set the EtherType.
    pub fn set_ethertype(&mut self, et: EtherType) {
        self.buf[12..14].copy_from_slice(&et.0.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let mut buf = vec![0u8; 64];
        {
            let mut f = EthernetFrameMut::parse(&mut buf).unwrap();
            f.set_dst(MacAddr::local(1));
            f.set_src(MacAddr::local(2));
            f.set_ethertype(EtherType::IPV4);
        }
        let f = EthernetFrame::parse(&buf).unwrap();
        assert_eq!(f.dst(), MacAddr::local(1));
        assert_eq!(f.src(), MacAddr::local(2));
        assert_eq!(f.ethertype(), EtherType::IPV4);
        assert_eq!(f.payload().len(), 50);
    }

    #[test]
    fn short_buffer_fails() {
        assert!(EthernetFrame::parse(&[0u8; 13]).is_err());
        assert!(EthernetFrameMut::parse(&mut [0u8; 0]).is_err());
    }

    #[test]
    fn multicast_bit() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::local(3).is_multicast());
    }

    #[test]
    fn display_format() {
        assert_eq!(MacAddr::local(0x0a).to_string(), "02:00:00:00:00:0a");
    }
}
