//! Packet builders for tests, examples and the traffic generator.
//!
//! Two entry points:
//!
//! * [`PacketBuilder::build`] allocates a fresh `Vec<u8>` — convenient in
//!   tests;
//! * [`PacketBuilder::build_into`] writes into a caller-provided buffer —
//!   what the MoonGen-analog traffic generator uses so the hot loop stays
//!   allocation-free (mempool buffers only).
//!
//! All emitted packets carry correct IPv4 and L4 checksums unless
//! explicitly disabled, so they survive any verification the device model
//! or the NAT performs.

use crate::checksum::l4_checksum;
use crate::ethernet::{EtherType, EthernetFrameMut, MacAddr, ETHERNET_HEADER_LEN};
use crate::flow::Proto;
use crate::ipv4::{Ip4, Ipv4Packet, IPV4_MIN_HEADER_LEN, PROTO_TCP, PROTO_UDP};
use crate::tcp::TCP_MIN_HEADER_LEN;
use crate::udp::UDP_HEADER_LEN;

/// Fluent builder for Ethernet/IPv4/{TCP,UDP} frames.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ip4,
    dst_ip: Ip4,
    src_port: u16,
    dst_port: u16,
    proto: Proto,
    ttl: u8,
    ident: u16,
    tcp_flags: u8,
    tcp_seq: u32,
    payload: Vec<u8>,
    udp_checksum: bool,
    pad_to: usize,
}

impl PacketBuilder {
    /// Start a TCP packet.
    pub fn tcp(src_ip: Ip4, dst_ip: Ip4, src_port: u16, dst_port: u16) -> Self {
        Self::new(Proto::Tcp, src_ip, dst_ip, src_port, dst_port)
    }

    /// Start a UDP packet.
    pub fn udp(src_ip: Ip4, dst_ip: Ip4, src_port: u16, dst_port: u16) -> Self {
        Self::new(Proto::Udp, src_ip, dst_ip, src_port, dst_port)
    }

    fn new(proto: Proto, src_ip: Ip4, dst_ip: Ip4, src_port: u16, dst_port: u16) -> Self {
        PacketBuilder {
            src_mac: MacAddr::local(1),
            dst_mac: MacAddr::local(2),
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
            ttl: 64,
            ident: 0,
            tcp_flags: crate::tcp::flags::ACK,
            tcp_seq: 0,
            payload: Vec::new(),
            udp_checksum: true,
            pad_to: 0,
        }
    }

    /// Set source/destination MACs.
    pub fn macs(mut self, src: MacAddr, dst: MacAddr) -> Self {
        self.src_mac = src;
        self.dst_mac = dst;
        self
    }

    /// Set the IPv4 TTL (default 64).
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Set the IPv4 identification field.
    pub fn ident(mut self, ident: u16) -> Self {
        self.ident = ident;
        self
    }

    /// Set TCP flags (default ACK).
    pub fn tcp_flags(mut self, flags: u8) -> Self {
        self.tcp_flags = flags;
        self
    }

    /// Set the TCP sequence number.
    pub fn tcp_seq(mut self, seq: u32) -> Self {
        self.tcp_seq = seq;
        self
    }

    /// Attach a payload.
    pub fn payload(mut self, p: &[u8]) -> Self {
        self.payload = p.to_vec();
        self
    }

    /// Omit the UDP checksum (transmit 0), legal for UDP over IPv4.
    pub fn no_udp_checksum(mut self) -> Self {
        self.udp_checksum = false;
        self
    }

    /// Pad the final frame with zeros up to `len` bytes (e.g. the 64-byte
    /// minimum Ethernet frame used throughout the paper's evaluation).
    /// Padding sits after the IP datagram and is not covered by checksums.
    pub fn pad_to(mut self, len: usize) -> Self {
        self.pad_to = len;
        self
    }

    /// Total frame length this builder will produce.
    pub fn frame_len(&self) -> usize {
        let l4 = match self.proto {
            Proto::Tcp => TCP_MIN_HEADER_LEN,
            Proto::Udp => UDP_HEADER_LEN,
        };
        (ETHERNET_HEADER_LEN + IPV4_MIN_HEADER_LEN + l4 + self.payload.len()).max(self.pad_to)
    }

    /// Build into a fresh vector.
    pub fn build(&self) -> Vec<u8> {
        let mut buf = vec![0u8; self.frame_len()];
        let n = self.build_into(&mut buf).expect("sized buffer fits");
        debug_assert_eq!(n, buf.len());
        buf
    }

    /// Build into `buf`, returning the frame length, or `None` if the
    /// buffer is too small. No allocation.
    pub fn build_into(&self, buf: &mut [u8]) -> Option<usize> {
        let total = self.frame_len();
        if buf.len() < total {
            return None;
        }
        let buf = &mut buf[..total];
        buf.fill(0);

        // Ethernet
        {
            let mut eth = EthernetFrameMut::parse(buf).ok()?;
            eth.set_dst(self.dst_mac);
            eth.set_src(self.src_mac);
            eth.set_ethertype(EtherType::IPV4);
        }

        let l4_len = match self.proto {
            Proto::Tcp => TCP_MIN_HEADER_LEN,
            Proto::Udp => UDP_HEADER_LEN,
        } + self.payload.len();
        let ip_total = IPV4_MIN_HEADER_LEN + l4_len;

        // IPv4 (write raw, then fill checksum via the view)
        {
            let ip = &mut buf[ETHERNET_HEADER_LEN..];
            ip[0] = 0x45; // version 4, IHL 5
            ip[1] = 0; // DSCP/ECN
            ip[2..4].copy_from_slice(&(ip_total as u16).to_be_bytes());
            ip[4..6].copy_from_slice(&self.ident.to_be_bytes());
            ip[6] = 0x40; // DF
            ip[7] = 0;
            ip[8] = self.ttl;
            ip[9] = match self.proto {
                Proto::Tcp => PROTO_TCP,
                Proto::Udp => PROTO_UDP,
            };
            ip[12..16].copy_from_slice(&self.src_ip.octets());
            ip[16..20].copy_from_slice(&self.dst_ip.octets());
            let mut v = Ipv4Packet::parse_mut(ip).ok()?;
            v.fill_checksum();
        }

        // L4
        let l4_off = ETHERNET_HEADER_LEN + IPV4_MIN_HEADER_LEN;
        match self.proto {
            Proto::Tcp => {
                let t = &mut buf[l4_off..];
                t[0..2].copy_from_slice(&self.src_port.to_be_bytes());
                t[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
                t[4..8].copy_from_slice(&self.tcp_seq.to_be_bytes());
                // ack number zero
                t[12] = 0x50; // data offset 5
                t[13] = self.tcp_flags;
                t[14..16].copy_from_slice(&4096u16.to_be_bytes()); // window
                t[20..20 + self.payload.len()].copy_from_slice(&self.payload);
                let c = l4_checksum(
                    self.src_ip.raw(),
                    self.dst_ip.raw(),
                    PROTO_TCP,
                    &t[..l4_len],
                );
                t[16..18].copy_from_slice(&c.to_be_bytes());
            }
            Proto::Udp => {
                let u = &mut buf[l4_off..];
                u[0..2].copy_from_slice(&self.src_port.to_be_bytes());
                u[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
                u[4..6].copy_from_slice(&(l4_len as u16).to_be_bytes());
                u[8..8 + self.payload.len()].copy_from_slice(&self.payload);
                if self.udp_checksum {
                    let c = l4_checksum(
                        self.src_ip.raw(),
                        self.dst_ip.raw(),
                        PROTO_UDP,
                        &u[..l4_len],
                    );
                    u[6..8].copy_from_slice(&c.to_be_bytes());
                }
            }
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_l3l4;

    #[test]
    fn build_into_matches_build() {
        let b = PacketBuilder::tcp(Ip4::new(10, 0, 0, 1), Ip4::new(2, 2, 2, 2), 1, 2)
            .payload(b"xyz")
            .ttl(17)
            .ident(0xbeef);
        let v = b.build();
        let mut arr = [0u8; 256];
        let n = b.build_into(&mut arr).unwrap();
        assert_eq!(&arr[..n], &v[..]);
    }

    #[test]
    fn build_into_too_small_fails() {
        let b = PacketBuilder::udp(Ip4::new(1, 1, 1, 1), Ip4::new(2, 2, 2, 2), 1, 2);
        let mut tiny = [0u8; 10];
        assert!(b.build_into(&mut tiny).is_none());
    }

    #[test]
    fn pad_to_min_frame() {
        let f = PacketBuilder::udp(Ip4::new(1, 1, 1, 1), Ip4::new(2, 2, 2, 2), 7, 8)
            .pad_to(64)
            .build();
        assert_eq!(f.len(), 64);
        // still parses; padding beyond total_len ignored
        let (_, ff) = parse_l3l4(&f).unwrap();
        assert_eq!(ff.src_port, 7);
    }

    #[test]
    fn ipv4_checksum_valid() {
        let f = PacketBuilder::tcp(Ip4::new(9, 9, 9, 9), Ip4::new(8, 8, 8, 8), 5, 6).build();
        let ip = Ipv4Packet::parse(&f[ETHERNET_HEADER_LEN..]).unwrap();
        assert!(ip.verify_checksum());
    }
}
