//! IPv4 header view.
//!
//! Field layout per RFC 791. Options are tolerated (IHL > 5) but never
//! generated; the NAT forwards them untouched.

use crate::checksum::{self, Checksum};
use crate::{Layer, ParseError};

/// Minimum IPv4 header length (IHL = 5, no options).
pub const IPV4_MIN_HEADER_LEN: usize = 20;

/// IP protocol number for TCP.
pub const PROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;
/// IP protocol number for ICMP (recognized, never translated).
pub const PROTO_ICMP: u8 = 1;

/// An IPv4 address stored as four octets.
///
/// We use our own newtype rather than `std::net::Ipv4Addr` so the
/// verification layers can treat addresses as plain 32-bit values and so
/// conversions to/from wire format stay explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ip4(pub u32);

impl Ip4 {
    /// Build from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ip4 {
        Ip4(u32::from_be_bytes([a, b, c, d]))
    }

    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ip4 = Ip4(0);

    /// Raw 32-bit value (host order; big-endian byte image of the quad).
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl core::fmt::Display for Ip4 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl From<[u8; 4]> for Ip4 {
    fn from(o: [u8; 4]) -> Self {
        Ip4(u32::from_be_bytes(o))
    }
}

/// An immutable view over an IPv4 header (plus payload).
#[derive(Debug)]
pub struct Ipv4Packet<'a> {
    buf: &'a [u8],
}

impl<'a> Ipv4Packet<'a> {
    /// Parse, validating version, IHL and that the buffer covers the
    /// header. Does not verify the checksum (see
    /// [`Ipv4Packet::verify_checksum`]).
    pub fn parse(buf: &'a [u8]) -> Result<Self, ParseError> {
        check(buf)?;
        Ok(Ipv4Packet { buf })
    }

    /// Parse a mutable view with the same validation.
    pub fn parse_mut(buf: &'a mut [u8]) -> Result<Ipv4PacketMut<'a>, ParseError> {
        check(buf)?;
        Ok(Ipv4PacketMut { buf })
    }

    /// Header length in bytes (IHL × 4), in `20..=60`.
    pub fn header_len(&self) -> usize {
        ((self.buf[0] & 0x0f) as usize) * 4
    }

    /// The `total_len` field: header + payload bytes.
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// Don't-fragment flag.
    pub fn dont_fragment(&self) -> bool {
        self.buf[6] & 0x40 != 0
    }

    /// More-fragments flag.
    pub fn more_fragments(&self) -> bool {
        self.buf[6] & 0x20 != 0
    }

    /// Fragment offset in 8-byte units.
    pub fn fragment_offset(&self) -> u16 {
        u16::from_be_bytes([self.buf[6] & 0x1f, self.buf[7]])
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buf[8]
    }

    /// IP protocol number.
    pub fn protocol(&self) -> u8 {
        self.buf[9]
    }

    /// Header checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[10], self.buf[11]])
    }

    /// Source address.
    pub fn src(&self) -> Ip4 {
        Ip4(u32::from_be_bytes([
            self.buf[12],
            self.buf[13],
            self.buf[14],
            self.buf[15],
        ]))
    }

    /// Destination address.
    pub fn dst(&self) -> Ip4 {
        Ip4(u32::from_be_bytes([
            self.buf[16],
            self.buf[17],
            self.buf[18],
            self.buf[19],
        ]))
    }

    /// Verify the header checksum (ones-complement sum of the header,
    /// including the checksum field, must be `0xffff`).
    pub fn verify_checksum(&self) -> bool {
        let hl = self.header_len();
        checksum::checksum(&self.buf[..hl]) == 0
    }

    /// The L4 payload as delimited by `total_len` (clamped to the buffer).
    pub fn payload(&self) -> &'a [u8] {
        let hl = self.header_len();
        let end = (self.total_len() as usize).min(self.buf.len());
        &self.buf[hl.min(end)..end]
    }
}

/// A mutable view over an IPv4 header.
#[derive(Debug)]
pub struct Ipv4PacketMut<'a> {
    buf: &'a mut [u8],
}

impl<'a> Ipv4PacketMut<'a> {
    /// Header length in bytes.
    pub fn header_len(&self) -> usize {
        ((self.buf[0] & 0x0f) as usize) * 4
    }

    /// Current source address.
    pub fn src(&self) -> Ip4 {
        Ip4(u32::from_be_bytes([
            self.buf[12],
            self.buf[13],
            self.buf[14],
            self.buf[15],
        ]))
    }

    /// Current destination address.
    pub fn dst(&self) -> Ip4 {
        Ip4(u32::from_be_bytes([
            self.buf[16],
            self.buf[17],
            self.buf[18],
            self.buf[19],
        ]))
    }

    /// Current TTL.
    pub fn ttl(&self) -> u8 {
        self.buf[8]
    }

    /// Set `total_len`.
    pub fn set_total_len(&mut self, v: u16) {
        self.buf[2..4].copy_from_slice(&v.to_be_bytes());
    }

    /// Set the identification field.
    pub fn set_ident(&mut self, v: u16) {
        self.buf[4..6].copy_from_slice(&v.to_be_bytes());
    }

    /// Rewrite the source address, **incrementally updating** the header
    /// checksum per RFC 1624. This is the hot-path operation of a NAT:
    /// `O(1)` regardless of packet size.
    pub fn rewrite_src(&mut self, new: Ip4) {
        let old = self.src();
        self.buf[12..16].copy_from_slice(&new.octets());
        let c = Checksum::from_field(self.checksum()).update_u32(old.0, new.0);
        self.set_checksum(c.to_field());
    }

    /// Rewrite the destination address, incrementally updating the header
    /// checksum.
    pub fn rewrite_dst(&mut self, new: Ip4) {
        let old = self.dst();
        self.buf[16..20].copy_from_slice(&new.octets());
        let c = Checksum::from_field(self.checksum()).update_u32(old.0, new.0);
        self.set_checksum(c.to_field());
    }

    /// Decrement TTL by one, incrementally updating the checksum.
    /// Returns the new TTL; the caller drops the packet when it hits 0.
    /// (VigNAT itself does not decrement TTL — it is a NAT, not a router —
    /// but the no-op-forwarding baseline and the NetFilter analog do.)
    pub fn decrement_ttl(&mut self) -> u8 {
        let old16 = u16::from_be_bytes([self.buf[8], self.buf[9]]);
        let new_ttl = self.buf[8].saturating_sub(1);
        self.buf[8] = new_ttl;
        let new16 = u16::from_be_bytes([self.buf[8], self.buf[9]]);
        let c = Checksum::from_field(self.checksum()).update_u16(old16, new16);
        self.set_checksum(c.to_field());
        new_ttl
    }

    /// Current checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[10], self.buf[11]])
    }

    /// Overwrite the checksum field.
    pub fn set_checksum(&mut self, v: u16) {
        self.buf[10..12].copy_from_slice(&v.to_be_bytes());
    }

    /// Recompute the header checksum from scratch and store it.
    pub fn fill_checksum(&mut self) {
        self.set_checksum(0);
        let hl = self.header_len();
        let c = checksum::checksum(&self.buf[..hl]);
        self.set_checksum(c);
    }
}

fn check(buf: &[u8]) -> Result<(), ParseError> {
    if buf.len() < IPV4_MIN_HEADER_LEN {
        return Err(ParseError::Truncated {
            layer: Layer::Ipv4,
            have: buf.len(),
            need: IPV4_MIN_HEADER_LEN,
        });
    }
    if buf[0] >> 4 != 4 {
        return Err(ParseError::BadVersion);
    }
    let ihl = (buf[0] & 0x0f) as usize * 4;
    if !(IPV4_MIN_HEADER_LEN..=60).contains(&ihl) || buf.len() < ihl {
        return Err(ParseError::BadLength { layer: Layer::Ipv4 });
    }
    let total = u16::from_be_bytes([buf[2], buf[3]]) as usize;
    if total < ihl || total > buf.len() {
        return Err(ParseError::BadLength { layer: Layer::Ipv4 });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::ETHERNET_HEADER_LEN;

    fn ip_bytes() -> Vec<u8> {
        let f = PacketBuilder::tcp(Ip4::new(192, 168, 1, 7), Ip4::new(8, 8, 8, 8), 40000, 443)
            .payload(&[1, 2, 3])
            .build();
        f[ETHERNET_HEADER_LEN..].to_vec()
    }

    #[test]
    fn fields_parse() {
        let b = ip_bytes();
        let p = Ipv4Packet::parse(&b).unwrap();
        assert_eq!(p.header_len(), 20);
        assert_eq!(p.protocol(), PROTO_TCP);
        assert_eq!(p.src(), Ip4::new(192, 168, 1, 7));
        assert_eq!(p.dst(), Ip4::new(8, 8, 8, 8));
        assert!(p.verify_checksum());
        assert_eq!(p.total_len() as usize, 20 + 20 + 3);
        assert_eq!(p.payload().len(), 23); // TCP header + payload
    }

    #[test]
    fn bad_version_rejected() {
        let mut b = ip_bytes();
        b[0] = 0x65; // version 6
        assert_eq!(Ipv4Packet::parse(&b).unwrap_err(), ParseError::BadVersion);
    }

    #[test]
    fn bad_ihl_rejected() {
        let mut b = ip_bytes();
        b[0] = 0x44; // IHL = 4 -> 16 bytes, below minimum
        assert!(Ipv4Packet::parse(&b).is_err());
    }

    #[test]
    fn total_len_beyond_buffer_rejected() {
        let mut b = ip_bytes();
        b[2] = 0xff;
        b[3] = 0xff;
        assert!(Ipv4Packet::parse(&b).is_err());
    }

    #[test]
    fn rewrite_src_preserves_checksum_validity() {
        let mut b = ip_bytes();
        {
            let mut p = Ipv4Packet::parse_mut(&mut b).unwrap();
            p.rewrite_src(Ip4::new(1, 2, 3, 4));
        }
        let p = Ipv4Packet::parse(&b).unwrap();
        assert_eq!(p.src(), Ip4::new(1, 2, 3, 4));
        assert!(
            p.verify_checksum(),
            "incremental update must keep checksum valid"
        );
    }

    #[test]
    fn rewrite_dst_preserves_checksum_validity() {
        let mut b = ip_bytes();
        {
            let mut p = Ipv4Packet::parse_mut(&mut b).unwrap();
            p.rewrite_dst(Ip4::new(172, 16, 254, 254));
        }
        let p = Ipv4Packet::parse(&b).unwrap();
        assert_eq!(p.dst(), Ip4::new(172, 16, 254, 254));
        assert!(p.verify_checksum());
    }

    #[test]
    fn ttl_decrement_preserves_checksum_validity() {
        let mut b = ip_bytes();
        {
            let mut p = Ipv4Packet::parse_mut(&mut b).unwrap();
            assert_eq!(p.decrement_ttl(), 63);
        }
        let p = Ipv4Packet::parse(&b).unwrap();
        assert_eq!(p.ttl(), 63);
        assert!(p.verify_checksum());
    }

    #[test]
    fn display() {
        assert_eq!(Ip4::new(10, 1, 2, 3).to_string(), "10.1.2.3");
    }
}
