//! TCP header view — only the fields a NAT needs.
//!
//! A Traditional NAT (RFC 3022) rewrites ports and updates the TCP
//! checksum; it does not track sequence numbers or connection state beyond
//! the flow table, so this view exposes ports, flags and checksum plus
//! read-only access to the rest.

use crate::checksum::Checksum;
use crate::{Layer, ParseError};

/// Minimum TCP header length (data offset = 5).
pub const TCP_MIN_HEADER_LEN: usize = 20;

/// TCP flag bits (subset relevant to NAT session heuristics).
pub mod flags {
    /// FIN.
    pub const FIN: u8 = 0x01;
    /// SYN.
    pub const SYN: u8 = 0x02;
    /// RST.
    pub const RST: u8 = 0x04;
    /// ACK.
    pub const ACK: u8 = 0x10;
}

/// Immutable TCP header view.
#[derive(Debug)]
pub struct TcpSegment<'a> {
    buf: &'a [u8],
}

impl<'a> TcpSegment<'a> {
    /// Parse, checking the fixed header fits and the data offset is sane.
    pub fn parse(buf: &'a [u8]) -> Result<Self, ParseError> {
        check(buf)?;
        Ok(TcpSegment { buf })
    }

    /// Parse a mutable view.
    pub fn parse_mut(buf: &'a mut [u8]) -> Result<TcpSegmentMut<'a>, ParseError> {
        check(buf)?;
        Ok(TcpSegmentMut { buf })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]])
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        u32::from_be_bytes([self.buf[8], self.buf[9], self.buf[10], self.buf[11]])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        ((self.buf[12] >> 4) as usize) * 4
    }

    /// The flags byte (CWR..FIN).
    pub fn flags(&self) -> u8 {
        self.buf[13]
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[16], self.buf[17]])
    }
}

/// Mutable TCP header view.
#[derive(Debug)]
pub struct TcpSegmentMut<'a> {
    buf: &'a mut [u8],
}

impl<'a> TcpSegmentMut<'a> {
    /// Current source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Current destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Rewrite the source port, incrementally updating the TCP checksum.
    pub fn rewrite_src_port(&mut self, new: u16) {
        let old = self.src_port();
        self.buf[0..2].copy_from_slice(&new.to_be_bytes());
        self.incremental_update_u16(old, new);
    }

    /// Rewrite the destination port, incrementally updating the checksum.
    pub fn rewrite_dst_port(&mut self, new: u16) {
        let old = self.dst_port();
        self.buf[2..4].copy_from_slice(&new.to_be_bytes());
        self.incremental_update_u16(old, new);
    }

    /// Fold an address rewrite into the TCP checksum (the pseudo-header
    /// includes src/dst IPs, so a NAT must update the L4 checksum when it
    /// rewrites L3 addresses).
    pub fn update_checksum_for_ip(&mut self, old: u32, new: u32) {
        let c = Checksum::from_field(self.checksum()).update_u32(old, new);
        self.set_checksum(c.to_field());
    }

    fn incremental_update_u16(&mut self, old: u16, new: u16) {
        let c = Checksum::from_field(self.checksum()).update_u16(old, new);
        self.set_checksum(c.to_field());
    }

    /// Current checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[16], self.buf[17]])
    }

    /// Overwrite the checksum field.
    pub fn set_checksum(&mut self, v: u16) {
        self.buf[16..18].copy_from_slice(&v.to_be_bytes());
    }

    /// Set the flags byte.
    pub fn set_flags(&mut self, v: u8) {
        self.buf[13] = v;
    }
}

fn check(buf: &[u8]) -> Result<(), ParseError> {
    if buf.len() < TCP_MIN_HEADER_LEN {
        return Err(ParseError::Truncated {
            layer: Layer::Tcp,
            have: buf.len(),
            need: TCP_MIN_HEADER_LEN,
        });
    }
    let hl = ((buf[12] >> 4) as usize) * 4;
    if hl < TCP_MIN_HEADER_LEN || hl > buf.len() {
        return Err(ParseError::BadLength { layer: Layer::Tcp });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::checksum::l4_checksum;
    use crate::ipv4::{Ip4, PROTO_TCP};
    use crate::{ETHERNET_HEADER_LEN, IPV4_MIN_HEADER_LEN};

    fn tcp_frame() -> Vec<u8> {
        PacketBuilder::tcp(Ip4::new(10, 0, 0, 2), Ip4::new(1, 1, 1, 1), 33333, 443)
            .payload(b"GET /")
            .build()
    }

    fn l4_of(frame: &[u8]) -> &[u8] {
        &frame[ETHERNET_HEADER_LEN + IPV4_MIN_HEADER_LEN..]
    }

    fn l4_verifies(frame: &[u8]) -> bool {
        let src = Ip4::new(10, 0, 0, 2).raw();
        let dst = Ip4::new(1, 1, 1, 1).raw();
        let l4 = l4_of(frame);
        let mut copy = l4.to_vec();
        copy[16] = 0;
        copy[17] = 0;
        let expect = l4_checksum(src, dst, PROTO_TCP, &copy);
        let got = TcpSegment::parse(l4).unwrap().checksum();
        expect == got
    }

    #[test]
    fn builder_produces_valid_checksum() {
        let f = tcp_frame();
        assert!(l4_verifies(&f));
    }

    #[test]
    fn ports_parse() {
        let f = tcp_frame();
        let seg = TcpSegment::parse(l4_of(&f)).unwrap();
        assert_eq!(seg.src_port(), 33333);
        assert_eq!(seg.dst_port(), 443);
        assert_eq!(seg.header_len(), 20);
    }

    #[test]
    fn rewrite_src_port_keeps_checksum_valid() {
        let mut f = tcp_frame();
        {
            let off = ETHERNET_HEADER_LEN + IPV4_MIN_HEADER_LEN;
            let mut seg = TcpSegment::parse_mut(&mut f[off..]).unwrap();
            seg.rewrite_src_port(61000);
        }
        assert!(l4_verifies(&f));
        assert_eq!(TcpSegment::parse(l4_of(&f)).unwrap().src_port(), 61000);
    }

    #[test]
    fn rewrite_dst_port_keeps_checksum_valid() {
        let mut f = tcp_frame();
        {
            let off = ETHERNET_HEADER_LEN + IPV4_MIN_HEADER_LEN;
            let mut seg = TcpSegment::parse_mut(&mut f[off..]).unwrap();
            seg.rewrite_dst_port(8080);
        }
        assert!(l4_verifies(&f));
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(TcpSegment::parse(&[0u8; 19]).is_err());
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut b = vec![0u8; 20];
        b[12] = 0x40; // data offset 4 -> 16 bytes < 20
        assert!(TcpSegment::parse(&b).is_err());
        b[12] = 0xf0; // data offset 15 -> 60 bytes > buffer
        assert!(TcpSegment::parse(&b).is_err());
    }
}
