//! UDP header view.

use crate::checksum::Checksum;
use crate::{Layer, ParseError};

/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;

/// Immutable UDP header view.
#[derive(Debug)]
pub struct UdpDatagram<'a> {
    buf: &'a [u8],
}

impl<'a> UdpDatagram<'a> {
    /// Parse, checking the header fits and the length field is sane.
    pub fn parse(buf: &'a [u8]) -> Result<Self, ParseError> {
        check(buf)?;
        Ok(UdpDatagram { buf })
    }

    /// Parse a mutable view.
    pub fn parse_mut(buf: &'a mut [u8]) -> Result<UdpDatagramMut<'a>, ParseError> {
        check(buf)?;
        Ok(UdpDatagramMut { buf })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// The `length` field (header + payload).
    pub fn len(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// True when the length field covers only the header.
    pub fn is_empty(&self) -> bool {
        self.len() as usize == UDP_HEADER_LEN
    }

    /// Checksum field (0 = not computed, allowed for UDP over IPv4).
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[6], self.buf[7]])
    }
}

/// Mutable UDP header view.
#[derive(Debug)]
pub struct UdpDatagramMut<'a> {
    buf: &'a mut [u8],
}

impl<'a> UdpDatagramMut<'a> {
    /// Current source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Current destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Rewrite the source port, incrementally updating the checksum unless
    /// it is absent (0).
    pub fn rewrite_src_port(&mut self, new: u16) {
        let old = self.src_port();
        self.buf[0..2].copy_from_slice(&new.to_be_bytes());
        self.incremental_update_u16(old, new);
    }

    /// Rewrite the destination port, incrementally updating the checksum
    /// unless it is absent.
    pub fn rewrite_dst_port(&mut self, new: u16) {
        let old = self.dst_port();
        self.buf[2..4].copy_from_slice(&new.to_be_bytes());
        self.incremental_update_u16(old, new);
    }

    /// Fold an IPv4 address rewrite into the UDP checksum (pseudo-header),
    /// unless the checksum is absent.
    pub fn update_checksum_for_ip(&mut self, old: u32, new: u32) {
        if self.checksum() == 0 {
            return;
        }
        let c = Checksum::from_field(self.checksum()).update_u32(old, new);
        self.set_checksum_nonzero(c.to_field());
    }

    fn incremental_update_u16(&mut self, old: u16, new: u16) {
        if self.checksum() == 0 {
            return; // no checksum present; nothing to maintain
        }
        let c = Checksum::from_field(self.checksum()).update_u16(old, new);
        self.set_checksum_nonzero(c.to_field());
    }

    /// An incremental update can yield 0x0000, which for UDP would mean
    /// "no checksum"; RFC 768 requires transmitting 0xffff instead.
    fn set_checksum_nonzero(&mut self, v: u16) {
        let v = if v == 0 { 0xffff } else { v };
        self.buf[6..8].copy_from_slice(&v.to_be_bytes());
    }

    /// Current checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[6], self.buf[7]])
    }

    /// Set the length field.
    pub fn set_len(&mut self, v: u16) {
        self.buf[4..6].copy_from_slice(&v.to_be_bytes());
    }

    /// Overwrite the checksum field (0 disables checksumming).
    pub fn set_checksum(&mut self, v: u16) {
        self.buf[6..8].copy_from_slice(&v.to_be_bytes());
    }
}

fn check(buf: &[u8]) -> Result<(), ParseError> {
    if buf.len() < UDP_HEADER_LEN {
        return Err(ParseError::Truncated {
            layer: Layer::Udp,
            have: buf.len(),
            need: UDP_HEADER_LEN,
        });
    }
    let len = u16::from_be_bytes([buf[4], buf[5]]) as usize;
    if len < UDP_HEADER_LEN || len > buf.len() {
        return Err(ParseError::BadLength { layer: Layer::Udp });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::checksum::l4_checksum;
    use crate::ipv4::{Ip4, PROTO_UDP};
    use crate::{ETHERNET_HEADER_LEN, IPV4_MIN_HEADER_LEN};

    const SRC: Ip4 = Ip4::new(10, 0, 0, 9);
    const DST: Ip4 = Ip4::new(4, 4, 4, 4);

    fn udp_frame() -> Vec<u8> {
        PacketBuilder::udp(SRC, DST, 1234, 53)
            .payload(b"dns?")
            .build()
    }

    fn l4_verifies(frame: &[u8]) -> bool {
        let l4 = &frame[ETHERNET_HEADER_LEN + IPV4_MIN_HEADER_LEN..];
        let mut copy = l4.to_vec();
        copy[6] = 0;
        copy[7] = 0;
        l4_checksum(SRC.raw(), DST.raw(), PROTO_UDP, &copy)
            == UdpDatagram::parse(l4).unwrap().checksum()
    }

    #[test]
    fn builder_produces_valid_checksum() {
        assert!(l4_verifies(&udp_frame()));
    }

    #[test]
    fn rewrite_ports_keeps_checksum_valid() {
        let mut f = udp_frame();
        let off = ETHERNET_HEADER_LEN + IPV4_MIN_HEADER_LEN;
        {
            let mut dg = UdpDatagram::parse_mut(&mut f[off..]).unwrap();
            dg.rewrite_src_port(40001);
            dg.rewrite_dst_port(5353);
        }
        assert!(l4_verifies(&f));
        let dg = UdpDatagram::parse(&f[off..]).unwrap();
        assert_eq!(dg.src_port(), 40001);
        assert_eq!(dg.dst_port(), 5353);
    }

    #[test]
    fn zero_checksum_stays_zero_on_rewrite() {
        let mut f = udp_frame();
        let off = ETHERNET_HEADER_LEN + IPV4_MIN_HEADER_LEN;
        {
            let mut dg = UdpDatagram::parse_mut(&mut f[off..]).unwrap();
            dg.set_checksum(0);
            dg.rewrite_src_port(999);
            dg.update_checksum_for_ip(SRC.raw(), 0x01020304);
        }
        let dg = UdpDatagram::parse(&f[off..]).unwrap();
        assert_eq!(dg.checksum(), 0, "absent checksum must stay absent");
    }

    #[test]
    fn bad_length_rejected() {
        let mut b = vec![0u8; 8];
        b[4] = 0;
        b[5] = 7; // < header
        assert!(UdpDatagram::parse(&b).is_err());
        b[5] = 200; // > buffer
        assert!(UdpDatagram::parse(&b).is_err());
    }

    #[test]
    fn short_rejected() {
        assert!(UdpDatagram::parse(&[0u8; 7]).is_err());
    }
}
