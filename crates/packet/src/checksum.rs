//! The internet checksum (RFC 1071) and its incremental update (RFC 1624).
//!
//! NATs rewrite a handful of 16/32-bit header fields per packet; recomputing
//! checksums over the full packet would dominate the per-packet cost, so
//! both VigNAT and this reproduction use the RFC 1624 "equation 3" update:
//!
//! ```text
//! HC' = ~(~HC + ~m + m')
//! ```
//!
//! computed in ones-complement arithmetic, where `m`/`m'` are the old/new
//! field values. [`Checksum`] wraps a checksum field value and applies such
//! updates; a proptest in this module checks the incremental result always
//! equals a from-scratch recomputation.

/// Compute the internet checksum over `data`, returning the value that
/// belongs **in** the checksum field (i.e. already complemented).
///
/// An all-correct buffer (checksum field included) sums to `0`.
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data, 0))
}

/// Ones-complement sum of 16-bit big-endian words, with an odd trailing
/// byte padded with zero, added to an existing partial `acc`.
pub fn sum_words(data: &[u8], acc: u32) -> u32 {
    let mut sum = acc;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        sum += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Fold a 32-bit partial sum to 16 bits (ones-complement carry wraparound).
pub fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Pseudo-header contribution for TCP/UDP checksums over IPv4
/// (src, dst, zero+protocol, L4 length).
pub fn pseudo_header_sum(src: u32, dst: u32, protocol: u8, l4_len: u16) -> u32 {
    (src >> 16)
        + (src & 0xffff)
        + (dst >> 16)
        + (dst & 0xffff)
        + u32::from(protocol)
        + u32::from(l4_len)
}

/// Compute a TCP/UDP checksum field value from the pseudo header and the
/// full L4 segment bytes (with the checksum field zeroed by the caller).
pub fn l4_checksum(src: u32, dst: u32, protocol: u8, l4: &[u8]) -> u16 {
    let acc = pseudo_header_sum(src, dst, protocol, l4.len() as u16);
    let c = !fold(sum_words(l4, acc));
    // Per RFC 768, a computed UDP checksum of 0 is transmitted as 0xffff
    // (0 means "no checksum"). Harmless for TCP, where 0 is just a value,
    // but we keep the substitution TCP-side too for uniformity with how
    // hardware offloads behave; verification treats both as valid.
    if protocol == crate::ipv4::PROTO_UDP && c == 0 {
        0xffff
    } else {
        c
    }
}

/// A checksum *field* value supporting RFC 1624 incremental updates.
///
/// Internally stores the ones-complement of the field (the running sum
/// form), which makes updates compose associatively: updating src-ip then
/// src-port equals updating both in either order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checksum(u16);

impl Checksum {
    /// Wrap the value currently stored in a header's checksum field.
    pub fn from_field(field: u16) -> Checksum {
        Checksum(!field)
    }

    /// The value to store back into the header's checksum field.
    pub fn to_field(self) -> u16 {
        !self.0
    }

    /// RFC 1624 eq. 3 update for one 16-bit field changing `old -> new`.
    #[must_use]
    pub fn update_u16(self, old: u16, new: u16) -> Checksum {
        // HC' = ~(~HC + ~m + m')   — we store ~HC, so:
        let sum = u32::from(self.0) + u32::from(!old) + u32::from(new);
        Checksum(fold(sum))
    }

    /// Update for a 32-bit field (e.g. an IPv4 address) changing
    /// `old -> new`, applied as two 16-bit updates.
    #[must_use]
    pub fn update_u32(self, old: u32, new: u32) -> Checksum {
        self.update_u16((old >> 16) as u16, (new >> 16) as u16)
            .update_u16(old as u16, new as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // RFC 1071 worked example: the classic test vector.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(fold(sum_words(&data, 0)), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(fold(sum_words(&[0xab], 0)), 0xab00);
    }

    #[test]
    fn empty_is_zero_sum() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn verify_style_zero() {
        // Writing the computed checksum into the buffer makes the total
        // checksum come out as zero.
        let mut data = vec![
            0x45u8, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x68, 0xc0, 0xa8, 0x00, 0x01,
        ];
        let c = checksum(&data);
        data[10..12].copy_from_slice(&c.to_be_bytes());
        assert_eq!(checksum(&data), 0);
    }

    fn recompute_with(buf: &mut [u8], at: usize, new: u16) -> u16 {
        buf[at..at + 2].copy_from_slice(&new.to_be_bytes());
        // zero the checksum field (assume field at offset 10 like IPv4)
        buf[10] = 0;
        buf[11] = 0;
        checksum(buf)
    }

    proptest! {
        /// Incremental update (RFC 1624) == recomputation from scratch,
        /// for arbitrary header contents and arbitrary 16-bit rewrites.
        #[test]
        fn incremental_matches_recompute(
            mut header in proptest::collection::vec(any::<u8>(), 20..=20),
            field_idx in 0usize..9,
            new_val in any::<u16>(),
        ) {
            // pick a 16-bit field not overlapping the checksum at 10..12
            let at = if field_idx >= 5 { field_idx * 2 + 2 } else { field_idx * 2 };
            // install a valid checksum first
            header[10] = 0; header[11] = 0;
            let c0 = checksum(&header);
            header[10..12].copy_from_slice(&c0.to_be_bytes());

            let old = u16::from_be_bytes([header[at], header[at+1]]);
            let inc = Checksum::from_field(c0).update_u16(old, new_val).to_field();

            let mut fresh = header.clone();
            let from_scratch = recompute_with(&mut fresh, at, new_val);

            // Both must verify; ones-complement zero has two forms (0x0000
            // vs 0xffff can both appear as "sum verifies"), so compare by
            // verification rather than bit equality.
            let mut with_inc = header.clone();
            with_inc[at..at+2].copy_from_slice(&new_val.to_be_bytes());
            with_inc[10..12].copy_from_slice(&inc.to_be_bytes());
            prop_assert_eq!(checksum(&with_inc), 0, "incremental result must verify");

            let mut with_fresh = header;
            with_fresh[at..at+2].copy_from_slice(&new_val.to_be_bytes());
            with_fresh[10..12].copy_from_slice(&from_scratch.to_be_bytes());
            prop_assert_eq!(checksum(&with_fresh), 0, "recomputed result must verify");
        }

        /// 32-bit updates equal two independent 16-bit updates in either order.
        #[test]
        fn u32_update_order_independent(field in any::<u16>(), old in any::<u32>(), new in any::<u32>()) {
            let a = Checksum::from_field(field).update_u32(old, new);
            let b = Checksum::from_field(field)
                .update_u16(old as u16, new as u16)
                .update_u16((old >> 16) as u16, (new >> 16) as u16);
            prop_assert_eq!(a.to_field(), b.to_field());
        }

        /// Updating a field to itself is the identity.
        #[test]
        fn self_update_is_identity(field in any::<u16>(), v in any::<u16>()) {
            let c = Checksum::from_field(field).update_u16(v, v);
            // ones-complement identity: result verifies the same sums
            prop_assert_eq!(fold(u32::from(!c.to_field())), fold(u32::from(!field)));
        }
    }
}
