//! # vig-validator — the Vigor Validator (lazy proofs, paper §5.2)
//!
//! This crate closes the loop of the paper's Fig. 7:
//!
//! ```text
//! P1  VigNAT satisfies RFC 3022 semantics      (Validator + solver)   <- P2, P3, P4
//! P2  VigNAT satisfies low-level properties    (ESE + solver)         <- P3, P4, P5
//! P3  libVig refines its contracts             (libvig crate's checked/exhaustive layer)
//! P4  stateless code uses libVig correctly     (Validator + solver)
//! P5  libVig models faithful to the contracts  (Validator + solver)
//! ```
//!
//! The pipeline ([`run_verification`]):
//!
//! 1. **ESE** ([`ese`]): the *actual* `vignat::nat_loop_iteration` is
//!    executed exhaustively under [`sym_env::SymEnv`] — a symbolic
//!    environment whose libVig **models** fork execution (lookup
//!    hit/miss, allocation success/failure) and return constrained
//!    fresh symbols, exactly like the paper's symbolic models (§5.1.4).
//!    Every feasible path yields a [`trace::SymTrace`].
//! 2. **P2** ([`checks::check_p2`]): each arithmetic obligation the
//!    domain emitted (no overflow/underflow, shifts in range) is
//!    discharged against that path's constraints.
//! 3. **P4** ([`checks::check_p4`]): buffer ownership (every received
//!    packet is sent or dropped exactly once — the leak check that
//!    caught a real bug in VigNAT, §5.2.4), allocate→insert pairing,
//!    the slot/port arithmetic discipline, rejuvenate-only-after-hit,
//!    and the guarded-expiry discipline.
//! 4. **P5** ([`checks::check_p5`]): for every model call on the path,
//!    the constraints the model emitted are *entailed by the libVig
//!    contract postconditions* — the lazy model validation of §5.2.3
//!    (validity only for the calls actually observed, not universally).
//! 5. **P1** ([`checks::check_p1`]): the RFC 3022 decision tree is
//!    woven into the trace: parse-drop paths must be provably
//!    unacceptable frames; accepted paths must forward/drop with
//!    exactly the Fig. 6 rewrites, proven field-by-field by the solver.
//!
//! Deliberately-broken models (paper §3's over- and under-approximate
//! ring models) are reproduced via [`sym_env::ModelStyle`]: the
//! over-approximate model breaks the P2 overflow proof, the
//! under-approximate one fails P5 — and the tests pin both failures.
//!
//! Trace validation is embarrassingly parallel; [`run_verification`]
//! validates traces across threads like the paper's 4-core run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod discard;
pub mod ese;
pub mod report;
pub mod sym_env;
pub mod trace;

pub use ese::{run_ese, EseResult};
pub use report::{run_verification, VerificationReport};
pub use sym_env::ModelStyle;
pub use trace::{Event, SymTrace};
