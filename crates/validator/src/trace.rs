//! Symbolic traces — the paper's Fig. 9 artifact.
//!
//! A trace records every call the stateless code made across the
//! environment interface during one symbolically executed path, with
//! symbolic terms as arguments/results, plus the path constraints and
//! the low-level proof obligations emitted along the way. The
//! Validator's checks consume these; nothing else re-runs the code.

use vig_packet::Direction;
use vig_symbex::explorer::Decision;
use vig_symbex::solver::Lit;
use vig_symbex::term::{TermArena, TermId};

/// The symbolic image of a received packet (all fields are terms).
#[derive(Debug, Clone)]
pub struct SymRx {
    /// Arrival interface (concrete per path).
    pub dir: Direction,
    /// Frame length term.
    pub frame_len: TermId,
    /// EtherType term.
    pub ethertype: TermId,
    /// IPv4 version+IHL byte term.
    pub version_ihl: TermId,
    /// IPv4 total length term.
    pub total_len: TermId,
    /// Flags+fragment-offset term.
    pub frag_field: TermId,
    /// Protocol term.
    pub proto: TermId,
    /// Source ip term.
    pub src_ip: TermId,
    /// Destination ip term.
    pub dst_ip: TermId,
    /// Source port term.
    pub src_port: TermId,
    /// Destination port term.
    pub dst_port: TermId,
}

/// Identifies which libVig model call an event came from (for P5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelCall {
    /// `lookup_internal` returning a hit.
    LookupInternalHit,
    /// `lookup_external` returning a hit.
    LookupExternalHit,
    /// `allocate_slot` returning a slot.
    AllocateSlot,
}

/// One event on the traced interface.
#[derive(Debug, Clone)]
pub enum Event {
    /// Clock read; the term is the symbolic `now`.
    Now(TermId),
    /// `expire_flows(threshold)`.
    ExpireFlows {
        /// Threshold term (must be `now - Texp` on guarded paths).
        threshold: TermId,
    },
    /// A packet was received.
    Receive(SymRx),
    /// `receive` returned nothing.
    NoPacket,
    /// A branch was decided.
    Branch {
        /// The condition term.
        cond: TermId,
        /// Which way it went.
        taken: bool,
    },
    /// Flow lookup by internal 5-tuple.
    LookupInternal {
        /// fid terms: src_ip, src_port, dst_ip, dst_port.
        fid: [TermId; 4],
        /// Hit: (slot, ext_port term). Miss: `None`.
        result: Option<(usize, TermId)>,
        /// Constraints the model assumed on its outputs (P5 checks
        /// these against the contract).
        assumed: Vec<Lit>,
    },
    /// Flow lookup by external key.
    LookupExternal {
        /// ext key terms: ext_port, dst_ip, dst_port.
        ek: [TermId; 3],
        /// Hit: (slot, int_ip term, int_port term).
        result: Option<(usize, TermId, TermId)>,
        /// Model-assumed constraints.
        assumed: Vec<Lit>,
    },
    /// Timestamp refresh of a slot.
    Rejuvenate {
        /// The slot.
        slot: usize,
        /// The time term used.
        now: TermId,
    },
    /// Slot allocation.
    AllocateSlot {
        /// Success: (slot, index term). Failure: `None`.
        result: Option<(usize, TermId)>,
        /// Model-assumed constraints.
        assumed: Vec<Lit>,
    },
    /// Flow insertion into a reserved slot.
    InsertFlow {
        /// The slot.
        slot: usize,
        /// fid terms.
        fid: [TermId; 4],
        /// The external port term the stateless code computed.
        ext_port: TermId,
    },
    /// Packet transmitted.
    Tx {
        /// Egress interface.
        out: Direction,
        /// Rewritten header terms: src_ip, src_port, dst_ip, dst_port.
        hdr: [TermId; 4],
    },
    /// Packet dropped.
    DropPkt,
}

/// A low-level proof obligation (P2) emitted by a domain operation.
#[derive(Debug, Clone)]
pub struct Obligation {
    /// The proposition that must hold on this path.
    pub prop: TermId,
    /// Human-readable description ("u16 add must not wrap", ...).
    pub what: &'static str,
}

/// One path's complete symbolic record.
#[derive(Debug)]
pub struct SymTrace {
    /// Term arena for everything referenced by this trace.
    pub arena: TermArena,
    /// The decision sequence identifying the path.
    pub decisions: Vec<Decision>,
    /// Path constraints (branch conditions + model assumptions).
    pub path: Vec<Lit>,
    /// The event sequence.
    pub events: Vec<Event>,
    /// Low-level obligations (P2).
    pub obligations: Vec<Obligation>,
}

impl SymTrace {
    /// The received packet, if this path received one.
    pub fn rx(&self) -> Option<&SymRx> {
        self.events.iter().find_map(|e| match e {
            Event::Receive(rx) => Some(rx),
            _ => None,
        })
    }

    /// The transmit event, if the path forwarded.
    pub fn tx(&self) -> Option<(&Direction, &[TermId; 4])> {
        self.events.iter().find_map(|e| match e {
            Event::Tx { out, hdr } => Some((out, hdr)),
            _ => None,
        })
    }

    /// Did the path drop the packet?
    pub fn dropped(&self) -> bool {
        self.events.iter().any(|e| matches!(e, Event::DropPkt))
    }

    /// Render a compact, paper-Fig.9-style text form of the trace.
    pub fn render(&self) -> String {
        use core::fmt::Write;
        let mut s = String::new();
        for e in &self.events {
            let _ = match e {
                Event::Now(t) => writeln!(s, "now() ==> {}", self.arena.name_of(*t)),
                Event::ExpireFlows { .. } => writeln!(s, "expire_flows(now - Texp)"),
                Event::Receive(rx) => writeln!(s, "receive() ==> packet on {:?}", rx.dir),
                Event::NoPacket => writeln!(s, "receive() ==> none"),
                Event::Branch { taken, .. } => writeln!(s, "branch ==> {taken}"),
                Event::LookupInternal { result, .. } => {
                    writeln!(s, "lookup_internal ==> {:?}", result.map(|(sl, _)| sl))
                }
                Event::LookupExternal { result, .. } => {
                    writeln!(s, "lookup_external ==> {:?}", result.map(|(sl, _, _)| sl))
                }
                Event::Rejuvenate { slot, .. } => writeln!(s, "rejuvenate(slot {slot})"),
                Event::AllocateSlot { result, .. } => {
                    writeln!(s, "allocate_slot ==> {:?}", result.map(|(sl, _)| sl))
                }
                Event::InsertFlow { slot, .. } => writeln!(s, "insert_flow(slot {slot})"),
                Event::Tx { out, .. } => writeln!(s, "tx(out={out:?})"),
                Event::DropPkt => writeln!(s, "drop()"),
            };
        }
        let _ = writeln!(
            s,
            "--- {} path constraints, {} obligations ---",
            self.path.len(),
            self.obligations.len()
        );
        s
    }
}
