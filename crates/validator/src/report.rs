//! The end-to-end verification pipeline and its report.
//!
//! [`run_verification`] = ESE + parallel per-trace validation of
//! P2/P4/P5/P1 (P3 is the libvig crate's own contract/exhaustive test
//! layer, re-attested by `cargo test -p libvig`). The report carries
//! the same statistics the paper quotes in §5.2: path count, trace
//! count including prefixes, and single- vs multi-threaded validation
//! time — reproduced as experiment TAB-VERIF.

use crate::checks::{check_p1, check_p2, check_p4, check_p5, CheckFailure};
use crate::ese::run_ese;
use crate::sym_env::ModelStyle;
use crate::trace::SymTrace;
use vig_spec::NatConfig;

/// Outcome of the full pipeline.
#[derive(Debug)]
pub struct VerificationReport {
    /// Feasible execution paths explored (paper: 108).
    pub paths: usize,
    /// Traces including all prefixes (paper: 431).
    pub traces_with_prefixes: usize,
    /// Total branch/model decisions across all paths.
    pub decisions: usize,
    /// Low-level obligations discharged (P2).
    pub p2_obligations: usize,
    /// Usage-discipline conditions checked (P4).
    pub p4_checks: usize,
    /// Model constraints validated against contracts (P5).
    pub p5_checks: usize,
    /// Semantic conditions proven (P1).
    pub p1_checks: usize,
    /// Wall-clock time of the symbolic execution.
    pub ese_duration: std::time::Duration,
    /// Wall-clock time of trace validation.
    pub validation_duration: std::time::Duration,
    /// Threads used for validation.
    pub threads: usize,
    /// Every condition that could not be proven.
    pub failures: Vec<CheckFailure>,
}

impl VerificationReport {
    /// Did the whole proof go through?
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// A human-readable summary block (used by the example binary and
    /// the verification bench).
    pub fn summary(&self) -> String {
        format!(
            "paths: {}\ntraces (incl. prefixes): {}\ndecisions: {}\n\
             P2 obligations discharged: {}\nP4 conditions: {}\nP5 model validations: {}\n\
             P1 semantic conditions: {}\nESE time: {:?}\nvalidation time ({} thread(s)): {:?}\n\
             verdict: {}",
            self.paths,
            self.traces_with_prefixes,
            self.decisions,
            self.p2_obligations,
            self.p4_checks,
            self.p5_checks,
            self.p1_checks,
            self.ese_duration,
            self.threads,
            self.validation_duration,
            if self.ok() { "VERIFIED" } else { "FAILED" },
        )
    }
}

/// Validate one trace, returning (p2, p4, p5, p1) counts or the first
/// failure.
fn validate_trace(
    trace: &mut SymTrace,
    cfg: &NatConfig,
) -> Result<(usize, usize, usize, usize), CheckFailure> {
    let p2 = check_p2(trace)?;
    let p4 = check_p4(trace, cfg)?;
    let p5 = check_p5(trace, cfg)?;
    let p1 = check_p1(trace, cfg)?;
    Ok((p2, p4, p5, p1))
}

/// Run the full pipeline. `threads` = 1 reproduces the paper's
/// single-core validation; more threads reproduce the parallel run.
pub fn run_verification(cfg: &NatConfig, style: ModelStyle, threads: usize) -> VerificationReport {
    let ese = match run_ese(cfg, style, 10_000) {
        Ok(r) => r,
        Err(e) => {
            return VerificationReport {
                paths: 0,
                traces_with_prefixes: 0,
                decisions: 0,
                p2_obligations: 0,
                p4_checks: 0,
                p5_checks: 0,
                p1_checks: 0,
                ese_duration: std::time::Duration::ZERO,
                validation_duration: std::time::Duration::ZERO,
                threads,
                failures: vec![CheckFailure {
                    property: "P2",
                    detail: format!("ESE failed: {e}"),
                }],
            }
        }
    };
    let paths = ese.stats.paths;
    let decisions = ese.stats.decisions;
    let traces_with_prefixes = ese.trace_count_with_prefixes();
    let ese_duration = ese.duration;

    let start = std::time::Instant::now();
    let threads = threads.max(1);
    let mut traces = ese.traces;
    let cfg = *cfg;

    let chunk = traces.len().div_ceil(threads);
    let mut totals = (0usize, 0usize, 0usize, 0usize);
    let mut failures: Vec<CheckFailure> = Vec::new();

    if threads == 1 || traces.len() <= 1 {
        for t in &mut traces {
            match validate_trace(t, &cfg) {
                Ok((a, b, c, d)) => {
                    totals.0 += a;
                    totals.1 += b;
                    totals.2 += c;
                    totals.3 += d;
                }
                Err(f) => failures.push(f),
            }
        }
    } else {
        let results: Vec<(usize, usize, usize, usize, Vec<CheckFailure>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = traces
                    .chunks_mut(chunk.max(1))
                    .map(|slice| {
                        scope.spawn(move || {
                            let mut tot = (0usize, 0usize, 0usize, 0usize);
                            let mut fails = Vec::new();
                            for t in slice {
                                match validate_trace(t, &cfg) {
                                    Ok((a, b, c, d)) => {
                                        tot.0 += a;
                                        tot.1 += b;
                                        tot.2 += c;
                                        tot.3 += d;
                                    }
                                    Err(f) => fails.push(f),
                                }
                            }
                            (tot.0, tot.1, tot.2, tot.3, fails)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("validator thread"))
                    .collect()
            });
        for (a, b, c, d, fails) in results {
            totals.0 += a;
            totals.1 += b;
            totals.2 += c;
            totals.3 += d;
            failures.extend(fails);
        }
    }

    VerificationReport {
        paths,
        traces_with_prefixes,
        decisions,
        p2_obligations: totals.0,
        p4_checks: totals.1,
        p5_checks: totals.2,
        p1_checks: totals.3,
        ese_duration,
        validation_duration: start.elapsed(),
        threads,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vig_packet::Ip4;

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 65_535,
            expiry_ns: 2_000_000_000,
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1,
            ..NatConfig::paper_default()
        }
    }

    /// The headline result: the real loop body, under faithful models,
    /// verifies completely — P1 (RFC 3022 semantics), P2, P4, P5.
    #[test]
    fn vignat_verifies() {
        let r = run_verification(&cfg(), ModelStyle::Faithful, 1);
        assert!(r.ok(), "verification failed:\n{:#?}", r.failures);
        assert!(r.p2_obligations > 0, "must discharge real obligations");
        assert!(r.p1_checks > 0, "must prove real semantic conditions");
        assert!(r.p5_checks > 0, "must validate real model constraints");
    }

    /// Parallel validation gives the same verdict (paper's 4-core run).
    #[test]
    fn parallel_validation_agrees() {
        let seq = run_verification(&cfg(), ModelStyle::Faithful, 1);
        let par = run_verification(&cfg(), ModelStyle::Faithful, 4);
        assert_eq!(seq.ok(), par.ok());
        assert_eq!(seq.paths, par.paths);
        assert_eq!(seq.p2_obligations, par.p2_obligations);
        assert_eq!(seq.p1_checks, par.p1_checks);
    }

    /// Paper §3, model (b): an over-approximate model (allocation index
    /// unconstrained) breaks the low-level proof — the port arithmetic
    /// can no longer be shown not to wrap.
    #[test]
    fn over_approximate_model_fails_p2() {
        let r = run_verification(&cfg(), ModelStyle::OverApproximate, 1);
        assert!(!r.ok());
        assert!(
            r.failures.iter().any(|f| f.property == "P2"),
            "expected a P2 failure, got {:?}",
            r.failures
        );
    }

    /// Paper §3, model (c): an under-approximate model (allocation index
    /// pinned to 0) fails lazy model validation.
    #[test]
    fn under_approximate_model_fails_p5() {
        let r = run_verification(&cfg(), ModelStyle::UnderApproximate, 1);
        assert!(!r.ok());
        assert!(
            r.failures.iter().any(|f| f.property == "P5"),
            "expected a P5 failure, got {:?}",
            r.failures
        );
    }

    /// A different configuration still verifies — the proof is about
    /// the code, not about one parameterization. (Notably the port
    /// range sitting flush against 65535.)
    #[test]
    fn verification_holds_across_configs() {
        let tight = NatConfig {
            capacity: 1_024,
            expiry_ns: 60_000_000_000,
            external_ip: Ip4::new(203, 0, 113, 7),
            start_port: 64_512, // 64512 + 1024 = 65536: flush fit,
            ..NatConfig::paper_default()
        };
        let r = run_verification(&tight, ModelStyle::Faithful, 2);
        assert!(r.ok(), "verification failed:\n{:#?}", r.failures);
    }
}
