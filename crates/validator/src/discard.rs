//! The paper's §3 worked example, verified with the full pipeline: the
//! discard-protocol NF (drop port 9, ring-buffer the rest) under
//! exhaustive symbolic execution with all three of Fig. 4's ring
//! models.
//!
//! This is the generality demonstration: the same engine (symbex), the
//! same lazy-proof structure (assume the model, validate it a
//! posteriori), applied to a different NF with a different stateful
//! library (the ring instead of the flow table):
//!
//! * with the **faithful model (a)** — `ring_pop_front` returns a fresh
//!   symbol constrained by the ring invariant `port != 9` — the
//!   semantic property "no emitted packet has target port 9" is proven
//!   on every path, and the model constraint is validated against the
//!   ring contract (P5);
//! * with the **over-approximate model (b)** — no constraint on the
//!   popped packet — the *semantic* proof fails (paper: "Step 3b
//!   fails: since the model can return packets with target port 9,
//!   Vigor cannot verify ... that the output packet does not have
//!   target port 9");
//! * with the **under-approximate model (c)** — popped port pinned to
//!   0 — *model validation* fails (paper: "Step 3a fails ... the proof
//!   checker cannot confirm that this assertion is always true, because
//!   ring_pop_front's contract specifies a wider range").
//!
//! The loop body below is the paper's Fig. 1, written over the same
//! `Domain` abstraction as the NAT so the engine executes the real
//! code.

use crate::checks::CheckFailure;
use vig_symbex::explorer::{explore, Steering};
use vig_symbex::solver::{Lit, SatResult, Solver};
use vig_symbex::term::{TermArena, TermId, Width};
use vignat::domain::Domain;

/// The discard NF's effect interface (paper Fig. 1's calls).
pub trait DiscardEnv: Domain {
    /// Non-blocking receive; `Some(port)` is the packet's target port.
    fn receive(&mut self) -> Option<Self::U16>;
    /// Fork point.
    fn branch(&mut self, cond: Self::B) -> bool;
    /// `ring_full(r)`.
    fn ring_full(&mut self) -> Self::B;
    /// `ring_empty(r)`.
    fn ring_empty(&mut self) -> Self::B;
    /// `can_send()`.
    fn can_send(&mut self) -> Self::B;
    /// `ring_push_back(r, &p)`.
    fn ring_push(&mut self, port: Self::U16);
    /// `ring_pop_front(r, &p)`.
    fn ring_pop(&mut self) -> Self::U16;
    /// `send(&p)`.
    fn send(&mut self, port: Self::U16);
}

/// One iteration of the paper's Fig. 1 event loop — the stateless code
/// under verification.
pub fn discard_loop_iteration<E: DiscardEnv + ?Sized>(env: &mut E) {
    // if (!ring_full(r))
    let full = env.ring_full();
    let not_full = env.not(&full);
    if env.branch(not_full) {
        // if (receive(&p) && p.port != 9) ring_push_back(r, &p);
        if let Some(port) = env.receive() {
            let nine = env.c_u16(9);
            let is_nine = env.eq_u16(&port, &nine);
            let ok = env.not(&is_nine);
            if env.branch(ok) {
                env.ring_push(port);
            }
            // else: discarded (the packet is simply not enqueued)
        }
    }
    // if (!ring_empty(r) && can_send()) { ring_pop_front(r, &p); send(&p); }
    let empty = env.ring_empty();
    let not_empty = env.not(&empty);
    let cs = env.can_send();
    let both = env.and(&not_empty, &cs);
    if env.branch(both) {
        let p = env.ring_pop();
        env.send(p);
    }
}

/// Which `ring_pop_front` model to execute under (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RingModel {
    /// Model (a): fresh symbol constrained by the ring invariant.
    #[default]
    Faithful,
    /// Model (b): fresh symbol, unconstrained (over-approximate).
    OverApproximate,
    /// Model (c): constant 0 (under-approximate).
    UnderApproximate,
}

/// Trace events of the symbolic discard run.
#[derive(Debug, Clone)]
pub enum DiscardEvent {
    /// Packet received with this (symbolic) port.
    Receive(TermId),
    /// Port pushed onto the ring.
    Push(TermId),
    /// Port popped, with the model's assumed constraints.
    Pop {
        /// The popped port term.
        port: TermId,
        /// Model assumptions (P5 checks these against the contract).
        assumed: Vec<Lit>,
    },
    /// Packet emitted.
    Send(TermId),
}

/// One path's record.
pub struct DiscardTrace {
    /// Terms.
    pub arena: TermArena,
    /// Path constraints.
    pub path: Vec<Lit>,
    /// Events.
    pub events: Vec<DiscardEvent>,
}

struct SymDiscardEnv<'s> {
    arena: TermArena,
    steer: &'s mut Steering,
    path: Vec<Lit>,
    events: Vec<DiscardEvent>,
    model: RingModel,
}

impl Domain for SymDiscardEnv<'_> {
    type B = TermId;
    type U8 = TermId;
    type U16 = TermId;
    type U32 = TermId;
    type U64 = TermId;

    fn c_bool(&mut self, v: bool) -> TermId {
        self.arena.cb(v)
    }
    fn c_u8(&mut self, v: u8) -> TermId {
        self.arena.cu(u64::from(v), Width::W8)
    }
    fn c_u16(&mut self, v: u16) -> TermId {
        self.arena.cu(u64::from(v), Width::W16)
    }
    fn c_u32(&mut self, v: u32) -> TermId {
        self.arena.cu(u64::from(v), Width::W32)
    }
    fn c_u64(&mut self, v: u64) -> TermId {
        self.arena.cu(v, Width::W64)
    }
    fn eq_u8(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.eq(*a, *b)
    }
    fn eq_u16(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.eq(*a, *b)
    }
    fn eq_u32(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.eq(*a, *b)
    }
    fn eq_u64(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.eq(*a, *b)
    }
    fn lt_u16(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.lt(*a, *b)
    }
    fn le_u16(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.le(*a, *b)
    }
    fn lt_u64(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.lt(*a, *b)
    }
    fn le_u64(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.le(*a, *b)
    }
    fn and(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.and(*a, *b)
    }
    fn or(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.or(*a, *b)
    }
    fn not(&mut self, a: &TermId) -> TermId {
        self.arena.not(*a)
    }
    fn add_u16(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.add(*a, *b)
    }
    fn add_u64(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.add(*a, *b)
    }
    fn sub_u64(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.sub(*a, *b)
    }
    fn sub_u16(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.sub(*a, *b)
    }
    fn and_u8(&mut self, a: &TermId, mask: u8) -> TermId {
        self.arena.and_mask(*a, u64::from(mask))
    }
    fn and_u16(&mut self, a: &TermId, mask: u16) -> TermId {
        self.arena.and_mask(*a, u64::from(mask))
    }
    fn shr_u8(&mut self, a: &TermId, shift: u32) -> TermId {
        self.arena.shr(*a, shift)
    }
    fn shl_u8(&mut self, a: &TermId, shift: u32) -> TermId {
        self.arena.shl(*a, shift)
    }
    fn u8_to_u16(&mut self, a: &TermId) -> TermId {
        self.arena.zext(*a, Width::W16)
    }
}

impl DiscardEnv for SymDiscardEnv<'_> {
    fn receive(&mut self) -> Option<TermId> {
        if self.steer.decide(2, |_| true) == 1 {
            return None;
        }
        let p = self.arena.var("rx_port", Width::W16);
        self.events.push(DiscardEvent::Receive(p));
        Some(p)
    }

    fn branch(&mut self, cond: TermId) -> bool {
        if let Some(b) = self.arena.as_const_bool(cond) {
            return b;
        }
        let mut t = self.path.clone();
        t.push((cond, true));
        let ft = Solver::check(&self.arena, &t) == SatResult::Sat;
        let mut f = self.path.clone();
        f.push((cond, false));
        let ff = Solver::check(&self.arena, &f) == SatResult::Sat;
        let taken = self.steer.decide_bool(ft, ff);
        self.path.push((cond, taken));
        taken
    }

    // The state predicates return fresh *propositions*: `flag == 1`
    // over a fresh variable. The solver only ever needs their fork
    // structure, matching how KLEE treats opaque model returns.
    fn ring_full(&mut self) -> TermId {
        let v = self.arena.var("ring_full", Width::W8);
        let one = self.arena.cu(1, Width::W8);
        self.arena.eq(v, one)
    }

    fn ring_empty(&mut self) -> TermId {
        let v = self.arena.var("ring_empty", Width::W8);
        let one = self.arena.cu(1, Width::W8);
        self.arena.eq(v, one)
    }

    fn can_send(&mut self) -> TermId {
        let v = self.arena.var("can_send", Width::W8);
        let one = self.arena.cu(1, Width::W8);
        self.arena.eq(v, one)
    }

    fn ring_push(&mut self, port: TermId) {
        self.events.push(DiscardEvent::Push(port));
    }

    fn ring_pop(&mut self) -> TermId {
        let (port, assumed): (TermId, Vec<Lit>) = match self.model {
            RingModel::Faithful => {
                // Fig. 4 model (a): FILL_SYMBOLIC + ASSUME(constraints).
                let p = self.arena.var("popped_port", Width::W16);
                let nine = self.arena.cu(9, Width::W16);
                let eq9 = self.arena.eq(p, nine);
                let ne9 = self.arena.not(eq9);
                (p, vec![(ne9, true)])
            }
            RingModel::OverApproximate => {
                // Fig. 4 model (b): no constraint.
                (self.arena.var("popped_port", Width::W16), Vec::new())
            }
            RingModel::UnderApproximate => {
                // Fig. 4 model (c): p->port = 0. Pinning via an assumed
                // equality on a fresh symbol keeps the shape uniform.
                let p = self.arena.var("popped_port", Width::W16);
                let zero = self.arena.cu(0, Width::W16);
                let eq0 = self.arena.eq(p, zero);
                (p, vec![(eq0, true)])
            }
        };
        for &(c, pol) in &assumed {
            self.path.push((c, pol));
        }
        self.events.push(DiscardEvent::Pop { port, assumed });
        port
    }

    fn send(&mut self, port: TermId) {
        self.events.push(DiscardEvent::Send(port));
    }
}

/// Result of verifying the discard NF.
#[derive(Debug)]
pub struct DiscardReport {
    /// Feasible paths.
    pub paths: usize,
    /// Semantic conditions (sends proven != 9) + ring-contract
    /// preconditions (pushes proven != 9).
    pub conditions: usize,
    /// Model constraints validated (P5).
    pub model_validations: usize,
    /// Failures, if any.
    pub failures: Vec<CheckFailure>,
}

impl DiscardReport {
    /// Did everything verify?
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run the full pipeline on the discard NF under the given ring model.
pub fn verify_discard(model: RingModel) -> DiscardReport {
    let (traces, stats) = explore(1_000, |steer| {
        let mut env = SymDiscardEnv {
            arena: TermArena::new(),
            steer,
            path: Vec::new(),
            events: Vec::new(),
            model,
        };
        discard_loop_iteration(&mut env);
        DiscardTrace {
            arena: env.arena,
            path: env.path,
            events: env.events,
        }
    })
    .expect("discard NF explores in bounded paths");

    let mut conditions = 0usize;
    let mut model_validations = 0usize;
    let mut failures = Vec::new();

    for mut t in traces {
        let nine = t.arena.cu(9, Width::W16);
        for ev in t.events.clone() {
            match ev {
                // Ring contract precondition (P4 analog): only
                // constraint-satisfying packets may be pushed.
                DiscardEvent::Push(p) => {
                    let eq9 = t.arena.eq(p, nine);
                    let ne9 = t.arena.not(eq9);
                    if Solver::entails(&t.arena, &t.path, ne9) {
                        conditions += 1;
                    } else {
                        failures.push(CheckFailure {
                            property: "P4",
                            detail: "cannot prove pushed packet satisfies the ring constraint"
                                .into(),
                        });
                    }
                }
                // The target semantic property (P1 analog): no emitted
                // packet has target port 9.
                DiscardEvent::Send(p) => {
                    let eq9 = t.arena.eq(p, nine);
                    let ne9 = t.arena.not(eq9);
                    if Solver::entails(&t.arena, &t.path, ne9) {
                        conditions += 1;
                    } else {
                        failures.push(CheckFailure {
                            property: "P1",
                            detail: "cannot prove the emitted packet's port is not 9 \
                                     (paper §3: Step 3b fails with model (b))"
                                .into(),
                        });
                    }
                }
                // Lazy model validation (P5): the pop model's
                // assumptions must be entailed by the ring contract's
                // postcondition (popped element satisfies the ring
                // constraint — Fig. 3 l.6).
                DiscardEvent::Pop { port, assumed } => {
                    let eq9 = t.arena.eq(port, nine);
                    let ne9 = t.arena.not(eq9);
                    let contract: Vec<Lit> = vec![(ne9, true)];
                    for (c, pol) in assumed {
                        let goal = if pol { c } else { t.arena.not(c) };
                        if Solver::entails(&t.arena, &contract, goal) {
                            model_validations += 1;
                        } else {
                            failures.push(CheckFailure {
                                property: "P5",
                                detail: "pop model assumed what the ring contract does not \
                                         guarantee (paper §3: Step 3a fails with model (c))"
                                    .into(),
                            });
                        }
                    }
                }
                DiscardEvent::Receive(_) => {}
            }
        }
    }

    DiscardReport {
        paths: stats.paths,
        conditions,
        model_validations,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §3 headline: with the faithful model, the discard NF
    /// verifies — low-level (vacuously here), ring discipline, and the
    /// semantic property.
    #[test]
    fn discard_nf_verifies_with_faithful_model() {
        let r = verify_discard(RingModel::Faithful);
        assert!(r.ok(), "{:#?}", r.failures);
        assert!(r.paths >= 6, "receive x filter x send forks: {}", r.paths);
        assert!(r.conditions > 0, "must prove real conditions");
        assert!(r.model_validations > 0, "must validate the pop model");
    }

    /// Fig. 4 model (b): over-approximate pop — the semantic proof
    /// fails (never the model validation).
    #[test]
    fn over_approximate_ring_model_fails_semantics() {
        let r = verify_discard(RingModel::OverApproximate);
        assert!(!r.ok());
        assert!(
            r.failures.iter().any(|f| f.property == "P1"),
            "{:#?}",
            r.failures
        );
        assert!(r.failures.iter().all(|f| f.property != "P5"));
    }

    /// Fig. 4 model (c): under-approximate pop — model validation
    /// fails.
    #[test]
    fn under_approximate_ring_model_fails_validation() {
        let r = verify_discard(RingModel::UnderApproximate);
        assert!(!r.ok());
        assert!(
            r.failures.iter().any(|f| f.property == "P5"),
            "{:#?}",
            r.failures
        );
    }

    /// The push discipline is itself proven: the loop's `port != 9`
    /// guard is what discharges the ring-contract precondition, so a
    /// path that pushes without the guard cannot exist.
    #[test]
    fn every_push_is_guarded() {
        let r = verify_discard(RingModel::Faithful);
        assert!(r.ok());
        // The guard contributes exactly one P4 condition per pushing
        // path; at least one path pushes.
        assert!(r.conditions >= 2);
    }
}
