//! The verification conditions: P2, P4, P5, P1 (paper §5.2.1–§5.2.4).
//!
//! All checks are per-trace and independent, which is what makes
//! validation "highly parallelizable" (§5.2.2). Every check discharges
//! its conditions with the symbex solver; a check only passes when the
//! solver *proves* the condition, so the one-sided soundness of the
//! solver carries over to the whole pipeline.

use crate::trace::{Event, SymRx, SymTrace};
use vig_packet::Direction;
use vig_spec::NatConfig;
use vig_symbex::solver::{Lit, Solver};
use vig_symbex::term::{TermArena, TermId, Width};

/// A failed verification condition.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// Which property failed ("P1", "P2", "P4", "P5").
    pub property: &'static str,
    /// What exactly could not be proven.
    pub detail: String,
}

impl core::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}] {}", self.property, self.detail)
    }
}

fn entails(arena: &TermArena, path: &[Lit], prop: TermId) -> bool {
    Solver::entails(arena, path, prop)
}

// ---------------------------------------------------------------------
// P2 — low-level properties
// ---------------------------------------------------------------------

/// Discharge every arithmetic obligation on the path. Returns the
/// number of obligations proven.
pub fn check_p2(trace: &SymTrace) -> Result<usize, CheckFailure> {
    for ob in &trace.obligations {
        if !entails(&trace.arena, &trace.path, ob.prop) {
            return Err(CheckFailure {
                property: "P2",
                detail: format!(
                    "cannot prove low-level obligation '{}' on path {:?}",
                    ob.what,
                    trace.decisions.iter().map(|d| d.chosen).collect::<Vec<_>>()
                ),
            });
        }
    }
    Ok(trace.obligations.len())
}

// ---------------------------------------------------------------------
// P4 — correct use of libVig
// ---------------------------------------------------------------------

/// Structural discipline of the stateful interface: buffer ownership,
/// allocate→insert pairing with the slot/port bijection, rejuvenate
/// only after a hit, guarded expiry with the exact threshold.
pub fn check_p4(trace: &mut SymTrace, cfg: &NatConfig) -> Result<usize, CheckFailure> {
    let mut checks = 0usize;
    let fail = |detail: String| CheckFailure {
        property: "P4",
        detail,
    };

    // Buffer ownership: received exactly once => consumed exactly once.
    let received = trace
        .events
        .iter()
        .filter(|e| matches!(e, Event::Receive(_)))
        .count();
    let consumed = trace
        .events
        .iter()
        .filter(|e| matches!(e, Event::Tx { .. } | Event::DropPkt))
        .count();
    if received != consumed {
        return Err(fail(format!(
            "buffer leak/invention: {received} received, {consumed} consumed"
        )));
    }
    checks += 1;

    // Expiry discipline: threshold must be exactly now - Texp, and the
    // guard Texp <= now must be on the path. Texp is the minimum
    // configured lifetime: the flow manager reconstructs `now` from the
    // threshold and applies the per-class deadlines itself, and for the
    // homogeneous configs the symbolic engine covers this is just
    // `expiry_ns`.
    let now_term = trace.events.iter().find_map(|e| match e {
        Event::Now(t) => Some(*t),
        _ => None,
    });
    let expire_thresholds: Vec<TermId> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            Event::ExpireFlows { threshold } => Some(*threshold),
            _ => None,
        })
        .collect();
    for thr in expire_thresholds {
        let now = now_term.ok_or_else(|| fail("expire_flows before reading the clock".into()))?;
        let texp = trace.arena.cu(cfg.min_lifetime_ns(), Width::W64);
        let expected = trace.arena.sub(now, texp);
        if thr != expected {
            let eq = trace.arena.eq(thr, expected);
            if !entails(&trace.arena, &trace.path, eq) {
                return Err(fail("expire threshold is not now - Texp".into()));
            }
        }
        let guard = trace.arena.le(texp, now);
        if !entails(&trace.arena, &trace.path, guard) {
            return Err(fail(
                "expiry threshold used without the Texp <= now guard".into(),
            ));
        }
        checks += 2;
    }

    // Slots returned by hits (eligible for rejuvenation).
    let mut hit_slots = Vec::new();
    // Slots reserved by allocation, to be inserted.
    let mut pending_alloc: Vec<(usize, TermId)> = Vec::new();

    for (i, e) in trace.events.iter().enumerate() {
        match e {
            Event::LookupInternal {
                result: Some((slot, _)),
                ..
            }
            | Event::LookupExternal {
                result: Some((slot, _, _)),
                ..
            } => {
                hit_slots.push(*slot);
            }
            Event::Rejuvenate { slot, .. } => {
                if !hit_slots.contains(slot) {
                    return Err(fail(format!(
                        "rejuvenate of slot {slot} that no lookup returned (event {i})"
                    )));
                }
                checks += 1;
            }
            Event::AllocateSlot {
                result: Some((slot, idx)),
                ..
            } => {
                pending_alloc.push((*slot, *idx));
            }
            Event::InsertFlow { slot, ext_port, .. } => {
                let pos = pending_alloc
                    .iter()
                    .position(|(s, _)| s == slot)
                    .ok_or_else(|| {
                        fail(format!("insert into slot {slot} that was never allocated"))
                    })?;
                let (_, idx) = pending_alloc.swap_remove(pos);
                // The slot/port bijection: ext_port == start_port + idx.
                let start = trace.arena.cu(u64::from(cfg.start_port), Width::W16);
                let expected = trace.arena.add(start, idx);
                if *ext_port != expected {
                    let eq = trace.arena.eq(*ext_port, expected);
                    if !entails(&trace.arena, &trace.path, eq) {
                        return Err(fail(
                            "inserted flow's port is not start_port + allocated index".into(),
                        ));
                    }
                }
                checks += 1;
            }
            _ => {}
        }
    }
    // Every allocation must be followed by its insert (else the slot —
    // and with it the port — leaks).
    if let Some((slot, _)) = pending_alloc.first() {
        return Err(fail(format!(
            "allocated slot {slot} never inserted: slot leak"
        )));
    }
    checks += 1;
    Ok(checks)
}

// ---------------------------------------------------------------------
// P5 — lazy model validation
// ---------------------------------------------------------------------

/// For every model call observed on the path, prove that the
/// constraints the model assumed are entailed by the libVig contract's
/// postcondition for that call (§5.2.3: the model's behaviour must
/// cover — i.e. be no narrower than — what the contract allows).
/// Returns the number of model constraints validated.
pub fn check_p5(trace: &mut SymTrace, cfg: &NatConfig) -> Result<usize, CheckFailure> {
    let mut validated = 0usize;
    let events = trace.events.clone();
    for (i, e) in events.iter().enumerate() {
        let (desc, outputs, assumed): (&str, Vec<TermId>, &[Lit]) = match e {
            Event::AllocateSlot {
                result: Some((_, idx)),
                assumed,
            } => ("allocate_slot", vec![*idx], assumed),
            Event::LookupInternal {
                result: Some((_, ext_port)),
                assumed,
                ..
            } => ("lookup_internal", vec![*ext_port], assumed),
            Event::LookupExternal {
                result: Some(_),
                assumed,
                ..
            } => ("lookup_external", Vec::new(), assumed),
            _ => continue,
        };
        // Build the contract-side postcondition for this call.
        let contract: Vec<Lit> = match e {
            Event::AllocateSlot { .. } => {
                // dchain_allocate ensures: returned index < capacity.
                let idx = outputs[0];
                let hi = trace.arena.cu(cfg.capacity as u64 - 1, Width::W16);
                let le = trace.arena.le(idx, hi);
                vec![(le, true)]
            }
            Event::LookupInternal { .. } => {
                // Flow-manager invariant: the stored flow's port is
                // start + s for some allocated slot s < capacity.
                let ext_port = outputs[0];
                let s = trace.arena.var("contract_slot", Width::W16);
                let hi = trace.arena.cu(cfg.capacity as u64 - 1, Width::W16);
                let bound = trace.arena.le(s, hi);
                let start = trace.arena.cu(u64::from(cfg.start_port), Width::W16);
                let sum = trace.arena.add(start, s);
                let shape = trace.arena.eq(ext_port, sum);
                vec![(bound, true), (shape, true)]
            }
            Event::LookupExternal { .. } => Vec::new(),
            _ => unreachable!(),
        };
        // contract ⊨ each model assumption.
        for &(prop, polarity) in assumed {
            let goal = if polarity {
                prop
            } else {
                trace.arena.not(prop)
            };
            if !entails(&trace.arena, &contract, goal) {
                return Err(CheckFailure {
                    property: "P5",
                    detail: format!(
                        "model for {desc} (event {i}) assumed a constraint the contract does \
                         not guarantee — the model is under-approximate (paper §3, model (c))"
                    ),
                });
            }
            validated += 1;
        }
    }
    Ok(validated)
}

// ---------------------------------------------------------------------
// P1 — RFC 3022 semantics
// ---------------------------------------------------------------------

/// Build the "frame is accepted" proposition: the packet parses as an
/// unfragmented IPv4/TCP-or-UDP frame with consistent lengths — the
/// premise of the spec's decision tree ("P is accepted", Fig. 6 l.1).
fn accepted_prop(arena: &mut TermArena, rx: &SymRx) -> TermId {
    let c34 = arena.cu(34, Width::W16);
    let len_ok = arena.le(c34, rx.frame_len);
    let c0800 = arena.cu(0x0800, Width::W16);
    let eth_ok = arena.eq(rx.ethertype, c0800);
    let ver = arena.shr(rx.version_ihl, 4);
    let c4 = arena.cu(4, Width::W8);
    let ver_ok = arena.eq(ver, c4);
    let nib = arena.and_mask(rx.version_ihl, 0x0f);
    let ihl8 = arena.shl(nib, 2);
    let ihl = arena.zext(ihl8, Width::W16);
    let c20 = arena.cu(20, Width::W16);
    let ihl_ok = arena.le(c20, ihl);
    let c14 = arena.cu(14, Width::W16);
    let budget = arena.sub(rx.frame_len, c14);
    let total_ok = arena.le(rx.total_len, budget);
    let frag = arena.and_mask(rx.frag_field, 0x3fff);
    let c0 = arena.cu(0, Width::W16);
    let frag_ok = arena.eq(frag, c0);
    let hdr_ok = arena.le(ihl, rx.total_len);
    let l4 = arena.sub(rx.total_len, ihl);
    let c6 = arena.cu(6, Width::W8);
    let c17 = arena.cu(17, Width::W8);
    let c8 = arena.cu(8, Width::W16);
    let is_tcp = arena.eq(rx.proto, c6);
    let tcp_fit = arena.le(c20, l4);
    let tcp_ok = arena.and(is_tcp, tcp_fit);
    let is_udp = arena.eq(rx.proto, c17);
    let udp_fit = arena.le(c8, l4);
    let udp_ok = arena.and(is_udp, udp_fit);
    let proto_ok = arena.or(tcp_ok, udp_ok);

    let mut acc = len_ok;
    for p in [eth_ok, ver_ok, ihl_ok, total_ok, frag_ok, hdr_ok, proto_ok] {
        acc = arena.and(acc, p);
    }
    acc
}

/// Weave the RFC 3022 decision tree into the trace and discharge every
/// obligation (paper §5.2.2). Returns the number of semantic conditions
/// proven.
pub fn check_p1(trace: &mut SymTrace, cfg: &NatConfig) -> Result<usize, CheckFailure> {
    let fail = |detail: String| CheckFailure {
        property: "P1",
        detail,
    };
    let mut checks = 0usize;

    let Some(rx) = trace.rx().cloned() else {
        // No packet: the spec is vacuous; P4 already ensured nothing
        // was emitted.
        if trace.tx().is_some() {
            return Err(fail("packet emitted without a receive".into()));
        }
        return Ok(0);
    };

    // Expiry ordering: expire_flows (if any) precedes all table ops.
    let first_table_op = trace.events.iter().position(|e| {
        matches!(
            e,
            Event::LookupInternal { .. }
                | Event::LookupExternal { .. }
                | Event::AllocateSlot { .. }
                | Event::InsertFlow { .. }
        )
    });
    let last_expire = trace
        .events
        .iter()
        .rposition(|e| matches!(e, Event::ExpireFlows { .. }));
    if let (Some(t), Some(x)) = (first_table_op, last_expire) {
        if x > t {
            return Err(fail(
                "expire_flows must precede flow-table updates (Fig. 6 l.2)".into(),
            ));
        }
        checks += 1;
    }

    let accepted = accepted_prop(&mut trace.arena, &rx);
    let lookup_events: Vec<Event> = trace
        .events
        .iter()
        .filter(|e| {
            matches!(
                e,
                Event::LookupInternal { .. }
                    | Event::LookupExternal { .. }
                    | Event::AllocateSlot { .. }
                    | Event::InsertFlow { .. }
            )
        })
        .cloned()
        .collect();

    if lookup_events.is_empty() {
        // Parse-drop path: must be provably un-accepted and dropped.
        if !trace.dropped() {
            return Err(fail(
                "no table interaction and no drop: packet vanished".into(),
            ));
        }
        let not_accepted = trace.arena.not(accepted);
        if !entails(&trace.arena, &trace.path, not_accepted) {
            return Err(fail(
                "packet dropped before translation although the frame may be acceptable \
                 (spec requires translating every accepted packet)"
                    .into(),
            ));
        }
        return Ok(checks + 1);
    }

    // Translation path: the frame must be provably accepted.
    if !entails(&trace.arena, &trace.path, accepted) {
        return Err(fail(
            "flow-table interaction on a frame not proven accepted".into(),
        ));
    }
    checks += 1;

    let prove_eq = |arena: &mut TermArena,
                    path: &[Lit],
                    a: TermId,
                    b: TermId,
                    what: &str|
     -> Result<(), CheckFailure> {
        if a == b {
            return Ok(());
        }
        let eq = arena.eq(a, b);
        if entails(arena, path, eq) {
            Ok(())
        } else {
            Err(fail(format!("cannot prove {what}")))
        }
    };

    let ext_ip = trace.arena.cu(u64::from(cfg.external_ip.raw()), Width::W32);

    match rx.dir {
        Direction::Internal => {
            // F(P) must be the packet's own 5-tuple (Fig. 6 F function).
            let fid_expected = [rx.src_ip, rx.src_port, rx.dst_ip, rx.dst_port];
            let lookup = lookup_events.iter().find_map(|e| match e {
                Event::LookupInternal { fid, result, .. } => Some((*fid, *result)),
                _ => None,
            });
            let Some((fid, result)) = lookup else {
                return Err(fail(
                    "internal packet translated without an internal lookup".into(),
                ));
            };
            for (k, (got, want)) in fid.iter().zip(fid_expected.iter()).enumerate() {
                prove_eq(
                    &mut trace.arena,
                    &trace.path,
                    *got,
                    *want,
                    &format!("F(P) field {k}"),
                )?;
                checks += 1;
            }
            match result {
                Some((slot, hit_port)) => {
                    // Fig. 6 ll.21–28: rewrite src to (EXT_IP, F(P).ext_port).
                    let rej = trace
                        .events
                        .iter()
                        .any(|e| matches!(e, Event::Rejuvenate { slot: s, .. } if *s == slot));
                    if !rej {
                        return Err(fail(
                            "matched flow's timestamp not refreshed (Fig. 6 l.12)".into(),
                        ));
                    }
                    let Some((out, hdr)) = trace.tx() else {
                        return Err(fail("matched internal packet must be forwarded".into()));
                    };
                    if *out != Direction::External {
                        return Err(fail(
                            "internal packet forwarded out the wrong interface".into(),
                        ));
                    }
                    let hdr = *hdr;
                    prove_eq(
                        &mut trace.arena,
                        &trace.path,
                        hdr[0],
                        ext_ip,
                        "S.src_ip = EXT_IP",
                    )?;
                    prove_eq(
                        &mut trace.arena,
                        &trace.path,
                        hdr[1],
                        hit_port,
                        "S.src_port = F(P).ext_port",
                    )?;
                    prove_eq(
                        &mut trace.arena,
                        &trace.path,
                        hdr[2],
                        rx.dst_ip,
                        "S.dst_ip = P.dst_ip",
                    )?;
                    prove_eq(
                        &mut trace.arena,
                        &trace.path,
                        hdr[3],
                        rx.dst_port,
                        "S.dst_port = P.dst_port",
                    )?;
                    checks += 6;
                }
                None => {
                    // Miss: allocate or drop (Fig. 6 ll.14–18, l.39).
                    let alloc = lookup_events.iter().find_map(|e| match e {
                        Event::AllocateSlot { result, .. } => Some(*result),
                        _ => None,
                    });
                    match alloc {
                        Some(Some((slot, _idx))) => {
                            let insert = lookup_events.iter().find_map(|e| match e {
                                Event::InsertFlow {
                                    slot: s,
                                    fid,
                                    ext_port,
                                } if *s == slot => Some((*fid, *ext_port)),
                                _ => None,
                            });
                            let Some((ins_fid, ins_port)) = insert else {
                                return Err(fail("allocated flow never inserted".into()));
                            };
                            for (k, (got, want)) in
                                ins_fid.iter().zip(fid_expected.iter()).enumerate()
                            {
                                prove_eq(
                                    &mut trace.arena,
                                    &trace.path,
                                    *got,
                                    *want,
                                    &format!("inserted fid field {k}"),
                                )?;
                                checks += 1;
                            }
                            let Some((out, hdr)) = trace.tx() else {
                                return Err(fail(
                                    "fresh flow must be forwarded (Fig. 6 l.20)".into(),
                                ));
                            };
                            if *out != Direction::External {
                                return Err(fail(
                                    "fresh internal flow must exit externally".into(),
                                ));
                            }
                            let hdr = *hdr;
                            prove_eq(
                                &mut trace.arena,
                                &trace.path,
                                hdr[0],
                                ext_ip,
                                "S.src_ip = EXT_IP",
                            )?;
                            prove_eq(
                                &mut trace.arena,
                                &trace.path,
                                hdr[1],
                                ins_port,
                                "S.src_port = inserted ext_port",
                            )?;
                            prove_eq(&mut trace.arena, &trace.path, hdr[2], rx.dst_ip, "S.dst_ip")?;
                            prove_eq(
                                &mut trace.arena,
                                &trace.path,
                                hdr[3],
                                rx.dst_port,
                                "S.dst_port",
                            )?;
                            checks += 5;
                        }
                        Some(None) => {
                            if !trace.dropped() {
                                return Err(fail(
                                    "table full: packet must be dropped (Fig. 6 l.39)".into(),
                                ));
                            }
                            checks += 1;
                        }
                        None => {
                            return Err(fail(
                                "internal miss neither allocated nor reported full".into(),
                            ));
                        }
                    }
                }
            }
        }
        Direction::External => {
            // F(P) on the external side keys by (dst_port, src_ip, src_port).
            let ek_expected = [rx.dst_port, rx.src_ip, rx.src_port];
            let lookup = lookup_events.iter().find_map(|e| match e {
                Event::LookupExternal { ek, result, .. } => Some((*ek, *result)),
                _ => None,
            });
            let Some((ek, result)) = lookup else {
                return Err(fail(
                    "external packet handled without an external lookup".into(),
                ));
            };
            for (k, (got, want)) in ek.iter().zip(ek_expected.iter()).enumerate() {
                prove_eq(
                    &mut trace.arena,
                    &trace.path,
                    *got,
                    *want,
                    &format!("ext key field {k}"),
                )?;
                checks += 1;
            }
            match result {
                Some((slot, int_ip, int_port)) => {
                    let rej = trace
                        .events
                        .iter()
                        .any(|e| matches!(e, Event::Rejuvenate { slot: s, .. } if *s == slot));
                    if !rej {
                        return Err(fail("matched flow's timestamp not refreshed".into()));
                    }
                    let Some((out, hdr)) = trace.tx() else {
                        return Err(fail("matched external packet must be forwarded".into()));
                    };
                    if *out != Direction::Internal {
                        return Err(fail("return traffic must exit internally".into()));
                    }
                    let hdr = *hdr;
                    prove_eq(
                        &mut trace.arena,
                        &trace.path,
                        hdr[0],
                        rx.src_ip,
                        "S.src_ip = P.src_ip",
                    )?;
                    prove_eq(
                        &mut trace.arena,
                        &trace.path,
                        hdr[1],
                        rx.src_port,
                        "S.src_port = P.src_port",
                    )?;
                    prove_eq(
                        &mut trace.arena,
                        &trace.path,
                        hdr[2],
                        int_ip,
                        "S.dst_ip = F(P).int_ip",
                    )?;
                    prove_eq(
                        &mut trace.arena,
                        &trace.path,
                        hdr[3],
                        int_port,
                        "S.dst_port = F(P).int_port",
                    )?;
                    checks += 6;
                }
                None => {
                    if !trace.dropped() {
                        return Err(fail(
                            "unsolicited external packet must be dropped (Fig. 6 l.39)".into(),
                        ));
                    }
                    // External packets never create flows.
                    if lookup_events
                        .iter()
                        .any(|e| matches!(e, Event::AllocateSlot { .. } | Event::InsertFlow { .. }))
                    {
                        return Err(fail(
                            "external packet created flow state (Fig. 6 l.14)".into(),
                        ));
                    }
                    checks += 2;
                }
            }
        }
    }
    Ok(checks)
}
