//! The exhaustive-symbolic-execution driver (paper §5.2.1).
//!
//! Runs the real `vignat::nat_loop_iteration` under [`SymEnv`] once per
//! feasible path, collecting one [`SymTrace`] each. The paper reports
//! 108 paths for VigNAT's stateless code; ours is of the same order
//! (the exact count depends on how many validation branches the loop
//! has — the [`run_ese`] result records it, and the verification bench
//! reproduces the paper's table).

use crate::sym_env::{ModelStyle, SymEnv};
use crate::trace::SymTrace;
use vig_spec::NatConfig;
use vig_symbex::explorer::{explore, ExploreStats};
use vignat::loop_body::nat_loop_iteration;

/// Result of exhaustive symbolic execution.
#[derive(Debug)]
pub struct EseResult {
    /// One trace per feasible path.
    pub traces: Vec<SymTrace>,
    /// Exploration statistics.
    pub stats: ExploreStats,
    /// Wall-clock duration of the exploration.
    pub duration: std::time::Duration,
}

impl EseResult {
    /// The paper counts *traces* as all paths plus all their proper
    /// prefixes (§5.2.2: "the set of symbolic traces considered by
    /// Vigor consists of all execution path traces and all their
    /// prefixes"). This returns that number for our execution tree:
    /// the count of distinct non-empty decision-sequence prefixes plus
    /// the full paths' root.
    pub fn trace_count_with_prefixes(&self) -> usize {
        use std::collections::HashSet;
        let mut prefixes: HashSet<Vec<(u8, u8)>> = HashSet::new();
        for t in &self.traces {
            let seq: Vec<(u8, u8)> = t.decisions.iter().map(|d| (d.chosen, d.arity)).collect();
            for k in 0..=seq.len() {
                prefixes.insert(seq[..k].to_vec());
            }
        }
        prefixes.len()
    }
}

/// Exhaustively execute one NAT loop iteration symbolically.
///
/// `max_paths` bounds the exploration (a safety valve; the NAT needs
/// on the order of 10² paths).
pub fn run_ese(cfg: &NatConfig, style: ModelStyle, max_paths: usize) -> Result<EseResult, String> {
    vignat::loop_body::check_config(cfg).map_err(|e| format!("bad config: {e}"))?;
    // The symbolic models cover the paper's single-address pool (see
    // `SymEnv::new`); multi-address configs are validated
    // differentially by the concrete suites instead.
    if cfg.num_external_ips() != 1 {
        return Err(format!(
            "symbolic engine covers the single-address pool; capacity {} needs {} addresses",
            cfg.capacity,
            cfg.num_external_ips()
        ));
    }
    let start = std::time::Instant::now();
    let cfg = *cfg;
    let (traces, stats) = explore(max_paths, |steer| {
        let mut env = SymEnv::new(steer, cfg, style);
        let _outcome = nat_loop_iteration(&mut env, &cfg);
        env.into_trace()
    })?;
    Ok(EseResult {
        traces,
        stats,
        duration: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Event;
    use vig_packet::Ip4;

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 65_535,
            expiry_ns: 2_000_000_000,
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1,
            ..NatConfig::paper_default()
        }
    }

    #[test]
    fn ese_terminates_with_expected_path_structure() {
        let r = run_ese(&cfg(), ModelStyle::Faithful, 10_000).unwrap();
        // Sanity on the family of paths: the no-packet paths (expire
        // guard x {packet, none}) and the forwarding paths must all be
        // present.
        assert!(r.stats.paths >= 30, "too few paths: {}", r.stats.paths);
        assert!(r.stats.paths <= 200, "path explosion: {}", r.stats.paths);
        let no_pkt = r
            .traces
            .iter()
            .filter(|t| t.events.iter().any(|e| matches!(e, Event::NoPacket)))
            .count();
        assert_eq!(no_pkt, 2, "expire-guard x no-packet");
        let forwarded = r.traces.iter().filter(|t| t.tx().is_some()).count();
        // internal hit, internal miss+alloc, external hit — per expire
        // guard and per protocol (TCP/UDP): 3 * 2 * 2 = 12.
        assert_eq!(forwarded, 12, "forwarding path family");
        let dropped = r.traces.iter().filter(|t| t.dropped()).count();
        assert_eq!(
            r.stats.paths,
            no_pkt + forwarded + dropped,
            "every path ends in exactly one of no-packet/tx/drop"
        );
    }

    #[test]
    fn traces_are_prefix_countable() {
        let r = run_ese(&cfg(), ModelStyle::Faithful, 10_000).unwrap();
        let with_prefixes = r.trace_count_with_prefixes();
        assert!(
            with_prefixes > r.stats.paths,
            "prefix closure must exceed the path count"
        );
    }

    #[test]
    fn every_packet_path_is_consumed_exactly_once() {
        let r = run_ese(&cfg(), ModelStyle::Faithful, 10_000).unwrap();
        for t in &r.traces {
            let got_pkt = t.rx().is_some();
            let consumed = t.tx().is_some() || t.dropped();
            assert_eq!(
                got_pkt,
                consumed,
                "ownership: packet iff consumed\n{}",
                t.render()
            );
            let consume_events = t
                .events
                .iter()
                .filter(|e| matches!(e, Event::Tx { .. } | Event::DropPkt))
                .count();
            assert!(consume_events <= 1, "at most one consume per path");
        }
    }
}
