//! The symbolic environment: `NatEnv` over symbolic terms + the libVig
//! models (paper §5.1.4).
//!
//! Every value the loop body sees is a term; every branch consults the
//! solver for feasibility and forks via the explorer's steering; every
//! stateful call is answered by a **model** that forks over its
//! abstract outcomes and returns fresh symbols constrained the way the
//! libVig contract promises. The models deliberately know nothing about
//! actual map/chain internals — they are the small, stateless stand-ins
//! whose faithfulness P5 later validates per observed call.
//!
//! [`ModelStyle`] reproduces the paper's §3 invalid-model experiments:
//!
//! * [`ModelStyle::Faithful`] — the production models;
//! * [`ModelStyle::OverApproximate`] — `allocate_slot` omits the
//!   `index < capacity` constraint (like the paper's model (b), which
//!   "returns a packet whose content could be anything"): exhaustive
//!   symbolic execution then cannot prove the port-arithmetic overflow
//!   obligation, and **P2 fails**;
//! * [`ModelStyle::UnderApproximate`] — `allocate_slot` pins the index
//!   to 0 (the paper's model (c), which "always returns a packet with
//!   target port 0"): the emitted constraint is narrower than the
//!   contract allows, and **P5 fails**.

use crate::trace::{Event, Obligation, SymRx, SymTrace};
use vig_packet::Direction;
use vig_spec::NatConfig;
use vig_symbex::explorer::Steering;
use vig_symbex::solver::{Lit, SatResult, Solver};
use vig_symbex::term::{TermArena, TermId, Width};
use vignat::domain::Domain;
use vignat::env::{ExtParts, FidParts, FlowView, NatEnv, PktHandle, RxPacket, SlotId, TxHdr};

/// Which libVig model variant to execute under. See module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelStyle {
    /// The production models (contract-shaped constraints).
    #[default]
    Faithful,
    /// Allocation index left unconstrained (paper's model (b)).
    OverApproximate,
    /// Allocation index pinned to zero (paper's model (c)).
    UnderApproximate,
}

/// The symbolic environment for one path execution.
pub struct SymEnv<'s> {
    /// Term arena (moves into the trace at the end).
    pub arena: TermArena,
    steer: &'s mut Steering,
    cfg: NatConfig,
    style: ModelStyle,
    path: Vec<Lit>,
    events: Vec<Event>,
    obligations: Vec<Obligation>,
    slot_counter: usize,
    in_flight: Option<PktHandle>,
    consumed: bool,
}

impl<'s> SymEnv<'s> {
    /// Fresh environment for one path run.
    ///
    /// The symbolic models cover the paper's NAT, whose pool is a
    /// single external address: the loop body's config branch
    /// (`num_external_ips() == 1`) then has a fixed shape and every
    /// external-address term is the constant `cfg.external_ip`.
    /// Multi-address pools are proven equivalent differentially (the
    /// concrete suites), not symbolically.
    pub fn new(steer: &'s mut Steering, cfg: NatConfig, style: ModelStyle) -> SymEnv<'s> {
        assert_eq!(
            cfg.num_external_ips(),
            1,
            "symbolic models cover the single-address pool"
        );
        assert!(
            cfg.is_homogeneous() && !cfg.eim && !cfg.hairpinning,
            "symbolic models cover the paper's baseline NAT; per-class \
             lifetimes, EIM and hairpinning are proven differentially"
        );
        SymEnv {
            arena: TermArena::new(),
            steer,
            cfg,
            style,
            path: Vec::new(),
            events: Vec::new(),
            obligations: Vec::new(),
            slot_counter: 0,
            in_flight: None,
            consumed: false,
        }
    }

    /// Package the run into a trace.
    pub fn into_trace(self) -> SymTrace {
        assert!(
            self.in_flight.is_none() || self.consumed,
            "P4 violation detected at trace build: packet neither sent nor dropped"
        );
        SymTrace {
            decisions: self.steer.taken().to_vec(),
            arena: self.arena,
            path: self.path,
            events: self.events,
            obligations: self.obligations,
        }
    }

    fn oblige(&mut self, prop: TermId, what: &'static str) {
        self.obligations.push(Obligation { prop, what });
    }

    /// Fork over `arity` alternatives; all are feasibility-unpruned
    /// (used for model outcome forks, which are always possible).
    fn fork_free(&mut self, arity: u8) -> u8 {
        self.steer.decide(arity, |_| true)
    }
}

impl Domain for SymEnv<'_> {
    type B = TermId;
    type U8 = TermId;
    type U16 = TermId;
    type U32 = TermId;
    type U64 = TermId;

    fn c_bool(&mut self, v: bool) -> TermId {
        self.arena.cb(v)
    }
    fn c_u8(&mut self, v: u8) -> TermId {
        self.arena.cu(u64::from(v), Width::W8)
    }
    fn c_u16(&mut self, v: u16) -> TermId {
        self.arena.cu(u64::from(v), Width::W16)
    }
    fn c_u32(&mut self, v: u32) -> TermId {
        self.arena.cu(u64::from(v), Width::W32)
    }
    fn c_u64(&mut self, v: u64) -> TermId {
        self.arena.cu(v, Width::W64)
    }

    fn eq_u8(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.eq(*a, *b)
    }
    fn eq_u16(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.eq(*a, *b)
    }
    fn eq_u32(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.eq(*a, *b)
    }
    fn eq_u64(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.eq(*a, *b)
    }

    fn lt_u16(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.lt(*a, *b)
    }
    fn le_u16(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.le(*a, *b)
    }
    fn lt_u64(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.lt(*a, *b)
    }
    fn le_u64(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.le(*a, *b)
    }

    fn and(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.and(*a, *b)
    }
    fn or(&mut self, a: &TermId, b: &TermId) -> TermId {
        self.arena.or(*a, *b)
    }
    fn not(&mut self, a: &TermId) -> TermId {
        self.arena.not(*a)
    }

    fn add_u16(&mut self, a: &TermId, b: &TermId) -> TermId {
        let t = self.arena.add(*a, *b);
        let max = self.arena.cu(0xffff, Width::W16);
        let ob = self.arena.le(t, max);
        self.oblige(ob, "u16 addition must not wrap");
        t
    }
    fn add_u64(&mut self, a: &TermId, b: &TermId) -> TermId {
        let t = self.arena.add(*a, *b);
        let max = self.arena.cu(u64::MAX, Width::W64);
        let ob = self.arena.le(t, max);
        self.oblige(ob, "u64 addition must not wrap");
        t
    }
    fn sub_u64(&mut self, a: &TermId, b: &TermId) -> TermId {
        let ob = self.arena.le(*b, *a);
        self.oblige(ob, "u64 subtraction must not underflow");
        self.arena.sub(*a, *b)
    }
    fn sub_u16(&mut self, a: &TermId, b: &TermId) -> TermId {
        let ob = self.arena.le(*b, *a);
        self.oblige(ob, "u16 subtraction must not underflow");
        self.arena.sub(*a, *b)
    }

    fn and_u8(&mut self, a: &TermId, mask: u8) -> TermId {
        self.arena.and_mask(*a, u64::from(mask))
    }
    fn and_u16(&mut self, a: &TermId, mask: u16) -> TermId {
        self.arena.and_mask(*a, u64::from(mask))
    }
    fn shr_u8(&mut self, a: &TermId, shift: u32) -> TermId {
        self.arena.shr(*a, shift)
    }
    fn shl_u8(&mut self, a: &TermId, shift: u32) -> TermId {
        let t = self.arena.shl(*a, shift);
        let max = self.arena.cu(0xff, Width::W8);
        let ob = self.arena.le(t, max);
        self.oblige(ob, "u8 shift must not lose bits");
        t
    }
    fn u8_to_u16(&mut self, a: &TermId) -> TermId {
        self.arena.zext(*a, Width::W16)
    }
}

impl NatEnv for SymEnv<'_> {
    fn now(&mut self) -> TermId {
        let t = self.arena.var("now", Width::W64);
        self.events.push(Event::Now(t));
        t
    }

    fn expire_flows(&mut self, threshold: &TermId) {
        self.events.push(Event::ExpireFlows {
            threshold: *threshold,
        });
    }

    fn receive(&mut self) -> Option<RxPacket<Self>> {
        // Fork: packet pending or not.
        if self.fork_free(2) == 1 {
            self.events.push(Event::NoPacket);
            return None;
        }
        // Fork: which interface it arrived on.
        let dir = if self.fork_free(2) == 0 {
            Direction::Internal
        } else {
            Direction::External
        };
        let rx = SymRx {
            dir,
            frame_len: self.arena.var("frame_len", Width::W16),
            ethertype: self.arena.var("ethertype", Width::W16),
            version_ihl: self.arena.var("version_ihl", Width::W8),
            total_len: self.arena.var("total_len", Width::W16),
            frag_field: self.arena.var("frag_field", Width::W16),
            proto: self.arena.var("proto", Width::W8),
            src_ip: self.arena.var("src_ip", Width::W32),
            dst_ip: self.arena.var("dst_ip", Width::W32),
            src_port: self.arena.var("src_port", Width::W16),
            dst_port: self.arena.var("dst_port", Width::W16),
        };
        self.events.push(Event::Receive(rx.clone()));
        self.in_flight = Some(PktHandle(0));
        Some(RxPacket {
            handle: PktHandle(0),
            dir,
            frame_len: rx.frame_len,
            ethertype: rx.ethertype,
            version_ihl: rx.version_ihl,
            total_len: rx.total_len,
            frag_field: rx.frag_field,
            ttl: self.arena.var("ttl", Width::W8),
            proto: rx.proto,
            src_ip: rx.src_ip,
            dst_ip: rx.dst_ip,
            src_port: rx.src_port,
            dst_port: rx.dst_port,
            // Symbolic but unused: the baseline configs the symbolic
            // engine covers are homogeneous, so the loop body threads
            // the flags through without ever branching on them — the
            // path count is unchanged and the trace Event shapes stay
            // as they were.
            tcp_flags: self.arena.var("tcp_flags", Width::W8),
        })
    }

    fn branch(&mut self, cond: TermId) -> bool {
        // Syntactically decided conditions don't fork.
        if let Some(b) = self.arena.as_const_bool(cond) {
            self.events.push(Event::Branch { cond, taken: b });
            return b;
        }
        let mut t_lits = self.path.clone();
        t_lits.push((cond, true));
        let f_true = Solver::check(&self.arena, &t_lits) == SatResult::Sat;
        let mut f_lits = self.path.clone();
        f_lits.push((cond, false));
        let f_false = Solver::check(&self.arena, &f_lits) == SatResult::Sat;
        let taken = self.steer.decide_bool(f_true, f_false);
        self.path.push((cond, taken));
        self.events.push(Event::Branch { cond, taken });
        taken
    }

    fn lookup_internal(&mut self, fid: &FidParts<Self>) -> Option<FlowView<Self>> {
        let fid_terms = [fid.src_ip, fid.src_port, fid.dst_ip, fid.dst_port];
        if self.fork_free(2) == 1 {
            self.events.push(Event::LookupInternal {
                fid: fid_terms,
                result: None,
                assumed: Vec::new(),
            });
            return None;
        }
        // Hit: the contract of the flow table says the returned flow's
        // internal key equals the queried fid, and the flow-manager
        // invariant bounds its external port to the configured range.
        let slot = self.slot_counter;
        self.slot_counter += 1;
        let ext_port = self.arena.var("hit_ext_port", Width::W16);
        let lo = self.arena.cu(u64::from(self.cfg.start_port), Width::W16);
        let hi = self.arena.cu(
            u64::from(self.cfg.start_port) + self.cfg.capacity as u64 - 1,
            Width::W16,
        );
        let ge = self.arena.le(lo, ext_port);
        let le = self.arena.le(ext_port, hi);
        let assumed = vec![(ge, true), (le, true)];
        for &(p, pol) in &assumed {
            self.path.push((p, pol));
        }
        self.events.push(Event::LookupInternal {
            fid: fid_terms,
            result: Some((slot, ext_port)),
            assumed,
        });
        let ext_ip = self
            .arena
            .cu(u64::from(self.cfg.external_ip.raw()), Width::W32);
        Some(FlowView {
            slot: SlotId(slot),
            // invariant: single-address pool — every stored flow's
            // external address is the configured one
            ext_ip,
            ext_port,
            // contract: the stored flow's internal key is the fid
            int_ip: fid.src_ip,
            int_port: fid.src_port,
        })
    }

    fn lookup_external(&mut self, ek: &ExtParts<Self>) -> Option<FlowView<Self>> {
        let ek_terms = [ek.ext_port, ek.dst_ip, ek.dst_port];
        if self.fork_free(2) == 1 {
            self.events.push(Event::LookupExternal {
                ek: ek_terms,
                result: None,
                assumed: Vec::new(),
            });
            return None;
        }
        let slot = self.slot_counter;
        self.slot_counter += 1;
        // Contract: the matched flow's internal endpoint is some stored
        // pair — fresh symbols, unconstrained (any host/port may be
        // behind the NAT).
        let int_ip = self.arena.var("hit_int_ip", Width::W32);
        let int_port = self.arena.var("hit_int_port", Width::W16);
        self.events.push(Event::LookupExternal {
            ek: ek_terms,
            result: Some((slot, int_ip, int_port)),
            assumed: Vec::new(),
        });
        Some(FlowView {
            slot: SlotId(slot),
            // contract: the matched flow's external endpoint is the
            // key's (the loop body canonicalized the address already)
            ext_ip: ek.ext_ip,
            ext_port: ek.ext_port,
            int_ip,
            int_port,
        })
    }

    fn rejuvenate(&mut self, slot: SlotId, now: &TermId, _dir: Direction, _tcp_flags: &TermId) {
        // Direction and flags only steer the per-class timeout choice,
        // which homogeneous configs (the symbolic coverage) collapse to
        // a single lifetime — the observable event is unchanged.
        self.events.push(Event::Rejuvenate {
            slot: slot.0,
            now: *now,
        });
    }

    fn allocate_slot(&mut self, _now: &TermId) -> Option<(SlotId, TermId, TermId)> {
        if self.fork_free(2) == 1 {
            self.events.push(Event::AllocateSlot {
                result: None,
                assumed: Vec::new(),
            });
            return None;
        }
        let slot = self.slot_counter;
        self.slot_counter += 1;
        let idx = self.arena.var("alloc_idx", Width::W16);
        let assumed: Vec<Lit> = match self.style {
            ModelStyle::Faithful => {
                // dchain contract: allocated index < capacity.
                let hi = self.arena.cu(self.cfg.capacity as u64 - 1, Width::W16);
                let le = self.arena.le(idx, hi);
                vec![(le, true)]
            }
            ModelStyle::OverApproximate => Vec::new(), // paper's model (b)
            ModelStyle::UnderApproximate => {
                // paper's model (c): pins the output to one value.
                let zero = self.arena.cu(0, Width::W16);
                let eq = self.arena.eq(idx, zero);
                vec![(eq, true)]
            }
        };
        for &(p, pol) in &assumed {
            self.path.push((p, pol));
        }
        self.events.push(Event::AllocateSlot {
            result: Some((slot, idx)),
            assumed,
        });
        // Single-address pool: the allocated slot's external address is
        // the configured one (constant term), and the returned port
        // offset is the slot index itself.
        let ext_ip = self
            .arena
            .cu(u64::from(self.cfg.external_ip.raw()), Width::W32);
        Some((SlotId(slot), idx, ext_ip))
    }

    fn insert_flow(
        &mut self,
        slot: SlotId,
        fid: FidParts<Self>,
        _ext_ip: TermId,
        ext_port: TermId,
        _now: &TermId,
        _tcp_flags: &TermId,
    ) {
        self.events.push(Event::InsertFlow {
            slot: slot.0,
            fid: [fid.src_ip, fid.src_port, fid.dst_ip, fid.dst_port],
            ext_port,
        });
    }

    fn tx(&mut self, pkt: PktHandle, out: Direction, hdr: TxHdr<Self>) {
        assert_eq!(self.in_flight, Some(pkt), "tx of unowned packet (P4)");
        assert!(!self.consumed, "double consume (P4)");
        self.consumed = true;
        self.events.push(Event::Tx {
            out,
            hdr: [hdr.src_ip, hdr.src_port, hdr.dst_ip, hdr.dst_port],
        });
    }

    fn drop_pkt(&mut self, pkt: PktHandle) {
        assert_eq!(self.in_flight, Some(pkt), "drop of unowned packet (P4)");
        assert!(!self.consumed, "double consume (P4)");
        self.consumed = true;
        self.events.push(Event::DropPkt);
    }
}
