//! The MoonGen analog: deterministic workload generation.
//!
//! The paper's Tester generates two flow classes (§6):
//!
//! * **background flows** — 10 to 64,000 of them, kept alive for the
//!   whole experiment, controlling flow-table occupancy;
//! * **probe flows** — 1,000 flows at 0.47 pps that expire between their
//!   packets, so each probe packet exercises the NAT's worst-case path
//!   (miss → expire → allocate → insert).
//!
//! [`FlowGen`] produces the same flow universes deterministically: flow
//! `i` of a class always has the same 5-tuple, so experiments are
//! reproducible and the return path can be synthesized. Frames are
//! written into caller buffers (64-byte minimum frames, like the
//! evaluation's) with valid checksums.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vig_packet::{builder::PacketBuilder, Direction, FlowFields, Ip4, Proto};

/// The paper's frame size: 64-byte minimum Ethernet frames.
pub const FRAME_LEN: usize = 64;

/// Deterministic flow-universe generator. Flows of different classes
/// never collide (distinct source prefixes).
#[derive(Debug, Clone)]
pub struct FlowGen {
    remote_ip: Ip4,
    remote_port: u16,
    proto: Proto,
    /// Per-thousand share of flows that are TCP (the rest UDP). Flow
    /// `i`'s protocol is a pure function of `i`, so mixed universes are
    /// as reproducible as single-protocol ones.
    tcp_permille: u16,
}

impl FlowGen {
    /// Flows towards one remote service (the paper's traffic shape:
    /// many clients, one sink).
    pub fn new(proto: Proto) -> FlowGen {
        FlowGen {
            remote_ip: Ip4::new(1, 1, 1, 1),
            remote_port: 80,
            proto,
            tcp_permille: match proto {
                Proto::Tcp => 1000,
                Proto::Udp => 0,
            },
        }
    }

    /// A mixed TCP/UDP universe: `tcp_permille`/1000 of the flows are
    /// TCP, interleaved deterministically across indices (Fisher–Yates
    /// would need state; a golden-ratio hash gives the same uniformity
    /// statelessly).
    pub fn mixed(tcp_permille: u16) -> FlowGen {
        assert!(tcp_permille <= 1000, "a share out of 1000");
        FlowGen {
            tcp_permille,
            ..FlowGen::new(Proto::Udp)
        }
    }

    /// The protocol of flow index `i` under the configured mix.
    pub fn proto_of(&self, i: u32) -> Proto {
        if u32::from(self.tcp_permille) > i.wrapping_mul(2_654_435_761) % 1000 {
            Proto::Tcp
        } else {
            Proto::Udp
        }
    }

    /// The `i`-th background flow (distinct internal source per `i`;
    /// supports i up to 2^24).
    pub fn background(&self, i: u32) -> FlowFields {
        debug_assert!(i < (1 << 24));
        FlowFields {
            src_ip: Ip4(0x0a00_0000 | i), // 10.x.y.z
            src_port: 10_000 + (i % 40_000) as u16,
            dst_ip: self.remote_ip,
            dst_port: self.remote_port,
            proto: self.proto_of(i),
        }
    }

    /// The `j`-th probe flow (disjoint source prefix from backgrounds).
    pub fn probe(&self, j: u32) -> FlowFields {
        debug_assert!(j < (1 << 24));
        FlowFields {
            src_ip: Ip4(0x0b00_0000 | j), // 11.x.y.z
            src_port: 10_000 + (j % 40_000) as u16,
            dst_ip: self.remote_ip,
            dst_port: self.remote_port,
            proto: self.proto_of(j),
        }
    }

    /// The reply the remote endpoint sends to a translated flow: swap
    /// endpoints, address the NAT's external ip and allocated port.
    pub fn return_for(&self, external_ip: Ip4, ext_port: u16) -> FlowFields {
        self.return_for_proto(external_ip, ext_port, self.proto)
    }

    /// [`FlowGen::return_for`] with the protocol made explicit — the
    /// reply must ride the original flow's protocol, which under a
    /// mixed universe the caller knows from the translated packet.
    pub fn return_for_proto(&self, external_ip: Ip4, ext_port: u16, proto: Proto) -> FlowFields {
        FlowFields {
            src_ip: self.remote_ip,
            src_port: self.remote_port,
            dst_ip: external_ip,
            dst_port: ext_port,
            proto,
        }
    }

    /// Write a 64-byte frame for `fields` into `buf`; returns its length.
    pub fn write_frame(&self, fields: &FlowFields, buf: &mut [u8]) -> usize {
        let b = match fields.proto {
            Proto::Tcp => PacketBuilder::tcp(
                fields.src_ip,
                fields.dst_ip,
                fields.src_port,
                fields.dst_port,
            ),
            Proto::Udp => PacketBuilder::udp(
                fields.src_ip,
                fields.dst_ip,
                fields.src_port,
                fields.dst_port,
            ),
        }
        .pad_to(FRAME_LEN);
        b.build_into(buf).expect("frame buffer must hold 64 bytes")
    }
}

/// A Fig. 12-style workload description.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadMix {
    /// Number of background flows (the x-axis of Fig. 12/14).
    pub background_flows: usize,
    /// Number of probe packets to measure.
    pub probe_packets: usize,
    /// Probes measured per refresh window. The paper's probe flows each
    /// send one packet and then expire; batching several distinct probe
    /// flows into one background-refresh window keeps the simulation
    /// cost at `2·background/batch` refreshes per probe while
    /// distorting table occupancy by at most `batch` entries. Use 1 for
    /// the literal paper cadence.
    pub probe_batch: usize,
    /// Flow expiry used by the NF (2 s in the main experiment, 60 s in
    /// the in-text variant).
    pub texp_ns: u64,
    /// Number of distinct probe flow ids to cycle through. The paper
    /// uses 1,000 probe flows; with `texp` = 2 s they expire between
    /// their packets (every probe misses), with `texp` = 60 s they
    /// survive (later probes hit) — the in-text experiment.
    pub probe_pool: usize,
}

/// A shuffled traversal order over `n` indices (used to randomize
/// refresh order so the flow table sees no artificial locality).
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<u32> {
    let mut v: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    v.shuffle(&mut rng);
    v
}

/// Which arrival interface a flow-fields value belongs to in the
/// standard testbed wiring (internal sources are 10/11.x, the remote is
/// the external side).
pub fn direction_of(fields: &FlowFields) -> Direction {
    if fields.src_ip.raw() >> 24 == 0x0a || fields.src_ip.raw() >> 24 == 0x0b {
        Direction::Internal
    } else {
        Direction::External
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use vig_packet::parse_l3l4;

    #[test]
    fn background_flows_are_distinct() {
        let g = FlowGen::new(Proto::Udp);
        let mut seen = HashSet::new();
        for i in 0..10_000 {
            assert!(
                seen.insert(g.background(i)),
                "duplicate background flow {i}"
            );
        }
    }

    #[test]
    fn probe_and_background_universes_are_disjoint() {
        let g = FlowGen::new(Proto::Udp);
        let bg: HashSet<_> = (0..1000).map(|i| g.background(i)).collect();
        for j in 0..1000 {
            assert!(!bg.contains(&g.probe(j)));
        }
    }

    #[test]
    fn frames_are_64_bytes_and_parse() {
        let g = FlowGen::new(Proto::Tcp);
        let mut buf = [0u8; 2048];
        let n = g.write_frame(&g.background(7), &mut buf);
        assert_eq!(n, FRAME_LEN);
        let (_, ff) = parse_l3l4(&buf[..n]).unwrap();
        assert_eq!(ff, g.background(7));
    }

    #[test]
    fn return_path_addresses_the_nat() {
        let g = FlowGen::new(Proto::Udp);
        let ext_ip = Ip4::new(10, 1, 0, 1);
        let r = g.return_for(ext_ip, 4242);
        assert_eq!(r.dst_ip, ext_ip);
        assert_eq!(r.dst_port, 4242);
        assert_eq!(direction_of(&r), Direction::External);
        assert_eq!(direction_of(&g.background(1)), Direction::Internal);
        assert_eq!(direction_of(&g.probe(1)), Direction::Internal);
    }

    #[test]
    fn mixed_universe_is_deterministic_and_near_the_ratio() {
        let g = FlowGen::mixed(250);
        let tcp = (0..10_000)
            .filter(|&i| g.background(i).proto == Proto::Tcp)
            .count();
        assert!(
            (2_200..2_800).contains(&tcp),
            "250‰ mix should give ~2500 TCP flows in 10k, got {tcp}"
        );
        assert_eq!(
            g.background(7),
            FlowGen::mixed(250).background(7),
            "the mix is a pure function of the index"
        );
        assert_eq!(FlowGen::mixed(0).proto_of(5), Proto::Udp);
        assert_eq!(FlowGen::mixed(1000).proto_of(5), Proto::Tcp);
        // The single-protocol constructors are the degenerate mixes.
        assert_eq!(FlowGen::new(Proto::Tcp).background(3).proto, Proto::Tcp);
        assert_eq!(FlowGen::new(Proto::Udp).background(3).proto, Proto::Udp);
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let a = shuffled_indices(100, 42);
        let b = shuffled_indices(100, 42);
        assert_eq!(a, b, "same seed, same order");
        let c = shuffled_indices(100, 43);
        assert_ne!(a, c, "different seed, different order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
