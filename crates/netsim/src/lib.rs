//! # netsim — the evaluation substrate (DPDK + testbed analog)
//!
//! The paper evaluates on two Xeon machines with 10 GbE NICs: a Tester
//! running MoonGen fires 64-byte frames at a Middlebox running one of
//! four NFs over DPDK (§6, Fig. 11). None of that hardware exists here,
//! so this crate builds the closest pure-Rust equivalent (see DESIGN.md
//! §5 for the substitution argument):
//!
//! * [`dpdk`] — the runtime: a preallocated buffer [`dpdk::Mempool`]
//!   (DPDK's mbuf pool), fixed-capacity [`dpdk::Ring`]s,
//!   [`dpdk::Device`]s with RX/TX queues and port statistics, and the
//!   multi-queue [`dpdk::MultiQueueDevice`] (N ring pairs with
//!   per-queue stats, fed through the RSS classifier);
//! * [`eventloop`] — the async (epoll-style) driver: readiness
//!   [`eventloop::Poller`] over queue non-empty events, weighted
//!   round-robin budgets, idle backoff, and the
//!   [`eventloop::MultiQueueTestbed`] that runs the verified batch
//!   loop per queue event;
//! * [`frame_env`] — the bridge that runs the **verified loop body**
//!   (`vignat::nat_loop_iteration`) over real packet bytes: header
//!   fields in, incremental-checksum rewrites out;
//! * [`middlebox`] — the uniform NF interface the harness measures
//!   ([`middlebox::Middlebox`]), plus the VigNAT and no-op instances;
//! * [`tester`] — the MoonGen analog: background/probe flow workloads,
//!   deterministic and reproducible via seeds;
//! * [`harness`] — the RFC 2544 measurement methodology: per-packet
//!   latency sampling through the full mempool→ring→NF→ring path, and
//!   loss-bounded maximum-throughput search.
//!
//! * [`runtime`] — the persistent core-pinned shard runtime: one
//!   long-lived worker thread per shard (pinned via `sched_setaffinity`
//!   where permitted), fed by the RSS dispatcher through lock-free
//!   [`libvig::spsc`] rings, with results merged in deterministic shard
//!   order — the deployment-shaped parallel driver behind the scaling
//!   curve in `BENCH_throughput.json`;
//! * [`backend`] — the pluggable packet-I/O layer: the
//!   [`backend::PacketIo`] driver contract (classify into per-queue
//!   FIFOs, budgeted WRR drain, per-queue stats), with the simulated
//!   [`backend::SimBackend`] and, on Linux, two `AF_PACKET` transports
//!   feeding the same event loop with real kernel-delivered frames:
//!   the per-frame [`backend::os::OsBackend`] (`recvmmsg`-batched
//!   baseline) and the zero-copy [`backend::os::mmap::MmapBackend`]
//!   (`TPACKET_V3` RX block ring + `TPACKET_V2` TX ring shared with
//!   the kernel via `mmap`).
//!
//! What is real and what is modeled: the per-packet CPU work — parsing,
//! flow-table probes, expiry, rewrites, checksum updates, ring and
//! mempool traffic — is all real Rust running on the host CPU, and it is
//! what the experiments measure. Wire time, PCIe, and NIC DMA are *not*
//! modeled (except through `backend::os`, where the kernel's packet
//! path is real and trusted); benches that reproduce the paper's
//! absolute latency scale add a single documented constant for them.

// The only `unsafe` in the workspace is the libc FFI in
// `backend::os::sys` (raw-socket calls, the two CPU-affinity calls,
// and the packet-ring setup/`mmap` surface for the zero-copy backend,
// each safely wrapped on the spot; shared ring memory is reachable
// only through bounds-checked volatile accessors); the rest of the
// crate stays unsafe-free and the lint keeps it that way.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod dpdk;
pub mod eventloop;
pub mod frame_env;
pub mod harness;
pub mod middlebox;
pub mod runtime;
pub mod tester;

pub use backend::{
    CorruptKind, FaultIo, FaultPlan, FaultStats, PacketIo, SimBackend, TesterIo, TruncateKind,
};
pub use dpdk::{Device, Mempool, MultiQueueDevice, PortStats, Ring};
pub use eventloop::{BackendDriver, EventLoop, MultiQueueTestbed, Poller, TxRecord, Wrr};
pub use frame_env::{BurstEnv, FrameEnv, RssClassifier};
pub use middlebox::{Middlebox, NoopForwarder, SystemClockMb, Verdict, VigNatMb};
pub use runtime::{
    with_shard_runtime, PinReport, RuntimeReport, ShardRuntimeSession, SupervisorStats, WorkerDown,
};
pub use tester::{FlowGen, WorkloadMix};
