//! `FrameEnv`: runs the verified loop body over real packet bytes.
//!
//! This is the production instantiation of `vignat`'s [`NatEnv`]: header
//! fields are read straight off the frame (zero-filled where the frame
//! is too short — the loop body's length guards run before any semantic
//! use, a property the symbolic engine checks), and [`NatEnv::tx`]
//! applies the rewrite to the same buffer using the RFC 1624
//! incremental checksum updates from `vig-packet`.
//!
//! One `FrameEnv` serves exactly one loop iteration for one frame; it
//! borrows the flow manager and the buffer, so constructing it costs
//! nothing and the datapath stays allocation-free.

use crate::dpdk::{BufIdx, Mempool};
use libvig::map::MapKey;
use libvig::time::Time;
use vig_packet::checksum::Checksum;
use vig_packet::{Direction, FlowId};
use vignat::env::concrete::{ext_key, fid_key, view, FidMemo};
use vignat::env::{ExtParts, FidParts, FlowView, NatEnv, PktHandle, RxPacket, SlotId, TxHdr};
use vignat::{FlowManager, FlowTable};

/// What the loop body decided to do with the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameVerdict {
    /// Forward the (rewritten, in place) frame out of this interface.
    Forward(Direction),
    /// Drop the frame.
    Drop,
}

/// Per-frame environment, generic over the flow table it drives
/// (unsharded [`FlowManager`] by default, `ShardedFlowManager` for the
/// RSS-partitioned NAT — the loop body above is the same either way).
/// See module docs.
pub struct FrameEnv<'a, T: FlowTable = FlowManager> {
    fm: &'a mut T,
    frame: &'a mut [u8],
    dir: Direction,
    now_ns: u64,
    delivered: bool,
    verdict: Option<FrameVerdict>,
    expired: usize,
    fid_memo: FidMemo,
}

/// Read a big-endian u16 at `off`, zero if out of bounds.
fn rd16(b: &[u8], off: usize) -> u16 {
    match b.get(off..off + 2) {
        Some(w) => u16::from_be_bytes([w[0], w[1]]),
        None => 0,
    }
}

/// Read a big-endian u32 at `off`, zero if out of bounds.
fn rd32(b: &[u8], off: usize) -> u32 {
    match b.get(off..off + 4) {
        Some(w) => u32::from_be_bytes([w[0], w[1], w[2], w[3]]),
        None => 0,
    }
}

/// Read a byte at `off`, zero if out of bounds.
fn rd8(b: &[u8], off: usize) -> u8 {
    b.get(off).copied().unwrap_or(0)
}

impl<'a, T: FlowTable> FrameEnv<'a, T> {
    /// Build the env for one frame arriving on `dir` at `now`.
    pub fn new(fm: &'a mut T, frame: &'a mut [u8], dir: Direction, now: Time) -> FrameEnv<'a, T> {
        FrameEnv {
            fm,
            frame,
            dir,
            now_ns: now.nanos(),
            delivered: false,
            verdict: None,
            expired: 0,
            fid_memo: FidMemo::default(),
        }
    }

    /// The decision, after the loop body ran.
    pub fn verdict(&self) -> Option<FrameVerdict> {
        self.verdict
    }

    /// Flows expired during this iteration.
    pub fn expired(&self) -> usize {
        self.expired
    }
}

/// Read a frame's header fields into an [`RxPacket`] (shared by the
/// per-frame and burst environments). Fields beyond the frame are
/// zero-filled; the loop body's length guards run before any semantic
/// use of them.
fn read_rx_fields<E>(f: &[u8], handle: usize, dir: Direction) -> RxPacket<E>
where
    E: NatEnv<B = bool, U8 = u8, U16 = u16, U32 = u32, U64 = u64> + ?Sized,
{
    RxPacket {
        handle: PktHandle(handle),
        dir,
        frame_len: f.len().min(usize::from(u16::MAX)) as u16,
        ethertype: rd16(f, 12),
        version_ihl: rd8(f, 14),
        total_len: rd16(f, 16),
        frag_field: rd16(f, 20),
        ttl: rd8(f, 22),
        proto: rd8(f, 23),
        src_ip: rd32(f, 26),
        dst_ip: rd32(f, 30),
        // L4 ports at 14 + IHL; zero-filled when absent.
        src_port: rd16(f, 14 + usize::from(rd8(f, 14) & 0x0f) * 4),
        dst_port: rd16(f, 14 + usize::from(rd8(f, 14) & 0x0f) * 4 + 2),
        // TCP flag byte (offset 13 of the TCP header); zero for
        // non-TCP frames per the RxPacket contract, and zero-filled
        // when the frame is short (the loop body's ShortL4 guard drops
        // such frames before the tracker ever sees the flags).
        tcp_flags: if rd8(f, 23) == vig_packet::ipv4::PROTO_TCP {
            rd8(f, 14 + usize::from(rd8(f, 14) & 0x0f) * 4 + 13)
        } else {
            0
        },
    }
}

/// The internal-direction flow id a frame *would* carry, read at the
/// same offsets as [`RxPacket`] field extraction (zero-filled beyond
/// the frame, TCP/UDP only) — what a NIC's RSS hash unit sees. The
/// parallel sharded driver uses this for dispatch; because the offsets
/// and zero-fill match the env's own field reads exactly, the dispatch
/// shard always agrees with the shard the loop body's lookup routes to.
/// `None` for frames whose protocol byte is neither TCP nor UDP (such
/// frames carry no flow and may be dispatched to any shard — every
/// shard drops them identically).
pub fn frame_flow_id(f: &[u8]) -> Option<FlowId> {
    let proto = vig_packet::Proto::from_number(rd8(f, 23))?;
    let l4 = 14 + usize::from(rd8(f, 14) & 0x0f) * 4;
    Some(FlowId {
        src_ip: vig_packet::Ip4(rd32(f, 26)),
        src_port: rd16(f, l4),
        dst_ip: vig_packet::Ip4(rd32(f, 30)),
        dst_port: rd16(f, l4 + 2),
        proto,
    })
}

/// A frame's L4 destination port at the env's offsets (zero-filled when
/// absent) — the field that routes *external* (return) traffic to the
/// shard owning that slice of the NAT's port range.
pub fn frame_l4_dst_port(f: &[u8]) -> u16 {
    let l4 = 14 + usize::from(rd8(f, 14) & 0x0f) * 4;
    rd16(f, l4 + 2)
}

/// A frame's IPv4 destination address at the env's offsets (zero-filled
/// when absent) — with a multi-address pool this selects which external
/// address's port range return traffic resolves against.
pub fn frame_dst_ip(f: &[u8]) -> vig_packet::Ip4 {
    vig_packet::Ip4(rd32(f, 30))
}

/// The RSS classification function a multi-queue NIC's hash unit
/// computes: frame bytes in, queue index out.
///
/// This is *the same function* the software drivers dispatch by —
/// [`crate::harness::ParallelShardedNat::dispatch`] delegates here, and
/// the sharded flow table's own routing
/// (`ShardedFlowManager::shard_of_hash` / `shard_of_port`) applies the
/// identical [`libvig::rss::shard_of`] reduction and port partition —
/// so hardware steering, software dispatch, and table lookup can never
/// disagree about where a flow lives (asserted by construction in
/// [`RssClassifier::for_table`], differentially in
/// `tests/queue_equivalence.rs`).
///
/// * **Internal traffic** routes by [`libvig::rss::shard_of`] over the
///   flow-key hash a NIC's RSS unit would compute ([`frame_flow_id`],
///   reading the same offsets with the same zero-fill as the env).
/// * **External (return) traffic** routes by the NAT endpoint-pool
///   partition: queue `q` owns the pool slots
///   `q·slots_per_queue ..` — a translated flow's external
///   `(address, port)` identifies its pool slot, hence its queue,
///   exactly. With the paper's single-address pool the destination
///   address is not consulted (the loop body's external match
///   canonicalizes it), so this degenerates to the pure port partition.
/// * Frames carrying no routable flow (non-TCP/UDP, endpoint outside
///   the pool) classify to queue 0; every queue drops them identically,
///   so the choice is unobservable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RssClassifier {
    queues: usize,
    cfg: vig_spec::NatConfig,
    slots_per_queue: usize,
}

impl RssClassifier {
    /// Classifier for `queues` queues over the NAT's endpoint pool — the
    /// partition [`vignat::ShardedFlowManager`] would use with `queues`
    /// shards (`cfg.capacity / queues` pool slots per queue).
    pub fn for_nat(cfg: &vig_spec::NatConfig, queues: usize) -> RssClassifier {
        assert!(queues > 0, "need at least one queue");
        let slots_per_queue = cfg.capacity / queues;
        assert!(slots_per_queue > 0, "more queues than pool slots");
        RssClassifier {
            queues,
            cfg: *cfg,
            slots_per_queue,
        }
    }

    /// The classifier matching a sharded flow table's own routing: one
    /// queue per shard, same pool partition — hardware dispatch and
    /// table routing become one function by construction.
    pub fn for_table(table: &vignat::ShardedFlowManager) -> RssClassifier {
        RssClassifier {
            queues: table.shard_count(),
            cfg: table.global_cfg(),
            slots_per_queue: table.per_shard_capacity(),
        }
    }

    /// Number of queues this classifier steers across.
    pub fn queue_count(&self) -> usize {
        self.queues
    }

    /// The queue a frame arriving on `dir` steers to. See type docs.
    pub fn queue_of(&self, dir: Direction, frame: &[u8]) -> usize {
        match dir {
            Direction::Internal => frame_flow_id(frame)
                .map(|fid| libvig::rss::shard_of(fid.key_hash(), self.queues))
                .unwrap_or(0),
            Direction::External => self
                .queue_of_endpoint(frame_dst_ip(frame), frame_l4_dst_port(frame))
                .unwrap_or(0),
        }
    }

    /// Which queue owns the pool endpoint `(dst_ip, dst_port)`, if any.
    /// Mirrors the loop body's external match exactly: with a
    /// single-address pool `dst_ip` is canonicalized away (the paper's
    /// NAT never consults it), otherwise the pair resolves through
    /// [`vig_spec::NatConfig::slot_of_endpoint`] — the same mapping the
    /// sharded table routes by.
    pub fn queue_of_endpoint(&self, dst_ip: vig_packet::Ip4, dst_port: u16) -> Option<usize> {
        let ip = if self.cfg.num_external_ips() == 1 {
            self.cfg.external_ip
        } else {
            dst_ip
        };
        self.cfg
            .slot_of_endpoint(ip, dst_port)
            .filter(|&slot| slot < self.slots_per_queue * self.queues)
            .map(|slot| slot / self.slots_per_queue)
    }

    /// Which queue owns external port `port` on the pool's first
    /// address — the single-address special case of
    /// [`RssClassifier::queue_of_endpoint`].
    pub fn queue_of_port(&self, port: u16) -> Option<usize> {
        self.queue_of_endpoint(self.cfg.external_ip, port)
    }
}

/// Apply a NAT rewrite to the frame in place: fixed-offset field
/// surgery with RFC 1624 incremental checksum maintenance — exactly the
/// C original's struct-overlay writes. The loop body's validation
/// ladder guarantees every offset touched here lies inside the frame
/// (frame >= 14 + IHL + 20/8); deliberately *no* typed-view re-parse,
/// whose stricter checks (e.g. TCP data offset) could reject a frame
/// the NAT can translate perfectly well.
fn apply_rewrite(frame: &mut [u8], src_ip: u32, src_port: u16, dst_ip: u32, dst_port: u16) {
    let l4 = 14 + usize::from(rd8(frame, 14) & 0x0f) * 4;
    let proto = rd8(frame, 23);
    let old_src_ip = rd32(frame, 26);
    let old_dst_ip = rd32(frame, 30);

    // IPv4 addresses + header checksum (field at 14+10).
    frame[26..30].copy_from_slice(&src_ip.to_be_bytes());
    frame[30..34].copy_from_slice(&dst_ip.to_be_bytes());
    let ip_csum = Checksum::from_field(rd16(frame, 24))
        .update_u32(old_src_ip, src_ip)
        .update_u32(old_dst_ip, dst_ip)
        .to_field();
    frame[24..26].copy_from_slice(&ip_csum.to_be_bytes());

    // L4 ports.
    let old_src_port = rd16(frame, l4);
    let old_dst_port = rd16(frame, l4 + 2);
    frame[l4..l4 + 2].copy_from_slice(&src_port.to_be_bytes());
    frame[l4 + 2..l4 + 4].copy_from_slice(&dst_port.to_be_bytes());

    // L4 checksum: pseudo-header (both addresses) + both ports.
    let is_udp = proto == vig_packet::ipv4::PROTO_UDP;
    let csum_off = if is_udp { l4 + 6 } else { l4 + 16 };
    let old_csum = rd16(frame, csum_off);
    if !(is_udp && old_csum == 0) {
        let mut c = Checksum::from_field(old_csum)
            .update_u32(old_src_ip, src_ip)
            .update_u32(old_dst_ip, dst_ip)
            .update_u16(old_src_port, src_port)
            .update_u16(old_dst_port, dst_port)
            .to_field();
        if is_udp && c == 0 {
            c = 0xffff; // RFC 768: transmitted zero means "no checksum"
        }
        frame[csum_off..csum_off + 2].copy_from_slice(&c.to_be_bytes());
    }
}

impl<T: FlowTable> vignat::domain::Domain for FrameEnv<'_, T> {
    vignat::concrete_domain_items!();
}

impl<T: FlowTable> NatEnv for FrameEnv<'_, T> {
    fn now(&mut self) -> u64 {
        self.now_ns
    }

    fn expire_flows(&mut self, threshold: &u64) {
        self.expired += self.fm.expire(Time(*threshold));
    }

    fn receive(&mut self) -> Option<RxPacket<Self>> {
        if self.delivered {
            return None;
        }
        self.delivered = true;
        Some(read_rx_fields(self.frame, 0, self.dir))
    }

    fn branch(&mut self, cond: bool) -> bool {
        cond
    }

    fn lookup_internal(&mut self, fid: &FidParts<Self>) -> Option<FlowView<Self>> {
        let key = fid_key(fid);
        // Hash once per packet; a following insert_flow reuses it.
        let hash = self.fid_memo.hash_for_lookup(key);
        let (slot, flow) = self.fm.lookup_internal_hashed(&key, hash)?;
        Some(view(slot, flow))
    }

    fn lookup_external(&mut self, ek: &ExtParts<Self>) -> Option<FlowView<Self>> {
        let key = ext_key(ek);
        let hash = key.key_hash();
        let (slot, flow) = self.fm.lookup_external_hashed(&key, hash)?;
        Some(view(slot, flow))
    }

    fn rejuvenate(&mut self, slot: SlotId, now: &u64, dir: Direction, tcp_flags: &u8) {
        self.fm.rejuvenate(slot.0, Time(*now), dir, *tcp_flags);
    }

    fn allocate_slot(&mut self, now: &u64) -> Option<(SlotId, u16, u32)> {
        // The memoized hash of the just-missed lookup routes the
        // allocation (shard selector on sharded tables).
        let slot = self
            .fm
            .allocate_slot_routed(self.fid_memo.hash_for_alloc(), Time(*now))?;
        let (ip, _) = self.fm.endpoint_of_slot(slot);
        Some((SlotId(slot), self.fm.port_offset_of_slot(slot), ip.raw()))
    }

    fn insert_flow(
        &mut self,
        slot: SlotId,
        fid: FidParts<Self>,
        ext_ip: u32,
        ext_port: u16,
        _now: &u64,
        tcp_flags: &u8,
    ) {
        let key = fid_key(&fid);
        // Reuse the hash memoized by the preceding lookup miss.
        let hash = self.fid_memo.hash_for_insert(&key);
        self.fm.insert_hashed(
            slot.0,
            key,
            vig_packet::Ip4(ext_ip),
            ext_port,
            hash,
            *tcp_flags,
        );
    }

    fn tx(&mut self, _pkt: PktHandle, out: Direction, hdr: TxHdr<Self>) {
        debug_assert!(self.verdict.is_none(), "double consume of frame");
        apply_rewrite(
            self.frame,
            hdr.src_ip,
            hdr.src_port,
            hdr.dst_ip,
            hdr.dst_port,
        );
        self.verdict = Some(FrameVerdict::Forward(out));
    }

    fn drop_pkt(&mut self, _pkt: PktHandle) {
        debug_assert!(self.verdict.is_none(), "double consume of frame");
        self.verdict = Some(FrameVerdict::Drop);
    }
}

/// Burst environment: runs [`vignat::nat_process_batch`] over a burst
/// of mempool-resident frames.
///
/// Where [`FrameEnv`] serves exactly one frame, `BurstEnv` serves one
/// RX burst (up to [`vignat::MAX_BURST`] buffers): `receive_burst`
/// yields the staged frames in ring order, `lookup_internal_batch`
/// resolves the burst's flow probes through the flow table's batched
/// directory probe (underneath: `Map::get_batch_with_hash`, which
/// first-touches the burst's tag-group control words back to back and
/// then SWAR-scans each probe — the batch contract is unchanged by the
/// tag directory, as the equivalence suites assert), and
/// `tx`/`drop_pkt` record one verdict per buffer
/// (the middlebox routes them afterwards). Like `FrameEnv` it borrows
/// everything, so constructing one per burst costs nothing and the
/// datapath stays allocation-free apart from the per-burst scratch
/// vectors, which are capacity-bounded by the burst size.
pub struct BurstEnv<'a, T: FlowTable = FlowManager> {
    fm: &'a mut T,
    pool: &'a mut Mempool,
    bufs: &'a [BufIdx],
    dir: Direction,
    now_ns: u64,
    next_rx: usize,
    verdicts: Vec<Option<FrameVerdict>>,
    expired: usize,
    fid_memo: FidMemo,
    scratch: &'a mut BurstScratch,
}

/// Reusable per-burst buffers (keys, hashes, probe results) for
/// [`BurstEnv::lookup_internal_batch`]. Owned by the NF across bursts
/// so the steady-state burst path performs no heap allocation for its
/// flow probes — the design rule (§5.1.1, all memory preallocated)
/// extended to the fast path's scratch space.
#[derive(Debug, Default)]
pub struct BurstScratch {
    keys: Vec<FlowId>,
    hashes: Vec<u64>,
    found: Vec<Option<(usize, vig_packet::Flow)>>,
    verdicts_pool: Vec<Option<FrameVerdict>>,
}

impl<'a, T: FlowTable> BurstEnv<'a, T> {
    /// Build the env for one burst of staged buffers arriving on `dir`
    /// at `now`. `scratch` is reused across bursts.
    pub fn new(
        fm: &'a mut T,
        pool: &'a mut Mempool,
        bufs: &'a [BufIdx],
        dir: Direction,
        now: Time,
        scratch: &'a mut BurstScratch,
    ) -> BurstEnv<'a, T> {
        let mut verdicts = std::mem::take(&mut scratch.verdicts_pool);
        verdicts.clear();
        verdicts.resize(bufs.len(), None);
        BurstEnv {
            fm,
            pool,
            bufs,
            dir,
            now_ns: now.nanos(),
            next_rx: 0,
            verdicts,
            expired: 0,
            fid_memo: FidMemo::default(),
            scratch,
        }
    }

    /// Return the verdict buffer to the scratch pool for the next
    /// burst. Call after reading [`BurstEnv::verdicts`].
    pub fn finish(mut self) {
        self.scratch.verdicts_pool = std::mem::take(&mut self.verdicts);
    }

    /// Per-buffer verdicts, after the burst ran. Indexed like `bufs`;
    /// `None` only for buffers the loop body never received (cannot
    /// happen through [`vignat::nat_process_batch`], which drains the
    /// whole burst).
    pub fn verdicts(&self) -> &[Option<FrameVerdict>] {
        &self.verdicts
    }

    /// Flows expired during this burst.
    pub fn expired(&self) -> usize {
        self.expired
    }
}

impl<T: FlowTable> vignat::domain::Domain for BurstEnv<'_, T> {
    vignat::concrete_domain_items!();
}

impl<T: FlowTable> NatEnv for BurstEnv<'_, T> {
    fn now(&mut self) -> u64 {
        self.now_ns
    }

    fn expire_flows(&mut self, threshold: &u64) {
        self.expired += self.fm.expire(Time(*threshold));
    }

    fn receive(&mut self) -> Option<RxPacket<Self>> {
        if self.next_rx >= self.bufs.len() {
            return None;
        }
        let i = self.next_rx;
        self.next_rx += 1;
        Some(read_rx_fields(self.pool.frame(self.bufs[i]), i, self.dir))
    }

    fn branch(&mut self, cond: bool) -> bool {
        cond
    }

    fn lookup_internal(&mut self, fid: &FidParts<Self>) -> Option<FlowView<Self>> {
        let key = fid_key(fid);
        // Hash once per packet; a following insert_flow reuses it.
        let hash = self.fid_memo.hash_for_lookup(key);
        let (slot, flow) = self.fm.lookup_internal_hashed(&key, hash)?;
        Some(view(slot, flow))
    }

    fn lookup_internal_batch(
        &mut self,
        fids: &[FidParts<Self>],
        out: &mut Vec<Option<FlowView<Self>>>,
    ) {
        let s = &mut *self.scratch;
        s.keys.clear();
        s.keys.extend(fids.iter().map(fid_key));
        s.hashes.clear();
        s.hashes.extend(s.keys.iter().map(MapKey::key_hash));
        s.found.clear();
        // One batched probe; on a sharded table this is where the
        // burst splits into per-shard sub-batches by these hashes.
        self.fm
            .probe_internal_batch(&s.keys, &s.hashes, &mut s.found);
        out.extend(
            s.found
                .iter()
                .map(|r| r.map(|(slot, flow)| view(slot, &flow))),
        );
    }

    fn lookup_external(&mut self, ek: &ExtParts<Self>) -> Option<FlowView<Self>> {
        let key = ext_key(ek);
        let hash = key.key_hash();
        let (slot, flow) = self.fm.lookup_external_hashed(&key, hash)?;
        Some(view(slot, flow))
    }

    fn rejuvenate(&mut self, slot: SlotId, now: &u64, dir: Direction, tcp_flags: &u8) {
        self.fm.rejuvenate(slot.0, Time(*now), dir, *tcp_flags);
    }

    fn allocate_slot(&mut self, now: &u64) -> Option<(SlotId, u16, u32)> {
        // Routed by the memoized hash of the just-missed lookup.
        let slot = self
            .fm
            .allocate_slot_routed(self.fid_memo.hash_for_alloc(), Time(*now))?;
        let (ip, _) = self.fm.endpoint_of_slot(slot);
        Some((SlotId(slot), self.fm.port_offset_of_slot(slot), ip.raw()))
    }

    fn insert_flow(
        &mut self,
        slot: SlotId,
        fid: FidParts<Self>,
        ext_ip: u32,
        ext_port: u16,
        _now: &u64,
        tcp_flags: &u8,
    ) {
        let key = fid_key(&fid);
        // Reuse the hash memoized by the preceding lookup miss.
        let hash = self.fid_memo.hash_for_insert(&key);
        self.fm.insert_hashed(
            slot.0,
            key,
            vig_packet::Ip4(ext_ip),
            ext_port,
            hash,
            *tcp_flags,
        );
    }

    fn tx(&mut self, pkt: PktHandle, out: Direction, hdr: TxHdr<Self>) {
        debug_assert!(
            self.verdicts[pkt.0].is_none(),
            "double consume of frame {}",
            pkt.0
        );
        let frame = self.pool.frame_mut(self.bufs[pkt.0]);
        apply_rewrite(frame, hdr.src_ip, hdr.src_port, hdr.dst_ip, hdr.dst_port);
        self.verdicts[pkt.0] = Some(FrameVerdict::Forward(out));
    }

    fn drop_pkt(&mut self, pkt: PktHandle) {
        debug_assert!(
            self.verdicts[pkt.0].is_none(),
            "double consume of frame {}",
            pkt.0
        );
        self.verdicts[pkt.0] = Some(FrameVerdict::Drop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vig_packet::{builder::PacketBuilder, parse_l3l4, Ip4};
    use vig_spec::NatConfig;
    use vignat::nat_loop_iteration;

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 16,
            expiry_ns: Time::from_secs(10).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 2000,
            ..NatConfig::paper_default()
        }
    }

    fn run(fm: &mut FlowManager, frame: &mut [u8], dir: Direction, t: Time) -> FrameVerdict {
        let c = cfg();
        let mut env = FrameEnv::new(fm, frame, dir, t);
        nat_loop_iteration(&mut env, &c);
        env.verdict().expect("one packet => one verdict")
    }

    #[test]
    fn end_to_end_translation_preserves_checksums_and_payload() {
        let mut fm = FlowManager::new(&cfg());
        let mut frame = PacketBuilder::tcp(
            Ip4::new(192, 168, 0, 7),
            Ip4::new(93, 184, 216, 34),
            40000,
            443,
        )
        .payload(b"GET / HTTP/1.1")
        .build();

        let v = run(&mut fm, &mut frame, Direction::Internal, Time::from_secs(1));
        assert_eq!(v, FrameVerdict::Forward(Direction::External));

        // The translated frame must still parse, with rewritten source.
        let (_, ff) = parse_l3l4(&frame).unwrap();
        assert_eq!(ff.src_ip, Ip4::new(10, 1, 0, 1));
        assert_eq!(ff.src_port, 2000, "first slot -> start_port");
        assert_eq!(ff.dst_ip, Ip4::new(93, 184, 216, 34));
        assert_eq!(ff.dst_port, 443);

        // IPv4 checksum still verifies after the incremental update.
        let ip = vig_packet::ipv4::Ipv4Packet::parse(&frame[14..]).unwrap();
        assert!(ip.verify_checksum());

        // TCP checksum verifies against the *new* pseudo-header.
        let l4 = &frame[34..];
        let mut copy = l4.to_vec();
        copy[16] = 0;
        copy[17] = 0;
        let want = vig_packet::checksum::l4_checksum(ff.src_ip.raw(), ff.dst_ip.raw(), 6, &copy);
        assert_eq!(
            vig_packet::tcp::TcpSegment::parse(l4).unwrap().checksum(),
            want,
            "TCP checksum must verify after NAT rewrite"
        );

        // Payload untouched (S.data = P.data).
        assert_eq!(&frame[34 + 20..], b"GET / HTTP/1.1");
    }

    #[test]
    fn return_path_restores_original_tuple() {
        let mut fm = FlowManager::new(&cfg());
        let mut out = PacketBuilder::udp(Ip4::new(192, 168, 0, 9), Ip4::new(8, 8, 8, 8), 5353, 53)
            .payload(b"query")
            .build();
        run(&mut fm, &mut out, Direction::Internal, Time::from_secs(1));
        let (_, outf) = parse_l3l4(&out).unwrap();

        // Craft the reply the remote host would send.
        let mut back = PacketBuilder::udp(
            Ip4::new(8, 8, 8, 8),
            Ip4::new(10, 1, 0, 1),
            53,
            outf.src_port,
        )
        .payload(b"answer")
        .build();
        let v = run(&mut fm, &mut back, Direction::External, Time::from_secs(2));
        assert_eq!(v, FrameVerdict::Forward(Direction::Internal));
        let (_, backf) = parse_l3l4(&back).unwrap();
        assert_eq!(backf.dst_ip, Ip4::new(192, 168, 0, 9), "restored host");
        assert_eq!(backf.dst_port, 5353, "restored port");
        assert_eq!(backf.src_ip, Ip4::new(8, 8, 8, 8));
        // UDP checksum verifies post-rewrite
        let l4 = &back[34..];
        let mut copy = l4.to_vec();
        copy[6] = 0;
        copy[7] = 0;
        let want =
            vig_packet::checksum::l4_checksum(backf.src_ip.raw(), backf.dst_ip.raw(), 17, &copy);
        assert_eq!(
            vig_packet::udp::UdpDatagram::parse(l4).unwrap().checksum(),
            want
        );
    }

    #[test]
    fn garbage_frames_are_dropped_not_crashed() {
        let mut fm = FlowManager::new(&cfg());
        // every prefix length of a valid packet, plus pure noise
        let valid =
            PacketBuilder::tcp(Ip4::new(192, 168, 0, 1), Ip4::new(1, 1, 1, 1), 1, 2).build();
        for cut in 0..valid.len() - 1 {
            let mut frame = valid[..cut].to_vec();
            let v = run(&mut fm, &mut frame, Direction::Internal, Time::from_secs(1));
            assert_eq!(v, FrameVerdict::Drop, "truncated frame at {cut} must drop");
        }
        let mut noise = vec![0xa5u8; 60];
        let v = run(&mut fm, &mut noise, Direction::External, Time::from_secs(1));
        assert_eq!(v, FrameVerdict::Drop);
    }

    #[test]
    fn unsolicited_external_frame_is_dropped() {
        let mut fm = FlowManager::new(&cfg());
        let mut frame =
            PacketBuilder::tcp(Ip4::new(6, 6, 6, 6), Ip4::new(10, 1, 0, 1), 80, 2000).build();
        let v = run(&mut fm, &mut frame, Direction::External, Time::from_secs(1));
        assert_eq!(v, FrameVerdict::Drop);
        assert!(fm.is_empty(), "external packets never create flows");
    }
}
