//! `FrameEnv`: runs the verified loop body over real packet bytes.
//!
//! This is the production instantiation of `vignat`'s [`NatEnv`]: header
//! fields are read straight off the frame (zero-filled where the frame
//! is too short — the loop body's length guards run before any semantic
//! use, a property the symbolic engine checks), and [`NatEnv::tx`]
//! applies the rewrite to the same buffer using the RFC 1624
//! incremental checksum updates from `vig-packet`.
//!
//! One `FrameEnv` serves exactly one loop iteration for one frame; it
//! borrows the flow manager and the buffer, so constructing it costs
//! nothing and the datapath stays allocation-free.

use libvig::time::Time;
use vig_packet::checksum::Checksum;
use vig_packet::{Direction, Ip4};
use vignat::env::{ExtParts, FidParts, FlowView, NatEnv, PktHandle, RxPacket, SlotId, TxHdr};
use vignat::impl_concrete_domain;
use vignat::FlowManager;

/// What the loop body decided to do with the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameVerdict {
    /// Forward the (rewritten, in place) frame out of this interface.
    Forward(Direction),
    /// Drop the frame.
    Drop,
}

/// Per-frame environment. See module docs.
pub struct FrameEnv<'a> {
    fm: &'a mut FlowManager,
    frame: &'a mut [u8],
    dir: Direction,
    now_ns: u64,
    delivered: bool,
    verdict: Option<FrameVerdict>,
    expired: usize,
}

/// Read a big-endian u16 at `off`, zero if out of bounds.
fn rd16(b: &[u8], off: usize) -> u16 {
    match b.get(off..off + 2) {
        Some(w) => u16::from_be_bytes([w[0], w[1]]),
        None => 0,
    }
}

/// Read a big-endian u32 at `off`, zero if out of bounds.
fn rd32(b: &[u8], off: usize) -> u32 {
    match b.get(off..off + 4) {
        Some(w) => u32::from_be_bytes([w[0], w[1], w[2], w[3]]),
        None => 0,
    }
}

/// Read a byte at `off`, zero if out of bounds.
fn rd8(b: &[u8], off: usize) -> u8 {
    b.get(off).copied().unwrap_or(0)
}

impl<'a> FrameEnv<'a> {
    /// Build the env for one frame arriving on `dir` at `now`.
    pub fn new(
        fm: &'a mut FlowManager,
        frame: &'a mut [u8],
        dir: Direction,
        now: Time,
    ) -> FrameEnv<'a> {
        FrameEnv {
            fm,
            frame,
            dir,
            now_ns: now.nanos(),
            delivered: false,
            verdict: None,
            expired: 0,
        }
    }

    /// The decision, after the loop body ran.
    pub fn verdict(&self) -> Option<FrameVerdict> {
        self.verdict
    }

    /// Flows expired during this iteration.
    pub fn expired(&self) -> usize {
        self.expired
    }

    /// Offset of the L4 header, parsed from the frame (used by `tx` to
    /// place the port rewrites). Falls back to IHL 20 if the frame is
    /// short — harmless, since `tx` is only reached on validated frames.
    fn l4_offset(&self) -> usize {
        let ihl = usize::from(rd8(self.frame, 14) & 0x0f) * 4;
        14 + ihl
    }
}

impl_concrete_domain!(FrameEnv<'_>);

impl NatEnv for FrameEnv<'_> {
    fn now(&mut self) -> u64 {
        self.now_ns
    }

    fn expire_flows(&mut self, threshold: &u64) {
        self.expired += self.fm.expire(Time(*threshold));
    }

    fn receive(&mut self) -> Option<RxPacket<Self>> {
        if self.delivered {
            return None;
        }
        self.delivered = true;
        let f: &[u8] = self.frame;
        Some(RxPacket {
            handle: PktHandle(0),
            dir: self.dir,
            frame_len: f.len().min(usize::from(u16::MAX)) as u16,
            ethertype: rd16(f, 12),
            version_ihl: rd8(f, 14),
            total_len: rd16(f, 16),
            frag_field: rd16(f, 20),
            ttl: rd8(f, 22),
            proto: rd8(f, 23),
            src_ip: rd32(f, 26),
            dst_ip: rd32(f, 30),
            // L4 ports at 14 + IHL; zero-filled when absent.
            src_port: rd16(f, 14 + usize::from(rd8(f, 14) & 0x0f) * 4),
            dst_port: rd16(f, 14 + usize::from(rd8(f, 14) & 0x0f) * 4 + 2),
        })
    }

    fn branch(&mut self, cond: bool) -> bool {
        cond
    }

    fn lookup_internal(&mut self, fid: &FidParts<Self>) -> Option<FlowView<Self>> {
        let key = vig_packet::FlowId {
            src_ip: Ip4(fid.src_ip),
            src_port: fid.src_port,
            dst_ip: Ip4(fid.dst_ip),
            dst_port: fid.dst_port,
            proto: fid.proto,
        };
        let (slot, flow) = self.fm.lookup_internal(&key)?;
        Some(FlowView {
            slot: SlotId(slot),
            ext_port: flow.ext_port,
            int_ip: flow.int_key.src_ip.raw(),
            int_port: flow.int_key.src_port,
        })
    }

    fn lookup_external(&mut self, ek: &ExtParts<Self>) -> Option<FlowView<Self>> {
        let key = vig_packet::ExtKey {
            ext_port: ek.ext_port,
            dst_ip: Ip4(ek.dst_ip),
            dst_port: ek.dst_port,
            proto: ek.proto,
        };
        let (slot, flow) = self.fm.lookup_external(&key)?;
        Some(FlowView {
            slot: SlotId(slot),
            ext_port: flow.ext_port,
            int_ip: flow.int_key.src_ip.raw(),
            int_port: flow.int_key.src_port,
        })
    }

    fn rejuvenate(&mut self, slot: SlotId, now: &u64) {
        self.fm.rejuvenate(slot.0, Time(*now));
    }

    fn allocate_slot(&mut self, now: &u64) -> Option<(SlotId, u16)> {
        let slot = self.fm.allocate_slot(Time(*now))?;
        Some((SlotId(slot), slot as u16))
    }

    fn insert_flow(&mut self, slot: SlotId, fid: FidParts<Self>, ext_port: u16, _now: &u64) {
        let key = vig_packet::FlowId {
            src_ip: Ip4(fid.src_ip),
            src_port: fid.src_port,
            dst_ip: Ip4(fid.dst_ip),
            dst_port: fid.dst_port,
            proto: fid.proto,
        };
        self.fm.insert(slot.0, key, ext_port);
    }

    fn tx(&mut self, _pkt: PktHandle, out: Direction, hdr: TxHdr<Self>) {
        debug_assert!(self.verdict.is_none(), "double consume of frame");
        // Apply the rewrite by fixed-offset field surgery with RFC 1624
        // incremental checksum maintenance — exactly the C original's
        // struct-overlay writes. The loop body's validation ladder
        // guarantees every offset touched here lies inside the frame
        // (frame >= 14 + IHL + 20/8); deliberately *no* typed-view
        // re-parse, whose stricter checks (e.g. TCP data offset) could
        // reject a frame the NAT can translate perfectly well.
        let l4 = self.l4_offset();
        let proto = rd8(self.frame, 23);
        let old_src_ip = rd32(self.frame, 26);
        let old_dst_ip = rd32(self.frame, 30);

        // IPv4 addresses + header checksum (field at 14+10).
        self.frame[26..30].copy_from_slice(&hdr.src_ip.to_be_bytes());
        self.frame[30..34].copy_from_slice(&hdr.dst_ip.to_be_bytes());
        let ip_csum = Checksum::from_field(rd16(self.frame, 24))
            .update_u32(old_src_ip, hdr.src_ip)
            .update_u32(old_dst_ip, hdr.dst_ip)
            .to_field();
        self.frame[24..26].copy_from_slice(&ip_csum.to_be_bytes());

        // L4 ports.
        let old_src_port = rd16(self.frame, l4);
        let old_dst_port = rd16(self.frame, l4 + 2);
        self.frame[l4..l4 + 2].copy_from_slice(&hdr.src_port.to_be_bytes());
        self.frame[l4 + 2..l4 + 4].copy_from_slice(&hdr.dst_port.to_be_bytes());

        // L4 checksum: pseudo-header (both addresses) + both ports.
        let is_udp = proto == vig_packet::ipv4::PROTO_UDP;
        let csum_off = if is_udp { l4 + 6 } else { l4 + 16 };
        let old_csum = rd16(self.frame, csum_off);
        if !(is_udp && old_csum == 0) {
            let mut c = Checksum::from_field(old_csum)
                .update_u32(old_src_ip, hdr.src_ip)
                .update_u32(old_dst_ip, hdr.dst_ip)
                .update_u16(old_src_port, hdr.src_port)
                .update_u16(old_dst_port, hdr.dst_port)
                .to_field();
            if is_udp && c == 0 {
                c = 0xffff; // RFC 768: transmitted zero means "no checksum"
            }
            self.frame[csum_off..csum_off + 2].copy_from_slice(&c.to_be_bytes());
        }
        self.verdict = Some(FrameVerdict::Forward(out));
    }

    fn drop_pkt(&mut self, _pkt: PktHandle) {
        debug_assert!(self.verdict.is_none(), "double consume of frame");
        self.verdict = Some(FrameVerdict::Drop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vig_packet::{builder::PacketBuilder, parse_l3l4, Proto};
    use vig_spec::NatConfig;
    use vignat::nat_loop_iteration;

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 16,
            expiry_ns: Time::from_secs(10).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 2000,
        }
    }

    fn run(fm: &mut FlowManager, frame: &mut [u8], dir: Direction, t: Time) -> FrameVerdict {
        let c = cfg();
        let mut env = FrameEnv::new(fm, frame, dir, t);
        nat_loop_iteration(&mut env, &c);
        env.verdict().expect("one packet => one verdict")
    }

    #[test]
    fn end_to_end_translation_preserves_checksums_and_payload() {
        let mut fm = FlowManager::new(&cfg());
        let mut frame = PacketBuilder::tcp(
            Ip4::new(192, 168, 0, 7),
            Ip4::new(93, 184, 216, 34),
            40000,
            443,
        )
        .payload(b"GET / HTTP/1.1")
        .build();

        let v = run(&mut fm, &mut frame, Direction::Internal, Time::from_secs(1));
        assert_eq!(v, FrameVerdict::Forward(Direction::External));

        // The translated frame must still parse, with rewritten source.
        let (_, ff) = parse_l3l4(&frame).unwrap();
        assert_eq!(ff.src_ip, Ip4::new(10, 1, 0, 1));
        assert_eq!(ff.src_port, 2000, "first slot -> start_port");
        assert_eq!(ff.dst_ip, Ip4::new(93, 184, 216, 34));
        assert_eq!(ff.dst_port, 443);

        // IPv4 checksum still verifies after the incremental update.
        let ip = vig_packet::ipv4::Ipv4Packet::parse(&frame[14..]).unwrap();
        assert!(ip.verify_checksum());

        // TCP checksum verifies against the *new* pseudo-header.
        let l4 = &frame[34..];
        let mut copy = l4.to_vec();
        copy[16] = 0;
        copy[17] = 0;
        let want = vig_packet::checksum::l4_checksum(
            ff.src_ip.raw(),
            ff.dst_ip.raw(),
            6,
            &copy,
        );
        assert_eq!(
            vig_packet::tcp::TcpSegment::parse(l4).unwrap().checksum(),
            want,
            "TCP checksum must verify after NAT rewrite"
        );

        // Payload untouched (S.data = P.data).
        assert_eq!(&frame[34 + 20..], b"GET / HTTP/1.1");
    }

    #[test]
    fn return_path_restores_original_tuple() {
        let mut fm = FlowManager::new(&cfg());
        let mut out = PacketBuilder::udp(Ip4::new(192, 168, 0, 9), Ip4::new(8, 8, 8, 8), 5353, 53)
            .payload(b"query")
            .build();
        run(&mut fm, &mut out, Direction::Internal, Time::from_secs(1));
        let (_, outf) = parse_l3l4(&out).unwrap();

        // Craft the reply the remote host would send.
        let mut back = PacketBuilder::udp(
            Ip4::new(8, 8, 8, 8),
            Ip4::new(10, 1, 0, 1),
            53,
            outf.src_port,
        )
        .payload(b"answer")
        .build();
        let v = run(&mut fm, &mut back, Direction::External, Time::from_secs(2));
        assert_eq!(v, FrameVerdict::Forward(Direction::Internal));
        let (_, backf) = parse_l3l4(&back).unwrap();
        assert_eq!(backf.dst_ip, Ip4::new(192, 168, 0, 9), "restored host");
        assert_eq!(backf.dst_port, 5353, "restored port");
        assert_eq!(backf.src_ip, Ip4::new(8, 8, 8, 8));
        // UDP checksum verifies post-rewrite
        let l4 = &back[34..];
        let mut copy = l4.to_vec();
        copy[6] = 0;
        copy[7] = 0;
        let want = vig_packet::checksum::l4_checksum(
            backf.src_ip.raw(),
            backf.dst_ip.raw(),
            17,
            &copy,
        );
        assert_eq!(vig_packet::udp::UdpDatagram::parse(l4).unwrap().checksum(), want);
    }

    #[test]
    fn garbage_frames_are_dropped_not_crashed() {
        let mut fm = FlowManager::new(&cfg());
        // every prefix length of a valid packet, plus pure noise
        let valid = PacketBuilder::tcp(Ip4::new(192, 168, 0, 1), Ip4::new(1, 1, 1, 1), 1, 2)
            .build();
        for cut in 0..valid.len() - 1 {
            let mut frame = valid[..cut].to_vec();
            let v = run(&mut fm, &mut frame, Direction::Internal, Time::from_secs(1));
            assert_eq!(v, FrameVerdict::Drop, "truncated frame at {cut} must drop");
        }
        let mut noise = vec![0xa5u8; 60];
        let v = run(&mut fm, &mut noise, Direction::External, Time::from_secs(1));
        assert_eq!(v, FrameVerdict::Drop);
    }

    #[test]
    fn unsolicited_external_frame_is_dropped() {
        let mut fm = FlowManager::new(&cfg());
        let mut frame =
            PacketBuilder::tcp(Ip4::new(6, 6, 6, 6), Ip4::new(10, 1, 0, 1), 80, 2000).build();
        let v = run(&mut fm, &mut frame, Direction::External, Time::from_secs(1));
        assert_eq!(v, FrameVerdict::Drop);
        assert!(fm.is_empty(), "external packets never create flows");
    }
}
