//! The async (epoll-style) event-driven driver over the multi-queue
//! NIC model.
//!
//! The paper's NAT is one run-to-completion loop over one RX ring; this
//! module is the I/O layer that feeds the *same verified loop body*
//! from N hardware queues instead:
//!
//! * [`Poller`] — readiness: level-triggered "queue non-empty" events
//!   over every RX queue of both ports (epoll's `EPOLLIN` analog for a
//!   poll-mode driver), with exponential idle backoff so a quiet NF
//!   does not spin at full rate;
//! * [`Wrr`] — scheduling: weighted round-robin with per-queue burst
//!   budgets (deficit-round-robin style), so one deep queue cannot
//!   starve its siblings and operators can bias service toward
//!   latency-sensitive queues;
//! * [`EventLoop`] — the driver state (poller + scheduler + batch
//!   scratch), reused across drains so the steady-state path allocates
//!   nothing;
//! * [`MultiQueueTestbed`] — the two-port testbed analog of
//!   [`crate::harness::Testbed`]: one mempool, two
//!   [`MultiQueueDevice`]s, and the RSS classifier
//!   ([`RssClassifier`]) applied tester-side exactly where a NIC's
//!   hash unit runs;
//! * [`BackendDriver`] — the same drain loop written once over the
//!   [`PacketIo`] backend seam (see [`crate::backend`]), so it runs
//!   identically on the simulated NIC model ([`SimBackend`]) and on
//!   real OS packet I/O (`backend::os::OsBackend`); the legacy
//!   [`MultiQueueTestbed`] drain stays as its differential oracle.
//!
//! Packets reach the NF through the ordinary [`Middlebox::process_burst`]
//! — each queue event becomes one `BurstEnv` drain of the verified
//! batch loop — so the event-driven driver changes *when* bursts run,
//! never *what* a burst does. `tests/queue_equivalence.rs` proves the
//! output byte-for-byte equivalent per flow to the sequential
//! single-queue driver, which stays in [`crate::harness`] as the
//! differential oracle.
//!
//! ## Ordering guarantees (and the shape of the equivalence proof)
//!
//! The driver preserves FIFO order *within* each ring and promises
//! nothing *across* rings. With `queues == shards` the RSS classifier
//! and the flow table's dispatch are the same function, so each queue
//! carries exactly one shard's subsequence and per-flow behaviour —
//! allocation order, ports, rewrites — is identical to sequential
//! processing. Two orderings are genuinely schedule-dependent, exactly
//! as on real multi-queue hardware: the interleaving of a shard's
//! *internal*-port and *external*-port rings (replies allocate
//! nothing, so only rejuvenation/LRU order — hence slot-*reuse* order
//! after an expiry wave — can differ), and, with `queues > shards`
//! (several queues nested per shard by the multiply-shift reduction),
//! the allocation order of same-shard flows arriving on different
//! queues; translation of *established* flows remains byte-identical
//! in every case. See `docs/ARCHITECTURE.md`.

use crate::backend::{PacketIo, SimBackend, TesterIo};
use crate::dpdk::{BufIdx, Mempool, MultiQueueDevice, PortStats, MBUF_SIZE};
use crate::frame_env::RssClassifier;
use crate::harness::LatencySamples;
use crate::middlebox::{Middlebox, ShardedVigNatMb, Verdict};
use crate::tester::FlowGen;
use libvig::time::Time;
use vig_packet::Direction;
use vig_spec::NatConfig;
use vignat::MAX_BURST;

/// One readiness event: RX queue `queue` of port `dir` holds frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueEvent {
    /// The port whose queue is ready.
    pub dir: Direction,
    /// The ready queue's index.
    pub queue: usize,
}

/// Counters the poller accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollerStats {
    /// Total poll calls.
    pub polls: u64,
    /// Total readiness events returned.
    pub events: u64,
    /// Polls that found no queue ready.
    pub idle_polls: u64,
    /// Virtual nanoseconds an idle driver would have slept, summed over
    /// idle polls (each idle poll contributes the current backoff).
    pub idle_backoff_ns: u64,
}

/// Level-triggered readiness over every RX queue of both ports, with
/// exponential idle backoff. See the module docs.
#[derive(Debug)]
pub struct Poller {
    backoff_min_ns: u64,
    backoff_max_ns: u64,
    cur_backoff_ns: u64,
    ready: Vec<QueueEvent>,
    stats: PollerStats,
}

impl Poller {
    /// Poller with the default idle backoff window (1 µs doubling to
    /// 128 µs — a poll-mode driver's typical pause ladder).
    pub fn new() -> Poller {
        Poller::with_backoff(1_000, 128_000)
    }

    /// Poller with an explicit idle-backoff window.
    pub fn with_backoff(min_ns: u64, max_ns: u64) -> Poller {
        assert!(min_ns > 0 && min_ns <= max_ns, "invalid backoff window");
        Poller {
            backoff_min_ns: min_ns,
            backoff_max_ns: max_ns,
            cur_backoff_ns: min_ns,
            ready: Vec::new(),
            stats: PollerStats::default(),
        }
    }

    /// Scan both ports' RX queues and record every non-empty one as a
    /// [`QueueEvent`] (readable via [`Poller::ready`]). Returns how
    /// many queues are ready. An empty scan advances the idle backoff
    /// (doubling up to the cap); any readiness resets it.
    pub fn poll(&mut self, int_dev: &MultiQueueDevice, ext_dev: &MultiQueueDevice) -> usize {
        self.poll_with(int_dev.queue_count(), |dir, q| match dir {
            Direction::Internal => int_dev.rx_len(q),
            Direction::External => ext_dev.rx_len(q),
        })
    }

    /// [`Poller::poll`] over any [`PacketIo`] backend: the identical
    /// level-triggered scan (internal port first, ascending queue
    /// index) against the backend's `rx_len` readiness signal.
    pub fn poll_io<B: PacketIo>(&mut self, io: &B) -> usize {
        self.poll_with(io.queue_count(), |dir, q| io.rx_len(dir, q))
    }

    /// The shared scan: `rx_len(dir, q)` over both ports × `queues`.
    fn poll_with(&mut self, queues: usize, rx_len: impl Fn(Direction, usize) -> usize) -> usize {
        self.ready.clear();
        for dir in [Direction::Internal, Direction::External] {
            for q in 0..queues {
                if rx_len(dir, q) > 0 {
                    self.ready.push(QueueEvent { dir, queue: q });
                }
            }
        }
        self.stats.polls += 1;
        self.stats.events += self.ready.len() as u64;
        if self.ready.is_empty() {
            self.stats.idle_polls += 1;
            self.stats.idle_backoff_ns += self.cur_backoff_ns;
            self.cur_backoff_ns = (self.cur_backoff_ns * 2).min(self.backoff_max_ns);
        } else {
            self.cur_backoff_ns = self.backoff_min_ns;
        }
        self.ready.len()
    }

    /// The events found by the last [`Poller::poll`].
    pub fn ready(&self) -> &[QueueEvent] {
        &self.ready
    }

    /// How long an idle driver would sleep before the next poll.
    pub fn current_backoff_ns(&self) -> u64 {
        self.cur_backoff_ns
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PollerStats {
        self.stats
    }
}

impl Default for Poller {
    fn default() -> Poller {
        Poller::new()
    }
}

/// Weighted round-robin over ready queues with per-queue burst budgets.
///
/// Queue `q` may take up to `weight[q] × quantum` frames per visit;
/// the visiting order rotates one position per scheduling round so no
/// queue index is structurally favoured. Weights default to 1 (plain
/// round-robin at `quantum`-frame budgets).
#[derive(Debug)]
pub struct Wrr {
    weights: Vec<usize>,
    quantum: usize,
    next: usize,
}

impl Wrr {
    /// Equal-weight round-robin over `queues` queues, `quantum` frames
    /// per visit.
    pub fn new(queues: usize, quantum: usize) -> Wrr {
        Wrr::weighted(vec![1; queues], quantum)
    }

    /// Weighted round-robin; `weights[q]` scales queue `q`'s budget.
    pub fn weighted(weights: Vec<usize>, quantum: usize) -> Wrr {
        assert!(!weights.is_empty(), "need at least one queue");
        assert!(quantum > 0, "budget quantum must be non-zero");
        assert!(
            weights.iter().all(|&w| w > 0),
            "zero-weight queues would starve"
        );
        Wrr {
            weights,
            quantum,
            next: 0,
        }
    }

    /// The frame budget of one visit to queue `q`.
    pub fn budget(&self, q: usize) -> usize {
        self.weights[q] * self.quantum
    }

    /// Start offset for this scheduling round's sweep over `n_ready`
    /// ready queues (rotates every round).
    fn rotation(&mut self, n_ready: usize) -> usize {
        let r = self.next % n_ready.max(1);
        self.next = self.next.wrapping_add(1);
        r
    }
}

/// What one event-driven drain did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Frames forwarded.
    pub forwarded: u64,
    /// Frames dropped by the NF.
    pub dropped: u64,
    /// Queue-event bursts processed.
    pub bursts: u64,
    /// Poll rounds taken (including the final empty one).
    pub polls: u64,
    /// Forwarded frames dropped at TX because the ring stayed full
    /// through the bounded flush-and-retry budget — a real overrun
    /// (forced or organic), accounted instead of stalling or panicking.
    /// Zero on every loss-free path, so equality comparisons against
    /// pre-fault-layer expectations are unchanged.
    pub tx_dropped: u64,
    /// Wall-clock nanoseconds of the drain loop (the timed region the
    /// throughput measurements use).
    pub elapsed_ns: u64,
}

/// Flush-and-retry attempts [`BackendDriver`] makes before it drops a
/// frame whose TX ring stays full ([`DrainStats::tx_dropped`]): enough
/// to ride out a transient `ENOBUFS` burst shorter than the budget,
/// bounded so a wedged ring degrades to accounted loss, never an
/// unbounded stall.
pub const TX_RETRY_BUDGET: usize = 4;

/// The reusable event-driven driver state: poller + scheduler + batch
/// scratch. One `EventLoop` drives one NF across many drains; nothing
/// in it allocates on the steady-state path.
#[derive(Debug)]
pub struct EventLoop {
    poller: Poller,
    wrr: Wrr,
    batch: Vec<BufIdx>,
}

impl EventLoop {
    /// Equal-weight driver for `queues` queues with [`MAX_BURST`]-frame
    /// budgets — the default configuration every harness entry point
    /// uses.
    pub fn new(queues: usize) -> EventLoop {
        EventLoop::with_parts(Poller::new(), Wrr::new(queues, MAX_BURST))
    }

    /// Driver from explicit poller/scheduler parts (tests use skewed
    /// weights and tight backoff windows).
    pub fn with_parts(poller: Poller, wrr: Wrr) -> EventLoop {
        let cap = wrr
            .weights
            .iter()
            .map(|&w| w * wrr.quantum)
            .max()
            .unwrap_or(MAX_BURST);
        EventLoop {
            poller,
            wrr,
            batch: Vec::with_capacity(cap),
        }
    }

    /// The poller (stats and backoff inspection).
    pub fn poller(&self) -> &Poller {
        &self.poller
    }
}

/// One transmitted frame as the driver saw it leave: which port, which
/// TX queue, and the rewritten bytes — the unit of the tx-trace
/// conformance proofs (and the artifact the CI OS-backend job uploads
/// on failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxRecord {
    /// The port the frame left on.
    pub out: Direction,
    /// The TX queue it was placed on (the carrying RX queue's index).
    pub queue: usize,
    /// The frame bytes after the NAT's rewrite.
    pub frame: Vec<u8>,
}

/// The backend-generic event-driven driver: the same poll → WRR →
/// budgeted-burst → verified-batch-loop drain as
/// [`MultiQueueTestbed::drain_event_driven`], written once over
/// [`PacketIo`] so it runs identically on the simulated NIC model and
/// on real OS packet I/O. `tests/backend_conformance.rs` proves the
/// [`SimBackend`] instantiation byte-for-byte equivalent to the legacy
/// testbed, which stays as the differential oracle.
pub struct BackendDriver<B: PacketIo> {
    io: B,
    ev: EventLoop,
    tx_log: Option<Vec<TxRecord>>,
}

impl<B: PacketIo> BackendDriver<B> {
    /// Driver over `io` with the default equal-weight event loop
    /// ([`MAX_BURST`]-frame budgets).
    pub fn new(io: B) -> BackendDriver<B> {
        let queues = io.queue_count();
        BackendDriver::with_event_loop(io, EventLoop::new(queues))
    }

    /// Driver from an explicit event loop (skewed weights, tight
    /// backoff windows).
    pub fn with_event_loop(io: B, ev: EventLoop) -> BackendDriver<B> {
        BackendDriver {
            io,
            ev,
            tx_log: None,
        }
    }

    /// The backend (stats, tester-side access).
    pub fn io(&self) -> &B {
        &self.io
    }

    /// Mutable backend access (tester-side staging between drains).
    pub fn io_mut(&mut self) -> &mut B {
        &mut self.io
    }

    /// The event loop (poller stats, backoff inspection).
    pub fn event_loop(&self) -> &EventLoop {
        &self.ev
    }

    /// Unwrap the driver, returning the backend — so a measurement run
    /// can read backend counters (kernel drops, tx errors) that must
    /// outlive the drive loop.
    pub fn into_io(self) -> B {
        self.io
    }

    /// Record every forwarded frame as a [`TxRecord`] (conformance
    /// traces). Off by default — the steady-state path allocates
    /// nothing.
    pub fn set_tx_log(&mut self, on: bool) {
        self.tx_log = if on { Some(Vec::new()) } else { None };
    }

    /// Take the recorded tx trace (see [`BackendDriver::set_tx_log`]).
    pub fn take_tx_log(&mut self) -> Vec<TxRecord> {
        self.tx_log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// One service round: pump the backend's RX path, poll, and visit
    /// every ready queue once in WRR order, draining each visit's
    /// budgeted burst through [`Middlebox::process_burst`]. Returns
    /// how many queues were ready (0 = idle round).
    fn service_round(
        &mut self,
        nf: &mut dyn Middlebox,
        now: Time,
        stats: &mut DrainStats,
    ) -> usize {
        stats.polls += 1;
        self.io.pump_rx();
        let n_ready = self.ev.poller.poll_io(&self.io);
        if n_ready == 0 {
            return 0;
        }
        let start = self.ev.wrr.rotation(n_ready);
        for k in 0..n_ready {
            let event = self.ev.poller.ready[(start + k) % n_ready];
            let budget = self.ev.wrr.budget(event.queue);
            self.ev.batch.clear();
            if self
                .io
                .rx_burst(event.dir, event.queue, budget, &mut self.ev.batch)
                == 0
            {
                continue;
            }
            stats.bursts += 1;
            let verdicts = nf.process_burst(event.dir, self.io.pool_mut(), &self.ev.batch, now);
            debug_assert_eq!(verdicts.len(), self.ev.batch.len());
            for (&buf, v) in self.ev.batch.iter().zip(&verdicts) {
                match v {
                    Verdict::Forward(out) => {
                        // Capture trace bytes before the put (the mmap
                        // backend reclaims the buffer on success), but
                        // commit the record only if the frame left: a
                        // TX-dropped frame is accounted, not traced.
                        let trace = self.tx_log.as_ref().map(|_| TxRecord {
                            out: *out,
                            queue: event.queue,
                            frame: self.io.pool().frame(buf).to_vec(),
                        });
                        // A full TX queue mid-drain happens on a live
                        // backend (pump_rx refills RX between rounds
                        // faster than flush_tx runs) or under an
                        // injected overrun: flush and retry up to the
                        // budget, then drop with accounting — bounded
                        // degradation, never a stall or a panic. On the
                        // sim backend flush is a no-op and the legacy
                        // testbed's sizing invariant makes the first
                        // put succeed, so equivalence is untouched.
                        let mut sent = self.io.tx_put(*out, event.queue, buf);
                        for _ in 0..TX_RETRY_BUDGET {
                            if sent {
                                break;
                            }
                            self.io.flush_tx();
                            sent = self.io.tx_put(*out, event.queue, buf);
                        }
                        if sent {
                            if let (Some(log), Some(rec)) = (&mut self.tx_log, trace) {
                                log.push(rec);
                            }
                            stats.forwarded += 1;
                        } else {
                            self.io.pool_mut().put(buf);
                            stats.tx_dropped += 1;
                        }
                    }
                    Verdict::Drop => {
                        self.io.pool_mut().put(buf);
                        stats.dropped += 1;
                    }
                }
            }
        }
        n_ready
    }

    /// Drain until idle: service rounds until a poll finds no queue
    /// ready, then flush TX to the backend's outside world. The exact
    /// loop of [`MultiQueueTestbed::drain_event_driven`], including its
    /// statistics semantics (the final empty poll is counted).
    pub fn drain(&mut self, nf: &mut dyn Middlebox, now: Time) -> DrainStats {
        let mut stats = DrainStats::default();
        let t0 = std::time::Instant::now();
        while self.service_round(nf, now, &mut stats) > 0 {}
        self.io.flush_tx();
        stats.elapsed_ns = t0.elapsed().as_nanos() as u64;
        stats
    }

    /// One service round + TX flush — the building block of a *live*
    /// loop, which re-reads its clock between rounds and sleeps the
    /// poller's current backoff when a round reports idle (see
    /// `examples/live_nat.rs`).
    pub fn service_once(&mut self, nf: &mut dyn Middlebox, now: Time) -> DrainStats {
        let mut stats = DrainStats::default();
        let t0 = std::time::Instant::now();
        self.service_round(nf, now, &mut stats);
        self.io.flush_tx();
        stats.elapsed_ns = t0.elapsed().as_nanos() as u64;
        stats
    }

    /// How long a live loop should sleep after an idle round.
    pub fn current_backoff_ns(&self) -> u64 {
        self.ev.poller.current_backoff_ns()
    }
}

/// The two-port multi-queue testbed: one mempool, two
/// [`MultiQueueDevice`]s, and the RSS classifier applied tester-side.
/// The multi-queue analog of [`crate::harness::Testbed`].
pub struct MultiQueueTestbed {
    pool: Mempool,
    int_dev: MultiQueueDevice,
    ext_dev: MultiQueueDevice,
    classifier: RssClassifier,
    scratch: Box<[u8; MBUF_SIZE]>,
}

impl MultiQueueTestbed {
    /// Testbed whose ports have one RX/TX ring pair of `ring_size`
    /// descriptors per classifier queue. The pool holds four rings'
    /// worth of buffers per queue, like the single-queue testbed.
    pub fn new(classifier: RssClassifier, ring_size: usize) -> MultiQueueTestbed {
        let queues = classifier.queue_count();
        MultiQueueTestbed {
            pool: Mempool::new(queues * ring_size * 4),
            int_dev: MultiQueueDevice::new(queues, ring_size),
            ext_dev: MultiQueueDevice::new(queues, ring_size),
            classifier,
            scratch: Box::new([0u8; MBUF_SIZE]),
        }
    }

    fn dev(&mut self, d: Direction) -> &mut MultiQueueDevice {
        match d {
            Direction::Internal => &mut self.int_dev,
            Direction::External => &mut self.ext_dev,
        }
    }

    /// The classifier steering this testbed's traffic.
    pub fn classifier(&self) -> RssClassifier {
        self.classifier
    }

    /// Queues per port.
    pub fn queue_count(&self) -> usize {
        self.int_dev.queue_count()
    }

    /// Buffers currently free in the pool (leak checks).
    pub fn pool_available(&self) -> usize {
        self.pool.available()
    }

    /// Queue `q`'s counters on port `dir`.
    pub fn queue_stats(&self, dir: Direction, q: usize) -> PortStats {
        match dir {
            Direction::Internal => self.int_dev.queue_stats(q),
            Direction::External => self.ext_dev.queue_stats(q),
        }
    }

    /// Port-wide counters (sum over queues).
    pub fn port_stats(&self, dir: Direction) -> PortStats {
        match dir {
            Direction::Internal => self.int_dev.port_stats(),
            Direction::External => self.ext_dev.port_stats(),
        }
    }

    /// Tester-side: write a frame, classify it (the NIC hash unit's
    /// step), and offer it to the chosen RX queue. Returns the queue it
    /// landed in, or `None` when that queue's ring (or the pool) is
    /// full — in which case the drop is counted in that queue's stats
    /// and nothing else changes.
    pub fn offer(
        &mut self,
        dir: Direction,
        fields_writer: impl FnOnce(&mut [u8]) -> usize,
    ) -> Option<usize> {
        let len = fields_writer(&mut self.scratch[..]);
        let q = self.classifier.queue_of(dir, &self.scratch[..len]);
        let Some(buf) = self.pool.get() else {
            // Pool exhaustion manifests as an RX drop on the queue the
            // frame would have entered (a NIC out of descriptors).
            self.dev(dir).note_rx_drop(q);
            return None;
        };
        self.pool.write_frame(buf, &self.scratch[..len]);
        if self.dev(dir).offer_to(q, buf) {
            Some(q)
        } else {
            self.pool.put(buf);
            None
        }
    }

    /// The event-driven drain: poll for ready queues, visit them in
    /// weighted round-robin order, and run each visit's budgeted burst
    /// through [`Middlebox::process_burst`] — one queue event, one
    /// `BurstEnv` drain of the verified batch loop. Loops until no
    /// queue is ready. Forwarded frames go out on the destination
    /// port's TX queue of the same index (a run-to-completion core owns
    /// its queue pair). Returns the drain's statistics; transmitted
    /// frames stay queued until [`MultiQueueTestbed::collect_tx`].
    pub fn drain_event_driven(
        &mut self,
        nf: &mut dyn Middlebox,
        now: Time,
        ev: &mut EventLoop,
    ) -> DrainStats {
        let mut stats = DrainStats::default();
        let t0 = std::time::Instant::now();
        loop {
            stats.polls += 1;
            let n_ready = ev.poller.poll(&self.int_dev, &self.ext_dev);
            if n_ready == 0 {
                break;
            }
            let start = ev.wrr.rotation(n_ready);
            for k in 0..n_ready {
                let event = ev.poller.ready[(start + k) % n_ready];
                let budget = ev.wrr.budget(event.queue);
                ev.batch.clear();
                if self
                    .dev(event.dir)
                    .rx_burst(event.queue, budget, &mut ev.batch)
                    == 0
                {
                    continue;
                }
                stats.bursts += 1;
                let verdicts = nf.process_burst(event.dir, &mut self.pool, &ev.batch, now);
                debug_assert_eq!(verdicts.len(), ev.batch.len());
                for (&buf, v) in ev.batch.iter().zip(&verdicts) {
                    match v {
                        Verdict::Forward(out) => {
                            let bytes = self.pool.frame(buf).len();
                            assert!(
                                self.dev(*out).tx_put(event.queue, buf, bytes),
                                "tx ring sized for a ring's worth of bursts"
                            );
                            stats.forwarded += 1;
                        }
                        Verdict::Drop => {
                            self.pool.put(buf);
                            stats.dropped += 1;
                        }
                    }
                }
            }
        }
        stats.elapsed_ns = t0.elapsed().as_nanos() as u64;
        stats
    }

    /// The lockstep oracle drain: visit every queue of both ports in
    /// fixed ascending order and drain each *fully* (in
    /// [`MAX_BURST`]-frame chunks) before moving on — the sequential
    /// interleaving the event-driven drain is differentially tested
    /// against. Returns `(forwarded, dropped)`.
    pub fn drain_sequential(&mut self, nf: &mut dyn Middlebox, now: Time) -> (u64, u64) {
        let mut forwarded = 0u64;
        let mut dropped = 0u64;
        let mut batch: Vec<BufIdx> = Vec::with_capacity(MAX_BURST);
        for dir in [Direction::Internal, Direction::External] {
            for q in 0..self.queue_count() {
                loop {
                    batch.clear();
                    if self.dev(dir).rx_burst(q, MAX_BURST, &mut batch) == 0 {
                        break;
                    }
                    let verdicts = nf.process_burst(dir, &mut self.pool, &batch, now);
                    for (&buf, v) in batch.iter().zip(&verdicts) {
                        match v {
                            Verdict::Forward(out) => {
                                let bytes = self.pool.frame(buf).len();
                                assert!(
                                    self.dev(*out).tx_put(q, buf, bytes),
                                    "tx ring holds the queue"
                                );
                                forwarded += 1;
                            }
                            Verdict::Drop => {
                                self.pool.put(buf);
                                dropped += 1;
                            }
                        }
                    }
                }
            }
        }
        (forwarded, dropped)
    }

    /// Tester-side: collect every transmitted frame from port `dir`'s
    /// TX queues (queue order, FIFO within a queue), reclaiming the
    /// buffers. Returns `(tx_queue, frame bytes)` pairs.
    pub fn collect_tx(&mut self, dir: Direction) -> Vec<(usize, Vec<u8>)> {
        let mut out = Vec::new();
        for q in 0..self.queue_count() {
            while let Some(buf) = self.dev(dir).tx_take(q) {
                out.push((q, self.pool.frame(buf).to_vec()));
                self.pool.put(buf);
            }
        }
        out
    }
}

/// Steady-state per-packet service times through the event-driven
/// multi-queue path — the multi-queue analog of
/// [`crate::harness::steady_state_service_times_batched`]: an N-shard
/// NAT behind a `queues`-queue classifier, all-hit workload, 64-frame
/// rounds staged across queues by RSS and drained event-driven. Each
/// packet is assigned its round's mean (burst-granularity timing, as
/// everywhere in the harness).
pub fn event_driven_service_times(
    cfg: &NatConfig,
    queues: usize,
    shards: usize,
    flows: usize,
    packets: usize,
    texp_ns: u64,
    ring_cap: usize,
) -> LatencySamples {
    let mut nf = ShardedVigNatMb::sharded(*cfg, shards);
    let io = SimBackend::new(RssClassifier::for_nat(cfg, queues), ring_cap);
    event_driven_service_times_on(io, &mut nf, flows, packets, texp_ns)
}

/// Drain until `staged` frames of the current round have been
/// processed (forwarded or dropped). One pass on a synchronous
/// backend — the sim stages straight into the FIFOs, so the first
/// drain handles everything and the loop exits without re-polling.
/// On an asynchronous rig (the veth `OsTestRig`, where `stage` is a
/// wire send) the kernel may deliver after the first poll, so keep
/// draining until the frames show up, bounded by a generous
/// real-time deadline. Statistics accumulate across passes.
fn drain_staged<B: PacketIo>(
    drv: &mut BackendDriver<B>,
    nf: &mut dyn Middlebox,
    now: Time,
    staged: u64,
) -> DrainStats {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let mut total = DrainStats::default();
    loop {
        let s = drv.drain(nf, now);
        total.forwarded += s.forwarded;
        total.dropped += s.dropped;
        total.bursts += s.bursts;
        total.polls += s.polls;
        total.elapsed_ns += s.elapsed_ns;
        if total.forwarded + total.dropped >= staged || std::time::Instant::now() >= deadline {
            return total;
        }
        std::thread::yield_now();
    }
}

/// The backend-generic measurement loop behind
/// [`event_driven_service_times`]: populate, then timed all-hit rounds,
/// staged through [`TesterIo`] and drained by [`BackendDriver`] — so
/// the identical RFC 2544 methodology runs over the simulated NIC
/// model or, via the veth test rig, over real OS packet I/O (rounds
/// pace themselves on actual delivery — one drain pass on a
/// synchronous backend, re-draining until the staged frames arrive on
/// an asynchronous one — and a rig's interfaces should be quiesced
/// the way `backend::os::VethPair::create` leaves them, so no kernel
/// noise lands in the timed region).
pub fn event_driven_service_times_on<B: TesterIo>(
    io: B,
    nf: &mut dyn Middlebox,
    flows: usize,
    packets: usize,
    texp_ns: u64,
) -> LatencySamples {
    event_driven_service_times_io(io, nf, flows, packets, texp_ns).0
}

/// [`event_driven_service_times_on`] with the flow universe made
/// explicit — the scenario matrix sweeps mixed TCP/UDP universes
/// ([`FlowGen::mixed`]) through the identical measurement loop, so a
/// protocol-mix axis changes only the workload, never the methodology.
pub fn event_driven_service_times_gen<B: TesterIo>(
    io: B,
    nf: &mut dyn Middlebox,
    gen: &FlowGen,
    flows: usize,
    packets: usize,
    texp_ns: u64,
) -> LatencySamples {
    event_driven_service_times_io_gen(io, nf, gen, flows, packets, texp_ns).0
}

/// [`event_driven_service_times_on`], but hand the backend back with
/// the samples — the cross-wire RFC 2544 harness reads its honesty
/// counters (kernel drops, tx errors) after the measurement.
pub fn event_driven_service_times_io<B: TesterIo>(
    io: B,
    nf: &mut dyn Middlebox,
    flows: usize,
    packets: usize,
    texp_ns: u64,
) -> (LatencySamples, B) {
    let gen = FlowGen::new(vig_packet::Proto::Udp);
    event_driven_service_times_io_gen(io, nf, &gen, flows, packets, texp_ns)
}

/// The common body behind [`event_driven_service_times_io`] and
/// [`event_driven_service_times_gen`]: populate `flows` flows from
/// `gen`'s universe, then timed all-hit rounds.
fn event_driven_service_times_io_gen<B: TesterIo>(
    io: B,
    nf: &mut dyn Middlebox,
    gen: &FlowGen,
    flows: usize,
    packets: usize,
    texp_ns: u64,
) -> (LatencySamples, B) {
    const ROUND: usize = 64;
    let mut drv = BackendDriver::new(io);
    let mut now = Time::from_secs(1);

    // Populate (untimed): establish every flow.
    for chunk in (0..flows as u32).collect::<Vec<_>>().chunks(ROUND) {
        now = now.plus(1_000);
        for &i in chunk {
            let f = gen.background(i);
            let accepted = drv
                .io_mut()
                .stage(Direction::Internal, |b| gen.write_frame(&f, b));
            assert!(accepted.is_some(), "populate must not overflow");
        }
        drain_staged(&mut drv, nf, now, chunk.len() as u64);
        let _ = drv.io_mut().reap(Direction::External);
    }

    // Timed all-hit rounds; clock advances slowly enough that no flow
    // expires (same construction as the single-queue harness).
    let rounds_estimate = packets.div_ceil(ROUND) as u64;
    let step = (texp_ns / 4) / (rounds_estimate * 8 + 1);
    let mut samples = Vec::with_capacity(packets);
    let mut next_flow = 0u32;
    while samples.len() < packets {
        now = now.plus(step.max(1));
        let mut staged = 0usize;
        for k in 0..ROUND {
            let f = gen.background((next_flow + k as u32) % flows as u32);
            if drv
                .io_mut()
                .stage(Direction::Internal, |b| gen.write_frame(&f, b))
                .is_some()
            {
                staged += 1;
            }
        }
        next_flow = (next_flow + ROUND as u32) % flows as u32;
        let stats = drain_staged(&mut drv, nf, now, staged as u64);
        debug_assert_eq!(stats.dropped, 0, "steady state must be all hits");
        let _ = drv.io_mut().reap(Direction::External);
        debug_assert!(staged > 0);
        let per_packet = stats.elapsed_ns / staged as u64;
        samples.extend(std::iter::repeat_n(per_packet.max(1), staged));
    }
    samples.truncate(packets);
    (LatencySamples { ns: samples }, drv.into_io())
}

/// Sustained-load service times: keep a window of frames in flight and
/// drain continuously, instead of offering 64-frame bursts and waiting
/// for each to fully drain.
///
/// The round-based loop above is the right shape for the simulated
/// backend (stage and delivery are synchronous), but it measures a
/// *batching transport* at its worst: on the `TPACKET_V3` block ring
/// the kernel hands a block to user space when it fills **or** when
/// the millisecond-granular retire timer fires, so a 64-frame burst
/// that never fills a block pays the retire latency every round —
/// a latency artifact of pausing the offered load, not a throughput
/// limit. RFC 2544 saturation is a sustained-rate question, so the
/// cross-wire comparison offers sustained load: stage until `window`
/// frames are in flight, drain what has arrived (empty drain passes
/// are *not* discarded — their time is carried into the next
/// productive drain, so wire stalls stay in the measurement), reap,
/// top the window back up. All three transports (sim, per-frame,
/// mmap) are measured by this same loop.
///
/// `window` should exceed the mmap RX block capacity in frames (so the
/// in-flight traffic keeps filling blocks) and stay within the
/// per-queue FIFO capacity (so admission never drops in steady state).
/// The ring size is a good default.
pub fn sustained_service_times_io<B: TesterIo>(
    io: B,
    nf: &mut dyn Middlebox,
    flows: usize,
    packets: usize,
    window: usize,
    texp_ns: u64,
) -> (LatencySamples, B) {
    const ROUND: usize = 64;
    let mut drv = BackendDriver::new(io);
    let gen = FlowGen::new(vig_packet::Proto::Udp);
    let mut now = Time::from_secs(1);

    // Populate (untimed): establish every flow, in paced bursts.
    for chunk in (0..flows as u32).collect::<Vec<_>>().chunks(ROUND) {
        now = now.plus(1_000);
        for &i in chunk {
            let f = gen.background(i);
            let accepted = drv
                .io_mut()
                .stage(Direction::Internal, |b| gen.write_frame(&f, b));
            assert!(accepted.is_some(), "populate must not overflow");
        }
        drain_staged(&mut drv, nf, now, chunk.len() as u64);
        let _ = drv.io_mut().reap(Direction::External);
    }

    // Timed sustained phase. The virtual clock advances slowly enough
    // that no flow expires across the whole run.
    let step = (texp_ns / 4) / (packets as u64 * 4 + 1);
    let mut samples = Vec::with_capacity(packets);
    let mut staged_total = 0usize;
    let mut done = 0usize;
    let mut next_flow = 0u32;
    // Time spent in drains that found nothing ready (frames still on
    // the wire / in a kernel block): attributed to the packets the
    // next productive drain delivers.
    let mut carried_idle_ns = 0u64;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    // Top up with hysteresis: refill only once half the window has
    // drained, so every stage burst is at least `window / 2` frames.
    // A trickle that replaces exactly what completed tends to align
    // with the mmap ring's block capacity and leaves the tail of each
    // burst parked in a partial block until the retire timer fires;
    // bursts of half a window always cross block boundaries.
    let chunk = (window / 2).max(1);
    while done < packets {
        if staged_total - done <= window - chunk {
            while staged_total - done < window {
                let f = gen.background(next_flow % flows as u32);
                if drv
                    .io_mut()
                    .stage(Direction::Internal, |b| gen.write_frame(&f, b))
                    .is_none()
                {
                    break; // FIFO pushback: stop topping up, drain first
                }
                next_flow = next_flow.wrapping_add(1);
                staged_total += 1;
            }
        }
        now = now.plus(step.max(1));
        let stats = drv.drain(nf, now);
        debug_assert_eq!(stats.dropped, 0, "steady state must be all hits");
        let processed = stats.forwarded as usize;
        if processed > 0 {
            done += processed;
            let per_packet = ((stats.elapsed_ns + carried_idle_ns) / processed as u64).max(1);
            carried_idle_ns = 0;
            samples.extend(std::iter::repeat_n(per_packet, processed));
        } else {
            carried_idle_ns += stats.elapsed_ns;
            std::thread::yield_now();
        }
        let _ = drv.io_mut().reap(Direction::External);
        assert!(
            std::time::Instant::now() < deadline,
            "sustained run stalled: {done}/{packets} packets after 60s"
        );
    }
    samples.truncate(packets);
    (LatencySamples { ns: samples }, drv.into_io())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middlebox::VigNatMb;
    use vig_packet::{Ip4, Proto};

    fn cfg(cap: usize) -> NatConfig {
        NatConfig {
            capacity: cap,
            expiry_ns: Time::from_secs(60).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1,
            ..NatConfig::paper_default()
        }
    }

    #[test]
    fn poller_reports_readiness_and_backs_off_when_idle() {
        let int_dev = MultiQueueDevice::new(2, 4);
        let ext_dev = MultiQueueDevice::new(2, 4);
        let mut p = Poller::with_backoff(100, 800);
        // Idle polls double the backoff up to the cap.
        assert_eq!(p.poll(&int_dev, &ext_dev), 0);
        assert_eq!(p.current_backoff_ns(), 200);
        assert_eq!(p.poll(&int_dev, &ext_dev), 0);
        assert_eq!(p.poll(&int_dev, &ext_dev), 0);
        assert_eq!(p.poll(&int_dev, &ext_dev), 0);
        assert_eq!(p.current_backoff_ns(), 800, "capped");
        assert_eq!(p.stats().idle_polls, 4);
        assert!(p.stats().idle_backoff_ns >= 100 + 200 + 400 + 800);

        // Readiness resets the backoff and reports the exact queue.
        let mut int_dev = int_dev;
        int_dev.offer_to(1, BufIdx(0));
        assert_eq!(p.poll(&int_dev, &ext_dev), 1);
        assert_eq!(
            p.ready(),
            &[QueueEvent {
                dir: Direction::Internal,
                queue: 1
            }]
        );
        assert_eq!(p.current_backoff_ns(), 100);
    }

    #[test]
    fn wrr_budgets_scale_with_weights() {
        let w = Wrr::weighted(vec![1, 3, 2], 8);
        assert_eq!(w.budget(0), 8);
        assert_eq!(w.budget(1), 24);
        assert_eq!(w.budget(2), 16);
    }

    #[test]
    fn event_driven_drain_translates_and_reclaims_buffers() {
        let c = cfg(256);
        let mut nf = ShardedVigNatMb::sharded(c, 2);
        let mut tb = MultiQueueTestbed::new(RssClassifier::for_nat(&c, 4), 64);
        let mut ev = EventLoop::new(4);
        let gen = FlowGen::new(Proto::Udp);
        let before = tb.pool_available();
        for i in 0..48u32 {
            let f = gen.background(i);
            assert!(tb
                .offer(Direction::Internal, |b| gen.write_frame(&f, b))
                .is_some());
        }
        let stats = tb.drain_event_driven(&mut nf, Time::from_secs(1), &mut ev);
        assert_eq!(stats.forwarded, 48);
        assert_eq!(stats.dropped, 0);
        assert!(stats.bursts >= 1);
        let tx = tb.collect_tx(Direction::External);
        assert_eq!(tx.len(), 48);
        // Every output frame carries the external ip, and the port it
        // was allocated lives in the same *shard* group as the queue
        // that carried it (4 queues nest pairwise inside 2 shards; the
        // port's exact queue within the group depends on allocation
        // order, not on the hash's finer bits).
        for (q, frame) in &tx {
            let (_, ff) = vig_packet::parse_l3l4(frame).unwrap();
            assert_eq!(ff.src_ip, Ip4::new(10, 1, 0, 1));
            let port_q = tb
                .classifier()
                .queue_of_port(ff.src_port)
                .expect("allocated port is in range");
            assert_eq!(
                port_q * 2 / 4,
                q * 2 / 4,
                "port's queue group must nest in the carrying queue's shard"
            );
        }
        assert_eq!(tb.pool_available(), before, "no buffer leaks");
        assert_eq!(nf.occupancy(), 48);
    }

    #[test]
    fn wrr_budget_interleaves_deep_and_shallow_queues() {
        // One deep queue must not be drained to completion before a
        // shallow sibling gets service: with budget 8, the deep queue
        // needs several visits, and each poll round visits every ready
        // queue once.
        let c = cfg(256);
        let mut nf = VigNatMb::new(c);
        let mut tb = MultiQueueTestbed::new(RssClassifier::for_nat(&c, 2), 64);
        let mut ev = EventLoop::with_parts(Poller::new(), Wrr::new(2, 8));
        let gen = FlowGen::new(Proto::Udp);
        // Find flows for each queue.
        let mut by_queue: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
        let mut buf = [0u8; MBUF_SIZE];
        for i in 0..512u32 {
            let f = gen.background(i);
            let n = gen.write_frame(&f, &mut buf);
            let q = tb.classifier().queue_of(Direction::Internal, &buf[..n]);
            by_queue[q].push(i);
        }
        // 40 frames into queue 0's flows, 8 into queue 1's.
        for k in 0..40 {
            let f = gen.background(by_queue[0][k % by_queue[0].len()]);
            assert!(tb
                .offer(Direction::Internal, |b| gen.write_frame(&f, b))
                .is_some());
        }
        for k in 0..8 {
            let f = gen.background(by_queue[1][k % by_queue[1].len()]);
            assert!(tb
                .offer(Direction::Internal, |b| gen.write_frame(&f, b))
                .is_some());
        }
        let stats = tb.drain_event_driven(&mut nf, Time::from_secs(1), &mut ev);
        assert_eq!(stats.forwarded, 48);
        // Deep queue: ceil(40/8) = 5 visits; shallow: 1. Plus the final
        // empty poll. Multiple poll rounds prove the interleaving.
        assert!(stats.bursts >= 6, "budgeted visits, not full drains");
        assert!(
            stats.polls >= 5,
            "deep queue re-polls while shallow is done"
        );
        let _ = tb.collect_tx(Direction::External);
    }

    #[test]
    fn sequential_oracle_matches_event_driven_on_totals() {
        let c = cfg(128);
        let gen = FlowGen::new(Proto::Udp);
        let mk = |tb: &mut MultiQueueTestbed| {
            for i in 0..32u32 {
                let f = gen.background(i);
                assert!(tb
                    .offer(Direction::Internal, |b| gen.write_frame(&f, b))
                    .is_some());
            }
        };
        let mut a = MultiQueueTestbed::new(RssClassifier::for_nat(&c, 2), 64);
        let mut b = MultiQueueTestbed::new(RssClassifier::for_nat(&c, 2), 64);
        mk(&mut a);
        mk(&mut b);
        let mut nf_a = ShardedVigNatMb::sharded(c, 2);
        let mut nf_b = ShardedVigNatMb::sharded(c, 2);
        let mut ev = EventLoop::new(2);
        let s = a.drain_event_driven(&mut nf_a, Time::from_secs(1), &mut ev);
        let (fwd, drop) = b.drain_sequential(&mut nf_b, Time::from_secs(1));
        assert_eq!((s.forwarded, s.dropped), (fwd, drop));
        assert_eq!(nf_a.occupancy(), nf_b.occupancy());
        let _ = (
            a.collect_tx(Direction::External),
            b.collect_tx(Direction::External),
        );
    }

    #[test]
    fn event_driven_steady_state_is_all_hits() {
        let s =
            event_driven_service_times(&cfg(1024), 2, 2, 64, 500, Time::from_secs(60).nanos(), 64);
        assert_eq!(s.ns.len(), 500);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn backend_driver_over_sim_translates_and_reclaims_buffers() {
        // The generic driver over SimBackend behaves like the legacy
        // testbed drain on the same workload (the full byte-for-byte
        // differential lives in tests/backend_conformance.rs).
        let c = cfg(256);
        let mut nf = ShardedVigNatMb::sharded(c, 2);
        let mut drv = BackendDriver::new(SimBackend::new(RssClassifier::for_nat(&c, 4), 64));
        drv.set_tx_log(true);
        let gen = FlowGen::new(Proto::Udp);
        let before = drv.io().pool_available();
        for i in 0..48u32 {
            let f = gen.background(i);
            assert!(drv
                .io_mut()
                .stage(Direction::Internal, |b| gen.write_frame(&f, b))
                .is_some());
        }
        let stats = drv.drain(&mut nf, Time::from_secs(1));
        assert_eq!((stats.forwarded, stats.dropped), (48, 0));
        let log = drv.take_tx_log();
        assert_eq!(log.len(), 48);
        assert!(log.iter().all(|r| r.out == Direction::External));
        let tx = drv.io_mut().reap(Direction::External);
        assert_eq!(tx.len(), 48);
        // The tx log records the same frames the backend transmitted
        // (reap returns queue order; the log is drain order — compare
        // as multisets of (queue, bytes)).
        let mut logged: Vec<(usize, Vec<u8>)> =
            log.into_iter().map(|r| (r.queue, r.frame)).collect();
        let mut reaped = tx;
        logged.sort();
        reaped.sort();
        assert_eq!(logged, reaped);
        assert_eq!(drv.io().pool_available(), before, "no buffer leaks");
        assert_eq!(nf.occupancy(), 48);
    }

    #[test]
    fn service_once_does_one_round_and_reports_idle() {
        let c = cfg(64);
        let mut nf = ShardedVigNatMb::sharded(c, 2);
        let mut drv = BackendDriver::new(SimBackend::new(RssClassifier::for_nat(&c, 2), 64));
        let idle = drv.service_once(&mut nf, Time::from_secs(1));
        assert_eq!((idle.forwarded, idle.bursts, idle.polls), (0, 0, 1));
        assert!(drv.current_backoff_ns() > 0);
        let gen = FlowGen::new(Proto::Udp);
        let f = gen.background(7);
        assert!(drv
            .io_mut()
            .stage(Direction::Internal, |b| gen.write_frame(&f, b))
            .is_some());
        let busy = drv.service_once(&mut nf, Time::from_secs(1));
        assert_eq!((busy.forwarded, busy.bursts), (1, 1));
        let _ = drv.io_mut().reap(Direction::External);
    }
}
