//! The RFC 2544 measurement harness (paper §6, Fig. 11's methodology).
//!
//! Two experiment drivers reproduce the paper's figures:
//!
//! * [`probe_latency`] — Fig. 12/13: measure per-packet middlebox
//!   residence time of *probe* packets (worst case: flow-table miss,
//!   expiry work, allocation) while N background flows occupy the
//!   table;
//! * [`throughput_search`] — Fig. 14: the RFC 2544 loss-bounded maximum
//!   throughput — measure the NF's per-packet service times on the
//!   steady-state (all-hits) workload, then binary-search the highest
//!   offered rate whose queue simulation loses ≤ 0.1% of packets at the
//!   device's RX-ring depth.
//!
//! Every frame goes through the same mempool→RX-ring→NF→TX-ring→mempool
//! transaction ([`Testbed::shoot`]), so ring and buffer costs are inside
//! the measurement uniformly for every NF — mirroring how every paper NF
//! pays the same DPDK rx/tx cost.

use crate::dpdk::MBUF_SIZE;
use crate::dpdk::{Device, Mempool};
use crate::middlebox::{Middlebox, Verdict};
use crate::tester::{FlowGen, WorkloadMix};
use libvig::time::Time;
use vig_packet::Direction;

/// Callback that inspects an output frame after transmission.
pub type InspectFn<'a> = &'a mut dyn FnMut(&[u8], Direction);

/// The simulated two-port testbed.
pub struct Testbed {
    pool: Mempool,
    int_dev: Device,
    ext_dev: Device,
    scratch: Box<[u8; MBUF_SIZE]>,
}

impl Testbed {
    /// Testbed with the given RX/TX ring depth (512 descriptors is the
    /// representative DPDK default used throughout the benches).
    pub fn new(ring_size: usize) -> Testbed {
        Testbed {
            pool: Mempool::new(ring_size * 4),
            int_dev: Device::new(ring_size),
            ext_dev: Device::new(ring_size),
            scratch: Box::new([0u8; MBUF_SIZE]),
        }
    }

    fn dev(&mut self, d: Direction) -> &mut Device {
        match d {
            Direction::Internal => &mut self.int_dev,
            Direction::External => &mut self.ext_dev,
        }
    }

    /// Push one frame through the full path, returning the verdict and
    /// the middlebox residence time in nanoseconds (RX-ring pop →
    /// process → TX-ring push, i.e. excluding the tester's own work).
    /// `inspect` (if any) sees the output frame after transmission.
    pub fn shoot(
        &mut self,
        nf: &mut dyn Middlebox,
        dir: Direction,
        fields_writer: impl FnOnce(&mut [u8]) -> usize,
        now: Time,
        mut inspect: Option<InspectFn<'_>>,
    ) -> (Verdict, u64) {
        // Tester side: buffer + frame + offer to the NIC.
        let len = fields_writer(&mut self.scratch[..]);
        let buf = self
            .pool
            .get()
            .expect("testbed pool sized for one in flight");
        self.pool.write_frame(buf, &self.scratch[..len]);
        assert!(
            self.dev(dir).offer(buf),
            "single-packet offer cannot overflow"
        );

        // Middlebox side: the timed region.
        let t0 = std::time::Instant::now();
        let got = self
            .dev(dir)
            .rx_burst_one()
            .expect("frame was just offered");
        let frame = self.pool.frame_mut(got);
        let verdict = nf.process(dir, frame, now);
        if let Verdict::Forward(out) = verdict {
            assert!(self.dev(out).tx_put(got), "tx ring sized for one in flight");
        }
        let elapsed = t0.elapsed().as_nanos() as u64;

        // Tester side: collect or reclaim.
        match verdict {
            Verdict::Forward(out) => {
                let sent = self.dev(out).tx_take().expect("frame was just queued");
                if let Some(f) = inspect.as_mut() {
                    f(self.pool.frame(sent), out);
                }
                self.pool.put(sent);
            }
            Verdict::Drop => self.pool.put(got),
        }
        (verdict, elapsed)
    }
}

impl Testbed {
    /// Burst variant: stage up to `count` frames (ring-capacity bound)
    /// into the RX ring, then time one run-to-completion drain loop —
    /// the way a DPDK NF actually executes (`rte_eth_rx_burst` → process
    /// → `rte_eth_tx_burst`). Returns (forwarded, dropped, elapsed ns
    /// for the whole burst). Timing a burst amortizes clock-read
    /// overhead across `count` packets, which matters when per-packet
    /// service time is tens of nanoseconds.
    pub fn shoot_burst(
        &mut self,
        nf: &mut dyn Middlebox,
        dir: Direction,
        count: usize,
        mut fields_writer: impl FnMut(usize, &mut [u8]) -> usize,
        now: Time,
    ) -> (usize, usize, u64) {
        let count = count.min(self.dev(dir).rx.capacity());
        // Tester side: stage the burst.
        for i in 0..count {
            let len = fields_writer(i, &mut self.scratch[..]);
            let buf = self.pool.get().expect("pool sized for a full ring");
            self.pool.write_frame(buf, &self.scratch[..len]);
            assert!(self.dev(dir).offer(buf), "staged within ring capacity");
        }
        // Middlebox side: the timed run-to-completion loop.
        let mut forwarded = 0usize;
        let mut dropped = 0usize;
        let t0 = std::time::Instant::now();
        while let Some(buf) = self.dev(dir).rx_burst_one() {
            let frame = self.pool.frame_mut(buf);
            match nf.process(dir, frame, now) {
                Verdict::Forward(out) => {
                    assert!(self.dev(out).tx_put(buf), "tx ring holds a full burst");
                    forwarded += 1;
                }
                Verdict::Drop => {
                    self.pool.put(buf);
                    dropped += 1;
                }
            }
        }
        let elapsed = t0.elapsed().as_nanos() as u64;
        // Tester side: reclaim transmitted buffers.
        for d in [Direction::Internal, Direction::External] {
            while let Some(buf) = self.dev(d).tx_take() {
                self.pool.put(buf);
            }
        }
        (forwarded, dropped, elapsed)
    }

    /// Batched-fast-path variant of [`Testbed::shoot_burst`]: the timed
    /// region drains the RX ring in [`vignat::MAX_BURST`]-sized bursts
    /// through [`Middlebox::process_burst`] instead of frame at a time
    /// — one clock read and one expiry scan per burst, batched
    /// flow-table probes. Same staging, same reclamation, same
    /// semantics per packet (the burst path is differentially tested
    /// against the sequential one).
    pub fn shoot_burst_batched(
        &mut self,
        nf: &mut dyn Middlebox,
        dir: Direction,
        count: usize,
        mut fields_writer: impl FnMut(usize, &mut [u8]) -> usize,
        now: Time,
    ) -> (usize, usize, u64) {
        let count = count.min(self.dev(dir).rx.capacity());
        // Tester side: stage the burst.
        for i in 0..count {
            let len = fields_writer(i, &mut self.scratch[..]);
            let buf = self.pool.get().expect("pool sized for a full ring");
            self.pool.write_frame(buf, &self.scratch[..len]);
            assert!(self.dev(dir).offer(buf), "staged within ring capacity");
        }
        // Middlebox side: the timed run-to-completion loop, burst-wise.
        let mut forwarded = 0usize;
        let mut dropped = 0usize;
        let mut batch: Vec<crate::dpdk::BufIdx> = Vec::with_capacity(vignat::MAX_BURST);
        let t0 = std::time::Instant::now();
        loop {
            batch.clear();
            if self.dev(dir).rx_burst(vignat::MAX_BURST, &mut batch) == 0 {
                break;
            }
            let verdicts = nf.process_burst(dir, &mut self.pool, &batch, now);
            debug_assert_eq!(verdicts.len(), batch.len());
            for (&buf, v) in batch.iter().zip(&verdicts) {
                match v {
                    Verdict::Forward(out) => {
                        assert!(self.dev(*out).tx_put(buf), "tx ring holds a full burst");
                        forwarded += 1;
                    }
                    Verdict::Drop => {
                        self.pool.put(buf);
                        dropped += 1;
                    }
                }
            }
        }
        let elapsed = t0.elapsed().as_nanos() as u64;
        // Tester side: reclaim transmitted buffers.
        for d in [Direction::Internal, Direction::External] {
            while let Some(buf) = self.dev(d).tx_take() {
                self.pool.put(buf);
            }
        }
        (forwarded, dropped, elapsed)
    }
}

/// Latency samples with the summary statistics the paper reports.
#[derive(Debug, Clone)]
pub struct LatencySamples {
    /// Raw per-packet middlebox residence times, nanoseconds.
    pub ns: Vec<u64>,
}

impl LatencySamples {
    /// Arithmetic mean (Fig. 12's y-axis).
    pub fn mean(&self) -> f64 {
        if self.ns.is_empty() {
            return 0.0;
        }
        self.ns.iter().sum::<u64>() as f64 / self.ns.len() as f64
    }

    /// The p-th percentile (0.0..=1.0), by nearest-rank.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.ns.is_empty() {
            return 0;
        }
        let mut sorted = self.ns.clone();
        sorted.sort_unstable();
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// CCDF points `(latency_ns, P[latency > x])` at each distinct
    /// sample value (Fig. 13's curve).
    pub fn ccdf(&self) -> Vec<(u64, f64)> {
        if self.ns.is_empty() {
            return Vec::new();
        }
        let mut sorted = self.ns.clone();
        sorted.sort_unstable();
        let n = sorted.len() as f64;
        let mut out = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let v = sorted[i];
            let mut j = i;
            while j < sorted.len() && sorted[j] == v {
                j += 1;
            }
            out.push((v, (sorted.len() - j) as f64 / n));
            i = j;
        }
        out
    }
}

/// Fig. 12 driver. Builds `mix.background_flows` flows, keeps every one
/// of them refreshed at least once per `2/3 · Texp` of virtual time, and
/// measures `mix.probe_packets` probe packets. With the default 2 s
/// expiry each probe flow's own packet gap exceeds `Texp`, so every
/// probe is the paper's worst case: a table miss that triggers expiry
/// work and a fresh allocation. Returns the probe samples.
pub fn probe_latency(
    nf: &mut dyn Middlebox,
    tb: &mut Testbed,
    mix: &WorkloadMix,
) -> LatencySamples {
    let gen = FlowGen::new(vig_packet::Proto::Udp);
    let mut now = Time::from_secs(1);
    let bg = mix.background_flows as u32;
    let batch = mix.probe_batch.max(1);
    let pool = mix.probe_pool.max(1) as u32;

    // Populate background flows.
    for i in 0..bg {
        now = now.plus(1_000); // 1 µs apart
        let f = gen.background(i);
        tb.shoot(
            nf,
            Direction::Internal,
            |b| gen.write_frame(&f, b),
            now,
            None,
        );
    }

    // One window = Texp/2 of virtual time, in three equal sections: two
    // full refresh passes, then the probe batch. No background flow
    // goes unrefreshed for more than Texp/3, and a probe flow that
    // recurs within one window (pool <= batch) is refreshed at most
    // Texp/2 apart — both safely inside the expiry, while fresh-tuple
    // probes (huge pool) still miss every time.
    let third = mix.texp_ns / 6;
    let mut samples = Vec::with_capacity(mix.probe_packets);
    let mut probe_id = 0u32;
    'outer: loop {
        for _pass in 0..2 {
            now = now.plus(third);
            for i in 0..bg {
                let f = gen.background(i);
                now = now.plus(2); // keep the clock strictly monotone
                tb.shoot(
                    nf,
                    Direction::Internal,
                    |b| gen.write_frame(&f, b),
                    now,
                    None,
                );
            }
        }
        let probe_gap = third / (batch as u64 + 1);
        for _ in 0..batch {
            if samples.len() >= mix.probe_packets {
                break 'outer;
            }
            now = now.plus(probe_gap.max(1));
            let f = gen.probe(probe_id % pool);
            probe_id += 1;
            let (_, ns) = tb.shoot(
                nf,
                Direction::Internal,
                |b| gen.write_frame(&f, b),
                now,
                None,
            );
            samples.push(ns);
        }
        now = now.plus(third - probe_gap * batch as u64);
    }
    LatencySamples { ns: samples }
}

/// Measure steady-state per-packet service times: all flows exist, every
/// packet is a hit that refreshes its flow (Fig. 14's workload: "a fixed
/// number of flows that never expire"). Measurement is per 64-packet
/// burst (DPDK run-to-completion granularity); each packet in a burst
/// is assigned the burst's mean, which keeps clock-read overhead out of
/// the service times while preserving burst-scale variance for the
/// queue simulation.
pub fn steady_state_service_times(
    nf: &mut dyn Middlebox,
    tb: &mut Testbed,
    flows: usize,
    packets: usize,
    texp_ns: u64,
) -> LatencySamples {
    steady_state_service_times_impl(nf, tb, flows, packets, texp_ns, false)
}

/// [`steady_state_service_times`] through the batched fast path
/// ([`Testbed::shoot_burst_batched`]): identical workload, identical
/// per-packet semantics, amortized per-burst overhead — the number the
/// batched Fig. 14 variant reports.
pub fn steady_state_service_times_batched(
    nf: &mut dyn Middlebox,
    tb: &mut Testbed,
    flows: usize,
    packets: usize,
    texp_ns: u64,
) -> LatencySamples {
    steady_state_service_times_impl(nf, tb, flows, packets, texp_ns, true)
}

fn steady_state_service_times_impl(
    nf: &mut dyn Middlebox,
    tb: &mut Testbed,
    flows: usize,
    packets: usize,
    texp_ns: u64,
    batched: bool,
) -> LatencySamples {
    const BURST: usize = 64;
    let gen = FlowGen::new(vig_packet::Proto::Udp);
    let mut now = Time::from_secs(1);
    for i in 0..flows as u32 {
        now = now.plus(1_000);
        let f = gen.background(i);
        tb.shoot(
            nf,
            Direction::Internal,
            |b| gen.write_frame(&f, b),
            now,
            None,
        );
    }
    // Round-robin over the flows; advance time slowly enough that no
    // flow ever expires (refresh interval << Texp by construction).
    let bursts_estimate = packets.div_ceil(BURST.min(64)) as u64;
    let step = (texp_ns / 4) / (bursts_estimate * 8 + 1);
    let mut samples = Vec::with_capacity(packets);
    let mut next_flow = 0u32;
    while samples.len() < packets {
        now = now.plus(step.max(1));
        let base = next_flow;
        let writer = |i: usize, b: &mut [u8]| {
            let f = gen.background((base + i as u32) % flows as u32);
            gen.write_frame(&f, b)
        };
        let (fwd, drop, ns) = if batched {
            tb.shoot_burst_batched(nf, Direction::Internal, BURST, writer, now)
        } else {
            tb.shoot_burst(nf, Direction::Internal, BURST, writer, now)
        };
        // shoot_burst clamps the burst to the ring capacity; use what
        // actually went through.
        let staged = fwd + drop;
        debug_assert!(staged > 0);
        debug_assert_eq!(drop, 0, "steady state must be all hits");
        next_flow = (base + staged as u32) % flows as u32;
        let per_packet = ns / staged as u64;
        samples.extend(std::iter::repeat_n(per_packet.max(1), staged));
    }
    samples.truncate(packets);
    LatencySamples { ns: samples }
}

/// FIFO queue simulation: deterministic arrivals at `rate_pps`, service
/// times drawn cyclically from `service_ns`, queue bounded at
/// `ring_cap`. Returns the fraction of arrivals dropped.
pub fn queue_loss(service_ns: &[u64], rate_pps: f64, ring_cap: usize) -> f64 {
    assert!(!service_ns.is_empty());
    assert!(rate_pps > 0.0);
    let inter_ns = 1e9 / rate_pps;
    // Long enough that the bounded ring's transient absorption (it can
    // swallow `ring_cap` packets before any loss shows) cannot hide a
    // 0.1% steady-state loss — the reason RFC 2544 mandates long trials.
    let n = (service_ns.len() * 4).max(ring_cap * 400).max(200_000);
    let mut dropped = 0usize;
    // completion times of queued-but-unfinished packets
    let mut busy_until = 0.0f64;
    let mut queue: std::collections::VecDeque<f64> = std::collections::VecDeque::new();
    for k in 0..n {
        let arrival = k as f64 * inter_ns;
        // retire completed packets
        while let Some(&done) = queue.front() {
            if done <= arrival {
                queue.pop_front();
            } else {
                break;
            }
        }
        if queue.len() >= ring_cap {
            dropped += 1;
            continue;
        }
        let s = service_ns[k % service_ns.len()] as f64;
        let start = busy_until.max(arrival);
        busy_until = start + s;
        queue.push_back(busy_until);
    }
    dropped as f64 / n as f64
}

/// RFC 2544 binary search: the highest rate (pps) with loss ≤
/// `loss_bound` under [`queue_loss`]. Search window `[lo, hi]` pps.
pub fn max_rate_with_loss(
    service_ns: &[u64],
    ring_cap: usize,
    loss_bound: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    let mut lo = lo;
    let mut hi = hi;
    // If even `lo` loses, report 0 — the NF can't sustain the floor.
    if queue_loss(service_ns, lo, ring_cap) > loss_bound {
        return 0.0;
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if queue_loss(service_ns, mid, ring_cap) <= loss_bound {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Fig. 14 driver: measure steady-state service times, then search for
/// the maximum rate at ≤ 0.1% loss. Returns (Mpps, mean service ns).
pub fn throughput_search(
    nf: &mut dyn Middlebox,
    tb: &mut Testbed,
    flows: usize,
    packets: usize,
    texp_ns: u64,
    ring_cap: usize,
) -> (f64, f64) {
    let svc = steady_state_service_times(nf, tb, flows, packets, texp_ns);
    let mean = svc.mean();
    let pps = max_rate_with_loss(&svc.ns, ring_cap, 0.001, 1e4, 1e9);
    (pps / 1e6, mean)
}

/// [`throughput_search`] over the batched fast path: service times are
/// measured through [`Middlebox::process_burst`]. Returns
/// (Mpps, mean service ns).
pub fn throughput_search_batched(
    nf: &mut dyn Middlebox,
    tb: &mut Testbed,
    flows: usize,
    packets: usize,
    texp_ns: u64,
    ring_cap: usize,
) -> (f64, f64) {
    let svc = steady_state_service_times_batched(nf, tb, flows, packets, texp_ns);
    let mean = svc.mean();
    let pps = max_rate_with_loss(&svc.ns, ring_cap, 0.001, 1e4, 1e9);
    (pps / 1e6, mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middlebox::{NoopForwarder, VigNatMb};
    use vig_packet::{Ip4, Proto};
    use vig_spec::NatConfig;

    fn cfg(cap: usize) -> NatConfig {
        NatConfig {
            capacity: cap,
            expiry_ns: Time::from_secs(2).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1,
        }
    }

    #[test]
    fn shoot_roundtrip_reclaims_buffers() {
        let mut tb = Testbed::new(16);
        let mut nf = NoopForwarder::new();
        let gen = FlowGen::new(Proto::Udp);
        let before = tb.pool.available();
        for i in 0..100 {
            let f = gen.background(i);
            let (v, ns) = tb.shoot(
                &mut nf,
                Direction::Internal,
                |b| gen.write_frame(&f, b),
                Time::from_secs(1),
                None,
            );
            assert_eq!(v, Verdict::Forward(Direction::External));
            assert!(ns < 1_000_000_000, "sane timing");
        }
        assert_eq!(
            tb.pool.available(),
            before,
            "no buffer leaks through the path"
        );
    }

    #[test]
    fn probe_latency_keeps_occupancy_stable() {
        let mut tb = Testbed::new(16);
        let mut nf = VigNatMb::new(cfg(512));
        let mix = WorkloadMix {
            background_flows: 64,
            probe_packets: 24,
            probe_batch: 4,
            texp_ns: Time::from_secs(2).nanos(),
            probe_pool: 1_000,
        };
        let s = probe_latency(&mut nf, &mut tb, &mix);
        assert_eq!(s.ns.len(), 24);
        // Occupancy: 64 background + at most ~4 windows' worth of
        // probes still inside Texp (window = Texp/2).
        assert!(
            (64..=64 + 16).contains(&nf.occupancy()),
            "occupancy {} drifted",
            nf.occupancy()
        );
        assert!(nf.expired_total() >= 8, "old probe flows must have expired");
    }

    #[test]
    fn probe_latency_with_long_expiry_turns_probes_into_hits() {
        // The paper's in-text 60 s-expiry experiment: probe flows cycle
        // through a small pool and never expire, so after the first
        // round every probe is a lookup hit. (NF expiry must match the
        // workload's 60 s — they describe the same NAT parameter.)
        let mut tb = Testbed::new(16);
        let mut nf = VigNatMb::new(NatConfig {
            expiry_ns: Time::from_secs(60).nanos(),
            ..cfg(512)
        });
        let mix = WorkloadMix {
            background_flows: 32,
            probe_packets: 40,
            probe_batch: 10, // batch >= pool: probes recur every window
            texp_ns: Time::from_secs(60).nanos(),
            probe_pool: 10,
        };
        let s = probe_latency(&mut nf, &mut tb, &mix);
        assert_eq!(s.ns.len(), 40);
        assert_eq!(nf.expired_total(), 0, "nothing expires at 60 s");
        assert_eq!(
            nf.occupancy(),
            32 + 10,
            "background + probe pool all resident"
        );
    }

    #[test]
    fn steady_state_is_all_hits() {
        let mut tb = Testbed::new(16);
        let mut nf = VigNatMb::new(cfg(128));
        let s = steady_state_service_times(&mut nf, &mut tb, 32, 500, Time::from_secs(2).nanos());
        assert_eq!(s.ns.len(), 500);
        assert_eq!(nf.occupancy(), 32, "no flow may expire mid-experiment");
        assert_eq!(nf.expired_total(), 0);
    }

    #[test]
    fn batched_steady_state_is_all_hits_too() {
        let mut tb = Testbed::new(64);
        let mut nf = VigNatMb::new(cfg(128));
        let s = steady_state_service_times_batched(
            &mut nf,
            &mut tb,
            32,
            500,
            Time::from_secs(2).nanos(),
        );
        assert_eq!(s.ns.len(), 500);
        assert_eq!(nf.occupancy(), 32, "no flow may expire mid-experiment");
        assert_eq!(nf.expired_total(), 0);
    }

    #[test]
    fn shoot_burst_batched_reclaims_buffers() {
        let mut tb = Testbed::new(64);
        let mut nf = VigNatMb::new(cfg(128));
        let gen = FlowGen::new(Proto::Udp);
        let before = tb.pool.available();
        let (fwd, drop, _) = tb.shoot_burst_batched(
            &mut nf,
            Direction::Internal,
            48,
            |i, b| gen.write_frame(&gen.background(i as u32), b),
            Time::from_secs(1),
        );
        assert_eq!((fwd, drop), (48, 0));
        assert_eq!(
            tb.pool.available(),
            before,
            "no buffer leaks through the burst path"
        );
    }

    #[test]
    fn queue_loss_is_zero_below_capacity_and_high_above() {
        let svc = vec![1_000u64; 256]; // 1 µs per packet => 1 Mpps capacity
        assert_eq!(queue_loss(&svc, 0.5e6, 512), 0.0);
        assert!(
            queue_loss(&svc, 2.0e6, 512) > 0.3,
            "2x overload loses heavily"
        );
    }

    #[test]
    fn rate_search_finds_the_knee() {
        let svc = vec![1_000u64; 256]; // capacity exactly 1 Mpps
        let rate = max_rate_with_loss(&svc, 512, 0.001, 1e4, 1e8);
        assert!(
            (0.9e6..=1.1e6).contains(&rate),
            "search found {rate} pps, expected ~1e6"
        );
    }

    #[test]
    fn latency_stats() {
        let s = LatencySamples {
            ns: vec![10, 20, 30, 40],
        };
        assert_eq!(s.mean(), 25.0);
        assert_eq!(s.percentile(0.5), 20);
        assert_eq!(s.percentile(1.0), 40);
        let ccdf = s.ccdf();
        assert_eq!(ccdf[0], (10, 0.75));
        assert_eq!(ccdf[3], (40, 0.0));
    }
}
