//! The RFC 2544 measurement harness (paper §6, Fig. 11's methodology).
//!
//! Two experiment drivers reproduce the paper's figures:
//!
//! * [`probe_latency`] — Fig. 12/13: measure per-packet middlebox
//!   residence time of *probe* packets (worst case: flow-table miss,
//!   expiry work, allocation) while N background flows occupy the
//!   table;
//! * [`throughput_search`] — Fig. 14: the RFC 2544 loss-bounded maximum
//!   throughput — measure the NF's per-packet service times on the
//!   steady-state (all-hits) workload, MAD-reject timer-noise outliers
//!   ([`mad_filter_ns`]), then binary-search the highest offered rate
//!   whose queue simulation loses ≤ 0.1% of packets at the device's
//!   RX-ring depth.
//!
//! Every frame goes through the same mempool→RX-ring→NF→TX-ring→mempool
//! transaction ([`Testbed::shoot`]), so ring and buffer costs are inside
//! the measurement uniformly for every NF — mirroring how every paper NF
//! pays the same DPDK rx/tx cost.

use crate::dpdk::MBUF_SIZE;
use crate::dpdk::{BufIdx, Device, Mempool};
use crate::frame_env::{BurstEnv, BurstScratch, RssClassifier};
use crate::middlebox::{Middlebox, Verdict, VigNatMb};
use crate::runtime::{with_shard_runtime, RuntimeReport, ShardRuntimeSession, DEFAULT_RING_WORDS};
use crate::tester::{FlowGen, WorkloadMix};
use libvig::time::Time;
use vig_packet::Direction;
use vig_spec::NatConfig;
use vignat::{nat_process_batch, IterationOutcome, ShardedFlowManager, MAX_BURST};

/// Callback that inspects an output frame after transmission.
pub type InspectFn<'a> = &'a mut dyn FnMut(&[u8], Direction);

/// The simulated two-port testbed.
pub struct Testbed {
    pool: Mempool,
    int_dev: Device,
    ext_dev: Device,
    scratch: Box<[u8; MBUF_SIZE]>,
}

impl Testbed {
    /// Testbed with the given RX/TX ring depth (512 descriptors is the
    /// representative DPDK default used throughout the benches).
    pub fn new(ring_size: usize) -> Testbed {
        Testbed {
            pool: Mempool::new(ring_size * 4),
            int_dev: Device::new(ring_size),
            ext_dev: Device::new(ring_size),
            scratch: Box::new([0u8; MBUF_SIZE]),
        }
    }

    fn dev(&mut self, d: Direction) -> &mut Device {
        match d {
            Direction::Internal => &mut self.int_dev,
            Direction::External => &mut self.ext_dev,
        }
    }

    /// Push one frame through the full path, returning the verdict and
    /// the middlebox residence time in nanoseconds (RX-ring pop →
    /// process → TX-ring push, i.e. excluding the tester's own work).
    /// `inspect` (if any) sees the output frame after transmission.
    pub fn shoot(
        &mut self,
        nf: &mut dyn Middlebox,
        dir: Direction,
        fields_writer: impl FnOnce(&mut [u8]) -> usize,
        now: Time,
        mut inspect: Option<InspectFn<'_>>,
    ) -> (Verdict, u64) {
        // Tester side: buffer + frame + offer to the NIC.
        let len = fields_writer(&mut self.scratch[..]);
        let buf = self
            .pool
            .get()
            .expect("testbed pool sized for one in flight");
        self.pool.write_frame(buf, &self.scratch[..len]);
        assert!(
            self.dev(dir).offer(buf),
            "single-packet offer cannot overflow"
        );

        // Middlebox side: the timed region.
        let t0 = std::time::Instant::now();
        let got = self
            .dev(dir)
            .rx_burst_one()
            .expect("frame was just offered");
        let frame = self.pool.frame_mut(got);
        let verdict = nf.process(dir, frame, now);
        if let Verdict::Forward(out) = verdict {
            let bytes = self.pool.frame(got).len();
            assert!(
                self.dev(out).tx_put(got, bytes),
                "tx ring sized for one in flight"
            );
        }
        let elapsed = t0.elapsed().as_nanos() as u64;

        // Tester side: collect or reclaim.
        match verdict {
            Verdict::Forward(out) => {
                let sent = self.dev(out).tx_take().expect("frame was just queued");
                if let Some(f) = inspect.as_mut() {
                    f(self.pool.frame(sent), out);
                }
                self.pool.put(sent);
            }
            Verdict::Drop => self.pool.put(got),
        }
        (verdict, elapsed)
    }
}

impl Testbed {
    /// Burst variant: stage up to `count` frames (ring-capacity bound)
    /// into the RX ring, then time one run-to-completion drain loop —
    /// the way a DPDK NF actually executes (`rte_eth_rx_burst` → process
    /// → `rte_eth_tx_burst`). Returns (forwarded, dropped, elapsed ns
    /// for the whole burst). Timing a burst amortizes clock-read
    /// overhead across `count` packets, which matters when per-packet
    /// service time is tens of nanoseconds.
    pub fn shoot_burst(
        &mut self,
        nf: &mut dyn Middlebox,
        dir: Direction,
        count: usize,
        mut fields_writer: impl FnMut(usize, &mut [u8]) -> usize,
        now: Time,
    ) -> (usize, usize, u64) {
        let count = count.min(self.dev(dir).rx.capacity());
        // Tester side: stage the burst.
        for i in 0..count {
            let len = fields_writer(i, &mut self.scratch[..]);
            let buf = self.pool.get().expect("pool sized for a full ring");
            self.pool.write_frame(buf, &self.scratch[..len]);
            assert!(self.dev(dir).offer(buf), "staged within ring capacity");
        }
        // Middlebox side: the timed run-to-completion loop.
        let mut forwarded = 0usize;
        let mut dropped = 0usize;
        let t0 = std::time::Instant::now();
        while let Some(buf) = self.dev(dir).rx_burst_one() {
            let frame = self.pool.frame_mut(buf);
            match nf.process(dir, frame, now) {
                Verdict::Forward(out) => {
                    let bytes = self.pool.frame(buf).len();
                    assert!(
                        self.dev(out).tx_put(buf, bytes),
                        "tx ring holds a full burst"
                    );
                    forwarded += 1;
                }
                Verdict::Drop => {
                    self.pool.put(buf);
                    dropped += 1;
                }
            }
        }
        let elapsed = t0.elapsed().as_nanos() as u64;
        // Tester side: reclaim transmitted buffers.
        for d in [Direction::Internal, Direction::External] {
            while let Some(buf) = self.dev(d).tx_take() {
                self.pool.put(buf);
            }
        }
        (forwarded, dropped, elapsed)
    }

    /// Batched-fast-path variant of [`Testbed::shoot_burst`]: the timed
    /// region drains the RX ring in [`vignat::MAX_BURST`]-sized bursts
    /// through [`Middlebox::process_burst`] instead of frame at a time
    /// — one clock read and one expiry scan per burst, batched
    /// flow-table probes. Same staging, same reclamation, same
    /// semantics per packet (the burst path is differentially tested
    /// against the sequential one).
    pub fn shoot_burst_batched(
        &mut self,
        nf: &mut dyn Middlebox,
        dir: Direction,
        count: usize,
        mut fields_writer: impl FnMut(usize, &mut [u8]) -> usize,
        now: Time,
    ) -> (usize, usize, u64) {
        let count = count.min(self.dev(dir).rx.capacity());
        // Tester side: stage the burst.
        for i in 0..count {
            let len = fields_writer(i, &mut self.scratch[..]);
            let buf = self.pool.get().expect("pool sized for a full ring");
            self.pool.write_frame(buf, &self.scratch[..len]);
            assert!(self.dev(dir).offer(buf), "staged within ring capacity");
        }
        // Middlebox side: the timed run-to-completion loop, burst-wise.
        let mut forwarded = 0usize;
        let mut dropped = 0usize;
        let mut batch: Vec<crate::dpdk::BufIdx> = Vec::with_capacity(vignat::MAX_BURST);
        let t0 = std::time::Instant::now();
        loop {
            batch.clear();
            if self.dev(dir).rx_burst(vignat::MAX_BURST, &mut batch) == 0 {
                break;
            }
            let verdicts = nf.process_burst(dir, &mut self.pool, &batch, now);
            debug_assert_eq!(verdicts.len(), batch.len());
            for (&buf, v) in batch.iter().zip(&verdicts) {
                match v {
                    Verdict::Forward(out) => {
                        let bytes = self.pool.frame(buf).len();
                        assert!(
                            self.dev(*out).tx_put(buf, bytes),
                            "tx ring holds a full burst"
                        );
                        forwarded += 1;
                    }
                    Verdict::Drop => {
                        self.pool.put(buf);
                        dropped += 1;
                    }
                }
            }
        }
        let elapsed = t0.elapsed().as_nanos() as u64;
        // Tester side: reclaim transmitted buffers.
        for d in [Direction::Internal, Direction::External] {
            while let Some(buf) = self.dev(d).tx_take() {
                self.pool.put(buf);
            }
        }
        (forwarded, dropped, elapsed)
    }
}

// ---------------------------------------------------------------------------
// Sharded parallel driver (RSS model: one worker thread per shard)
// ---------------------------------------------------------------------------

/// The `std::thread`-based driver for the N-shard NAT: each shard runs
/// on its own worker with its own mempool, burst scratch, and expiry
/// clock — the software model of RSS hardware dispatch feeding one RX
/// queue per core.
///
/// Per burst: an (untimed, tester-side) dispatch pass routes each frame
/// to its shard — internal frames by the flow-key hash
/// ([`crate::frame_env::frame_flow_id`], the hash a NIC's RSS unit
/// would compute), external frames by the NAT port partition
/// ([`crate::frame_env::frame_l4_dst_port`]) —
/// then `std::thread::scope` runs every shard's sub-burst concurrently
/// through the ordinary batched fast path
/// ([`vignat::nat_process_batch`] over [`BurstEnv`]). Shards share no
/// state, so no locks exist anywhere on the datapath; verdicts are
/// scattered back to arrival order afterwards.
///
/// Correctness, not wall-clock speed, is this driver's contract:
/// `tests/shard_equivalence.rs` proves it packet-for-packet equivalent
/// to the single-threaded sharded NAT ([`crate::middlebox::ShardedVigNatMb`])
/// and to N independent 1-shard NATs. Wall-clock scaling additionally
/// requires ≥ N physical cores (the throughput sweep reports the
/// core-count alongside its numbers; see `docs/BENCHMARKS.md`).
pub struct ParallelShardedNat {
    table: ShardedFlowManager,
    pools: Vec<Mempool>,
    scratches: Vec<BurstScratch>,
    /// Per-shard expiry clocks: the last `now` each shard processed.
    /// [`ParallelShardedNat::process_burst_parallel`] advances all of
    /// them together (one burst = one arrival instant);
    /// [`ParallelShardedNat::process_on_shard`] advances one shard
    /// independently, which is how a real per-core driver behaves when
    /// its queues drain at different rates.
    clocks: Vec<Time>,
    expired_total: u64,
}

impl ParallelShardedNat {
    /// Build an N-shard parallel NAT. `burst_capacity` bounds the
    /// number of frames one [`ParallelShardedNat::process_burst_parallel`]
    /// call may carry (it sizes every per-shard mempool for the
    /// worst-case skew of all frames hashing to one shard).
    pub fn new(cfg: NatConfig, shards: usize, burst_capacity: usize) -> ParallelShardedNat {
        assert!(burst_capacity > 0, "burst capacity must be non-zero");
        ParallelShardedNat {
            table: ShardedFlowManager::new(&cfg, shards),
            pools: (0..shards).map(|_| Mempool::new(burst_capacity)).collect(),
            scratches: (0..shards).map(|_| BurstScratch::default()).collect(),
            clocks: vec![Time::ZERO; shards],
            expired_total: 0,
        }
    }

    /// Number of shards (== worker threads per burst).
    pub fn shard_count(&self) -> usize {
        self.table.shard_count()
    }

    /// The sharded flow table (assertions/statistics).
    pub fn table(&self) -> &ShardedFlowManager {
        &self.table
    }

    /// Flows currently tracked across all shards.
    pub fn occupancy(&self) -> usize {
        use vignat::FlowTable;
        self.table.flow_count()
    }

    /// Total flows expired over the run, across all shards.
    pub fn expired_total(&self) -> u64 {
        self.expired_total
    }

    /// This NAT's RSS function ([`RssClassifier::for_table`]) — the
    /// *same function* the multi-queue NIC model's hash unit computes,
    /// so hardware steering and software dispatch can never drift
    /// apart. Burst loops hoist this once and classify per frame.
    pub fn classifier(&self) -> RssClassifier {
        RssClassifier::for_table(&self.table)
    }

    /// The shard a frame arriving on `dir` is dispatched to — the RSS
    /// model: internal traffic by flow-key hash (the same memoized hash
    /// the flow table routes by, so the dispatch shard and the lookup
    /// shard always agree), return traffic by the port partition.
    pub fn dispatch(&self, dir: Direction, frame: &[u8]) -> usize {
        self.classifier().queue_of(dir, frame)
    }

    /// Process one burst arriving on `dir` at instant `now`, one worker
    /// thread per shard. Frames are rewritten in place; returns one
    /// verdict per frame in arrival order.
    ///
    /// Implemented as a one-burst [`crate::runtime`] session (spawn,
    /// process, join): semantics are identical to driving a persistent
    /// session — same dispatch, chunking, expiry ticks, and merge order
    /// — so the equivalence suites cover both. Loops that care about
    /// wall-clock rate use [`ParallelShardedNat::with_runtime`] instead
    /// and keep the workers alive across bursts.
    pub fn process_burst_parallel(
        &mut self,
        dir: Direction,
        frames: &mut [Vec<u8>],
        now: Time,
    ) -> Vec<Verdict> {
        let (out, _report) = self.with_runtime(false, |s| s.process_burst(dir, frames, now));
        out
    }

    /// Run `f` over a persistent pinned shard runtime: one long-lived
    /// worker thread per shard (pinned to a CPU when `pin` is set and
    /// the host permits; see [`crate::runtime::PinReport`]), fed
    /// through SPSC rings. The session lives exactly as long as `f`;
    /// expiry counts accumulate into [`ParallelShardedNat::expired_total`]
    /// on return.
    pub fn with_runtime<R>(
        &mut self,
        pin: bool,
        f: impl FnOnce(&mut NatRuntimeSession<'_>) -> R,
    ) -> (R, RuntimeReport) {
        let ParallelShardedNat {
            table,
            pools,
            scratches,
            clocks,
            expired_total,
        } = self;
        let (r, report) = with_shard_runtime(
            table,
            pools,
            scratches,
            DEFAULT_RING_WORDS,
            pin,
            |session| {
                let mut nat_session = NatRuntimeSession {
                    inner: session,
                    clocks,
                };
                f(&mut nat_session)
            },
        );
        *expired_total += report.expired;
        (r, report)
    }

    /// Drive one shard alone at its own clock — what a per-core driver
    /// does when its queue drains on its own schedule. Every frame must
    /// dispatch to shard `s` (asserted); `now` must be monotone *for
    /// this shard* but may run ahead of (or behind) the siblings', so
    /// tests can race one shard's expiry against another's re-lookup.
    pub fn process_on_shard(
        &mut self,
        s: usize,
        dir: Direction,
        frames: &mut [Vec<u8>],
        now: Time,
    ) -> Vec<Verdict> {
        assert!(self.clocks[s] <= now, "shard clock must be monotone");
        self.clocks[s] = now;
        let cls = self.classifier();
        for f in frames.iter() {
            assert_eq!(cls.queue_of(dir, f), s, "frame dispatched to wrong shard");
        }
        let pool = &mut self.pools[s];
        let bufs: Vec<BufIdx> = frames
            .iter()
            .map(|f| {
                let b = pool.get().expect("per-shard pool sized for a burst");
                pool.write_frame(b, f);
                b
            })
            .collect();
        // Global config, like the parallel workers: the shard's
        // FlowManager returns pool-global port offsets.
        let cfg = self.table.global_cfg();
        let fm = &mut self.table.shards_mut()[s];
        let scratch = &mut self.scratches[s];
        let mut verdicts = Vec::with_capacity(bufs.len());
        // Like the parallel path: a polling core expires every loop
        // iteration, so an empty burst still advances this shard's
        // expiry (callers use exactly that to tick a lone clock).
        let chunks = bufs
            .chunks(MAX_BURST.max(1))
            .chain(std::iter::once(&[] as &[BufIdx]).filter(|_| bufs.is_empty()));
        for chunk in chunks {
            let mut env = BurstEnv::new(fm, pool, chunk, dir, now, scratch);
            let outcomes = nat_process_batch(&mut env, &cfg);
            self.expired_total += env.expired() as u64;
            env.finish();
            verdicts.extend(outcomes.into_iter().map(|o| match o {
                IterationOutcome::Forwarded(d) => Verdict::Forward(d),
                IterationOutcome::Dropped(_) => Verdict::Drop,
                IterationOutcome::NoPacket => unreachable!("staged buffer"),
            }));
        }
        for (f, &buf) in frames.iter_mut().zip(&bufs) {
            f.copy_from_slice(self.pools[s].frame(buf));
            self.pools[s].put(buf);
        }
        verdicts
    }
}

/// A live [`ParallelShardedNat`] runtime session: the persistent-worker
/// view of the NAT, valid inside one
/// [`ParallelShardedNat::with_runtime`] call. Adds the NAT's clock
/// discipline (all shard clocks advance together, monotonically) on
/// top of the raw [`ShardRuntimeSession`].
pub struct NatRuntimeSession<'a> {
    inner: &'a mut ShardRuntimeSession,
    clocks: &'a mut [Time],
}

impl NatRuntimeSession<'_> {
    /// Process one burst on the persistent workers (see
    /// [`ParallelShardedNat::process_burst_parallel`] for the
    /// contract; this is the same operation minus thread spawn).
    pub fn process_burst(
        &mut self,
        dir: Direction,
        frames: &mut [Vec<u8>],
        now: Time,
    ) -> Vec<Verdict> {
        for c in self.clocks.iter_mut() {
            assert!(*c <= now, "shard clock must be monotone");
            *c = now;
        }
        self.inner.process_burst(dir, frames, now)
    }

    /// Pinning outcome for this session's workers.
    pub fn pin_report(&self) -> crate::runtime::PinReport {
        self.inner.pin_report()
    }

    /// Flows expired by the workers so far **this session** (folded
    /// into [`ParallelShardedNat::expired_total`] when the session
    /// ends; the differential suites compare it mid-session, while the
    /// table itself is on loan to the workers).
    pub fn expired(&self) -> u64 {
        self.inner.expired()
    }

    /// Supervisor counters so far this session (see
    /// [`crate::runtime::SupervisorStats`]): all zero on a fault-free
    /// session.
    pub fn supervisor(&self) -> crate::runtime::SupervisorStats {
        self.inner.supervisor()
    }

    /// Supervised-failure events so far this session, in order.
    pub fn down_events(&self) -> &[crate::runtime::WorkerDown] {
        self.inner.down_events()
    }

    /// Whether shard `s` is still serving (not retired by the
    /// supervisor).
    pub fn shard_alive(&self, s: usize) -> bool {
        self.inner.shard_alive(s)
    }

    /// Arm shard `s`'s worker to panic partway through its next job —
    /// the chaos seam (see [`ShardRuntimeSession::kill_worker`]).
    pub fn kill_worker(&mut self, s: usize) -> bool {
        self.inner.kill_worker(s)
    }

    /// Make shard `s`'s worker exit silently — a simulated hard death
    /// (see [`ShardRuntimeSession::halt_worker`]).
    pub fn halt_worker(&mut self, s: usize) -> bool {
        self.inner.halt_worker(s)
    }

    /// Replace the supervisor's stall budget (see
    /// [`ShardRuntimeSession::set_stall_budget`]).
    pub fn set_stall_budget(&mut self, budget: std::time::Duration) {
        self.inner.set_stall_budget(budget)
    }
}

/// One point of the shard-count throughput sweep
/// ([`sharded_throughput_sweep`]).
#[derive(Debug, Clone)]
pub struct ShardSweepPoint {
    /// Shard count of this point.
    pub shards: usize,
    /// Aggregate RFC 2544 max rate at ≤ 0.1% loss, Mpps: `shards ×` the
    /// slowest shard's rate (uniform RSS splits offered load evenly, so
    /// the slowest queue caps every share).
    pub mpps: f64,
    /// Aggregate batched NAT steps per second: the sum over shards of
    /// `1e9 / mean service ns` — the "batched step" rate the shard-count
    /// acceptance compares (2 shards ≥ 1.5× 1 shard).
    pub steps_per_sec: f64,
    /// Mean per-packet batched service time, averaged over shards (ns).
    pub mean_step_ns: f64,
    /// Each shard's individual ≤ 0.1%-loss rate (Mpps).
    pub per_shard_mpps: Vec<f64>,
}

/// The shard-count sweep behind `BENCH_throughput.json`'s
/// `sharded_sweep` object: for each shard count, measure every shard's
/// steady-state batched service times *on real code* (its own
/// [`VigNatMb`] over its slice of the capacity and port range, at
/// `occupancy` of its table), then aggregate under the multi-queue RSS
/// model — N independent RX queues, one core each, loss simulated per
/// queue exactly as [`throughput_search`] does for one.
///
/// Per-shard tables are `capacity/N` slots, so higher shard counts also
/// shrink each core's working set — the sweep measures that real cache
/// effect; only the "N cores run concurrently" step is modeled (it is
/// exact when ≥ N physical cores exist, the deployment this models).
pub fn sharded_throughput_sweep(
    cfg: &NatConfig,
    shard_counts: &[usize],
    occupancy: f64,
    packets_per_shard: usize,
    texp_ns: u64,
    ring_cap: usize,
) -> Vec<ShardSweepPoint> {
    assert!((0.0..=1.0).contains(&occupancy));
    let mut points = Vec::with_capacity(shard_counts.len());
    for &n in shard_counts {
        let table = ShardedFlowManager::new(cfg, n); // config derivation only
        let mut per_rate = Vec::with_capacity(n);
        let mut steps_per_sec = 0.0;
        let mut mean_sum = 0.0;
        for s in 0..n {
            let scfg = table.shard_cfg(s);
            let flows = ((scfg.capacity as f64 * occupancy) as usize).max(1);
            let mut nf = VigNatMb::new(scfg);
            let mut tb = Testbed::new(ring_cap);
            let svc = steady_state_service_times_batched(
                &mut nf,
                &mut tb,
                flows,
                packets_per_shard,
                texp_ns,
            );
            // MAD-filtered like every rate search here: one descheduled
            // burst on one shard would otherwise cap the whole point
            // (mpps = n × slowest shard).
            let (mpps, mean, _) = search_rate_filtered(&svc, ring_cap);
            mean_sum += mean;
            steps_per_sec += if mean > 0.0 { 1e9 / mean } else { 0.0 };
            per_rate.push(mpps);
        }
        let slowest = per_rate.iter().cloned().fold(f64::INFINITY, f64::min);
        points.push(ShardSweepPoint {
            shards: n,
            mpps: n as f64 * slowest,
            steps_per_sec,
            mean_step_ns: mean_sum / n as f64,
            per_shard_mpps: per_rate,
        });
    }
    points
}

/// Burst size of the wall-clock phases: large bursts amortize dispatch
/// so the measurement is dominated by per-packet work, as in a real
/// poll-mode driver under load.
const WALL_BURST: usize = 4096;

/// Frame-builder shared by the wall-clock loops: background flow `i`
/// as an owned frame.
fn wall_frame(gen: &FlowGen, i: u32, buf: &mut [u8]) -> Vec<u8> {
    let f = gen.background(i);
    let len = gen.write_frame(&f, buf);
    buf[..len].to_vec()
}

/// Wall-clock packet rate (Mpps) of [`ParallelShardedNat`] on this
/// machine: populate to `occupancy`, then time `packets` all-hit
/// packets pushed through one persistent **pinned** runtime session
/// ([`ParallelShardedNat::with_runtime`]) in large bursts. Unlike
/// [`sharded_throughput_sweep`] this includes ring traffic and
/// dispatcher coordination and is bounded by the host's physical
/// parallelism — reported for honesty alongside the modeled aggregate,
/// never used for shape claims (CI machines may have one core; the
/// bench JSON carries the pin report so readers can tell).
pub fn sharded_parallel_wallclock_mpps(
    cfg: &NatConfig,
    shards: usize,
    occupancy: f64,
    packets: usize,
) -> f64 {
    let mut nat = ParallelShardedNat::new(*cfg, shards, WALL_BURST);
    let flows =
        ((shards as f64 * nat.table().per_shard_capacity() as f64 * occupancy) as usize).max(1);
    let gen = FlowGen::new(vig_packet::Proto::Udp);
    let mut buf = vec![0u8; MBUF_SIZE];
    let (mpps, _report) = nat.with_runtime(true, |session| {
        let mut now = Time::from_secs(1);
        // Populate (untimed).
        for chunk_start in (0..flows).step_by(WALL_BURST) {
            let mut frames: Vec<Vec<u8>> = (chunk_start..flows.min(chunk_start + WALL_BURST))
                .map(|i| wall_frame(&gen, i as u32, &mut buf))
                .collect();
            now = now.plus(1_000);
            session.process_burst(Direction::Internal, &mut frames, now);
        }
        // Timed all-hit phase (per-burst stopwatch: frame generation
        // stays outside the measurement).
        let mut done = 0usize;
        let mut next = 0u32;
        let mut elapsed_ns = 0u64;
        while done < packets {
            let count = WALL_BURST.min(packets - done);
            let mut frames: Vec<Vec<u8>> = (0..count)
                .map(|k| wall_frame(&gen, (next + k as u32) % flows as u32, &mut buf))
                .collect();
            next = (next + count as u32) % flows as u32;
            now = now.plus(1_000);
            let t = std::time::Instant::now();
            session.process_burst(Direction::Internal, &mut frames, now);
            elapsed_ns += t.elapsed().as_nanos() as u64;
            done += count;
        }
        if elapsed_ns == 0 {
            0.0
        } else {
            done as f64 / (elapsed_ns as f64 / 1e9) / 1e6
        }
    });
    mpps
}

/// One point of the aggregate-Mpps scaling curve
/// ([`parallel_scaling_curve`]).
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Worker-thread count of this point (== shards).
    pub workers: usize,
    /// RFC 2544 ≤ 0.1%-loss rate over the pinned runtime's measured
    /// per-packet service times, Mpps ([`search_rate_with_ci`]).
    pub mpps: f64,
    /// Bootstrap 95% CI on `mpps`, low end.
    pub ci95_lo_mpps: f64,
    /// Bootstrap 95% CI on `mpps`, high end.
    pub ci95_hi_mpps: f64,
    /// MAD-filtered mean per-packet wall time through the runtime (ns).
    pub mean_step_ns: f64,
    /// Timer-noise samples rejected by the MAD filter.
    pub outliers_rejected: usize,
    /// Raw large-burst wall-clock rate of the same session (Mpps) — the
    /// "what this host actually did" companion to the searched rate.
    pub wallclock_mpps: f64,
    /// Workers whose `sched_setaffinity` succeeded at this point.
    pub pinned_workers: usize,
}

/// The aggregate-Mpps-vs-workers scaling curve
/// ([`ScalingPoint`]s plus host attribution).
#[derive(Debug, Clone)]
pub struct ScalingCurve {
    /// Flow-table occupancy during measurement (fraction of capacity).
    pub occupancy: f64,
    /// CPUs the process may run on (`sched_getaffinity`) — the honest
    /// parallelism budget; points with `workers > host_cores` time-slice
    /// and are expected to scale sublinearly or not at all.
    pub host_cores: usize,
    /// Whether pinning was requested (per-point `pinned_workers` says
    /// whether it worked).
    pub pinning_requested: bool,
    /// One point per requested worker count.
    pub points: Vec<ScalingPoint>,
}

/// The parallel RFC 2544 mode behind `BENCH_throughput.json`'s
/// `scaling_curve`: for each worker count, run one persistent pinned
/// runtime session, measure steady-state all-hit per-packet wall times
/// through the *whole* dispatcher→rings→workers→merge path in
/// [`MAX_BURST`]-sized bursts, and search the maximum ≤ 0.1%-loss rate
/// with bootstrap CIs ([`search_rate_with_ci`]) — the same methodology
/// as every single-core rate here, applied to the parallel datapath.
/// A second, large-burst pass reports the raw wall-clock rate of the
/// same session. Both are wall-clock numbers: on a host with fewer
/// cores than workers the curve honestly flattens (the per-point pin
/// and core attribution lets readers interpret it).
pub fn parallel_scaling_curve(
    cfg: &NatConfig,
    worker_counts: &[usize],
    occupancy: f64,
    packets: usize,
    ring_cap: usize,
) -> ScalingCurve {
    assert!((0.0..=1.0).contains(&occupancy));
    let burst = MAX_BURST.max(1);
    let gen = FlowGen::new(vig_packet::Proto::Udp);
    let mut points = Vec::with_capacity(worker_counts.len());
    let mut host_cores = 1;
    for &n in worker_counts {
        let mut nat = ParallelShardedNat::new(*cfg, n, WALL_BURST);
        let flows =
            ((n as f64 * nat.table().per_shard_capacity() as f64 * occupancy) as usize).max(1);
        let mut buf = vec![0u8; MBUF_SIZE];
        let ((svc, wallclock_mpps), report) = nat.with_runtime(true, |session| {
            let mut now = Time::from_secs(1);
            // Populate (untimed).
            for chunk_start in (0..flows).step_by(WALL_BURST) {
                let mut frames: Vec<Vec<u8>> = (chunk_start..flows.min(chunk_start + WALL_BURST))
                    .map(|i| wall_frame(&gen, i as u32, &mut buf))
                    .collect();
                now = now.plus(1_000);
                session.process_burst(Direction::Internal, &mut frames, now);
            }
            // Service-time phase: MAX_BURST bursts, per-packet = burst
            // mean, virtual time advancing slowly enough that nothing
            // expires (mirrors `steady_state_service_times`).
            let bursts = packets.div_ceil(burst) as u64;
            let step = ((cfg.expiry_ns / 4) / (bursts * 8 + 1)).max(1);
            let mut samples = Vec::with_capacity(packets);
            let mut next = 0u32;
            while samples.len() < packets {
                let count = burst.min(packets - samples.len());
                let mut frames: Vec<Vec<u8>> = (0..count)
                    .map(|k| wall_frame(&gen, (next + k as u32) % flows as u32, &mut buf))
                    .collect();
                next = (next + count as u32) % flows as u32;
                now = now.plus(step);
                let t = std::time::Instant::now();
                session.process_burst(Direction::Internal, &mut frames, now);
                let ns = t.elapsed().as_nanos() as u64;
                let per_packet = (ns / count as u64).max(1);
                samples.extend(std::iter::repeat_n(per_packet, count));
            }
            samples.truncate(packets);
            // Wall-clock phase: same session, large bursts.
            let mut done = 0usize;
            let mut elapsed_ns = 0u64;
            while done < packets {
                let count = WALL_BURST.min(packets - done);
                let mut frames: Vec<Vec<u8>> = (0..count)
                    .map(|k| wall_frame(&gen, (next + k as u32) % flows as u32, &mut buf))
                    .collect();
                next = (next + count as u32) % flows as u32;
                now = now.plus(step);
                let t = std::time::Instant::now();
                session.process_burst(Direction::Internal, &mut frames, now);
                elapsed_ns += t.elapsed().as_nanos() as u64;
                done += count;
            }
            let wall = if elapsed_ns == 0 {
                0.0
            } else {
                done as f64 / (elapsed_ns as f64 / 1e9) / 1e6
            };
            (LatencySamples { ns: samples }, wall)
        });
        host_cores = report.pin.host_cores;
        let est = search_rate_with_ci(&svc, ring_cap);
        points.push(ScalingPoint {
            workers: n,
            mpps: est.mpps,
            ci95_lo_mpps: est.ci95_lo_mpps,
            ci95_hi_mpps: est.ci95_hi_mpps,
            mean_step_ns: est.mean_ns,
            outliers_rejected: est.outliers_rejected,
            wallclock_mpps,
            pinned_workers: report.pin.pinned,
        });
    }
    ScalingCurve {
        occupancy,
        host_cores,
        pinning_requested: true,
        points,
    }
}

/// Latency samples with the summary statistics the paper reports.
#[derive(Debug, Clone)]
pub struct LatencySamples {
    /// Raw per-packet middlebox residence times, nanoseconds.
    pub ns: Vec<u64>,
}

impl LatencySamples {
    /// Arithmetic mean (Fig. 12's y-axis).
    pub fn mean(&self) -> f64 {
        if self.ns.is_empty() {
            return 0.0;
        }
        self.ns.iter().sum::<u64>() as f64 / self.ns.len() as f64
    }

    /// The p-th percentile (0.0..=1.0), by nearest-rank.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.ns.is_empty() {
            return 0;
        }
        let mut sorted = self.ns.clone();
        sorted.sort_unstable();
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// CCDF points `(latency_ns, P[latency > x])` at each distinct
    /// sample value (Fig. 13's curve).
    pub fn ccdf(&self) -> Vec<(u64, f64)> {
        if self.ns.is_empty() {
            return Vec::new();
        }
        let mut sorted = self.ns.clone();
        sorted.sort_unstable();
        let n = sorted.len() as f64;
        let mut out = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let v = sorted[i];
            let mut j = i;
            while j < sorted.len() && sorted[j] == v {
                j += 1;
            }
            out.push((v, (sorted.len() - j) as f64 / n));
            i = j;
        }
        out
    }
}

/// Fig. 12 driver. Builds `mix.background_flows` flows, keeps every one
/// of them refreshed at least once per `2/3 · Texp` of virtual time, and
/// measures `mix.probe_packets` probe packets. With the default 2 s
/// expiry each probe flow's own packet gap exceeds `Texp`, so every
/// probe is the paper's worst case: a table miss that triggers expiry
/// work and a fresh allocation. Returns the probe samples.
pub fn probe_latency(
    nf: &mut dyn Middlebox,
    tb: &mut Testbed,
    mix: &WorkloadMix,
) -> LatencySamples {
    let gen = FlowGen::new(vig_packet::Proto::Udp);
    let mut now = Time::from_secs(1);
    let bg = mix.background_flows as u32;
    let batch = mix.probe_batch.max(1);
    let pool = mix.probe_pool.max(1) as u32;

    // Populate background flows.
    for i in 0..bg {
        now = now.plus(1_000); // 1 µs apart
        let f = gen.background(i);
        tb.shoot(
            nf,
            Direction::Internal,
            |b| gen.write_frame(&f, b),
            now,
            None,
        );
    }

    // One window = Texp/2 of virtual time, in three equal sections: two
    // full refresh passes, then the probe batch. No background flow
    // goes unrefreshed for more than Texp/3, and a probe flow that
    // recurs within one window (pool <= batch) is refreshed at most
    // Texp/2 apart — both safely inside the expiry, while fresh-tuple
    // probes (huge pool) still miss every time.
    let third = mix.texp_ns / 6;
    let mut samples = Vec::with_capacity(mix.probe_packets);
    let mut probe_id = 0u32;
    'outer: loop {
        for _pass in 0..2 {
            now = now.plus(third);
            for i in 0..bg {
                let f = gen.background(i);
                now = now.plus(2); // keep the clock strictly monotone
                tb.shoot(
                    nf,
                    Direction::Internal,
                    |b| gen.write_frame(&f, b),
                    now,
                    None,
                );
            }
        }
        let probe_gap = third / (batch as u64 + 1);
        for _ in 0..batch {
            if samples.len() >= mix.probe_packets {
                break 'outer;
            }
            now = now.plus(probe_gap.max(1));
            let f = gen.probe(probe_id % pool);
            probe_id += 1;
            let (_, ns) = tb.shoot(
                nf,
                Direction::Internal,
                |b| gen.write_frame(&f, b),
                now,
                None,
            );
            samples.push(ns);
        }
        now = now.plus(third - probe_gap * batch as u64);
    }
    LatencySamples { ns: samples }
}

/// Measure steady-state per-packet service times: all flows exist, every
/// packet is a hit that refreshes its flow (Fig. 14's workload: "a fixed
/// number of flows that never expire"). Measurement is per 64-packet
/// burst (DPDK run-to-completion granularity); each packet in a burst
/// is assigned the burst's mean, which keeps clock-read overhead out of
/// the service times while preserving burst-scale variance for the
/// queue simulation.
pub fn steady_state_service_times(
    nf: &mut dyn Middlebox,
    tb: &mut Testbed,
    flows: usize,
    packets: usize,
    texp_ns: u64,
) -> LatencySamples {
    steady_state_service_times_impl(nf, tb, flows, packets, texp_ns, false)
}

/// [`steady_state_service_times`] through the batched fast path
/// ([`Testbed::shoot_burst_batched`]): identical workload, identical
/// per-packet semantics, amortized per-burst overhead — the number the
/// batched Fig. 14 variant reports.
pub fn steady_state_service_times_batched(
    nf: &mut dyn Middlebox,
    tb: &mut Testbed,
    flows: usize,
    packets: usize,
    texp_ns: u64,
) -> LatencySamples {
    steady_state_service_times_impl(nf, tb, flows, packets, texp_ns, true)
}

fn steady_state_service_times_impl(
    nf: &mut dyn Middlebox,
    tb: &mut Testbed,
    flows: usize,
    packets: usize,
    texp_ns: u64,
    batched: bool,
) -> LatencySamples {
    const BURST: usize = 64;
    let gen = FlowGen::new(vig_packet::Proto::Udp);
    let mut now = Time::from_secs(1);
    for i in 0..flows as u32 {
        now = now.plus(1_000);
        let f = gen.background(i);
        tb.shoot(
            nf,
            Direction::Internal,
            |b| gen.write_frame(&f, b),
            now,
            None,
        );
    }
    // Round-robin over the flows; advance time slowly enough that no
    // flow ever expires (refresh interval << Texp by construction).
    let bursts_estimate = packets.div_ceil(BURST.min(64)) as u64;
    let step = (texp_ns / 4) / (bursts_estimate * 8 + 1);
    let mut samples = Vec::with_capacity(packets);
    let mut next_flow = 0u32;
    while samples.len() < packets {
        now = now.plus(step.max(1));
        let base = next_flow;
        let writer = |i: usize, b: &mut [u8]| {
            let f = gen.background((base + i as u32) % flows as u32);
            gen.write_frame(&f, b)
        };
        let (fwd, drop, ns) = if batched {
            tb.shoot_burst_batched(nf, Direction::Internal, BURST, writer, now)
        } else {
            tb.shoot_burst(nf, Direction::Internal, BURST, writer, now)
        };
        // shoot_burst clamps the burst to the ring capacity; use what
        // actually went through.
        let staged = fwd + drop;
        debug_assert!(staged > 0);
        debug_assert_eq!(drop, 0, "steady state must be all hits");
        next_flow = (base + staged as u32) % flows as u32;
        let per_packet = ns / staged as u64;
        samples.extend(std::iter::repeat_n(per_packet.max(1), staged));
    }
    samples.truncate(packets);
    LatencySamples { ns: samples }
}

/// The modified-z-score cutoff for MAD outlier rejection: the standard
/// Iglewicz–Hoaglin recommendation (samples with
/// `|0.6745·(x − median)/MAD| > MAD_Z_CUTOFF` are rejected).
pub const MAD_Z_CUTOFF: f64 = 3.5;

/// MAD-based outlier rejection (Iglewicz–Hoaglin modified z-score) —
/// the canonical implementation, shared by every RFC 2544 rate search
/// here and by `vig_bench::Series` (which re-exports it). Returns the
/// retained samples and the rejected count. When the MAD is zero (over
/// half the samples identical — a perfectly quiet series) nothing is
/// rejected: the z-score is undefined and the series needs no
/// cleaning.
///
/// Why the rate searches need it: the loss search is extremely
/// tail-sensitive, so on a shared host a single descheduled burst (a
/// handful of samples inflated ~100x) can drag a ~10 Mpps point to
/// 0.2. Rejection counts are reported alongside results so the
/// cleaning is auditable.
pub fn mad_filter(samples: &[f64]) -> (Vec<f64>, usize) {
    assert!(!samples.is_empty(), "mad_filter needs samples");
    let median_sorted = |sorted: &[f64]| -> f64 {
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        }
    };
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    let med = median_sorted(&sorted);
    let mut dev: Vec<f64> = samples.iter().map(|x| (x - med).abs()).collect();
    dev.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    let mad = median_sorted(&dev);
    if mad == 0.0 {
        return (samples.to_vec(), 0);
    }
    let keep: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|x| (0.6745 * (x - med) / mad).abs() <= MAD_Z_CUTOFF)
        .collect();
    let rejected = samples.len() - keep.len();
    (keep, rejected)
}

/// [`mad_filter`] over integer nanosecond samples (lossless: service
/// times are far below 2^53).
pub fn mad_filter_ns(samples: &[u64]) -> (Vec<u64>, usize) {
    let f: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
    let (keep, rejected) = mad_filter(&f);
    (keep.into_iter().map(|x| x as u64).collect(), rejected)
}

/// FIFO queue simulation: deterministic arrivals at `rate_pps`, service
/// times drawn cyclically from `service_ns`, queue bounded at
/// `ring_cap`. Returns the fraction of arrivals dropped.
pub fn queue_loss(service_ns: &[u64], rate_pps: f64, ring_cap: usize) -> f64 {
    assert!(!service_ns.is_empty());
    assert!(rate_pps > 0.0);
    let inter_ns = 1e9 / rate_pps;
    // Long enough that the bounded ring's transient absorption (it can
    // swallow `ring_cap` packets before any loss shows) cannot hide a
    // 0.1% steady-state loss — the reason RFC 2544 mandates long trials.
    let n = (service_ns.len() * 4).max(ring_cap * 400).max(200_000);
    let mut dropped = 0usize;
    // completion times of queued-but-unfinished packets
    let mut busy_until = 0.0f64;
    let mut queue: std::collections::VecDeque<f64> = std::collections::VecDeque::new();
    for k in 0..n {
        let arrival = k as f64 * inter_ns;
        // retire completed packets
        while let Some(&done) = queue.front() {
            if done <= arrival {
                queue.pop_front();
            } else {
                break;
            }
        }
        if queue.len() >= ring_cap {
            dropped += 1;
            continue;
        }
        let s = service_ns[k % service_ns.len()] as f64;
        let start = busy_until.max(arrival);
        busy_until = start + s;
        queue.push_back(busy_until);
    }
    dropped as f64 / n as f64
}

/// RFC 2544 binary search: the highest rate (pps) with loss ≤
/// `loss_bound` under [`queue_loss`]. Search window `[lo, hi]` pps.
pub fn max_rate_with_loss(
    service_ns: &[u64],
    ring_cap: usize,
    loss_bound: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    let mut lo = lo;
    let mut hi = hi;
    // If even `lo` loses, report 0 — the NF can't sustain the floor.
    if queue_loss(service_ns, lo, ring_cap) > loss_bound {
        return 0.0;
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if queue_loss(service_ns, mid, ring_cap) <= loss_bound {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// MAD-reject outliers from a service-time series, then run the
/// RFC 2544 rate search on the retained samples. Returns
/// (Mpps, mean retained service ns, samples rejected).
pub fn search_rate_filtered(svc: &LatencySamples, ring_cap: usize) -> (f64, f64, usize) {
    let (kept, rejected) = mad_filter_ns(&svc.ns);
    let mean = kept.iter().sum::<u64>() as f64 / kept.len() as f64;
    let pps = max_rate_with_loss(&kept, ring_cap, 0.001, 1e4, 1e9);
    (pps / 1e6, mean, rejected)
}

/// An RFC 2544 rate estimate with a bootstrap confidence interval
/// (see [`search_rate_with_ci`]).
///
/// **Read the two statistics for what they are.** `mpps` is the loss
/// search over the *pooled* series: it is gated by the slowest
/// contiguous stretch of the whole run, which makes it a conservative,
/// trajectory-comparable floor (and exactly what every committed
/// `BENCH_throughput.json` before the CI existed reported). The
/// interval bounds the *mean per-trial rate* — trials see only their
/// own slow stretches, so their mean sits at or above the pooled
/// search, and the interval can therefore lie entirely above `mpps`.
/// That is information, not error: a point far below its interval
/// means one slow phase of the run capped the pooled search, while a
/// point inside it means the run was uniform. The interval's job is to
/// calibrate *trial-to-trial spread* when comparing cells across PRs.
#[derive(Debug, Clone)]
pub struct RateEstimate {
    /// Point estimate: the rate search over all retained samples, Mpps
    /// (identical to [`search_rate_filtered`]'s first component).
    pub mpps: f64,
    /// Lower bound of the 95% bootstrap CI on the **mean per-trial
    /// rate**, Mpps (see the type docs for how this relates to
    /// `mpps`).
    pub ci95_lo_mpps: f64,
    /// Upper bound of the 95% bootstrap CI on the mean per-trial rate,
    /// Mpps.
    pub ci95_hi_mpps: f64,
    /// Mean retained service time, ns.
    pub mean_ns: f64,
    /// Service-time samples rejected as MAD outliers.
    pub outliers_rejected: usize,
    /// The per-trial rates the bootstrap resampled (Mpps, one per
    /// contiguous trial chunk). The bootstrap interval always lies
    /// within `[min, max]` of these.
    pub per_trial_mpps: Vec<f64>,
}

/// Split a service-time series into exactly `trials` contiguous chunks
/// (sizes differing by at most one sample) and run the full filtered
/// rate search on each — the "per-trial rates" an RFC 2544 run would
/// report from repeated independent trials. Chunks are contiguous (not
/// interleaved) so slow phases of the run — cache warmup, a noisy
/// neighbour mid-measurement — land in *one* trial and widen the
/// interval instead of averaging away invisibly.
pub fn per_trial_rates(svc: &LatencySamples, ring_cap: usize, trials: usize) -> Vec<f64> {
    assert!(trials >= 2, "need at least two trials for an interval");
    let n = svc.ns.len();
    assert!(n >= trials, "fewer samples than trials");
    // Exact partition: the first `n % trials` chunks carry one extra
    // sample, so the result always has `trials` entries (a plain
    // `chunks(ceil)` split can come up short, e.g. 17 samples / 8
    // trials -> 6 chunks).
    let base = n / trials;
    let rem = n % trials;
    let mut start = 0usize;
    (0..trials)
        .map(|t| {
            let len = base + usize::from(t < rem);
            let c = &svc.ns[start..start + len];
            start += len;
            let (mpps, _, _) = search_rate_filtered(&LatencySamples { ns: c.to_vec() }, ring_cap);
            mpps
        })
        .collect()
}

/// Percentile bootstrap 95% CI of the mean of `values`: resample with
/// replacement `resamples` times (deterministic SplitMix64 stream from
/// `seed`, so benches are reproducible), take the mean of each
/// resample, and report the 2.5th/97.5th percentiles of those means.
/// Returns `(lo, hi)`.
pub fn bootstrap_mean_ci95(values: &[f64], resamples: usize, seed: u64) -> (f64, f64) {
    assert!(!values.is_empty(), "bootstrap needs values");
    assert!(resamples >= 40, "too few resamples for 95% percentiles");
    let mut state = seed;
    let mut next = move || {
        // SplitMix64: the same generator MapKey<u64> uses, seeded once.
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let n = values.len();
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let sum: f64 = (0..n).map(|_| values[(next() % n as u64) as usize]).sum();
            sum / n as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("no NaN means"));
    let pick = |p: f64| {
        let rank = ((p * means.len() as f64).ceil() as usize).clamp(1, means.len());
        means[rank - 1]
    };
    (pick(0.025), pick(0.975))
}

/// Number of trials and bootstrap resamples the CI-carrying rate
/// searches use (fixed so committed trajectories are comparable).
pub const RATE_CI_TRIALS: usize = 8;
/// Bootstrap resample count for [`search_rate_with_ci`].
pub const RATE_CI_RESAMPLES: usize = 1000;

/// [`search_rate_filtered`] plus a bootstrap 95% confidence interval:
/// the point estimate comes from the rate search over all retained
/// samples (unchanged from the committed trajectory), and the interval
/// from resampling [`RATE_CI_TRIALS`] per-trial rates
/// [`RATE_CI_RESAMPLES`] times — the ROADMAP follow-up ("bootstrap CIs
/// for the rate searches themselves") left from the MAD-rejection PR.
/// The interval bounds the mean per-trial rate, **not** the pooled
/// point estimate, and may sit entirely above it — see
/// [`RateEstimate`]'s docs for how to read the pair.
pub fn search_rate_with_ci(svc: &LatencySamples, ring_cap: usize) -> RateEstimate {
    let (mpps, mean_ns, outliers_rejected) = search_rate_filtered(svc, ring_cap);
    let per_trial_mpps = per_trial_rates(svc, ring_cap, RATE_CI_TRIALS);
    let (ci95_lo_mpps, ci95_hi_mpps) =
        bootstrap_mean_ci95(&per_trial_mpps, RATE_CI_RESAMPLES, 0x5eed_2544);
    RateEstimate {
        mpps,
        ci95_lo_mpps,
        ci95_hi_mpps,
        mean_ns,
        outliers_rejected,
        per_trial_mpps,
    }
}

/// Fig. 14 driver: measure steady-state service times, MAD-reject
/// outliers, then search for the maximum rate at ≤ 0.1% loss. Returns
/// (Mpps, mean service ns, outlier samples rejected).
pub fn throughput_search(
    nf: &mut dyn Middlebox,
    tb: &mut Testbed,
    flows: usize,
    packets: usize,
    texp_ns: u64,
    ring_cap: usize,
) -> (f64, f64, usize) {
    let svc = steady_state_service_times(nf, tb, flows, packets, texp_ns);
    search_rate_filtered(&svc, ring_cap)
}

/// [`throughput_search`] over the batched fast path: service times are
/// measured through [`Middlebox::process_burst`]. Returns
/// (Mpps, mean service ns, outlier samples rejected).
pub fn throughput_search_batched(
    nf: &mut dyn Middlebox,
    tb: &mut Testbed,
    flows: usize,
    packets: usize,
    texp_ns: u64,
    ring_cap: usize,
) -> (f64, f64, usize) {
    let svc = steady_state_service_times_batched(nf, tb, flows, packets, texp_ns);
    search_rate_filtered(&svc, ring_cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middlebox::{NoopForwarder, VigNatMb};
    use vig_packet::{Ip4, Proto};
    use vig_spec::NatConfig;

    fn cfg(cap: usize) -> NatConfig {
        NatConfig {
            capacity: cap,
            expiry_ns: Time::from_secs(2).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1,
            ..NatConfig::paper_default()
        }
    }

    #[test]
    fn shoot_roundtrip_reclaims_buffers() {
        let mut tb = Testbed::new(16);
        let mut nf = NoopForwarder::new();
        let gen = FlowGen::new(Proto::Udp);
        let before = tb.pool.available();
        for i in 0..100 {
            let f = gen.background(i);
            let (v, ns) = tb.shoot(
                &mut nf,
                Direction::Internal,
                |b| gen.write_frame(&f, b),
                Time::from_secs(1),
                None,
            );
            assert_eq!(v, Verdict::Forward(Direction::External));
            assert!(ns < 1_000_000_000, "sane timing");
        }
        assert_eq!(
            tb.pool.available(),
            before,
            "no buffer leaks through the path"
        );
    }

    #[test]
    fn probe_latency_keeps_occupancy_stable() {
        let mut tb = Testbed::new(16);
        let mut nf = VigNatMb::new(cfg(512));
        let mix = WorkloadMix {
            background_flows: 64,
            probe_packets: 24,
            probe_batch: 4,
            texp_ns: Time::from_secs(2).nanos(),
            probe_pool: 1_000,
        };
        let s = probe_latency(&mut nf, &mut tb, &mix);
        assert_eq!(s.ns.len(), 24);
        // Occupancy: 64 background + at most ~4 windows' worth of
        // probes still inside Texp (window = Texp/2).
        assert!(
            (64..=64 + 16).contains(&nf.occupancy()),
            "occupancy {} drifted",
            nf.occupancy()
        );
        assert!(nf.expired_total() >= 8, "old probe flows must have expired");
    }

    #[test]
    fn probe_latency_with_long_expiry_turns_probes_into_hits() {
        // The paper's in-text 60 s-expiry experiment: probe flows cycle
        // through a small pool and never expire, so after the first
        // round every probe is a lookup hit. (NF expiry must match the
        // workload's 60 s — they describe the same NAT parameter.)
        let mut tb = Testbed::new(16);
        let mut nf = VigNatMb::new(NatConfig {
            expiry_ns: Time::from_secs(60).nanos(),
            ..cfg(512)
        });
        let mix = WorkloadMix {
            background_flows: 32,
            probe_packets: 40,
            probe_batch: 10, // batch >= pool: probes recur every window
            texp_ns: Time::from_secs(60).nanos(),
            probe_pool: 10,
        };
        let s = probe_latency(&mut nf, &mut tb, &mix);
        assert_eq!(s.ns.len(), 40);
        assert_eq!(nf.expired_total(), 0, "nothing expires at 60 s");
        assert_eq!(
            nf.occupancy(),
            32 + 10,
            "background + probe pool all resident"
        );
    }

    #[test]
    fn steady_state_is_all_hits() {
        let mut tb = Testbed::new(16);
        let mut nf = VigNatMb::new(cfg(128));
        let s = steady_state_service_times(&mut nf, &mut tb, 32, 500, Time::from_secs(2).nanos());
        assert_eq!(s.ns.len(), 500);
        assert_eq!(nf.occupancy(), 32, "no flow may expire mid-experiment");
        assert_eq!(nf.expired_total(), 0);
    }

    #[test]
    fn batched_steady_state_is_all_hits_too() {
        let mut tb = Testbed::new(64);
        let mut nf = VigNatMb::new(cfg(128));
        let s = steady_state_service_times_batched(
            &mut nf,
            &mut tb,
            32,
            500,
            Time::from_secs(2).nanos(),
        );
        assert_eq!(s.ns.len(), 500);
        assert_eq!(nf.occupancy(), 32, "no flow may expire mid-experiment");
        assert_eq!(nf.expired_total(), 0);
    }

    #[test]
    fn shoot_burst_batched_reclaims_buffers() {
        let mut tb = Testbed::new(64);
        let mut nf = VigNatMb::new(cfg(128));
        let gen = FlowGen::new(Proto::Udp);
        let before = tb.pool.available();
        let (fwd, drop, _) = tb.shoot_burst_batched(
            &mut nf,
            Direction::Internal,
            48,
            |i, b| gen.write_frame(&gen.background(i as u32), b),
            Time::from_secs(1),
        );
        assert_eq!((fwd, drop), (48, 0));
        assert_eq!(
            tb.pool.available(),
            before,
            "no buffer leaks through the burst path"
        );
    }

    #[test]
    fn parallel_sharded_nat_reclaims_buffers_and_translates() {
        let mut nat = ParallelShardedNat::new(cfg(128), 2, 64);
        let gen = FlowGen::new(Proto::Udp);
        let mut buf = [0u8; MBUF_SIZE];
        let mut frames: Vec<Vec<u8>> = (0..48u32)
            .map(|i| {
                let n = gen.write_frame(&gen.background(i), &mut buf);
                buf[..n].to_vec()
            })
            .collect();
        let before: usize = (0..2).map(|s| 64 - nat.pools[s].available()).sum();
        let v = nat.process_burst_parallel(Direction::Internal, &mut frames, Time::from_secs(1));
        assert_eq!(v, vec![Verdict::Forward(Direction::External); 48]);
        assert_eq!(nat.occupancy(), 48);
        let after: usize = (0..2).map(|s| 64 - nat.pools[s].available()).sum();
        assert_eq!(before, after, "no buffer leaks through the parallel path");
        // Every translated frame carries the external ip and a port
        // from its dispatch shard's slice of the range.
        let per = nat.table().per_shard_capacity() as u16;
        for f in &frames {
            let (_, ff) = vig_packet::parse_l3l4(f).unwrap();
            assert_eq!(ff.src_ip, Ip4::new(10, 1, 0, 1));
            let s = nat.table().shard_of_port(ff.src_port).unwrap();
            let start = 1 + s as u16 * per;
            assert!((start..start + per).contains(&ff.src_port));
        }
    }

    #[test]
    fn sharded_sweep_reports_aggregate_scaling() {
        let cfg = NatConfig {
            expiry_ns: Time::from_secs(60).nanos(), // nothing expires mid-sweep
            ..cfg(1024)
        };
        let points =
            sharded_throughput_sweep(&cfg, &[1, 2], 0.5, 2_000, Time::from_secs(60).nanos(), 64);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].shards, 1);
        assert_eq!(points[1].per_shard_mpps.len(), 2);
        assert!(points.iter().all(|p| p.mpps > 0.0 && p.mean_step_ns > 0.0));
        // The multi-queue aggregate of two shards must comfortably beat
        // one (the acceptance threshold is 1.5x at bench scale).
        assert!(
            points[1].steps_per_sec > points[0].steps_per_sec,
            "2-shard aggregate step rate must exceed 1-shard"
        );
    }

    #[test]
    fn queue_loss_is_zero_below_capacity_and_high_above() {
        let svc = vec![1_000u64; 256]; // 1 µs per packet => 1 Mpps capacity
        assert_eq!(queue_loss(&svc, 0.5e6, 512), 0.0);
        assert!(
            queue_loss(&svc, 2.0e6, 512) > 0.3,
            "2x overload loses heavily"
        );
    }

    #[test]
    fn per_trial_rates_agree_on_quiet_series() {
        // Uniform service times: every trial finds the same knee, so
        // the bootstrap interval collapses around the point estimate.
        let svc = LatencySamples {
            ns: vec![1_000u64; 4_000],
        };
        let rates = per_trial_rates(&svc, 512, RATE_CI_TRIALS);
        assert_eq!(rates.len(), RATE_CI_TRIALS);
        assert!(rates.iter().all(|&r| (0.9..=1.1).contains(&r)));
        let (lo, hi) = bootstrap_mean_ci95(&rates, 200, 7);
        assert!(lo <= hi);
        assert!((0.9..=1.1).contains(&lo) && (0.9..=1.1).contains(&hi));
    }

    #[test]
    fn bootstrap_ci_widens_with_trial_variance() {
        let quiet = [1.0f64; 8];
        let noisy = [0.5, 1.5, 0.6, 1.4, 0.7, 1.3, 0.8, 1.2];
        let (ql, qh) = bootstrap_mean_ci95(&quiet, 200, 42);
        let (nl, nh) = bootstrap_mean_ci95(&noisy, 200, 42);
        assert!(qh - ql < 1e-12, "identical trials: degenerate interval");
        assert!(nh - nl > 0.1, "spread trials: visible interval");
        // the interval brackets the sample mean
        assert!(nl <= 1.0 && 1.0 <= nh);
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let v = [0.9, 1.1, 1.0, 1.05, 0.95];
        assert_eq!(
            bootstrap_mean_ci95(&v, 100, 1),
            bootstrap_mean_ci95(&v, 100, 1)
        );
        assert_ne!(
            bootstrap_mean_ci95(&v, 100, 1),
            bootstrap_mean_ci95(&v, 100, 2)
        );
    }

    #[test]
    fn search_rate_with_ci_point_and_interval_semantics() {
        // Two-level service times (fast then slow halves): per-trial
        // rates differ. The point estimate must match the pooled
        // search exactly (trajectory comparability), and the interval
        // must bound the mean per-trial rate — every bootstrap
        // resample is a mean of per-trial values, so the interval is
        // guaranteed to lie within [min, max] of the trials. The
        // pooled point may legitimately sit below the interval (it is
        // gated by the slowest stretch); what is guaranteed is that it
        // cannot exceed the fastest trial.
        let mut ns = vec![800u64; 2_000];
        ns.extend(vec![1_200u64; 2_000]);
        let svc = LatencySamples { ns };
        let est = search_rate_with_ci(&svc, 512);
        let (mpps, mean, rejected) = search_rate_filtered(&svc, 512);
        assert_eq!(est.mpps, mpps);
        assert_eq!(est.mean_ns, mean);
        assert_eq!(est.outliers_rejected, rejected);
        assert_eq!(est.per_trial_mpps.len(), RATE_CI_TRIALS);
        let min = est
            .per_trial_mpps
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = est.per_trial_mpps.iter().cloned().fold(0.0f64, f64::max);
        assert!(est.ci95_lo_mpps <= est.ci95_hi_mpps);
        assert!(est.ci95_lo_mpps >= min && est.ci95_hi_mpps <= max);
        assert!(est.mpps > 0.0 && est.mpps <= max * 1.001);
    }

    #[test]
    fn per_trial_rates_always_returns_exactly_trials_chunks() {
        // 17 samples over 8 trials: a ceil-chunked split would yield 6
        // chunks; the exact partition must yield 8, sizes 3/3/2/2/...
        for n in [17usize, 8, 100, 101, 4_003] {
            let svc = LatencySamples {
                ns: vec![1_000u64; n],
            };
            let rates = per_trial_rates(&svc, 64, 8);
            assert_eq!(rates.len(), 8, "n={n}");
            assert!(rates.iter().all(|&r| r > 0.0));
        }
    }

    #[test]
    fn rate_search_finds_the_knee() {
        let svc = vec![1_000u64; 256]; // capacity exactly 1 Mpps
        let rate = max_rate_with_loss(&svc, 512, 0.001, 1e4, 1e8);
        assert!(
            (0.9e6..=1.1e6).contains(&rate),
            "search found {rate} pps, expected ~1e6"
        );
    }

    #[test]
    fn latency_stats() {
        let s = LatencySamples {
            ns: vec![10, 20, 30, 40],
        };
        assert_eq!(s.mean(), 25.0);
        assert_eq!(s.percentile(0.5), 20);
        assert_eq!(s.percentile(1.0), 40);
        let ccdf = s.ccdf();
        assert_eq!(ccdf[0], (10, 0.75));
        assert_eq!(ccdf[3], (40, 0.0));
    }
}
