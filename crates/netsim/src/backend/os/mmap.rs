//! [`MmapBackend`]: the zero-copy `AF_PACKET` transport — a
//! `TPACKET_V3` RX block ring and a `TPACKET_V2` TX frame ring shared
//! with the kernel via `mmap`.
//!
//! ## RX: block-granular handoff, zero syscalls
//!
//! The kernel fills fixed-size *blocks* of the shared ring with
//! variable-size frames and flips each block's status word to
//! `TP_STATUS_USER` when it is full (or when the `retire_blk_tov`
//! timeout expires on a partial block). [`MmapBackend::pump_rx`] walks
//! user-owned blocks in place: every frame descriptor is validated by
//! `walk_block` *before* any byte slice over ring memory is formed,
//! each valid frame is admitted through the same
//! `admit` accounting as every other backend, and the
//! block is released back to the kernel with a single volatile status
//! write. Steady-state RX therefore costs no syscalls and no
//! per-frame copies beyond the one admission copy into the
//! [`Mempool`] (which every backend pays — the verified NAT operates
//! on pool frames).
//!
//! ## TX: fill at `tx_put`, one kick per batch
//!
//! [`MmapBackend::tx_put`] copies the outgoing frame into the next
//! `TP_STATUS_AVAILABLE` slot of the V2 TX ring *immediately* — while
//! the bytes are still cache-hot from `process_burst` — and marks it
//! `TP_STATUS_SEND_REQUEST` (deferring the copy to `flush_tx` was
//! measured ~6x slower per frame: by flush time the frames have left
//! L1). `flush_tx` then issues one zero-length `send` per port with
//! pending slots — the kernel walks the ring and transmits every
//! requested slot (with `PACKET_QDISC_BYPASS` where available) — and
//! reaps completions off the same status words: a slot returning to
//! `TP_STATUS_AVAILABLE` was accepted (counted as `tx`/`tx_bytes` at
//! that point, per the module-level TX-attribution rule), one marked
//! `TP_STATUS_WRONG_FORMAT` was refused (a `tx_error`; the slot is
//! reclaimed). One syscall flushes a whole batch, vs one per frame on
//! the baseline [`OsBackend`](super::OsBackend).
//!
//! ## Why two sockets per port
//!
//! A packet socket has one `PACKET_VERSION`, and V3 TX rings are not a
//! kernel feature combination worth trusting (V3 is RX-oriented);
//! each port therefore uses an RX socket (`ETH_P_ALL`, V3 RX ring)
//! and a TX socket (protocol 0 — never receives — with a V2 TX
//! ring). Both bind the same interface.
//!
//! ## Overrun and teardown
//!
//! When the NF falls behind, the kernel drops frames *outside* the
//! ring (counted via `PACKET_STATISTICS`, surfaced as
//! [`WireBackend::kernel_drops`]);
//! ring state is never corrupted — the overrun conformance test
//! floods the wire and asserts exactly that. Teardown unmaps both
//! rings and closes both sockets per port (`sys::RingMap` unmaps on
//! drop); the leak test opens and drops backends in a loop and pins
//! fd-table and mapping counts flat.

use super::sys;
use super::{PacketIo, WireBackend, PACKET_OUTGOING};
use crate::dpdk::{BufIdx, Mempool, PortStats, Ring, MBUF_SIZE};
use crate::frame_env::RssClassifier;
use std::collections::VecDeque;
use std::io;
use vig_packet::Direction;

// ---- tpacket descriptor layout (linux/if_packet.h) ----------------

/// Block descriptor: `block_status` offset within `tpacket_block_desc`.
const BLK_STATUS: usize = 8;
/// Block descriptor: `num_pkts`.
const BLK_NUM_PKTS: usize = 12;
/// Block descriptor: `offset_to_first_pkt`.
const BLK_FIRST_PKT: usize = 16;

/// `tpacket3_hdr.tp_next_offset` (relative to the frame).
const T3_NEXT: usize = 0;
/// `tpacket3_hdr.tp_snaplen` — bytes captured into the ring.
const T3_SNAPLEN: usize = 12;
/// `tpacket3_hdr.tp_len` — bytes on the wire.
const T3_LEN: usize = 16;
/// `tpacket3_hdr.tp_mac` (u16) — frame-relative offset of the MAC
/// header, i.e. of the packet data.
const T3_MAC: usize = 24;
/// `sizeof(struct tpacket3_hdr)`, already 16-byte aligned.
const T3_HDRLEN: usize = 48;
/// `sll_pkttype` within the `sockaddr_ll` the kernel stores right
/// after the frame header.
const T3_PKTTYPE: usize = T3_HDRLEN + 10;

/// Block owned by user space (`TP_STATUS_USER`).
const STATUS_USER: u32 = 1;
/// Block/slot owned by the kernel (`TP_STATUS_KERNEL` /
/// `TP_STATUS_AVAILABLE` — both are 0).
const STATUS_KERNEL: u32 = 0;
/// TX slot queued for transmission (`TP_STATUS_SEND_REQUEST`); the
/// kernel moves an accepted slot through `TP_STATUS_SENDING` (2) back
/// to 0.
const STATUS_SEND_REQUEST: u32 = 1;
/// TX slot the kernel refused (`TP_STATUS_WRONG_FORMAT`).
const STATUS_WRONG_FORMAT: u32 = 4;

/// V2 TX slot: `tpacket2_hdr.tp_status`.
const T2_STATUS: usize = 0;
/// V2 TX slot: `tpacket2_hdr.tp_len`.
const T2_LEN: usize = 4;
/// Frame data offset within a V2 TX slot:
/// `TPACKET2_HDRLEN(52) - sizeof(sockaddr_ll)(20)` — the kernel reads
/// packet bytes from here when no per-send address is given.
const TX_DATA_OFF: usize = 32;

/// Ring geometry for one [`MmapBackend`] port. The defaults fit the
/// conformance and RFC 2544 workloads on a veth wire: 512 KiB of RX
/// ring (64 × 8 KiB blocks), 1 ms block retire so partial blocks
/// reach the walker promptly, and 64 TX slots of 4 KiB (a slot holds
/// the 32-byte V2 header plus a full [`MBUF_SIZE`] frame).
#[derive(Debug, Clone, Copy)]
pub struct MmapRingConfig {
    /// RX block size in bytes (must be a multiple of the page size).
    pub rx_block_size: u32,
    /// RX block count.
    pub rx_block_count: u32,
    /// RX frame-size hint (V3 packs variable frames; the kernel only
    /// requires `block_size % frame_size == 0`).
    pub rx_frame_size: u32,
    /// Partial-block retire timeout, milliseconds.
    pub retire_ms: u32,
    /// TX slot size in bytes (≥ `TX_DATA_OFF + MBUF_SIZE`).
    pub tx_frame_size: u32,
    /// TX block size in bytes (must be a multiple of the page size).
    pub tx_block_size: u32,
    /// TX block count.
    pub tx_block_count: u32,
}

impl Default for MmapRingConfig {
    fn default() -> MmapRingConfig {
        MmapRingConfig {
            // 8 KiB blocks fill after ~50 minimum-size frames (each
            // costs ~160 B of ring: 48 B header + sockaddr + padding
            // + data), so under sustained load with a ring-sized
            // in-flight window blocks retire by *filling* rather than
            // by the millisecond retire timer — the timer is only the
            // latency bound for trailing partial blocks. 8 KiB beat
            // both 4 KiB (too many handoffs) and 16 KiB (half-window
            // bursts strand frames in unfilled blocks) on the veth
            // RFC 2544 rig.
            rx_block_size: 8 * 1024,
            rx_block_count: 64,
            rx_frame_size: 2048,
            retire_ms: 1,
            tx_frame_size: 4096,
            tx_block_size: 32 * 1024,
            tx_block_count: 8,
        }
    }
}

impl MmapRingConfig {
    fn rx_map_len(&self) -> usize {
        self.rx_block_size as usize * self.rx_block_count as usize
    }

    fn tx_map_len(&self) -> usize {
        self.tx_block_size as usize * self.tx_block_count as usize
    }

    fn tx_slots(&self) -> usize {
        self.tx_map_len() / self.tx_frame_size as usize
    }
}

/// Ring-transport counters a [`MmapBackend`] port accumulates —
/// the mmap-specific honesty ledger next to the generic [`PortStats`].
#[derive(Debug, Default, Clone, Copy)]
pub struct RingCounters {
    /// Frames the kernel dropped before they reached the ring
    /// (`PACKET_STATISTICS`, accumulated).
    pub kernel_drops: u64,
    /// RX queue freezes (`tp_freeze_q_cnt`): the ring ran out of
    /// kernel-owned blocks and RX paused until one was released.
    pub freezes: u64,
    /// Frames whose ring capture was shorter than the wire frame
    /// (`tp_snaplen < tp_len`) or longer than [`MBUF_SIZE`] —
    /// admitted truncated, counted here.
    pub truncated: u64,
    /// Blocks whose descriptors failed validation; the walk stops at
    /// the first bad descriptor and the block is released (frames
    /// before the corruption were already admitted).
    pub malformed_blocks: u64,
    /// TX-ring kick syscalls that failed outright (the queued slots
    /// stay `SEND_REQUEST` and are retried on the next flush).
    pub kick_errors: u64,
}

/// Read access to ring memory, as the block walker needs it. Two
/// implementors: [`sys::RingMap`] (the live kernel-shared mapping,
/// volatile and bounds-checked) and plain byte slices (synthetic
/// block images, so descriptor validation is unit-testable without
/// `CAP_NET_RAW`).
pub(crate) trait RingMem {
    /// `u8` at `off`, `None` out of bounds.
    fn u8_at(&self, off: usize) -> Option<u8>;
    /// Native-endian `u16` at `off`, `None` out of bounds/misaligned.
    fn u16_at(&self, off: usize) -> Option<u16>;
    /// Native-endian `u32` at `off`, `None` out of bounds/misaligned.
    fn u32_at(&self, off: usize) -> Option<u32>;
    /// Byte slice over `[off, off+len)`, `None` out of bounds.
    fn bytes(&self, off: usize, len: usize) -> Option<&[u8]>;
}

impl RingMem for sys::RingMap {
    fn u8_at(&self, off: usize) -> Option<u8> {
        sys::RingMap::u8_at(self, off)
    }
    fn u16_at(&self, off: usize) -> Option<u16> {
        sys::RingMap::u16_at(self, off)
    }
    fn u32_at(&self, off: usize) -> Option<u32> {
        sys::RingMap::u32_at(self, off)
    }
    fn bytes(&self, off: usize, len: usize) -> Option<&[u8]> {
        sys::RingMap::bytes(self, off, len)
    }
}

impl RingMem for [u8] {
    fn u8_at(&self, off: usize) -> Option<u8> {
        self.get(off).copied()
    }
    fn u16_at(&self, off: usize) -> Option<u16> {
        if !off.is_multiple_of(2) {
            return None;
        }
        let b = self.get(off..off + 2)?;
        Some(u16::from_ne_bytes([b[0], b[1]]))
    }
    fn u32_at(&self, off: usize) -> Option<u32> {
        if !off.is_multiple_of(4) {
            return None;
        }
        let b = self.get(off..off + 4)?;
        Some(u32::from_ne_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn bytes(&self, off: usize, len: usize) -> Option<&[u8]> {
        self.get(off..off.checked_add(len)?)
    }
}

/// One validated frame inside a user-owned RX block: ring offsets a
/// caller may safely slice (the walker has already bounds-checked
/// them against the block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WalkedFrame {
    /// Ring offset of the packet data (`frame + tp_mac`).
    pub data_off: usize,
    /// Captured length (`tp_snaplen`).
    pub snaplen: usize,
    /// On-the-wire length (`tp_len`; `> snaplen` means the kernel
    /// truncated the capture).
    pub wire_len: usize,
    /// `sll_pkttype` (filter [`PACKET_OUTGOING`]).
    pub pkttype: u8,
}

/// Outcome of walking one block's descriptors.
#[derive(Debug, Default, PartialEq, Eq)]
pub(crate) struct BlockWalk {
    /// Frames that validated (appended to the caller's vec).
    pub frames: usize,
    /// A descriptor failed validation; the walk stopped there.
    pub malformed: bool,
}

/// An upper bound on plausible frames per block: a V3 frame costs at
/// least its 48-byte header plus the 20-byte `sockaddr_ll`, 16-byte
/// aligned. A `num_pkts` beyond this is a corrupt descriptor, not a
/// busy block.
fn max_frames_in(block_size: usize) -> usize {
    block_size / 64
}

/// Validate and enumerate the frames of the RX block at `block_off`
/// (size `block_size`) into `out`. **This is the trusted boundary's
/// gate**: every offset/length pair pushed to `out` has been checked
/// to lie inside the block, so slicing ring memory at a
/// [`WalkedFrame`] cannot read outside the mapping — and a corrupt
/// descriptor (offsets escaping the block, a non-advancing
/// `tp_next_offset`, an absurd `num_pkts`) stops the walk with
/// `malformed` set instead of ever forming a slice. Unit-tested on
/// synthetic block images below; the kernel, of course, writes only
/// well-formed blocks.
pub(crate) fn walk_block<R: RingMem + ?Sized>(
    ring: &R,
    block_off: usize,
    block_size: usize,
    out: &mut Vec<WalkedFrame>,
) -> BlockWalk {
    let mut walk = BlockWalk::default();
    let block_end = match block_off.checked_add(block_size) {
        Some(e) => e,
        None => {
            walk.malformed = true;
            return walk;
        }
    };
    let (Some(num_pkts), Some(first_off)) = (
        ring.u32_at(block_off + BLK_NUM_PKTS),
        ring.u32_at(block_off + BLK_FIRST_PKT),
    ) else {
        walk.malformed = true;
        return walk;
    };
    let num_pkts = num_pkts as usize;
    if num_pkts > max_frames_in(block_size) {
        walk.malformed = true;
        return walk;
    }
    let mut cur = match block_off.checked_add(first_off as usize) {
        Some(c) => c,
        None => {
            walk.malformed = true;
            return walk;
        }
    };
    for i in 0..num_pkts {
        // The whole frame header (+ the sockaddr_ll holding pkttype)
        // must fit in the block before any field is read.
        if cur < block_off || cur + T3_PKTTYPE >= block_end {
            walk.malformed = true;
            return walk;
        }
        let (Some(next), Some(snaplen), Some(wire_len), Some(mac), Some(pkttype)) = (
            ring.u32_at(cur + T3_NEXT),
            ring.u32_at(cur + T3_SNAPLEN),
            ring.u32_at(cur + T3_LEN),
            ring.u16_at(cur + T3_MAC),
            ring.u8_at(cur + T3_PKTTYPE),
        ) else {
            walk.malformed = true;
            return walk;
        };
        let data_off = cur + mac as usize;
        let Some(data_end) = data_off.checked_add(snaplen as usize) else {
            walk.malformed = true;
            return walk;
        };
        if (mac as usize) < T3_HDRLEN || data_end > block_end {
            // Data escaping the block (e.g. a descriptor claiming a
            // frame that crosses the block boundary) never becomes a
            // slice.
            walk.malformed = true;
            return walk;
        }
        out.push(WalkedFrame {
            data_off,
            snaplen: snaplen as usize,
            wire_len: wire_len as usize,
            pkttype,
        });
        walk.frames += 1;
        if i + 1 < num_pkts {
            // tp_next_offset must advance past this frame's header;
            // 0 or a tiny value here would loop forever.
            if (next as usize) < T3_HDRLEN {
                walk.malformed = true;
                return walk;
            }
            cur += next as usize;
        }
    }
    walk
}

/// One port of the mmap backend: RX ring socket + TX ring socket on
/// the same interface, their mappings, and the per-queue software
/// FIFOs and stats the driver contract requires.
///
/// Field order matters for drop: mappings unmap before their sockets
/// close.
struct MmapPort {
    rx_map: sys::RingMap,
    tx_map: sys::RingMap,
    rx_sock: super::RawSocket,
    tx_sock: super::RawSocket,
    /// Next RX block to inspect.
    cur_block: u32,
    /// Next TX slot to fill.
    tx_head: usize,
    /// Filled-but-unreaped TX slots, oldest first: `(slot, q, bytes)`.
    tx_inflight: VecDeque<(usize, usize, usize)>,
    /// Slots marked `SEND_REQUEST` since the last kernel kick.
    unkicked: usize,
    rx: Vec<Ring>,
    stats: Vec<PortStats>,
    counters: RingCounters,
    /// Scratch for the per-block frame walk (no steady-state allocs).
    walked: Vec<WalkedFrame>,
}

impl MmapPort {
    fn open(
        ifname: &str,
        rc: &MmapRingConfig,
        queues: usize,
        ring_size: usize,
    ) -> io::Result<MmapPort> {
        let idx = sys::ifindex(ifname)?;

        // RX: V3 block ring on an ETH_P_ALL socket.
        let rx_sock = super::RawSocket::from_fd(sys::open_raw(sys::ETH_P_ALL_BE)?, ifname);
        // Best effort: keeps looped-back copies of our own
        // transmissions out of the ring; the walker's pkttype filter
        // still guards against them on kernels without the option.
        let _ = sys::set_ignore_outgoing(rx_sock.fd());
        sys::set_packet_version(rx_sock.fd(), sys::TPACKET_V3)?;
        sys::set_rx_ring_v3(
            rx_sock.fd(),
            rc.rx_block_size,
            rc.rx_block_count,
            rc.rx_frame_size,
            rc.retire_ms,
        )?;
        sys::bind_to(rx_sock.fd(), idx, sys::ETH_P_ALL_BE)?;
        let rx_map = sys::RingMap::map_ring(rx_sock.fd(), rc.rx_map_len())?;

        // TX: V2 slot ring on a protocol-0 socket (receives nothing).
        let tx_sock = super::RawSocket::from_fd(sys::open_raw(0)?, ifname);
        sys::set_packet_version(tx_sock.fd(), sys::TPACKET_V2)?;
        sys::set_tx_ring_v2(
            tx_sock.fd(),
            rc.tx_block_size,
            rc.tx_block_count,
            rc.tx_frame_size,
        )?;
        // Best effort: absent on old kernels, and the ring works
        // (slower) without it.
        let _ = sys::set_qdisc_bypass(tx_sock.fd());
        sys::bind_to(tx_sock.fd(), idx, 0)?;
        let tx_map = sys::RingMap::map_ring(tx_sock.fd(), rc.tx_map_len())?;
        debug_assert_eq!(rx_map.len(), rc.rx_map_len());
        debug_assert_eq!(tx_map.len(), rc.tx_map_len());

        Ok(MmapPort {
            rx_map,
            tx_map,
            rx_sock,
            tx_sock,
            cur_block: 0,
            tx_head: 0,
            tx_inflight: VecDeque::with_capacity(rc.tx_slots()),
            unkicked: 0,
            rx: (0..queues).map(|_| Ring::new(ring_size)).collect(),
            stats: vec![PortStats::default(); queues],
            counters: RingCounters::default(),
            walked: Vec::with_capacity(max_frames_in(rc.rx_block_size as usize)),
        })
    }

    /// Fold the kernel's since-last-read RX counters into ours.
    fn accumulate_kernel_stats(&mut self) {
        if let Ok((_, drops, freezes)) = sys::ring_stats(self.rx_sock.fd()) {
            self.counters.kernel_drops += drops;
            self.counters.freezes += freezes;
        }
    }

    /// Reap completed TX slots from the front of the inflight queue:
    /// `AVAILABLE` → transmitted (count it), `WRONG_FORMAT` → refused
    /// (tx_error, reclaim the slot), `SEND_REQUEST`/`SENDING` → still
    /// the kernel's; stop there. Returns frames confirmed sent.
    fn reap_tx(&mut self, tx_frame_size: usize, tx_errors: &mut u64) -> usize {
        let mut sent = 0;
        while let Some(&(slot, q, bytes)) = self.tx_inflight.front() {
            let off = slot * tx_frame_size;
            match self.tx_map.u32_at(off + T2_STATUS) {
                Some(STATUS_KERNEL) => {
                    self.stats[q].tx += 1;
                    self.stats[q].tx_bytes += bytes as u64;
                    sent += 1;
                    self.tx_inflight.pop_front();
                }
                Some(STATUS_WRONG_FORMAT) => {
                    *tx_errors += 1;
                    self.tx_map.set_u32(off + T2_STATUS, STATUS_KERNEL);
                    self.tx_inflight.pop_front();
                }
                // STATUS_SEND_REQUEST / SENDING: still in flight.
                _ => break,
            }
        }
        sent
    }
}

/// The zero-copy mmap-ring backend. See module docs.
pub struct MmapBackend {
    pool: Mempool,
    classifier: RssClassifier,
    ring_cfg: MmapRingConfig,
    int_port: MmapPort,
    ext_port: MmapPort,
    /// RX blocks processed per `pump_rx` call — one full ring pass, so
    /// a flooded wire cannot wedge the driver.
    pump_blocks: u32,
    rx_log: Option<Vec<(Direction, Vec<u8>)>>,
    rx_seen: u64,
    rx_errors: u64,
    tx_errors: u64,
}

impl MmapBackend {
    /// Open the backend on two interfaces with ring geometry `rc`.
    /// `ring_size` sizes the per-queue software FIFOs and the pool,
    /// identically to the other backends. Needs `CAP_NET_RAW`.
    pub fn open(
        int_if: &str,
        ext_if: &str,
        classifier: RssClassifier,
        ring_size: usize,
        rc: MmapRingConfig,
    ) -> io::Result<MmapBackend> {
        if (rc.tx_frame_size as usize) < TX_DATA_OFF + MBUF_SIZE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "tx_frame_size must hold the V2 header plus a full mbuf",
            ));
        }
        let queues = classifier.queue_count();
        Ok(MmapBackend {
            pool: Mempool::new(queues * ring_size * 4),
            classifier,
            int_port: MmapPort::open(int_if, &rc, queues, ring_size)?,
            ext_port: MmapPort::open(ext_if, &rc, queues, ring_size)?,
            ring_cfg: rc,
            pump_blocks: rc.rx_block_count,
            rx_log: None,
            rx_seen: 0,
            rx_errors: 0,
            tx_errors: 0,
        })
    }

    fn port(&mut self, d: Direction) -> &mut MmapPort {
        match d {
            Direction::Internal => &mut self.int_port,
            Direction::External => &mut self.ext_port,
        }
    }

    fn port_ref(&self, d: Direction) -> &MmapPort {
        match d {
            Direction::Internal => &self.int_port,
            Direction::External => &self.ext_port,
        }
    }

    /// The ring geometry this backend runs.
    pub fn ring_config(&self) -> MmapRingConfig {
        self.ring_cfg
    }

    /// Mmap-specific ring counters for port `dir` (truncations,
    /// malformed blocks, kernel drops, freezes, kick errors).
    pub fn ring_counters(&self, dir: Direction) -> RingCounters {
        self.port_ref(dir).counters
    }

    /// TX slots handed to the kernel and not yet confirmed, both
    /// ports. Zero after a quiescent flush — teardown tests pin this.
    pub fn tx_inflight(&self) -> usize {
        self.int_port.tx_inflight.len() + self.ext_port.tx_inflight.len()
    }

    /// Block until port `dir`'s RX ring has a user-owned block or
    /// `timeout_ms` elapses (the retire timeout makes even a partial
    /// block arrive within `retire_ms`). Returns whether one arrived.
    /// For tests that wait out the block-retire timeout without busy
    /// spinning; the driver itself never blocks.
    pub fn wait_rx(&self, dir: Direction, timeout_ms: i32) -> io::Result<bool> {
        sys::wait_readable(self.port_ref(dir).rx_sock.fd(), timeout_ms)
    }
}

impl WireBackend for MmapBackend {
    fn classifier(&self) -> RssClassifier {
        self.classifier
    }

    fn set_rx_log(&mut self, on: bool) {
        self.rx_log = if on { Some(Vec::new()) } else { None };
    }

    fn take_rx_log(&mut self) -> Vec<(Direction, Vec<u8>)> {
        self.rx_log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    fn rx_seen(&self) -> u64 {
        self.rx_seen
    }

    fn rx_errors(&self) -> u64 {
        self.rx_errors
    }

    fn tx_errors(&self) -> u64 {
        self.tx_errors
    }

    fn kernel_drops(&mut self) -> u64 {
        self.int_port.accumulate_kernel_stats();
        self.ext_port.accumulate_kernel_stats();
        self.int_port.counters.kernel_drops + self.ext_port.counters.kernel_drops
    }

    fn io_retries(&self) -> super::IoRetryStats {
        [
            self.int_port.rx_sock.retry_stats(),
            self.int_port.tx_sock.retry_stats(),
            self.ext_port.rx_sock.retry_stats(),
            self.ext_port.tx_sock.retry_stats(),
        ]
        .iter()
        .fold(super::IoRetryStats::default(), |a, s| super::IoRetryStats {
            eintr_retries: a.eintr_retries + s.eintr_retries,
            enobufs_backoffs: a.enobufs_backoffs + s.enobufs_backoffs,
        })
    }
}

impl PacketIo for MmapBackend {
    fn queue_count(&self) -> usize {
        self.int_port.rx.len()
    }

    fn pool(&self) -> &Mempool {
        &self.pool
    }

    fn pool_mut(&mut self) -> &mut Mempool {
        &mut self.pool
    }

    /// Walk user-owned RX blocks in place — no syscalls — admitting
    /// every validated frame and releasing each block back to the
    /// kernel. At most one full ring pass per call.
    fn pump_rx(&mut self) -> usize {
        let mut admitted = 0;
        let block_size = self.ring_cfg.rx_block_size as usize;
        let block_count = self.ring_cfg.rx_block_count;
        for dir in [Direction::Internal, Direction::External] {
            for _ in 0..self.pump_blocks {
                // Destructure so ring reads and FIFO/pool writes
                // borrow disjoint fields.
                let MmapBackend {
                    pool,
                    classifier,
                    int_port,
                    ext_port,
                    rx_log,
                    rx_seen,
                    ..
                } = self;
                let port = match dir {
                    Direction::Internal => int_port,
                    Direction::External => ext_port,
                };
                let block_off = port.cur_block as usize * block_size;
                let Some(status) = port.rx_map.u32_at(block_off + BLK_STATUS) else {
                    break;
                };
                if status & STATUS_USER == 0 {
                    break; // kernel still owns it: ring drained
                }
                port.walked.clear();
                let walk = walk_block(&port.rx_map, block_off, block_size, &mut port.walked);
                if walk.malformed {
                    port.counters.malformed_blocks += 1;
                }
                for wf in &port.walked {
                    if wf.pkttype == PACKET_OUTGOING {
                        continue; // our own transmission, looped back
                    }
                    *rx_seen += 1;
                    let take = wf.snaplen.min(MBUF_SIZE);
                    if wf.snaplen < wf.wire_len || wf.wire_len > MBUF_SIZE {
                        port.counters.truncated += 1;
                    }
                    // The walker validated [data_off, data_off+snaplen)
                    // against the block, so this slice cannot fail.
                    let Some(frame) = RingMem::bytes(&port.rx_map, wf.data_off, take) else {
                        continue;
                    };
                    if super::admit(
                        pool,
                        classifier,
                        &mut port.rx,
                        &mut port.stats,
                        dir,
                        frame,
                        rx_log,
                    )
                    .is_some()
                    {
                        admitted += 1;
                    }
                }
                // Hand the block back: after this volatile write the
                // kernel may refill it, and no slice into it survives
                // (the admission copies above are complete).
                port.rx_map.set_u32(block_off + BLK_STATUS, STATUS_KERNEL);
                port.cur_block = (port.cur_block + 1) % block_count;
            }
        }
        admitted
    }

    fn rx_len(&self, dir: Direction, q: usize) -> usize {
        self.port_ref(dir).rx[q].len()
    }

    fn rx_burst(&mut self, dir: Direction, q: usize, max: usize, out: &mut Vec<BufIdx>) -> usize {
        let port = self.port(dir);
        let mut n = 0;
        while n < max {
            match port.rx[q].pop() {
                Some(b) => {
                    out.push(b);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Copy the frame into the next TX-ring slot *now*, while its
    /// bytes are still cache-hot from `process_burst`, and mark it
    /// `SEND_REQUEST`; the kernel is kicked in batches by `flush_tx`.
    /// Returns `false` when no slot is available (ring full or an
    /// unreaped tail) — the driver flushes and retries, exactly the
    /// full-FIFO contract of the other backends. `tx`/`tx_bytes` are
    /// counted when the kernel confirms the slot (see module docs,
    /// "TX attribution").
    fn tx_put(&mut self, dir: Direction, q: usize, buf: BufIdx) -> bool {
        let tx_frame_size = self.ring_cfg.tx_frame_size as usize;
        let tx_slots = self.ring_cfg.tx_slots();
        let MmapBackend {
            pool,
            int_port,
            ext_port,
            ..
        } = self;
        let port = match dir {
            Direction::Internal => int_port,
            Direction::External => ext_port,
        };
        if port.tx_inflight.len() >= tx_slots {
            return false;
        }
        let slot = port.tx_head;
        let off = slot * tx_frame_size;
        // A slot not yet AVAILABLE means we caught up with an
        // unreaped tail.
        if port.tx_map.u32_at(off + T2_STATUS) != Some(STATUS_KERNEL) {
            return false;
        }
        let frame = pool.frame(buf);
        let bytes = frame.len();
        port.tx_map.write_bytes(off + TX_DATA_OFF, frame);
        port.tx_map.set_u32(off + T2_LEN, bytes as u32);
        // Publish last: the kernel owns the slot once the status word
        // says SEND_REQUEST.
        port.tx_map.set_u32(off + T2_STATUS, STATUS_SEND_REQUEST);
        pool.put(buf);
        port.tx_inflight.push_back((slot, q, bytes));
        port.tx_head = (port.tx_head + 1) % tx_slots;
        port.unkicked += 1;
        true
    }

    /// Kick the kernel once per port with pending `SEND_REQUEST` slots
    /// (the slots themselves were filled at [`PacketIo::tx_put`] time)
    /// and reap completions. Returns frames confirmed transmitted by
    /// this call.
    fn flush_tx(&mut self) -> usize {
        let tx_frame_size = self.ring_cfg.tx_frame_size as usize;
        let mut sent = 0;
        for dir in [Direction::Internal, Direction::External] {
            let MmapBackend {
                int_port,
                ext_port,
                tx_errors,
                ..
            } = self;
            let port = match dir {
                Direction::Internal => int_port,
                Direction::External => ext_port,
            };
            if port.unkicked > 0 {
                port.unkicked = 0;
                // One syscall transmits the whole batch.
                if port.tx_sock.kick_tx_ring().is_err() {
                    port.counters.kick_errors += 1;
                }
            }
            sent += port.reap_tx(tx_frame_size, tx_errors);
        }
        sent
    }

    fn queue_stats(&self, dir: Direction, q: usize) -> PortStats {
        self.port_ref(dir).stats[q]
    }
}

// ----------------------------------------------------------------
// Synthetic-ring tests: descriptor validation without CAP_NET_RAW.
// A block image is a plain Vec<u8> laid out exactly as the kernel
// lays out a TPACKET_V3 block; the walker must accept well-formed
// images and refuse every corruption without forming a slice.
// ----------------------------------------------------------------
#[cfg(test)]
mod tests {
    use super::*;

    const BLOCK: usize = 4096;

    fn put32(img: &mut [u8], off: usize, v: u32) {
        img[off..off + 4].copy_from_slice(&v.to_ne_bytes());
    }

    fn put16(img: &mut [u8], off: usize, v: u16) {
        img[off..off + 2].copy_from_slice(&v.to_ne_bytes());
    }

    /// Append one frame at `cur` with payload `data`; returns the
    /// 16-byte-aligned offset of the next frame and writes it into
    /// this frame's `tp_next_offset`.
    fn lay_frame(img: &mut [u8], cur: usize, data: &[u8], wire_len: u32, pkttype: u8) -> usize {
        let mac = 80u16; // header 48 + sockaddr 20, aligned up
        put32(img, cur + T3_SNAPLEN, data.len() as u32);
        put32(img, cur + T3_LEN, wire_len);
        put16(img, cur + T3_MAC, mac);
        img[cur + T3_PKTTYPE] = pkttype;
        img[cur + mac as usize..cur + mac as usize + data.len()].copy_from_slice(data);
        let next = (mac as usize + data.len() + 15) & !15;
        put32(img, cur + T3_NEXT, next as u32);
        cur + next
    }

    /// A block image with the given frames, `num_pkts` in the
    /// descriptor, first frame at offset 48.
    fn block_with(frames: &[(&[u8], u32, u8)]) -> Vec<u8> {
        let mut img = vec![0u8; BLOCK];
        put32(&mut img, BLK_STATUS, STATUS_USER);
        put32(&mut img, BLK_NUM_PKTS, frames.len() as u32);
        put32(&mut img, BLK_FIRST_PKT, 48);
        let mut cur = 48;
        for &(data, wire_len, pkttype) in frames {
            cur = lay_frame(&mut img, cur, data, wire_len, pkttype);
        }
        img
    }

    #[test]
    fn walks_a_partial_block_exactly() {
        // Retire-timeout handoff: a block with room for dozens of
        // frames holds only two. The walker must report exactly those.
        let img = block_with(&[(&[0xaa; 60], 60, 0), (&[0xbb; 100], 100, 3)]);
        let mut out = Vec::new();
        let walk = walk_block(&img[..], 0, BLOCK, &mut out);
        assert_eq!(
            walk,
            BlockWalk {
                frames: 2,
                malformed: false
            }
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].snaplen, 60);
        assert_eq!(out[0].pkttype, 0);
        // Slice through the same RingMem accessor the live pump uses.
        let d0 = RingMem::bytes(&img[..], out[0].data_off, out[0].snaplen).unwrap();
        assert!(d0.iter().all(|&b| b == 0xaa));
        assert_eq!(out[1].snaplen, 100);
        assert_eq!(out[1].pkttype, 3);
        let d1 = RingMem::bytes(&img[..], out[1].data_off, out[1].snaplen).unwrap();
        assert!(d1.iter().all(|&b| b == 0xbb));
    }

    #[test]
    fn frame_data_crossing_the_block_boundary_is_refused() {
        // A descriptor claiming data that runs past the block end must
        // stop the walk before any slice is formed.
        let mut img = block_with(&[(&[0xcc; 64], 64, 0)]);
        put32(&mut img, 48 + T3_SNAPLEN, BLOCK as u32); // escapes block
        let mut out = Vec::new();
        let walk = walk_block(&img[..], 0, BLOCK, &mut out);
        assert!(walk.malformed);
        assert_eq!(out.len(), 0, "no frame survives a boundary escape");
    }

    #[test]
    fn truncated_capture_reports_both_lengths() {
        // snaplen < tp_len: the kernel captured less than the wire
        // frame. The walker surfaces both so the backend can count the
        // truncation and admit the captured prefix.
        let img = block_with(&[(&[0xdd; 128], 9000, 0)]);
        let mut out = Vec::new();
        let walk = walk_block(&img[..], 0, BLOCK, &mut out);
        assert_eq!(walk.frames, 1);
        assert_eq!(out[0].snaplen, 128);
        assert_eq!(out[0].wire_len, 9000);
        assert!(out[0].snaplen < out[0].wire_len);
    }

    #[test]
    fn absurd_num_pkts_is_a_malformed_block() {
        let mut img = block_with(&[(&[0xee; 60], 60, 0)]);
        put32(&mut img, BLK_NUM_PKTS, u32::MAX);
        let mut out = Vec::new();
        let walk = walk_block(&img[..], 0, BLOCK, &mut out);
        assert!(walk.malformed);
        assert_eq!(walk.frames, 0);
    }

    #[test]
    fn non_advancing_next_offset_terminates() {
        // tp_next_offset of 0 (or anything smaller than the header) on
        // a non-final frame would spin the walker forever; it must
        // bail as malformed instead — and in bounded time.
        let mut img = block_with(&[(&[0x11; 60], 60, 0), (&[0x22; 60], 60, 0)]);
        put32(&mut img, 48 + T3_NEXT, 0);
        let mut out = Vec::new();
        let walk = walk_block(&img[..], 0, BLOCK, &mut out);
        assert!(walk.malformed);
        assert_eq!(walk.frames, 1, "first frame itself is fine");
    }

    #[test]
    fn first_pkt_offset_escaping_the_block_is_refused() {
        let mut img = block_with(&[(&[0x33; 60], 60, 0)]);
        put32(&mut img, BLK_FIRST_PKT, BLOCK as u32);
        let mut out = Vec::new();
        let walk = walk_block(&img[..], 0, BLOCK, &mut out);
        assert!(walk.malformed);
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn outgoing_frames_are_walked_with_their_pkttype() {
        // The pump filters PACKET_OUTGOING; the walker just reports it.
        let img = block_with(&[(&[0x44; 60], 60, PACKET_OUTGOING)]);
        let mut out = Vec::new();
        let walk = walk_block(&img[..], 0, BLOCK, &mut out);
        assert_eq!(walk.frames, 1);
        assert_eq!(out[0].pkttype, PACKET_OUTGOING);
    }

    #[test]
    fn default_geometry_satisfies_kernel_and_mbuf_constraints() {
        let rc = MmapRingConfig::default();
        assert_eq!(rc.rx_block_size % 4096, 0, "block = page multiple");
        assert_eq!(rc.tx_block_size % 4096, 0);
        assert_eq!(rc.rx_block_size % rc.rx_frame_size, 0);
        assert_eq!(rc.tx_block_size % rc.tx_frame_size, 0);
        assert_eq!(rc.rx_frame_size % 16, 0, "tpacket alignment");
        assert!(rc.tx_frame_size as usize >= TX_DATA_OFF + MBUF_SIZE);
        assert_eq!(rc.tx_slots(), 64);
    }
}
