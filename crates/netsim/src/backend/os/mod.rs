//! [`OsBackend`] and [`mmap::MmapBackend`]: real OS packet I/O behind
//! the [`PacketIo`] seam (Linux `AF_PACKET`).
//!
//! Two backends share this module, differing only in how frames cross
//! the kernel boundary:
//!
//! * [`OsBackend`] — the per-frame baseline: one nonblocking raw
//!   socket per port; RX drains the socket in `recvmmsg` bursts (one
//!   syscall per 32 frames, one copy per frame), TX sends one syscall
//!   per frame. Honest, simple, and the reference point the mmap
//!   speedup in `BENCH_throughput.json` is measured against.
//! * [`mmap::MmapBackend`] — the zero-copy path: a `TPACKET_V3` RX
//!   block ring and a `TPACKET_V2` TX ring shared with the kernel via
//!   `mmap`, so steady-state RX needs no syscalls at all and a whole
//!   TX batch is flushed with a single kick.
//!
//! Both classify frames into per-queue software FIFOs with the *same*
//! [`RssClassifier`] the sim backend and the sharded table use, and
//! both admit through the same `admit` function, so the verified
//! NAT, the event loop, and the conformance suites are identical
//! across backends; only the frame transport changes.
//!
//! ## The trust boundary
//!
//! The `sys` submodule contains the workspace's only `unsafe` code:
//! the libc surface (raw-socket calls, the two CPU-affinity calls the
//! shard runtime uses, and the ring-setup/`mmap` calls the zero-copy
//! backend needs), each wrapped immediately in a safe function. Ring
//! memory the kernel writes concurrently is only reachable through
//! `sys::RingMap`'s bounds-checked volatile accessors, and a byte
//! slice over frame data can only be formed after the block/frame
//! descriptors are validated in safe code (`mmap::walk_block`, unit
//! tested on synthetic ring images). The kernel's packet path below
//! the socket is trusted, exactly as the paper trusts DPDK and the
//! NIC hardware — the verified properties cover what happens to a
//! frame *after* `pump_rx` admits it and *before* `flush_tx` hands it
//! back. See `docs/ARCHITECTURE.md` ("The backend layer").
//!
//! ## TX attribution
//!
//! The device models count `tx`/`tx_bytes` when a frame enters the TX
//! ring (the simulated NIC owns it from that point). The OS backends
//! count at *flush* time, and only frames the kernel actually
//! accepted — an enqueued frame the kernel refuses is a `tx_error`,
//! not a transmission. Conformance asserts the totals agree (and that
//! `tx_errors == 0` on a quiesced veth wire, which is what makes the
//! comparison exact).
//!
//! ## Privileges
//!
//! `AF_PACKET` sockets need `CAP_NET_RAW`; creating veth pairs needs
//! `CAP_NET_ADMIN`. [`OsBackend::open`] fails with a plain
//! `io::Error` when they are missing, and the conformance tests skip
//! cleanly in that case (CI runs them in a privileged job).

use super::{PacketIo, SimBackend, TesterIo};
use crate::dpdk::{BufIdx, Mempool, PortStats, Ring, MBUF_SIZE};
use crate::frame_env::RssClassifier;
use std::io;
use vig_packet::Direction;

mod sys;

pub mod mmap;

/// The `sll_pkttype` of a frame the socket itself sent (looped back by
/// the kernel for observers); the RX pumps filter these out.
const PACKET_OUTGOING: u8 = 4;

/// Pin the **calling thread** to CPU `cpu` via `sched_setaffinity`.
///
/// The shard runtime calls this from each worker thread at startup so a
/// shard's cache state stays on one core. Failure (unprivileged or
/// cgroup-restricted environments, or a CPU index outside the allowed
/// set) is an ordinary `io::Error`; callers fall back to unpinned
/// workers and report the degradation, they do not abort.
pub fn pin_current_thread(cpu: usize) -> io::Result<()> {
    sys::set_affinity(cpu)
}

/// The CPUs the calling thread may run on, ascending — the honest core
/// budget under taskset/cgroup limits, which the shard runtime uses to
/// choose pin targets and the benches report as `host_cores`.
pub fn allowed_cpus() -> io::Result<Vec<usize>> {
    sys::get_affinity()
}

/// A safe handle to one nonblocking `AF_PACKET` socket bound to an
/// interface. Closed on drop.
#[derive(Debug)]
pub struct RawSocket {
    fd: sys::CInt,
    ifname: String,
    /// Transient-error retries absorbed on this socket (a `Cell`
    /// because the receive/send paths take `&self`).
    retries: std::cell::Cell<sys::Retries>,
}

impl RawSocket {
    /// Open and bind to `ifname`. Needs `CAP_NET_RAW`.
    pub fn open(ifname: &str) -> io::Result<RawSocket> {
        let idx = sys::ifindex(ifname)?;
        let fd = sys::open_bound(idx)?;
        // Best effort: keeps looped-back copies of this host's own
        // transmissions out of the receive queue; receivers still
        // filter `PACKET_OUTGOING` by pkttype on kernels without it.
        let _ = sys::set_ignore_outgoing(fd);
        Ok(RawSocket {
            fd,
            ifname: ifname.to_string(),
            retries: std::cell::Cell::new(sys::Retries::default()),
        })
    }

    /// Wrap an already-configured fd (the mmap backend opens its ring
    /// sockets through [`sys`] directly, then hands them here so drop
    /// semantics are uniform).
    pub(super) fn from_fd(fd: sys::CInt, ifname: &str) -> RawSocket {
        RawSocket {
            fd,
            ifname: ifname.to_string(),
            retries: std::cell::Cell::new(sys::Retries::default()),
        }
    }

    /// The raw fd, for [`sys`] calls that need it (ring stats, kicks).
    pub(super) fn fd(&self) -> sys::CInt {
        self.fd
    }

    /// The interface this socket is bound to.
    pub fn ifname(&self) -> &str {
        &self.ifname
    }

    /// Nonblocking receive into `buf`; `Ok(None)` when nothing is
    /// waiting. Returns `(frame_len, sll_pkttype)` — callers filter
    /// `pkttype == PACKET_OUTGOING` to ignore their own transmissions.
    pub fn recv_from(&self, buf: &mut [u8]) -> io::Result<Option<(usize, u8)>> {
        self.with_retries(|r| sys::recv_one(self.fd, buf, r))
    }

    /// Run `op` with this socket's retry accumulator checked out of its
    /// `Cell` and checked back in afterwards.
    fn with_retries<T>(&self, op: impl FnOnce(&mut sys::Retries) -> T) -> T {
        let mut r = self.retries.get();
        let out = op(&mut r);
        self.retries.set(r);
        out
    }

    /// Transient-error retries absorbed on this socket so far.
    pub(super) fn retry_stats(&self) -> IoRetryStats {
        let r = self.retries.get();
        IoRetryStats {
            eintr_retries: r.eintr,
            enobufs_backoffs: r.enobufs,
        }
    }

    /// Batched nonblocking receive (`recvmmsg`): up to
    /// `sys::BURST_FRAMES` frames per syscall, frame `i` landing at
    /// `buf[i * frame_cap ..]`. Returns the frame count.
    pub(super) fn recv_burst(
        &self,
        buf: &mut [u8],
        frame_cap: usize,
        lens: &mut [usize; sys::BURST_FRAMES],
        pkttypes: &mut [u8; sys::BURST_FRAMES],
    ) -> io::Result<usize> {
        self.with_retries(|r| sys::recv_burst(self.fd, buf, frame_cap, lens, pkttypes, r))
    }

    /// Transmit one frame out the bound interface.
    pub fn send(&self, frame: &[u8]) -> io::Result<usize> {
        self.with_retries(|r| sys::send_one(self.fd, frame, r))
    }

    /// Kick a TPACKET TX ring attached to this socket (the mmap
    /// backend's flush path).
    pub(super) fn kick_tx_ring(&self) -> io::Result<()> {
        self.with_retries(|r| sys::send_flush(self.fd, r))
    }
}

impl Drop for RawSocket {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

/// The live-counter surface every OS-facing backend exposes, so the
/// veth test rig, the conformance suites, and the cross-wire RFC 2544
/// harness are generic over per-frame vs mmap transport.
pub trait WireBackend: PacketIo {
    /// The classifier steering this backend's traffic (the tester
    /// predicts queue assignment with the same function).
    fn classifier(&self) -> RssClassifier;

    /// Record every admitted frame (arrival order, with its port) so a
    /// live run can be replayed through the sim backend — the
    /// recorded-trace parity proofs in `tests/backend_conformance.rs`.
    fn set_rx_log(&mut self, on: bool);

    /// Take the recorded arrival trace (see [`WireBackend::set_rx_log`]).
    fn take_rx_log(&mut self) -> Vec<(Direction, Vec<u8>)>;

    /// Total frames received from the kernel over this backend's
    /// lifetime (after the own-transmission filter), whether admitted
    /// to a FIFO or dropped at a full ring — the tester's "has
    /// everything I sent arrived yet?" signal.
    fn rx_seen(&self) -> u64;

    /// Real receive errors from the kernel (not `EWOULDBLOCK`, which
    /// just means "no frame waiting"): `ENETDOWN` after the interface
    /// went down, `ENODEV` after a veth peer was deleted, … A live
    /// loop seeing this grow with `rx` flat has a dead socket, not a
    /// quiet network.
    fn rx_errors(&self) -> u64;

    /// Transmissions the kernel refused (counted, frame dropped — the
    /// OS analog of a TX ring running dry).
    fn tx_errors(&self) -> u64;

    /// Frames the *kernel* dropped before this backend could see them
    /// (socket buffer / ring overrun), via `PACKET_STATISTICS`,
    /// accumulated across both ports. Mutable because the kernel
    /// resets its counter on read. Overruns lose frames but never
    /// corrupt backend state — the overrun conformance test pins that
    /// down.
    fn kernel_drops(&mut self) -> u64;

    /// Transient-error retries the hardened syscall layer absorbed on
    /// this backend's sockets (`EINTR` re-issues, `ENOBUFS` TX
    /// backoffs) — honesty counters: a wire point reporting zero
    /// errors *and* zero retries really had a quiet kernel path.
    fn io_retries(&self) -> IoRetryStats;
}

/// Syscall-retry honesty counters, summed over a backend's sockets —
/// see [`WireBackend::io_retries`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoRetryStats {
    /// Syscalls transparently re-issued after `EINTR`.
    pub eintr_retries: u64,
    /// Bounded backoff-sleeps taken on `ENOBUFS` before retrying TX.
    pub enobufs_backoffs: u64,
}

/// One port of the per-frame OS backend: a bound socket plus the
/// per-queue software FIFOs and stats the driver contract requires.
struct OsPort {
    sock: RawSocket,
    rx: Vec<Ring>,
    tx: Vec<Ring>,
    stats: Vec<PortStats>,
}

impl OsPort {
    fn new(sock: RawSocket, queues: usize, ring_size: usize) -> OsPort {
        OsPort {
            sock,
            rx: (0..queues).map(|_| Ring::new(ring_size)).collect(),
            tx: (0..queues).map(|_| Ring::new(ring_size)).collect(),
            stats: vec![PortStats::default(); queues],
        }
    }
}

/// The Linux per-frame raw-socket backend. See module docs.
pub struct OsBackend {
    pool: Mempool,
    classifier: RssClassifier,
    int_port: OsPort,
    ext_port: OsPort,
    scratch: Box<[u8; MBUF_SIZE]>,
    /// Flat `recvmmsg` landing area: `sys::BURST_FRAMES` slots of
    /// `MBUF_SIZE` each.
    burst_buf: Vec<u8>,
    /// Per-call admission cap (one ring's worth per queue), so a
    /// flooded socket cannot wedge the driver in `pump_rx` forever.
    pump_cap: usize,
    rx_log: Option<Vec<(Direction, Vec<u8>)>>,
    rx_seen: u64,
    rx_errors: u64,
    tx_errors: u64,
    kernel_drops: u64,
}

impl OsBackend {
    /// Open the backend on two interfaces: `int_if` is the NAT's
    /// internal port, `ext_if` the external one. Ring sizing matches
    /// the sim backend (`ring_size` descriptors per queue, pool holds
    /// four rings' worth per queue). Needs `CAP_NET_RAW`.
    pub fn open(
        int_if: &str,
        ext_if: &str,
        classifier: RssClassifier,
        ring_size: usize,
    ) -> io::Result<OsBackend> {
        let queues = classifier.queue_count();
        let int_sock = RawSocket::open(int_if)?;
        let ext_sock = RawSocket::open(ext_if)?;
        Ok(OsBackend {
            pool: Mempool::new(queues * ring_size * 4),
            classifier,
            int_port: OsPort::new(int_sock, queues, ring_size),
            ext_port: OsPort::new(ext_sock, queues, ring_size),
            scratch: Box::new([0u8; MBUF_SIZE]),
            burst_buf: vec![0u8; sys::BURST_FRAMES * MBUF_SIZE],
            pump_cap: queues * ring_size,
            rx_log: None,
            rx_seen: 0,
            rx_errors: 0,
            tx_errors: 0,
            kernel_drops: 0,
        })
    }

    fn port(&mut self, d: Direction) -> &mut OsPort {
        match d {
            Direction::Internal => &mut self.int_port,
            Direction::External => &mut self.ext_port,
        }
    }

    fn port_ref(&self, d: Direction) -> &OsPort {
        match d {
            Direction::Internal => &self.int_port,
            Direction::External => &self.ext_port,
        }
    }
}

impl WireBackend for OsBackend {
    fn classifier(&self) -> RssClassifier {
        self.classifier
    }

    fn set_rx_log(&mut self, on: bool) {
        self.rx_log = if on { Some(Vec::new()) } else { None };
    }

    fn take_rx_log(&mut self) -> Vec<(Direction, Vec<u8>)> {
        self.rx_log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    fn rx_seen(&self) -> u64 {
        self.rx_seen
    }

    fn rx_errors(&self) -> u64 {
        self.rx_errors
    }

    fn tx_errors(&self) -> u64 {
        self.tx_errors
    }

    fn kernel_drops(&mut self) -> u64 {
        for dir in [Direction::Internal, Direction::External] {
            let fd = self.port_ref(dir).sock.fd();
            if let Ok((_, drops, _)) = sys::ring_stats(fd) {
                self.kernel_drops += drops;
            }
        }
        self.kernel_drops
    }

    fn io_retries(&self) -> IoRetryStats {
        let a = self.int_port.sock.retry_stats();
        let b = self.ext_port.sock.retry_stats();
        IoRetryStats {
            eintr_retries: a.eintr_retries + b.eintr_retries,
            enobufs_backoffs: a.enobufs_backoffs + b.enobufs_backoffs,
        }
    }
}

/// Admit one frame into a port's per-queue FIFOs: log it, classify it,
/// and apply the driver contract's drop accounting (pool exhaustion or
/// a full ring counts `rx_dropped` on the frame's queue; admission
/// counts `rx`). The single definition the per-frame RX pump, the mmap
/// block walker, and the loopback `stage` paths all use, so their
/// accounting can never diverge.
pub(super) fn admit(
    pool: &mut Mempool,
    classifier: &RssClassifier,
    rx: &mut [Ring],
    stats: &mut [PortStats],
    dir: Direction,
    frame: &[u8],
    rx_log: &mut Option<Vec<(Direction, Vec<u8>)>>,
) -> Option<usize> {
    if let Some(log) = rx_log {
        log.push((dir, frame.to_vec()));
    }
    let q = classifier.queue_of(dir, frame);
    let Some(buf) = pool.get() else {
        stats[q].rx_dropped += 1;
        return None;
    };
    pool.write_frame(buf, frame);
    if rx[q].push(buf) {
        stats[q].rx += 1;
        Some(q)
    } else {
        pool.put(buf);
        stats[q].rx_dropped += 1;
        None
    }
}

impl PacketIo for OsBackend {
    fn queue_count(&self) -> usize {
        self.int_port.rx.len()
    }

    fn pool(&self) -> &Mempool {
        &self.pool
    }

    fn pool_mut(&mut self) -> &mut Mempool {
        &mut self.pool
    }

    /// Drain both sockets in `recvmmsg` bursts (one syscall per
    /// `sys::BURST_FRAMES` frames) until the kernel reports empty or
    /// the per-call cap is reached.
    fn pump_rx(&mut self) -> usize {
        let mut admitted = 0;
        for dir in [Direction::Internal, Direction::External] {
            let mut pumped = 0;
            'dir: while pumped < self.pump_cap {
                // Destructure so the socket read and the ring/pool
                // writes borrow disjoint fields.
                let OsBackend {
                    pool,
                    classifier,
                    int_port,
                    ext_port,
                    burst_buf,
                    rx_log,
                    rx_seen,
                    rx_errors,
                    ..
                } = self;
                let port = match dir {
                    Direction::Internal => int_port,
                    Direction::External => ext_port,
                };
                let mut lens = [0usize; sys::BURST_FRAMES];
                let mut kinds = [0u8; sys::BURST_FRAMES];
                let n = match port
                    .sock
                    .recv_burst(burst_buf, MBUF_SIZE, &mut lens, &mut kinds)
                {
                    Ok(0) => break 'dir,
                    Ok(n) => n,
                    // A real error (the nonblocking wrapper already
                    // maps EWOULDBLOCK to Ok(0)): count it so a dead
                    // socket is distinguishable from a quiet network,
                    // and retry on the next pump.
                    Err(_) => {
                        *rx_errors += 1;
                        break 'dir;
                    }
                };
                for i in 0..n {
                    if kinds[i] == PACKET_OUTGOING {
                        continue; // our own transmission, looped back
                    }
                    *rx_seen += 1;
                    let start = i * MBUF_SIZE;
                    let frame = &burst_buf[start..start + lens[i].min(MBUF_SIZE)];
                    if admit(
                        pool,
                        classifier,
                        &mut port.rx,
                        &mut port.stats,
                        dir,
                        frame,
                        rx_log,
                    )
                    .is_some()
                    {
                        admitted += 1;
                    }
                }
                pumped += n;
                if n < sys::BURST_FRAMES {
                    break 'dir; // short burst: the socket is drained
                }
            }
        }
        admitted
    }

    fn rx_len(&self, dir: Direction, q: usize) -> usize {
        self.port_ref(dir).rx[q].len()
    }

    fn rx_burst(&mut self, dir: Direction, q: usize, max: usize, out: &mut Vec<BufIdx>) -> usize {
        let port = self.port(dir);
        let mut n = 0;
        while n < max {
            match port.rx[q].pop() {
                Some(b) => {
                    out.push(b);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Enqueue only — `tx`/`tx_bytes` are counted at flush time, when
    /// the kernel accepts the frame (see module docs, "TX attribution").
    fn tx_put(&mut self, dir: Direction, q: usize, buf: BufIdx) -> bool {
        self.port(dir).tx[q].push(buf)
    }

    fn flush_tx(&mut self) -> usize {
        let mut flushed = 0;
        for dir in [Direction::Internal, Direction::External] {
            for q in 0..self.queue_count() {
                loop {
                    let OsBackend {
                        pool,
                        int_port,
                        ext_port,
                        tx_errors,
                        ..
                    } = self;
                    let port = match dir {
                        Direction::Internal => int_port,
                        Direction::External => ext_port,
                    };
                    let Some(buf) = port.tx[q].pop() else { break };
                    let frame = pool.frame(buf);
                    match port.sock.send(frame) {
                        Ok(_) => {
                            port.stats[q].tx += 1;
                            port.stats[q].tx_bytes += frame.len() as u64;
                            flushed += 1;
                        }
                        Err(_) => *tx_errors += 1,
                    }
                    pool.put(buf);
                }
            }
        }
        flushed
    }

    fn queue_stats(&self, dir: Direction, q: usize) -> PortStats {
        self.port_ref(dir).stats[q]
    }
}

impl TesterIo for OsBackend {
    /// Staging directly into an OS backend is a *loopback* injection:
    /// the frame is written straight into the classified RX FIFO as if
    /// the kernel had just delivered it. Real-wire injection goes
    /// through [`OsTestRig`], whose tester sits on the veth peer.
    fn stage(
        &mut self,
        dir: Direction,
        fields_writer: impl FnOnce(&mut [u8]) -> usize,
    ) -> Option<usize> {
        let len = fields_writer(&mut self.scratch[..]);
        let OsBackend {
            pool,
            classifier,
            int_port,
            ext_port,
            scratch,
            rx_log,
            ..
        } = self;
        let port = match dir {
            Direction::Internal => int_port,
            Direction::External => ext_port,
        };
        admit(
            pool,
            classifier,
            &mut port.rx,
            &mut port.stats,
            dir,
            &scratch[..len],
            rx_log,
        )
    }

    /// Drain the backend's own TX queues without touching the wire
    /// (loopback collection, the dual of loopback staging). A live
    /// driver normally calls `flush_tx` instead, which sends on the
    /// socket.
    fn reap(&mut self, dir: Direction) -> Vec<(usize, Vec<u8>)> {
        let mut out = Vec::new();
        for q in 0..self.queue_count() {
            loop {
                let OsBackend {
                    pool,
                    int_port,
                    ext_port,
                    ..
                } = self;
                let port = match dir {
                    Direction::Internal => int_port,
                    Direction::External => ext_port,
                };
                let Some(buf) = port.tx[q].pop() else { break };
                out.push((q, pool.frame(buf).to_vec()));
                pool.put(buf);
            }
        }
        out
    }
}

/// A veth pair created (and deleted on drop) via the `ip` tool — the
/// fixture the privileged conformance tests and the CI
/// `os-backend-integration` job build their wire out of. Needs
/// `CAP_NET_ADMIN`; [`VethPair::create`] returns the underlying error
/// when the capability (or the `ip` binary) is missing, and callers
/// skip cleanly.
#[derive(Debug)]
pub struct VethPair {
    /// One end (the backend binds this).
    pub a: String,
    /// The peer end (the tester binds this).
    pub b: String,
}

fn run_ip(args: &[&str]) -> io::Result<()> {
    let out = std::process::Command::new("ip").args(args).output()?;
    if out.status.success() {
        Ok(())
    } else {
        Err(io::Error::other(format!(
            "ip {}: {}",
            args.join(" "),
            String::from_utf8_lossy(&out.stderr).trim()
        )))
    }
}

impl VethPair {
    /// Create `a <-> b`, quiesce them (IPv6 autoconf off, so the
    /// kernel does not inject router solicitations into the trace),
    /// and bring both up.
    pub fn create(a: &str, b: &str) -> io::Result<VethPair> {
        run_ip(&["link", "add", a, "type", "veth", "peer", "name", b])?;
        let pair = VethPair {
            a: a.to_string(),
            b: b.to_string(),
        };
        for dev in [a, b] {
            // Best effort: without it the kernel emits IPv6 ND noise,
            // which the NAT drops (it only ever creates state for
            // TCP/UDP over IPv4) but which inflates drop counters.
            let _ = std::fs::write(format!("/proc/sys/net/ipv6/conf/{dev}/disable_ipv6"), "1");
            run_ip(&["link", "set", dev, "up"])?;
        }
        Ok(pair)
    }
}

impl Drop for VethPair {
    fn drop(&mut self) {
        // Deleting one end removes the pair.
        let _ = run_ip(&["link", "del", &self.a]);
    }
}

/// The two-veth-pair test rig, generic over the backend transport: a
/// [`WireBackend`] (per-frame [`OsBackend`] or zero-copy
/// [`mmap::MmapBackend`]) on the near ends and tester sockets on the
/// far ends, implementing [`TesterIo`] *across the wire* — `stage`
/// transmits on the peer interface and `reap` receives what the NAT
/// sent back out, so the generic RFC 2544 harness and the conformance
/// suites run unchanged over real kernel packet I/O on either
/// transport.
pub struct OsTestRig<B: WireBackend = OsBackend> {
    backend: B,
    int_peer: RawSocket,
    ext_peer: RawSocket,
    scratch: Box<[u8; MBUF_SIZE]>,
}

impl OsTestRig<OsBackend> {
    /// Build the per-frame rig: the backend binds `int_veth.a` /
    /// `ext_veth.a`, the tester binds the `.b` peers.
    pub fn open(
        int_veth: &VethPair,
        ext_veth: &VethPair,
        classifier: RssClassifier,
        ring_size: usize,
    ) -> io::Result<OsTestRig<OsBackend>> {
        let backend = OsBackend::open(&int_veth.a, &ext_veth.a, classifier, ring_size)?;
        OsTestRig::with_backend(backend, int_veth, ext_veth)
    }
}

impl OsTestRig<mmap::MmapBackend> {
    /// Build the zero-copy rig: an [`mmap::MmapBackend`] with default
    /// ring geometry on the `.a` ends, tester sockets on the `.b`
    /// peers.
    pub fn open_mmap(
        int_veth: &VethPair,
        ext_veth: &VethPair,
        classifier: RssClassifier,
        ring_size: usize,
    ) -> io::Result<OsTestRig<mmap::MmapBackend>> {
        let backend = mmap::MmapBackend::open(
            &int_veth.a,
            &ext_veth.a,
            classifier,
            ring_size,
            mmap::MmapRingConfig::default(),
        )?;
        OsTestRig::with_backend(backend, int_veth, ext_veth)
    }
}

impl<B: WireBackend> OsTestRig<B> {
    /// Wrap an already-open backend with tester sockets on the peers.
    pub fn with_backend(
        backend: B,
        int_veth: &VethPair,
        ext_veth: &VethPair,
    ) -> io::Result<OsTestRig<B>> {
        Ok(OsTestRig {
            backend,
            int_peer: RawSocket::open(&int_veth.b)?,
            ext_peer: RawSocket::open(&ext_veth.b)?,
            scratch: Box::new([0u8; MBUF_SIZE]),
        })
    }

    /// The wrapped backend (error counters, classifier).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The wrapped backend, mutably (rx-log control, kernel-drop
    /// reads).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    fn peer(&self, dir: Direction) -> &RawSocket {
        match dir {
            Direction::Internal => &self.int_peer,
            Direction::External => &self.ext_peer,
        }
    }

    /// Receive frames the NAT transmitted out of port `dir` (arriving
    /// at the tester's peer socket), waiting up to `timeout` for at
    /// least `expect` of them. TX-queue attribution does not survive
    /// the wire, so every frame reports queue 0; order within the port
    /// is kernel delivery order.
    pub fn reap_wait(
        &mut self,
        dir: Direction,
        expect: usize,
        timeout: std::time::Duration,
    ) -> Vec<(usize, Vec<u8>)> {
        let deadline = std::time::Instant::now() + timeout;
        let mut out = Vec::new();
        let peer = match dir {
            Direction::Internal => &self.int_peer,
            Direction::External => &self.ext_peer,
        };
        let scratch = &mut self.scratch;
        loop {
            while let Ok(Some((len, pkttype))) = peer.recv_from(&mut scratch[..]) {
                if pkttype == PACKET_OUTGOING {
                    continue; // the tester's own injection, looped back
                }
                out.push((0, scratch[..len].to_vec()));
            }
            if out.len() >= expect || std::time::Instant::now() >= deadline {
                return out;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}

impl<B: WireBackend> PacketIo for OsTestRig<B> {
    fn queue_count(&self) -> usize {
        self.backend.queue_count()
    }

    fn pool(&self) -> &Mempool {
        self.backend.pool()
    }

    fn pool_mut(&mut self) -> &mut Mempool {
        self.backend.pool_mut()
    }

    fn pump_rx(&mut self) -> usize {
        self.backend.pump_rx()
    }

    fn rx_len(&self, dir: Direction, q: usize) -> usize {
        self.backend.rx_len(dir, q)
    }

    fn rx_burst(&mut self, dir: Direction, q: usize, max: usize, out: &mut Vec<BufIdx>) -> usize {
        self.backend.rx_burst(dir, q, max, out)
    }

    fn tx_put(&mut self, dir: Direction, q: usize, buf: BufIdx) -> bool {
        self.backend.tx_put(dir, q, buf)
    }

    fn flush_tx(&mut self) -> usize {
        self.backend.flush_tx()
    }

    fn queue_stats(&self, dir: Direction, q: usize) -> PortStats {
        self.backend.queue_stats(dir, q)
    }
}

impl<B: WireBackend> TesterIo for OsTestRig<B> {
    /// Inject across the wire: transmit on the peer interface; the
    /// kernel delivers to the backend's bound socket, where the next
    /// `pump_rx` classifies and admits it. Returns the queue the frame
    /// *will* classify to (the same function runs on both sides).
    fn stage(
        &mut self,
        dir: Direction,
        fields_writer: impl FnOnce(&mut [u8]) -> usize,
    ) -> Option<usize> {
        let len = fields_writer(&mut self.scratch[..]);
        let q = self
            .backend
            .classifier()
            .queue_of(dir, &self.scratch[..len]);
        match self.peer(dir).send(&self.scratch[..len]) {
            Ok(_) => Some(q),
            Err(_) => None,
        }
    }

    /// Nonblocking wire-side collection (see [`OsTestRig::reap_wait`]
    /// for the deadline variant the tests use).
    fn reap(&mut self, dir: Direction) -> Vec<(usize, Vec<u8>)> {
        self.reap_wait(dir, 0, std::time::Duration::ZERO)
    }
}

/// One backend's cross-wire RFC 2544 measurement: the rate estimate
/// plus the honesty counters that certify it (a result with kernel
/// drops or TX errors measured a congested rig, not the NAT).
#[derive(Debug, Clone)]
pub struct OsWirePoint {
    /// Saturation rate with bootstrap CI, from the same
    /// [`search_rate_with_ci`](crate::harness::search_rate_with_ci)
    /// methodology the simulated Figure 14 uses.
    pub rate: crate::harness::RateEstimate,
    /// Kernel-side drops (`PACKET_STATISTICS`) over the whole run.
    pub kernel_drops: u64,
    /// Sends the kernel refused over the whole run.
    pub tx_errors: u64,
    /// Receive errors over the whole run.
    pub rx_errors: u64,
}

/// The cross-wire RFC 2544 report: the same workload measured through
/// the simulated NIC model and across a live veth wire on both OS
/// transports. See [`os_wire_rfc2544`].
#[derive(Debug, Clone)]
pub struct OsWireReport {
    /// Simulated-backend baseline (no kernel in the loop).
    pub sim: crate::harness::RateEstimate,
    /// Per-frame raw-socket transport (`recvmmsg` RX, one send per
    /// frame).
    pub os_frame: OsWirePoint,
    /// Zero-copy mmap ring transport (`TPACKET_V3` RX, `TPACKET_V2`
    /// TX).
    pub os_mmap: OsWirePoint,
}

/// Measure saturation throughput of the sharded NAT behind the event
/// loop three ways — simulated backend, per-frame OS backend, mmap OS
/// backend — with the identical populate-then-sustained-load
/// methodology
/// ([`sustained_service_times_io`](crate::eventloop::sustained_service_times_io),
/// in-flight window = ring size), the OS points crossing a real veth
/// wire. Needs `CAP_NET_RAW` +
/// `CAP_NET_ADMIN`; interface names are `{veth_prefix}{i0,i1,e0,e1}`
/// (≤ 11 chars of prefix).
///
/// This is what populates the `os_wire_rfc2544` section of
/// `BENCH_throughput.json`: absolute sim-vs-kernel Mpps with CIs, and
/// the per-frame-vs-mmap speedup the zero-copy work is accountable to.
#[allow(clippy::too_many_arguments)]
pub fn os_wire_rfc2544(
    cfg: &vig_spec::NatConfig,
    queues: usize,
    shards: usize,
    flows: usize,
    packets: usize,
    ring_size: usize,
    veth_prefix: &str,
) -> io::Result<OsWireReport> {
    let texp = cfg.expiry_ns;

    // All three transports run the *sustained-load* measurement loop
    // (see `eventloop::sustained_service_times_io`): a block-batching
    // transport must be offered continuous load to be measured as a
    // transport, and the sim/per-frame points use the identical loop
    // so the comparison stays apples-to-apples.
    let sim = {
        let io = SimBackend::new(RssClassifier::for_nat(cfg, queues), ring_size);
        let mut nf = crate::middlebox::ShardedVigNatMb::sharded(*cfg, shards);
        let (samples, _io) = crate::eventloop::sustained_service_times_io(
            io, &mut nf, flows, packets, ring_size, texp,
        );
        crate::harness::search_rate_with_ci(&samples, ring_size)
    };

    let int_veth = VethPair::create(&format!("{veth_prefix}i0"), &format!("{veth_prefix}i1"))?;
    let ext_veth = VethPair::create(&format!("{veth_prefix}e0"), &format!("{veth_prefix}e1"))?;
    let classifier = RssClassifier::for_nat(cfg, queues);

    let os_frame = {
        let rig = OsTestRig::open(&int_veth, &ext_veth, classifier, ring_size)?;
        wire_point(rig, cfg, shards, flows, packets, ring_size, texp)
    };
    let os_mmap = {
        let rig = OsTestRig::open_mmap(&int_veth, &ext_veth, classifier, ring_size)?;
        wire_point(rig, cfg, shards, flows, packets, ring_size, texp)
    };

    Ok(OsWireReport {
        sim,
        os_frame,
        os_mmap,
    })
}

/// Run the generic measurement loop over one wire rig and package the
/// rate estimate with the rig's honesty counters.
fn wire_point<B: WireBackend>(
    rig: OsTestRig<B>,
    cfg: &vig_spec::NatConfig,
    shards: usize,
    flows: usize,
    packets: usize,
    ring_size: usize,
    texp: u64,
) -> OsWirePoint {
    let mut nf = crate::middlebox::ShardedVigNatMb::sharded(*cfg, shards);
    let (samples, mut rig) =
        crate::eventloop::sustained_service_times_io(rig, &mut nf, flows, packets, ring_size, texp);
    let rate = crate::harness::search_rate_with_ci(&samples, ring_size);
    let kernel_drops = rig.backend_mut().kernel_drops();
    OsWirePoint {
        rate,
        kernel_drops,
        tx_errors: rig.backend().tx_errors(),
        rx_errors: rig.backend().rx_errors(),
    }
}
