//! The raw libc surface: every syscall the OS backends make, wrapped
//! here and nowhere else.
//!
//! This file is the workspace's **entire** `unsafe` budget. The crate
//! root carries `#![deny(unsafe_code)]`; only this module re-allows it,
//! and every `unsafe` block sits directly inside a safe wrapper that
//! establishes its contract before the call and validates the result
//! after it. The surface:
//!
//! * raw sockets — `socket`, `bind`, `recvfrom`, `recvmmsg`, `send`,
//!   `close`, `if_nametoindex`;
//! * CPU affinity for the shard runtime — `sched_setaffinity`,
//!   `sched_getaffinity`;
//! * packet rings for [`super::mmap::MmapBackend`] — `setsockopt`
//!   (ring/version/bypass setup), `getsockopt` (kernel drop counters),
//!   `mmap`/`munmap` (the shared ring itself), `poll` (bounded waits in
//!   tests), and the zero-length `send` that kicks a TX ring.
//!
//! The shared ring memory is the subtle part: the kernel writes block
//! and frame descriptors into the same pages we read. [`RingMap`]
//! therefore exposes only bounds-checked accessors — status words are
//! read/written with volatile ops (the kernel is the other side of the
//! handoff), and a byte slice over frame data can only be formed
//! through [`RingMap::bytes`], *after* the caller has validated the
//! descriptor that produced the offsets. The descriptor validation
//! itself lives in safe code (`super::mmap`), where it is unit-tested
//! on synthetic ring images; this module only enforces that no access
//! can leave the mapping.

#![allow(unsafe_code)]

use std::io;

pub type CInt = i32;

const AF_PACKET: CInt = 17;
const SOCK_RAW: CInt = 3;
/// `SOCK_NONBLOCK`: open the socket nonblocking, no fcntl dance.
const SOCK_NONBLOCK: CInt = 0o4000;
/// `ETH_P_ALL` in network byte order, as `socket(2)` wants it.
pub const ETH_P_ALL_BE: CInt = 0x0300;

const SOL_PACKET: CInt = 263;
const PACKET_RX_RING: CInt = 5;
const PACKET_STATISTICS: CInt = 6;
const PACKET_VERSION: CInt = 10;
const PACKET_TX_RING: CInt = 13;
const PACKET_QDISC_BYPASS: CInt = 20;
const PACKET_IGNORE_OUTGOING: CInt = 23;

/// `TPACKET_V2`: fixed-size frame slots, status word first — the TX
/// ring format.
pub const TPACKET_V2: CInt = 1;
/// `TPACKET_V3`: variable-size frames packed into block-granular
/// handoff — the RX ring format.
pub const TPACKET_V3: CInt = 2;

const PROT_READ: CInt = 1;
const PROT_WRITE: CInt = 2;
const MAP_SHARED: CInt = 1;

const MSG_DONTWAIT: CInt = 0x40;
const POLLIN: i16 = 1;

/// `struct sockaddr_ll` (linux/if_packet.h), the AF_PACKET bind
/// address: 20 bytes, `repr(C)` so the kernel sees the C layout.
#[repr(C)]
pub struct SockaddrLl {
    pub sll_family: u16,
    /// Network byte order.
    pub sll_protocol: u16,
    pub sll_ifindex: i32,
    pub sll_hatype: u16,
    pub sll_pkttype: u8,
    pub sll_halen: u8,
    pub sll_addr: [u8; 8],
}

impl SockaddrLl {
    fn zeroed() -> SockaddrLl {
        SockaddrLl {
            sll_family: 0,
            sll_protocol: 0,
            sll_ifindex: 0,
            sll_hatype: 0,
            sll_pkttype: 0,
            sll_halen: 0,
            sll_addr: [0; 8],
        }
    }
}

/// `struct tpacket_req3` (linux/if_packet.h): TPACKET_V3 RX ring
/// geometry.
#[repr(C)]
struct TpacketReq3 {
    tp_block_size: u32,
    tp_block_nr: u32,
    tp_frame_size: u32,
    tp_frame_nr: u32,
    tp_retire_blk_tov: u32,
    tp_sizeof_priv: u32,
    tp_feature_req_word: u32,
}

/// `struct tpacket_req`: V1/V2 ring geometry (the TX ring).
#[repr(C)]
struct TpacketReq {
    tp_block_size: u32,
    tp_block_nr: u32,
    tp_frame_size: u32,
    tp_frame_nr: u32,
}

/// `struct tpacket_stats_v3`: kernel-side RX counters, reset on read.
#[repr(C)]
struct TpacketStatsV3 {
    tp_packets: u32,
    tp_drops: u32,
    tp_freeze_q_cnt: u32,
}

/// `struct iovec`.
#[repr(C)]
struct IoVec {
    base: *mut u8,
    len: usize,
}

/// `struct msghdr` (x86-64 layout; `repr(C)` reproduces the padding
/// after the 32-bit `namelen`).
#[repr(C)]
struct MsgHdr {
    name: *mut SockaddrLl,
    namelen: u32,
    iov: *mut IoVec,
    iovlen: usize,
    control: *mut u8,
    controllen: usize,
    flags: CInt,
}

/// `struct mmsghdr`.
#[repr(C)]
struct MMsgHdr {
    hdr: MsgHdr,
    len: u32,
}

/// `struct pollfd`.
#[repr(C)]
struct PollFd {
    fd: CInt,
    events: i16,
    revents: i16,
}

extern "C" {
    fn socket(domain: CInt, ty: CInt, protocol: CInt) -> CInt;
    fn bind(fd: CInt, addr: *const SockaddrLl, addrlen: u32) -> CInt;
    fn recvfrom(
        fd: CInt,
        buf: *mut u8,
        len: usize,
        flags: CInt,
        addr: *mut SockaddrLl,
        addrlen: *mut u32,
    ) -> isize;
    fn recvmmsg(fd: CInt, vec: *mut MMsgHdr, vlen: u32, flags: CInt, timeout: *mut u8) -> CInt;
    fn send(fd: CInt, buf: *const u8, len: usize, flags: CInt) -> isize;
    fn close(fd: CInt) -> CInt;
    fn if_nametoindex(name: *const u8) -> u32;
    fn sched_setaffinity(pid: CInt, cpusetsize: usize, mask: *const u64) -> CInt;
    fn sched_getaffinity(pid: CInt, cpusetsize: usize, mask: *mut u64) -> CInt;
    fn setsockopt(fd: CInt, level: CInt, name: CInt, val: *const u8, len: u32) -> CInt;
    fn getsockopt(fd: CInt, level: CInt, name: CInt, val: *mut u8, len: *mut u32) -> CInt;
    fn mmap(addr: *mut u8, len: usize, prot: CInt, flags: CInt, fd: CInt, off: i64) -> *mut u8;
    fn munmap(addr: *mut u8, len: usize) -> CInt;
    fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: CInt) -> CInt;
}

/// Words in the affinity mask: 16 × 64 = 1024 CPUs, the kernel's
/// default `CONFIG_NR_CPUS` ceiling.
const MASK_WORDS: usize = 16;

/// Restrict the *calling thread* (pid 0) to the single CPU `cpu`.
pub fn set_affinity(cpu: usize) -> io::Result<()> {
    if cpu >= MASK_WORDS * 64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("cpu index {cpu} out of mask range"),
        ));
    }
    let mut mask = [0u64; MASK_WORDS];
    mask[cpu / 64] = 1u64 << (cpu % 64);
    // SAFETY: `mask` is a valid readable buffer of `cpusetsize`
    // bytes for the call's duration; pid 0 is the calling thread.
    let rc = unsafe { sched_setaffinity(0, MASK_WORDS * 8, mask.as_ptr()) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// The CPUs the calling thread is allowed to run on, in ascending
/// order (cgroup/taskset restrictions included — exactly the set a
/// runner's `taskset` limit leaves us).
pub fn get_affinity() -> io::Result<Vec<usize>> {
    let mut mask = [0u64; MASK_WORDS];
    // SAFETY: `mask` is a valid writable buffer of `cpusetsize`
    // bytes; the kernel writes at most that much.
    let rc = unsafe { sched_getaffinity(0, MASK_WORDS * 8, mask.as_mut_ptr()) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    let mut cpus = Vec::new();
    for (w, word) in mask.iter().enumerate() {
        for b in 0..64 {
            if word & (1u64 << b) != 0 {
                cpus.push(w * 64 + b);
            }
        }
    }
    Ok(cpus)
}

/// Resolve an interface name (NUL-terminated internally) to its
/// index.
pub fn ifindex(name: &str) -> io::Result<i32> {
    let mut z: Vec<u8> = name.as_bytes().to_vec();
    if z.contains(&0) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "interface name contains NUL",
        ));
    }
    z.push(0);
    // SAFETY: `z` is a valid NUL-terminated buffer for the call's
    // duration; if_nametoindex only reads it.
    let idx = unsafe { if_nametoindex(z.as_ptr()) };
    if idx == 0 {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no such interface: {name}"),
        ));
    }
    Ok(idx as i32)
}

/// `socket(AF_PACKET, SOCK_RAW|SOCK_NONBLOCK, proto_be)`, unbound.
/// Protocol 0 makes a TX-only socket: the kernel never delivers RX
/// frames to it, which is exactly what the mmap backend's TX ring
/// socket wants.
pub fn open_raw(proto_be: CInt) -> io::Result<CInt> {
    // SAFETY: plain syscall, no pointers.
    let fd = unsafe { socket(AF_PACKET, SOCK_RAW | SOCK_NONBLOCK, proto_be) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Bind a packet socket to interface `idx` with protocol `proto_be`.
pub fn bind_to(fd: CInt, idx: i32, proto_be: CInt) -> io::Result<()> {
    let addr = SockaddrLl {
        sll_family: AF_PACKET as u16,
        sll_protocol: proto_be as u16,
        sll_ifindex: idx,
        sll_hatype: 0,
        sll_pkttype: 0,
        sll_halen: 0,
        sll_addr: [0; 8],
    };
    // SAFETY: `addr` is a properly initialized sockaddr_ll and
    // outlives the call; the kernel copies it.
    let rc = unsafe { bind(fd, &addr, std::mem::size_of::<SockaddrLl>() as u32) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// `socket(AF_PACKET, SOCK_RAW|SOCK_NONBLOCK, htons(ETH_P_ALL))`
/// bound to interface `idx`. Returns the fd.
pub fn open_bound(idx: i32) -> io::Result<CInt> {
    let fd = open_raw(ETH_P_ALL_BE)?;
    if let Err(e) = bind_to(fd, idx, ETH_P_ALL_BE) {
        close_fd(fd);
        return Err(e);
    }
    Ok(fd)
}

/// Retry accounting for the hardened wrappers below — the honesty
/// counters [`WireBackend::io_retries`](super::WireBackend::io_retries)
/// surfaces. `EINTR` is retried unconditionally (a signal interrupting
/// a syscall is not an I/O outcome); `ENOBUFS` on TX gets a bounded
/// exponential backoff before the error is surfaced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Retries {
    /// Syscalls transparently re-issued after `EINTR`.
    pub eintr: u64,
    /// TX backoff-sleeps taken on `ENOBUFS` before retrying.
    pub enobufs: u64,
}

/// `ENOBUFS` (no kernel buffer space, errno 105 on Linux) has no
/// `io::ErrorKind` mapping; match the raw errno.
const ENOBUFS_ERRNO: i32 = 105;

/// Backoff-retry attempts on `ENOBUFS` TX before surfacing the error:
/// sleeps of 50 µs doubling per attempt (350 µs worst-case total) ride
/// out a qdisc burst without turning a dead link into a stall.
const ENOBUFS_TX_ATTEMPTS: u32 = 3;
const ENOBUFS_BACKOFF_MIN_US: u64 = 50;

fn enobufs(e: &io::Error) -> bool {
    e.raw_os_error() == Some(ENOBUFS_ERRNO)
}

/// Nonblocking receive; returns `(len, sll_pkttype)`, `None` when
/// no frame is waiting. Retries `EINTR` (counted in `retries`).
pub fn recv_one(
    fd: CInt,
    buf: &mut [u8],
    retries: &mut Retries,
) -> io::Result<Option<(usize, u8)>> {
    loop {
        let mut from = SockaddrLl::zeroed();
        let mut fromlen = std::mem::size_of::<SockaddrLl>() as u32;
        // SAFETY: buf/from/fromlen are valid for the call's duration;
        // the kernel writes at most `buf.len()` bytes and a sockaddr_ll.
        let n = unsafe { recvfrom(fd, buf.as_mut_ptr(), buf.len(), 0, &mut from, &mut fromlen) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                retries.eintr += 1;
                continue;
            }
            if e.kind() == io::ErrorKind::WouldBlock {
                return Ok(None);
            }
            return Err(e);
        }
        return Ok(Some((n as usize, from.sll_pkttype)));
    }
}

/// Frames per [`recv_burst`] call — one `recvmmsg` syscall drains up
/// to this many.
pub const BURST_FRAMES: usize = 32;

/// Batched nonblocking receive: one `recvmmsg` syscall for up to
/// [`BURST_FRAMES`] frames. `buf` is a flat scratch of at least
/// `BURST_FRAMES * frame_cap` bytes; on return, frame `i` occupies
/// `buf[i*frame_cap .. i*frame_cap + lens[i]]` and `pkttypes[i]` is
/// its `sll_pkttype`. Returns the frame count (0 = nothing waiting).
pub fn recv_burst(
    fd: CInt,
    buf: &mut [u8],
    frame_cap: usize,
    lens: &mut [usize; BURST_FRAMES],
    pkttypes: &mut [u8; BURST_FRAMES],
    retries: &mut Retries,
) -> io::Result<usize> {
    assert!(frame_cap > 0 && buf.len() >= BURST_FRAMES * frame_cap);
    let mut addrs: [SockaddrLl; BURST_FRAMES] = std::array::from_fn(|_| SockaddrLl::zeroed());
    let mut iovs: Vec<IoVec> = Vec::with_capacity(BURST_FRAMES);
    for chunk in buf.chunks_exact_mut(frame_cap).take(BURST_FRAMES) {
        iovs.push(IoVec {
            base: chunk.as_mut_ptr(),
            len: frame_cap,
        });
    }
    let mut msgs: Vec<MMsgHdr> = (0..BURST_FRAMES)
        .map(|i| MMsgHdr {
            hdr: MsgHdr {
                name: &mut addrs[i],
                namelen: std::mem::size_of::<SockaddrLl>() as u32,
                iov: &mut iovs[i],
                iovlen: 1,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            },
            len: 0,
        })
        .collect();
    let n = loop {
        // SAFETY: every pointer in `msgs` (names, iovecs, data buffers)
        // refers to live, disjoint, properly sized buffers that outlive
        // the call; vlen matches the array length; timeout NULL is the
        // documented "no timeout" value.
        let n = unsafe {
            recvmmsg(
                fd,
                msgs.as_mut_ptr(),
                BURST_FRAMES as u32,
                MSG_DONTWAIT,
                std::ptr::null_mut(),
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                retries.eintr += 1;
                continue;
            }
            if e.kind() == io::ErrorKind::WouldBlock {
                return Ok(0);
            }
            return Err(e);
        }
        break n as usize;
    };
    for i in 0..n {
        lens[i] = msgs[i].len as usize;
        pkttypes[i] = addrs[i].sll_pkttype;
    }
    Ok(n)
}

/// Send one frame on the bound interface. Retries `EINTR`
/// unconditionally; backs off and retries `ENOBUFS` up to
/// [`ENOBUFS_TX_ATTEMPTS`] times (both counted in `retries`) before
/// surfacing the error — bounded degradation, never a stall.
pub fn send_one(fd: CInt, frame: &[u8], retries: &mut Retries) -> io::Result<usize> {
    let mut enobufs_left = ENOBUFS_TX_ATTEMPTS;
    let mut backoff_us = ENOBUFS_BACKOFF_MIN_US;
    loop {
        // SAFETY: frame is a valid readable buffer for the call.
        let n = unsafe { send(fd, frame.as_ptr(), frame.len(), 0) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                retries.eintr += 1;
                continue;
            }
            if enobufs(&e) && enobufs_left > 0 {
                enobufs_left -= 1;
                retries.enobufs += 1;
                std::thread::sleep(std::time::Duration::from_micros(backoff_us));
                backoff_us *= 2;
                continue;
            }
            return Err(e);
        }
        return Ok(n as usize);
    }
}

/// Kick a TX ring: `send(fd, NULL, 0, MSG_DONTWAIT)` tells the kernel
/// to walk the ring and transmit every `TP_STATUS_SEND_REQUEST` slot.
/// Retries `EINTR`; treats `ENOBUFS` like `EWOULDBLOCK` after a
/// bounded backoff (ring slots stay `SEND_REQUEST` and the next flush
/// re-kicks them — congestion delays frames, it must not error a
/// healthy ring).
pub fn send_flush(fd: CInt, retries: &mut Retries) -> io::Result<()> {
    let mut enobufs_left = ENOBUFS_TX_ATTEMPTS;
    let mut backoff_us = ENOBUFS_BACKOFF_MIN_US;
    loop {
        // SAFETY: a NULL buffer of length 0 is the documented TX-ring
        // flush form; the kernel reads frame data from the shared ring,
        // not from this pointer.
        let n = unsafe { send(fd, std::ptr::null(), 0, MSG_DONTWAIT) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                retries.eintr += 1;
                continue;
            }
            if e.kind() == io::ErrorKind::WouldBlock {
                return Ok(()); // partial progress; re-kicked next flush
            }
            if enobufs(&e) {
                if enobufs_left > 0 {
                    enobufs_left -= 1;
                    retries.enobufs += 1;
                    std::thread::sleep(std::time::Duration::from_micros(backoff_us));
                    backoff_us *= 2;
                    continue;
                }
                return Ok(()); // still congested; re-kicked next flush
            }
            return Err(e);
        }
        return Ok(());
    }
}

/// Close the fd (Drop path; errors ignored like stdlib's File).
pub fn close_fd(fd: CInt) {
    // SAFETY: fd belongs to the socket wrapper being dropped.
    unsafe { close(fd) };
}

fn set_opt(fd: CInt, name: CInt, val: *const u8, len: usize) -> io::Result<()> {
    // SAFETY (shared by all callers below): `val` points to a live,
    // properly sized and aligned option struct for the call's
    // duration; the kernel copies it.
    let rc = unsafe { setsockopt(fd, SOL_PACKET, name, val, len as u32) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// `PACKET_VERSION`: select the tpacket descriptor format
/// ([`TPACKET_V2`] / [`TPACKET_V3`]). Must precede ring setup.
pub fn set_packet_version(fd: CInt, version: CInt) -> io::Result<()> {
    set_opt(
        fd,
        PACKET_VERSION,
        (&version as *const CInt).cast(),
        std::mem::size_of::<CInt>(),
    )
}

/// `PACKET_QDISC_BYPASS`: transmissions skip the qdisc layer and go
/// straight to the device. Best-effort — callers may ignore failure
/// on kernels without it.
pub fn set_qdisc_bypass(fd: CInt) -> io::Result<()> {
    let one: CInt = 1;
    set_opt(
        fd,
        PACKET_QDISC_BYPASS,
        (&one as *const CInt).cast(),
        std::mem::size_of::<CInt>(),
    )
}

/// `PACKET_IGNORE_OUTGOING`: the socket stops receiving looped-back
/// copies of its host's own transmissions. Best-effort (kernels
/// before 4.20 lack it) — receivers must still filter
/// `PACKET_OUTGOING` by `sll_pkttype`, this just keeps the junk out
/// of the ring/queue in the first place.
pub fn set_ignore_outgoing(fd: CInt) -> io::Result<()> {
    let one: CInt = 1;
    set_opt(
        fd,
        PACKET_IGNORE_OUTGOING,
        (&one as *const CInt).cast(),
        std::mem::size_of::<CInt>(),
    )
}

/// `PACKET_RX_RING` with a TPACKET_V3 geometry: `block_count` blocks
/// of `block_size` bytes, retire timeout `retire_ms` (a partially
/// filled block is handed to user space after at most this long).
pub fn set_rx_ring_v3(
    fd: CInt,
    block_size: u32,
    block_count: u32,
    frame_size: u32,
    retire_ms: u32,
) -> io::Result<()> {
    let req = TpacketReq3 {
        tp_block_size: block_size,
        tp_block_nr: block_count,
        tp_frame_size: frame_size,
        tp_frame_nr: (block_size / frame_size) * block_count,
        tp_retire_blk_tov: retire_ms,
        tp_sizeof_priv: 0,
        tp_feature_req_word: 0,
    };
    set_opt(
        fd,
        PACKET_RX_RING,
        (&req as *const TpacketReq3).cast(),
        std::mem::size_of::<TpacketReq3>(),
    )
}

/// `PACKET_TX_RING` with a V2 geometry: fixed `frame_size` slots.
pub fn set_tx_ring_v2(
    fd: CInt,
    block_size: u32,
    block_count: u32,
    frame_size: u32,
) -> io::Result<()> {
    let req = TpacketReq {
        tp_block_size: block_size,
        tp_block_nr: block_count,
        tp_frame_size: frame_size,
        tp_frame_nr: (block_size / frame_size) * block_count,
    };
    set_opt(
        fd,
        PACKET_TX_RING,
        (&req as *const TpacketReq).cast(),
        std::mem::size_of::<TpacketReq>(),
    )
}

/// `PACKET_STATISTICS`: kernel-side `(received, dropped, queue
/// freezes)` counters for the socket since the last read (the kernel
/// resets them on read — callers accumulate).
pub fn ring_stats(fd: CInt) -> io::Result<(u64, u64, u64)> {
    let mut st = TpacketStatsV3 {
        tp_packets: 0,
        tp_drops: 0,
        tp_freeze_q_cnt: 0,
    };
    let mut len = std::mem::size_of::<TpacketStatsV3>() as u32;
    // SAFETY: `st`/`len` are valid for the call; the kernel writes at
    // most `len` bytes (8 for V1/V2 sockets, 12 for V3 — both fit).
    let rc = unsafe {
        getsockopt(
            fd,
            SOL_PACKET,
            PACKET_STATISTICS,
            (&mut st as *mut TpacketStatsV3).cast(),
            &mut len,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((
        st.tp_packets as u64,
        st.tp_drops as u64,
        st.tp_freeze_q_cnt as u64,
    ))
}

/// Block until `fd` is readable or `timeout_ms` elapses. Returns
/// whether it became readable. Used by tests to wait out a block
/// retire timeout without busy-spinning; the backends themselves
/// never block.
pub fn wait_readable(fd: CInt, timeout_ms: i32) -> io::Result<bool> {
    let mut pfd = PollFd {
        fd,
        events: POLLIN,
        revents: 0,
    };
    // SAFETY: `pfd` is a valid pollfd array of length 1 for the
    // call's duration.
    let rc = unsafe { poll(&mut pfd, 1, timeout_ms) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc > 0 && (pfd.revents & POLLIN) != 0)
}

/// A shared memory mapping over a packet socket's ring(s), unmapped on
/// drop. All access is bounds-checked; the status-word accessors are
/// volatile because the kernel writes the same addresses concurrently.
///
/// The only way to form a byte slice over ring memory is
/// [`RingMap::bytes`]; its contract (the caller holds a user-owned
/// block whose descriptor has been validated) is the trusted boundary
/// documented in `docs/ARCHITECTURE.md`.
#[derive(Debug)]
pub struct RingMap {
    base: *mut u8,
    len: usize,
}

// SAFETY: the mapping is exclusively owned by this handle (the kernel
// is the other party of the explicit status-word handoff protocol);
// moving the handle to another thread moves that ownership with it.
unsafe impl Send for RingMap {}

impl RingMap {
    /// `mmap(PROT_READ|PROT_WRITE, MAP_SHARED)` over `len` bytes of
    /// `fd`'s ring. The kernel requires `len` to equal the configured
    /// ring sizes (RX ring first, then TX, when both are set).
    pub fn map_ring(fd: CInt, len: usize) -> io::Result<RingMap> {
        // SAFETY: NULL addr + MAP_SHARED is the standard "kernel picks
        // the address" form; the result is checked against MAP_FAILED
        // before use.
        let base = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd,
                0,
            )
        };
        if base as usize == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        Ok(RingMap { base, len })
    }

    /// Mapping length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Volatile `u32` read at byte offset `off` (native endianness —
    /// the kernel writes descriptors in host order). `None` when the
    /// read would leave the mapping or is misaligned.
    pub fn u32_at(&self, off: usize) -> Option<u32> {
        if !off.is_multiple_of(4) || off.checked_add(4)? > self.len {
            return None;
        }
        // SAFETY: in-bounds and 4-aligned per the check above; volatile
        // because the kernel may write this word concurrently (status
        // handoff), and a torn read of a 32-bit aligned word cannot
        // occur on supported targets.
        Some(unsafe { (self.base.add(off) as *const u32).read_volatile() })
    }

    /// Volatile `u32` write at byte offset `off`. Returns `false`
    /// (writing nothing) when out of bounds or misaligned.
    pub fn set_u32(&mut self, off: usize, v: u32) -> bool {
        if !off.is_multiple_of(4) || off + 4 > self.len {
            return false;
        }
        // SAFETY: in-bounds and aligned per the check; volatile for
        // the same handoff reason as `u32_at`.
        unsafe { (self.base.add(off) as *mut u32).write_volatile(v) };
        true
    }

    /// `u16` read at `off` (2-aligned, bounds-checked).
    pub fn u16_at(&self, off: usize) -> Option<u16> {
        if !off.is_multiple_of(2) || off.checked_add(2)? > self.len {
            return None;
        }
        // SAFETY: in-bounds and 2-aligned per the check above.
        Some(unsafe { (self.base.add(off) as *const u16).read_volatile() })
    }

    /// `u8` read at `off` (bounds-checked).
    pub fn u8_at(&self, off: usize) -> Option<u8> {
        if off >= self.len {
            return None;
        }
        // SAFETY: in-bounds per the check above.
        Some(unsafe { self.base.add(off).read_volatile() })
    }

    /// A byte slice over `[off, off+len)` of the mapping.
    ///
    /// Contract (the trusted boundary): the caller must only call this
    /// for regions inside a block the kernel has handed to user space
    /// (`TP_STATUS_USER` observed on that block's status word) and
    /// whose descriptor offsets have been validated — the kernel does
    /// not write user-owned blocks, so the slice is stable until the
    /// block is released.
    pub fn bytes(&self, off: usize, len: usize) -> Option<&[u8]> {
        let end = off.checked_add(len)?;
        if end > self.len {
            return None;
        }
        // SAFETY: in-bounds per the check; stability of the region is
        // the documented caller contract above.
        Some(unsafe { std::slice::from_raw_parts(self.base.add(off), len) })
    }

    /// Copy `src` into the mapping at `off`. Returns `false` (writing
    /// nothing) when it would not fit. Used to fill TX slots the
    /// backend owns (status `TP_STATUS_AVAILABLE`).
    pub fn write_bytes(&mut self, off: usize, src: &[u8]) -> bool {
        let Some(end) = off.checked_add(src.len()) else {
            return false;
        };
        if end > self.len {
            return false;
        }
        // SAFETY: in-bounds per the check; the caller owns the slot
        // per the status handoff, so the kernel is not reading it.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.base.add(off), src.len());
        }
        true
    }
}

impl Drop for RingMap {
    fn drop(&mut self) {
        // SAFETY: base/len are exactly what mmap returned; unmapping
        // on drop is the leak-free teardown the tests pin down. Errors
        // are ignored like stdlib File close.
        unsafe { munmap(self.base, self.len) };
    }
}
