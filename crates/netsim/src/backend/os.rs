//! [`OsBackend`]: real OS packet I/O behind the [`PacketIo`] seam
//! (Linux `AF_PACKET` raw sockets).
//!
//! One nonblocking raw socket per port, bound to a network interface —
//! a veth pair end in the intended deployment — receives every frame
//! the kernel delivers there and transmits the NAT's output. Frames
//! are classified into per-queue software FIFOs by the *same*
//! [`RssClassifier`] the sim backend and the sharded table use, so the
//! verified NAT, the event loop, and the conformance suites are
//! identical across backends; only the frame source changes.
//!
//! ## The trust boundary
//!
//! This module (specifically its private `sys` block) contains the
//! workspace's only `unsafe` code: the six libc calls a raw socket
//! needs (`socket`, `bind`, `recvfrom`, `send`, `close`,
//! `if_nametoindex`) plus the two CPU-affinity calls the shard runtime
//! uses (`sched_setaffinity`, `sched_getaffinity`). Everything is
//! wrapped immediately into safe functions ([`RawSocket`],
//! [`pin_current_thread`], [`allowed_cpus`]); no unsafe escapes this
//! file. The kernel's packet path below the socket is
//! trusted, exactly as the paper trusts DPDK and the NIC hardware —
//! the verified properties cover what happens to a frame *after*
//! [`OsBackend::pump_rx`] admits it and *before* `flush_tx` hands it
//! back. See `docs/ARCHITECTURE.md` ("The backend layer").
//!
//! ## Privileges
//!
//! `AF_PACKET` sockets need `CAP_NET_RAW`; creating veth pairs needs
//! `CAP_NET_ADMIN`. [`OsBackend::open`] fails with a plain
//! `io::Error` when they are missing, and the conformance tests skip
//! cleanly in that case (CI runs them in a privileged job).

use super::{PacketIo, TesterIo};
use crate::dpdk::{BufIdx, Mempool, PortStats, Ring, MBUF_SIZE};
use crate::frame_env::RssClassifier;
use std::io;
use vig_packet::Direction;

/// The `sll_pkttype` of a frame the socket itself sent (looped back by
/// the kernel for observers); the RX pump filters these out.
const PACKET_OUTGOING: u8 = 4;

/// The raw libc surface: eight syscalls, wrapped here and nowhere else.
mod sys {
    #![allow(unsafe_code)]

    use std::io;

    pub type CInt = i32;

    const AF_PACKET: CInt = 17;
    const SOCK_RAW: CInt = 3;
    /// `SOCK_NONBLOCK`: open the socket nonblocking, no fcntl dance.
    const SOCK_NONBLOCK: CInt = 0o4000;
    /// `ETH_P_ALL` in network byte order, as `socket(2)` wants it.
    const ETH_P_ALL_BE: CInt = 0x0300;

    /// `struct sockaddr_ll` (linux/if_packet.h), the AF_PACKET bind
    /// address: 20 bytes, `repr(C)` so the kernel sees the C layout.
    #[repr(C)]
    pub struct SockaddrLl {
        pub sll_family: u16,
        /// Network byte order.
        pub sll_protocol: u16,
        pub sll_ifindex: i32,
        pub sll_hatype: u16,
        pub sll_pkttype: u8,
        pub sll_halen: u8,
        pub sll_addr: [u8; 8],
    }

    extern "C" {
        fn socket(domain: CInt, ty: CInt, protocol: CInt) -> CInt;
        fn bind(fd: CInt, addr: *const SockaddrLl, addrlen: u32) -> CInt;
        fn recvfrom(
            fd: CInt,
            buf: *mut u8,
            len: usize,
            flags: CInt,
            addr: *mut SockaddrLl,
            addrlen: *mut u32,
        ) -> isize;
        fn send(fd: CInt, buf: *const u8, len: usize, flags: CInt) -> isize;
        fn close(fd: CInt) -> CInt;
        fn if_nametoindex(name: *const u8) -> u32;
        fn sched_setaffinity(pid: CInt, cpusetsize: usize, mask: *const u64) -> CInt;
        fn sched_getaffinity(pid: CInt, cpusetsize: usize, mask: *mut u64) -> CInt;
    }

    /// Words in the affinity mask: 16 × 64 = 1024 CPUs, the kernel's
    /// default `CONFIG_NR_CPUS` ceiling.
    const MASK_WORDS: usize = 16;

    /// Restrict the *calling thread* (pid 0) to the single CPU `cpu`.
    pub fn set_affinity(cpu: usize) -> io::Result<()> {
        if cpu >= MASK_WORDS * 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cpu index {cpu} out of mask range"),
            ));
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[cpu / 64] = 1u64 << (cpu % 64);
        // SAFETY: `mask` is a valid readable buffer of `cpusetsize`
        // bytes for the call's duration; pid 0 is the calling thread.
        let rc = unsafe { sched_setaffinity(0, MASK_WORDS * 8, mask.as_ptr()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// The CPUs the calling thread is allowed to run on, in ascending
    /// order (cgroup/taskset restrictions included — exactly the set a
    /// runner's `taskset` limit leaves us).
    pub fn get_affinity() -> io::Result<Vec<usize>> {
        let mut mask = [0u64; MASK_WORDS];
        // SAFETY: `mask` is a valid writable buffer of `cpusetsize`
        // bytes; the kernel writes at most that much.
        let rc = unsafe { sched_getaffinity(0, MASK_WORDS * 8, mask.as_mut_ptr()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        let mut cpus = Vec::new();
        for (w, word) in mask.iter().enumerate() {
            for b in 0..64 {
                if word & (1u64 << b) != 0 {
                    cpus.push(w * 64 + b);
                }
            }
        }
        Ok(cpus)
    }

    /// Resolve an interface name (NUL-terminated internally) to its
    /// index.
    pub fn ifindex(name: &str) -> io::Result<i32> {
        let mut z: Vec<u8> = name.as_bytes().to_vec();
        if z.contains(&0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "interface name contains NUL",
            ));
        }
        z.push(0);
        // SAFETY: `z` is a valid NUL-terminated buffer for the call's
        // duration; if_nametoindex only reads it.
        let idx = unsafe { if_nametoindex(z.as_ptr()) };
        if idx == 0 {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such interface: {name}"),
            ));
        }
        Ok(idx as i32)
    }

    /// `socket(AF_PACKET, SOCK_RAW|SOCK_NONBLOCK, htons(ETH_P_ALL))`
    /// bound to interface `idx`. Returns the fd.
    pub fn open_bound(idx: i32) -> io::Result<CInt> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { socket(AF_PACKET, SOCK_RAW | SOCK_NONBLOCK, ETH_P_ALL_BE) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let addr = SockaddrLl {
            sll_family: AF_PACKET as u16,
            sll_protocol: ETH_P_ALL_BE as u16,
            sll_ifindex: idx,
            sll_hatype: 0,
            sll_pkttype: 0,
            sll_halen: 0,
            sll_addr: [0; 8],
        };
        // SAFETY: `addr` is a properly initialized sockaddr_ll and
        // outlives the call; the kernel copies it.
        let rc = unsafe { bind(fd, &addr, std::mem::size_of::<SockaddrLl>() as u32) };
        if rc < 0 {
            let e = io::Error::last_os_error();
            // SAFETY: fd is the socket we just opened.
            unsafe { close(fd) };
            return Err(e);
        }
        Ok(fd)
    }

    /// Nonblocking receive; returns `(len, sll_pkttype)`, `None` when
    /// no frame is waiting.
    pub fn recv_one(fd: CInt, buf: &mut [u8]) -> io::Result<Option<(usize, u8)>> {
        let mut from = SockaddrLl {
            sll_family: 0,
            sll_protocol: 0,
            sll_ifindex: 0,
            sll_hatype: 0,
            sll_pkttype: 0,
            sll_halen: 0,
            sll_addr: [0; 8],
        };
        let mut fromlen = std::mem::size_of::<SockaddrLl>() as u32;
        // SAFETY: buf/from/fromlen are valid for the call's duration;
        // the kernel writes at most `buf.len()` bytes and a sockaddr_ll.
        let n = unsafe { recvfrom(fd, buf.as_mut_ptr(), buf.len(), 0, &mut from, &mut fromlen) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::WouldBlock {
                return Ok(None);
            }
            return Err(e);
        }
        Ok(Some((n as usize, from.sll_pkttype)))
    }

    /// Send one frame on the bound interface.
    pub fn send_one(fd: CInt, frame: &[u8]) -> io::Result<usize> {
        // SAFETY: frame is a valid readable buffer for the call.
        let n = unsafe { send(fd, frame.as_ptr(), frame.len(), 0) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(n as usize)
    }

    /// Close the fd (Drop path; errors ignored like stdlib's File).
    pub fn close_fd(fd: CInt) {
        // SAFETY: fd belongs to the RawSocket being dropped.
        unsafe { close(fd) };
    }
}

/// Pin the **calling thread** to CPU `cpu` via `sched_setaffinity`.
///
/// The shard runtime calls this from each worker thread at startup so a
/// shard's cache state stays on one core. Failure (unprivileged or
/// cgroup-restricted environments, or a CPU index outside the allowed
/// set) is an ordinary `io::Error`; callers fall back to unpinned
/// workers and report the degradation, they do not abort.
pub fn pin_current_thread(cpu: usize) -> io::Result<()> {
    sys::set_affinity(cpu)
}

/// The CPUs the calling thread may run on, ascending — the honest core
/// budget under taskset/cgroup limits, which the shard runtime uses to
/// choose pin targets and the benches report as `host_cores`.
pub fn allowed_cpus() -> io::Result<Vec<usize>> {
    sys::get_affinity()
}

/// A safe handle to one nonblocking `AF_PACKET` socket bound to an
/// interface. Closed on drop.
#[derive(Debug)]
pub struct RawSocket {
    fd: sys::CInt,
    ifname: String,
}

impl RawSocket {
    /// Open and bind to `ifname`. Needs `CAP_NET_RAW`.
    pub fn open(ifname: &str) -> io::Result<RawSocket> {
        let idx = sys::ifindex(ifname)?;
        let fd = sys::open_bound(idx)?;
        Ok(RawSocket {
            fd,
            ifname: ifname.to_string(),
        })
    }

    /// The interface this socket is bound to.
    pub fn ifname(&self) -> &str {
        &self.ifname
    }

    /// Nonblocking receive into `buf`; `Ok(None)` when nothing is
    /// waiting. Returns `(frame_len, sll_pkttype)` — callers filter
    /// `pkttype == PACKET_OUTGOING` to ignore their own transmissions.
    pub fn recv_from(&self, buf: &mut [u8]) -> io::Result<Option<(usize, u8)>> {
        sys::recv_one(self.fd, buf)
    }

    /// Transmit one frame out the bound interface.
    pub fn send(&self, frame: &[u8]) -> io::Result<usize> {
        sys::send_one(self.fd, frame)
    }
}

impl Drop for RawSocket {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

/// One port of the OS backend: a bound socket plus the per-queue
/// software FIFOs and stats the driver contract requires.
struct OsPort {
    sock: RawSocket,
    rx: Vec<Ring>,
    tx: Vec<Ring>,
    stats: Vec<PortStats>,
}

impl OsPort {
    fn new(sock: RawSocket, queues: usize, ring_size: usize) -> OsPort {
        OsPort {
            sock,
            rx: (0..queues).map(|_| Ring::new(ring_size)).collect(),
            tx: (0..queues).map(|_| Ring::new(ring_size)).collect(),
            stats: vec![PortStats::default(); queues],
        }
    }
}

/// The Linux raw-socket backend. See module docs.
pub struct OsBackend {
    pool: Mempool,
    classifier: RssClassifier,
    int_port: OsPort,
    ext_port: OsPort,
    scratch: Box<[u8; MBUF_SIZE]>,
    /// Per-call admission cap (one ring's worth per queue), so a
    /// flooded socket cannot wedge the driver in `pump_rx` forever.
    pump_cap: usize,
    rx_log: Option<Vec<(Direction, Vec<u8>)>>,
    rx_seen: u64,
    rx_errors: u64,
    tx_errors: u64,
}

impl OsBackend {
    /// Open the backend on two interfaces: `int_if` is the NAT's
    /// internal port, `ext_if` the external one. Ring sizing matches
    /// the sim backend (`ring_size` descriptors per queue, pool holds
    /// four rings' worth per queue). Needs `CAP_NET_RAW`.
    pub fn open(
        int_if: &str,
        ext_if: &str,
        classifier: RssClassifier,
        ring_size: usize,
    ) -> io::Result<OsBackend> {
        let queues = classifier.queue_count();
        let int_sock = RawSocket::open(int_if)?;
        let ext_sock = RawSocket::open(ext_if)?;
        Ok(OsBackend {
            pool: Mempool::new(queues * ring_size * 4),
            classifier,
            int_port: OsPort::new(int_sock, queues, ring_size),
            ext_port: OsPort::new(ext_sock, queues, ring_size),
            scratch: Box::new([0u8; MBUF_SIZE]),
            pump_cap: queues * ring_size,
            rx_log: None,
            rx_seen: 0,
            rx_errors: 0,
            tx_errors: 0,
        })
    }

    fn port(&mut self, d: Direction) -> &mut OsPort {
        match d {
            Direction::Internal => &mut self.int_port,
            Direction::External => &mut self.ext_port,
        }
    }

    fn port_ref(&self, d: Direction) -> &OsPort {
        match d {
            Direction::Internal => &self.int_port,
            Direction::External => &self.ext_port,
        }
    }

    /// The classifier steering this backend's traffic.
    pub fn classifier(&self) -> RssClassifier {
        self.classifier
    }

    /// Record every admitted frame (arrival order, with its port) so a
    /// live run can be replayed through the sim backend — the
    /// recorded-trace parity proof in `tests/backend_conformance.rs`.
    pub fn set_rx_log(&mut self, on: bool) {
        self.rx_log = if on { Some(Vec::new()) } else { None };
    }

    /// Take the recorded arrival trace (see [`OsBackend::set_rx_log`]).
    pub fn take_rx_log(&mut self) -> Vec<(Direction, Vec<u8>)> {
        self.rx_log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Transmissions the kernel refused (counted, frame dropped — the
    /// OS analog of a TX ring running dry).
    pub fn tx_errors(&self) -> u64 {
        self.tx_errors
    }

    /// Total frames received from the kernel over this backend's
    /// lifetime (after the own-transmission filter), whether admitted
    /// to a FIFO or dropped at a full ring — the tester's "has
    /// everything I sent arrived yet?" signal.
    pub fn rx_seen(&self) -> u64 {
        self.rx_seen
    }

    /// Real receive errors from the kernel (not `EWOULDBLOCK`, which
    /// just means "no frame waiting"): `ENETDOWN` after the interface
    /// went down, `ENODEV` after a veth peer was deleted, … A live
    /// loop seeing this grow with `rx` flat has a dead socket, not a
    /// quiet network.
    pub fn rx_errors(&self) -> u64 {
        self.rx_errors
    }
}

/// Admit one frame into `port`'s per-queue FIFOs: log it, classify it,
/// and apply the driver contract's drop accounting (pool exhaustion or
/// a full ring counts `rx_dropped` on the frame's queue; admission
/// counts `rx`). The single definition both the kernel RX pump and the
/// loopback `stage` path use, so their accounting can never diverge.
fn admit(
    pool: &mut Mempool,
    classifier: &RssClassifier,
    port: &mut OsPort,
    dir: Direction,
    frame: &[u8],
    rx_log: &mut Option<Vec<(Direction, Vec<u8>)>>,
) -> Option<usize> {
    if let Some(log) = rx_log {
        log.push((dir, frame.to_vec()));
    }
    let q = classifier.queue_of(dir, frame);
    let Some(buf) = pool.get() else {
        port.stats[q].rx_dropped += 1;
        return None;
    };
    pool.write_frame(buf, frame);
    if port.rx[q].push(buf) {
        port.stats[q].rx += 1;
        Some(q)
    } else {
        pool.put(buf);
        port.stats[q].rx_dropped += 1;
        None
    }
}

impl PacketIo for OsBackend {
    fn queue_count(&self) -> usize {
        self.int_port.rx.len()
    }

    fn pool(&self) -> &Mempool {
        &self.pool
    }

    fn pool_mut(&mut self) -> &mut Mempool {
        &mut self.pool
    }

    fn pump_rx(&mut self) -> usize {
        let mut admitted = 0;
        for dir in [Direction::Internal, Direction::External] {
            for _ in 0..self.pump_cap {
                // Destructure so the socket read and the ring/pool
                // writes borrow disjoint fields.
                let OsBackend {
                    pool,
                    classifier,
                    int_port,
                    ext_port,
                    scratch,
                    rx_log,
                    rx_seen,
                    rx_errors,
                    ..
                } = self;
                let port = match dir {
                    Direction::Internal => int_port,
                    Direction::External => ext_port,
                };
                match port.sock.recv_from(&mut scratch[..]) {
                    Ok(Some((len, pkttype))) => {
                        if pkttype == PACKET_OUTGOING {
                            continue; // our own transmission, looped back
                        }
                        *rx_seen += 1;
                        let frame = &scratch[..len.min(MBUF_SIZE)];
                        if admit(pool, classifier, port, dir, frame, rx_log).is_some() {
                            admitted += 1;
                        }
                    }
                    Ok(None) => break,
                    // A real error (the nonblocking wrapper already
                    // maps EWOULDBLOCK to Ok(None)): count it so a
                    // dead socket is distinguishable from a quiet
                    // network, and retry on the next pump.
                    Err(_) => {
                        *rx_errors += 1;
                        break;
                    }
                }
            }
        }
        admitted
    }

    fn rx_len(&self, dir: Direction, q: usize) -> usize {
        self.port_ref(dir).rx[q].len()
    }

    fn rx_burst(&mut self, dir: Direction, q: usize, max: usize, out: &mut Vec<BufIdx>) -> usize {
        let port = self.port(dir);
        let mut n = 0;
        while n < max {
            match port.rx[q].pop() {
                Some(b) => {
                    out.push(b);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    fn tx_put(&mut self, dir: Direction, q: usize, buf: BufIdx) -> bool {
        let port = self.port(dir);
        let ok = port.tx[q].push(buf);
        if ok {
            port.stats[q].tx += 1;
        }
        ok
    }

    fn flush_tx(&mut self) -> usize {
        let mut flushed = 0;
        for dir in [Direction::Internal, Direction::External] {
            for q in 0..self.queue_count() {
                loop {
                    let OsBackend {
                        pool,
                        int_port,
                        ext_port,
                        tx_errors,
                        ..
                    } = self;
                    let port = match dir {
                        Direction::Internal => int_port,
                        Direction::External => ext_port,
                    };
                    let Some(buf) = port.tx[q].pop() else { break };
                    match port.sock.send(pool.frame(buf)) {
                        Ok(_) => flushed += 1,
                        Err(_) => *tx_errors += 1,
                    }
                    pool.put(buf);
                }
            }
        }
        flushed
    }

    fn queue_stats(&self, dir: Direction, q: usize) -> PortStats {
        self.port_ref(dir).stats[q]
    }
}

impl TesterIo for OsBackend {
    /// Staging directly into an OS backend is a *loopback* injection:
    /// the frame is written straight into the classified RX FIFO as if
    /// the kernel had just delivered it. Real-wire injection goes
    /// through [`OsTestRig`], whose tester sits on the veth peer.
    fn stage(
        &mut self,
        dir: Direction,
        fields_writer: impl FnOnce(&mut [u8]) -> usize,
    ) -> Option<usize> {
        let len = fields_writer(&mut self.scratch[..]);
        let OsBackend {
            pool,
            classifier,
            int_port,
            ext_port,
            scratch,
            rx_log,
            ..
        } = self;
        let port = match dir {
            Direction::Internal => int_port,
            Direction::External => ext_port,
        };
        admit(pool, classifier, port, dir, &scratch[..len], rx_log)
    }

    /// Drain the backend's own TX queues without touching the wire
    /// (loopback collection, the dual of loopback staging). A live
    /// driver normally calls `flush_tx` instead, which sends on the
    /// socket.
    fn reap(&mut self, dir: Direction) -> Vec<(usize, Vec<u8>)> {
        let mut out = Vec::new();
        for q in 0..self.queue_count() {
            loop {
                let OsBackend {
                    pool,
                    int_port,
                    ext_port,
                    ..
                } = self;
                let port = match dir {
                    Direction::Internal => int_port,
                    Direction::External => ext_port,
                };
                let Some(buf) = port.tx[q].pop() else { break };
                out.push((q, pool.frame(buf).to_vec()));
                pool.put(buf);
            }
        }
        out
    }
}

/// A veth pair created (and deleted on drop) via the `ip` tool — the
/// fixture the privileged conformance tests and the CI
/// `os-backend-integration` job build their wire out of. Needs
/// `CAP_NET_ADMIN`; [`VethPair::create`] returns the underlying error
/// when the capability (or the `ip` binary) is missing, and callers
/// skip cleanly.
#[derive(Debug)]
pub struct VethPair {
    /// One end (the backend binds this).
    pub a: String,
    /// The peer end (the tester binds this).
    pub b: String,
}

fn run_ip(args: &[&str]) -> io::Result<()> {
    let out = std::process::Command::new("ip").args(args).output()?;
    if out.status.success() {
        Ok(())
    } else {
        Err(io::Error::other(format!(
            "ip {}: {}",
            args.join(" "),
            String::from_utf8_lossy(&out.stderr).trim()
        )))
    }
}

impl VethPair {
    /// Create `a <-> b`, quiesce them (IPv6 autoconf off, so the
    /// kernel does not inject router solicitations into the trace),
    /// and bring both up.
    pub fn create(a: &str, b: &str) -> io::Result<VethPair> {
        run_ip(&["link", "add", a, "type", "veth", "peer", "name", b])?;
        let pair = VethPair {
            a: a.to_string(),
            b: b.to_string(),
        };
        for dev in [a, b] {
            // Best effort: without it the kernel emits IPv6 ND noise,
            // which the NAT drops (it only ever creates state for
            // TCP/UDP over IPv4) but which inflates drop counters.
            let _ = std::fs::write(format!("/proc/sys/net/ipv6/conf/{dev}/disable_ipv6"), "1");
            run_ip(&["link", "set", dev, "up"])?;
        }
        Ok(pair)
    }
}

impl Drop for VethPair {
    fn drop(&mut self) {
        // Deleting one end removes the pair.
        let _ = run_ip(&["link", "del", &self.a]);
    }
}

/// The two-veth-pair test rig: an [`OsBackend`] on the near ends and
/// tester sockets on the far ends, implementing [`TesterIo`] *across
/// the wire* — `stage` transmits on the peer interface and `reap`
/// receives what the NAT sent back out, so the generic RFC 2544
/// harness and the conformance suites run unchanged over real kernel
/// packet I/O.
pub struct OsTestRig {
    backend: OsBackend,
    int_peer: RawSocket,
    ext_peer: RawSocket,
    scratch: Box<[u8; MBUF_SIZE]>,
}

impl OsTestRig {
    /// Build the rig: the backend binds `int_veth.a` / `ext_veth.a`,
    /// the tester binds the `.b` peers.
    pub fn open(
        int_veth: &VethPair,
        ext_veth: &VethPair,
        classifier: RssClassifier,
        ring_size: usize,
    ) -> io::Result<OsTestRig> {
        let backend = OsBackend::open(&int_veth.a, &ext_veth.a, classifier, ring_size)?;
        Ok(OsTestRig {
            backend,
            int_peer: RawSocket::open(&int_veth.b)?,
            ext_peer: RawSocket::open(&ext_veth.b)?,
            scratch: Box::new([0u8; MBUF_SIZE]),
        })
    }

    /// The wrapped backend (error counters, classifier).
    pub fn backend(&self) -> &OsBackend {
        &self.backend
    }

    /// The wrapped backend, mutably (rx-log control).
    pub fn backend_mut(&mut self) -> &mut OsBackend {
        &mut self.backend
    }

    fn peer(&self, dir: Direction) -> &RawSocket {
        match dir {
            Direction::Internal => &self.int_peer,
            Direction::External => &self.ext_peer,
        }
    }

    /// Receive frames the NAT transmitted out of port `dir` (arriving
    /// at the tester's peer socket), waiting up to `timeout` for at
    /// least `expect` of them. TX-queue attribution does not survive
    /// the wire, so every frame reports queue 0; order within the port
    /// is kernel delivery order.
    pub fn reap_wait(
        &mut self,
        dir: Direction,
        expect: usize,
        timeout: std::time::Duration,
    ) -> Vec<(usize, Vec<u8>)> {
        let deadline = std::time::Instant::now() + timeout;
        let mut out = Vec::new();
        let peer = match dir {
            Direction::Internal => &self.int_peer,
            Direction::External => &self.ext_peer,
        };
        let scratch = &mut self.scratch;
        loop {
            while let Ok(Some((len, pkttype))) = peer.recv_from(&mut scratch[..]) {
                if pkttype == PACKET_OUTGOING {
                    continue; // the tester's own injection, looped back
                }
                out.push((0, scratch[..len].to_vec()));
            }
            if out.len() >= expect || std::time::Instant::now() >= deadline {
                return out;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}

impl PacketIo for OsTestRig {
    fn queue_count(&self) -> usize {
        self.backend.queue_count()
    }

    fn pool(&self) -> &Mempool {
        self.backend.pool()
    }

    fn pool_mut(&mut self) -> &mut Mempool {
        self.backend.pool_mut()
    }

    fn pump_rx(&mut self) -> usize {
        self.backend.pump_rx()
    }

    fn rx_len(&self, dir: Direction, q: usize) -> usize {
        self.backend.rx_len(dir, q)
    }

    fn rx_burst(&mut self, dir: Direction, q: usize, max: usize, out: &mut Vec<BufIdx>) -> usize {
        self.backend.rx_burst(dir, q, max, out)
    }

    fn tx_put(&mut self, dir: Direction, q: usize, buf: BufIdx) -> bool {
        self.backend.tx_put(dir, q, buf)
    }

    fn flush_tx(&mut self) -> usize {
        self.backend.flush_tx()
    }

    fn queue_stats(&self, dir: Direction, q: usize) -> PortStats {
        self.backend.queue_stats(dir, q)
    }
}

impl TesterIo for OsTestRig {
    /// Inject across the wire: transmit on the peer interface; the
    /// kernel delivers to the backend's bound socket, where the next
    /// `pump_rx` classifies and admits it. Returns the queue the frame
    /// *will* classify to (the same function runs on both sides).
    fn stage(
        &mut self,
        dir: Direction,
        fields_writer: impl FnOnce(&mut [u8]) -> usize,
    ) -> Option<usize> {
        let len = fields_writer(&mut self.scratch[..]);
        let q = self
            .backend
            .classifier()
            .queue_of(dir, &self.scratch[..len]);
        match self.peer(dir).send(&self.scratch[..len]) {
            Ok(_) => Some(q),
            Err(_) => None,
        }
    }

    /// Nonblocking wire-side collection (see [`OsTestRig::reap_wait`]
    /// for the deadline variant the tests use).
    fn reap(&mut self, dir: Direction) -> Vec<(usize, Vec<u8>)> {
        self.reap_wait(dir, 0, std::time::Duration::ZERO)
    }
}
