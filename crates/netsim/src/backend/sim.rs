//! [`SimBackend`]: the in-process NIC model behind the [`PacketIo`]
//! seam.
//!
//! An adapter over two [`MultiQueueDevice`]s and one [`Mempool`] —
//! structurally the same parts as the legacy
//! [`MultiQueueTestbed`](crate::eventloop::MultiQueueTestbed), arranged
//! behind the backend trait instead of a concrete drain loop. The
//! conformance suite (`tests/backend_conformance.rs`) proves the
//! generic driver over this backend byte-for-byte equivalent to the
//! legacy testbed: same tx sequences, same NAT state, same per-queue
//! drop accounting under overflow.

use super::{PacketIo, TesterIo};
use crate::dpdk::{BufIdx, Mempool, MultiQueueDevice, PortStats, MBUF_SIZE};
use crate::frame_env::RssClassifier;
use vig_packet::Direction;

/// The simulated two-port multi-queue backend. See module docs.
pub struct SimBackend {
    pool: Mempool,
    int_dev: MultiQueueDevice,
    ext_dev: MultiQueueDevice,
    classifier: RssClassifier,
    scratch: Box<[u8; MBUF_SIZE]>,
}

impl SimBackend {
    /// Backend whose ports have one RX/TX ring pair of `ring_size`
    /// descriptors per classifier queue. The pool holds four rings'
    /// worth of buffers per queue — identical sizing to the legacy
    /// testbed, so pool-exhaustion behaviour matches exactly.
    pub fn new(classifier: RssClassifier, ring_size: usize) -> SimBackend {
        let queues = classifier.queue_count();
        SimBackend {
            pool: Mempool::new(queues * ring_size * 4),
            int_dev: MultiQueueDevice::new(queues, ring_size),
            ext_dev: MultiQueueDevice::new(queues, ring_size),
            classifier,
            scratch: Box::new([0u8; MBUF_SIZE]),
        }
    }

    fn dev(&mut self, d: Direction) -> &mut MultiQueueDevice {
        match d {
            Direction::Internal => &mut self.int_dev,
            Direction::External => &mut self.ext_dev,
        }
    }

    fn dev_ref(&self, d: Direction) -> &MultiQueueDevice {
        match d {
            Direction::Internal => &self.int_dev,
            Direction::External => &self.ext_dev,
        }
    }

    /// The classifier steering this backend's traffic.
    pub fn classifier(&self) -> RssClassifier {
        self.classifier
    }

    /// Buffers currently free in the pool (leak checks).
    pub fn pool_available(&self) -> usize {
        self.pool.available()
    }
}

impl PacketIo for SimBackend {
    fn queue_count(&self) -> usize {
        self.int_dev.queue_count()
    }

    fn pool(&self) -> &Mempool {
        &self.pool
    }

    fn pool_mut(&mut self) -> &mut Mempool {
        &mut self.pool
    }

    /// No outside world: the tester stages frames via [`TesterIo`].
    fn pump_rx(&mut self) -> usize {
        0
    }

    fn rx_len(&self, dir: Direction, q: usize) -> usize {
        self.dev_ref(dir).rx_len(q)
    }

    fn rx_burst(&mut self, dir: Direction, q: usize, max: usize, out: &mut Vec<BufIdx>) -> usize {
        self.dev(dir).rx_burst(q, max, out)
    }

    fn tx_put(&mut self, dir: Direction, q: usize, buf: BufIdx) -> bool {
        let bytes = self.pool.frame(buf).len();
        self.dev(dir).tx_put(q, buf, bytes)
    }

    /// TX frames stay queued for the tester's [`TesterIo::reap`].
    fn flush_tx(&mut self) -> usize {
        0
    }

    fn queue_stats(&self, dir: Direction, q: usize) -> PortStats {
        self.dev_ref(dir).queue_stats(q)
    }

    fn port_stats(&self, dir: Direction) -> PortStats {
        self.dev_ref(dir).port_stats()
    }
}

impl TesterIo for SimBackend {
    /// Tester-side: write the frame, classify it (the NIC hash unit's
    /// step), and offer it to the chosen RX queue — the exact logic of
    /// the legacy testbed's `offer`, including the pool-exhaustion
    /// accounting (an RX drop on the queue the frame would have
    /// entered).
    fn stage(
        &mut self,
        dir: Direction,
        fields_writer: impl FnOnce(&mut [u8]) -> usize,
    ) -> Option<usize> {
        let len = fields_writer(&mut self.scratch[..]);
        let q = self.classifier.queue_of(dir, &self.scratch[..len]);
        let Some(buf) = self.pool.get() else {
            self.dev(dir).note_rx_drop(q);
            return None;
        };
        self.pool.write_frame(buf, &self.scratch[..len]);
        if self.dev(dir).offer_to(q, buf) {
            Some(q)
        } else {
            self.pool.put(buf);
            None
        }
    }

    fn reap(&mut self, dir: Direction) -> Vec<(usize, Vec<u8>)> {
        let mut out = Vec::new();
        for q in 0..self.queue_count() {
            while let Some(buf) = self.dev(dir).tx_take(q) {
                out.push((q, self.pool.frame(buf).to_vec()));
                self.pool.put(buf);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tester::FlowGen;
    use libvig::time::Time;
    use vig_packet::{Ip4, Proto};
    use vig_spec::NatConfig;

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 64,
            expiry_ns: Time::from_secs(60).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1,
            ..NatConfig::paper_default()
        }
    }

    #[test]
    fn stage_classifies_and_queues_like_the_device_model() {
        let c = cfg();
        let mut io = SimBackend::new(RssClassifier::for_nat(&c, 2), 8);
        let gen = FlowGen::new(Proto::Udp);
        let before = io.pool_available();
        let mut per_queue = [0usize; 2];
        for i in 0..8u32 {
            let f = gen.background(i);
            let q = io
                .stage(Direction::Internal, |b| gen.write_frame(&f, b))
                .expect("ring has room");
            per_queue[q] += 1;
        }
        assert_eq!(per_queue.iter().sum::<usize>(), 8);
        for (q, &count) in per_queue.iter().enumerate() {
            assert_eq!(io.rx_len(Direction::Internal, q), count);
            assert_eq!(io.queue_stats(Direction::Internal, q).rx, count as u64);
        }
        assert_eq!(io.pool_available(), before - 8);
        assert_eq!(io.pump_rx(), 0, "sim backend has no outside world");
    }

    #[test]
    fn overflow_drops_on_the_full_queue_only() {
        let c = cfg();
        // 2-descriptor rings: the third frame into a queue must drop
        // there and be counted there, with the sibling untouched.
        let mut io = SimBackend::new(RssClassifier::for_nat(&c, 2), 2);
        let gen = FlowGen::new(Proto::Udp);
        // Find a flow for queue 0.
        let mut buf = [0u8; MBUF_SIZE];
        let mut flow0 = None;
        for i in 0..64u32 {
            let f = gen.background(i);
            let n = gen.write_frame(&f, &mut buf);
            if io.classifier().queue_of(Direction::Internal, &buf[..n]) == 0 {
                flow0 = Some(f);
                break;
            }
        }
        let f = flow0.expect("some flow classifies to queue 0");
        for k in 0..3 {
            let got = io.stage(Direction::Internal, |b| gen.write_frame(&f, b));
            assert_eq!(got.is_some(), k < 2, "third stage overflows");
        }
        assert_eq!(io.queue_stats(Direction::Internal, 0).rx_dropped, 1);
        assert_eq!(io.queue_stats(Direction::Internal, 1).rx_dropped, 0);
        assert_eq!(io.port_stats(Direction::Internal).rx_dropped, 1);
    }
}
