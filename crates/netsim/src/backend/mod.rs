//! The pluggable packet-I/O backend layer.
//!
//! The event-driven driver ([`crate::eventloop`]) never cared *where*
//! queue events come from — it assumes exactly the driver contract the
//! multi-queue work established: frames are classified by
//! [`RssClassifier`](crate::frame_env::RssClassifier) into per-queue
//! FIFOs, drained in budgeted weighted-round-robin bursts through
//! [`Middlebox::process_burst`](crate::middlebox::Middlebox::process_burst),
//! transmitted on the destination port's queue of the same index, and
//! accounted per queue (rx / rx_dropped / tx). [`PacketIo`] makes that
//! contract a trait, so the same verified loop body — and the same
//! poller/WRR event loop — runs over:
//!
//! * [`SimBackend`] — the in-process NIC model: an adapter over
//!   [`MultiQueueDevice`](crate::dpdk::MultiQueueDevice), byte-for-byte
//!   equivalent to the legacy
//!   [`MultiQueueTestbed`](crate::eventloop::MultiQueueTestbed)
//!   (`tests/backend_conformance.rs` proves it differentially);
//! * [`os::OsBackend`] (Linux) — real OS packet I/O: one `AF_PACKET`
//!   raw socket per port, bound to an interface (a veth pair end in the
//!   intended deployment), feeding the *same* classifier and FIFOs with
//!   kernel-delivered frames.
//!
//! The split keeps the trust boundary explicit: everything above
//! `PacketIo` (classification, scheduling, the verified NAT) is
//! identical across backends and covered by the differential suites;
//! everything below it (the kernel's socket path, for `OsBackend`) is
//! trusted, exactly as the paper trusts DPDK and the NIC. A future
//! AF_XDP or DPDK backend drops in behind this trait without touching
//! verified code. See `docs/ARCHITECTURE.md` ("The backend layer").

use crate::dpdk::{BufIdx, Mempool, PortStats};
use vig_packet::Direction;

pub mod fault;
mod sim;
pub use fault::{CorruptKind, FaultIo, FaultPlan, FaultStats, StallWindow, TruncateKind};
pub use sim::SimBackend;

#[cfg(target_os = "linux")]
pub mod os;

/// The driver contract between the event loop and a packet source/sink.
///
/// A backend owns the [`Mempool`] its frames live in plus, per port
/// (internal/external), `queue_count()` RX FIFOs and TX queues with
/// per-queue statistics. The event loop only ever:
///
/// 1. calls [`PacketIo::pump_rx`] to let the backend admit frames from
///    the outside world into its per-queue RX FIFOs (classifying each
///    with the backend's [`RssClassifier`](crate::frame_env::RssClassifier)
///    — a no-op for the sim backend, whose tester stages frames
///    directly);
/// 2. polls [`PacketIo::rx_len`] for readiness (level-triggered);
/// 3. drains ready queues in budgeted bursts via [`PacketIo::rx_burst`];
/// 4. forwards via [`PacketIo::tx_put`] on the destination port's queue
///    of the *same index* (run-to-completion cores own their queue
///    pair), or returns dropped buffers to the pool;
/// 5. calls [`PacketIo::flush_tx`] to push queued TX frames to the
///    outside world (a no-op for the sim backend, whose tester collects
///    them).
///
/// Implementations must keep queues independent: a full RX FIFO drops
/// (and counts, in that queue's [`PortStats`]) without stalling or
/// corrupting siblings — the conformance suite pins this down for every
/// backend.
pub trait PacketIo {
    /// RX/TX queue pairs per port.
    fn queue_count(&self) -> usize;

    /// The buffer pool backing this backend's frames.
    fn pool(&self) -> &Mempool;

    /// Mutable pool access (the driver passes this to
    /// [`Middlebox::process_burst`](crate::middlebox::Middlebox::process_burst)
    /// and returns dropped buffers through it).
    fn pool_mut(&mut self) -> &mut Mempool;

    /// Admit frames from the outside world into the per-queue RX FIFOs,
    /// classifying each one. Returns how many frames were admitted.
    /// Backends whose frames are staged by an in-process tester (the
    /// sim backend) return 0 without doing anything.
    fn pump_rx(&mut self) -> usize;

    /// Frames waiting in RX queue `q` of port `dir` — the readiness
    /// signal the poller level-triggers on.
    fn rx_len(&self, dir: Direction, q: usize) -> usize;

    /// Drain up to `max` frames from RX queue `q` of port `dir` into
    /// `out` (FIFO order). Returns the count.
    fn rx_burst(&mut self, dir: Direction, q: usize, max: usize, out: &mut Vec<BufIdx>) -> usize;

    /// Queue a frame on TX queue `q` of port `dir`; `false` when the
    /// TX queue is full (the caller keeps ownership of the buffer).
    fn tx_put(&mut self, dir: Direction, q: usize, buf: BufIdx) -> bool;

    /// Push queued TX frames to the outside world, reclaiming their
    /// buffers. Returns how many frames left. Backends whose tester
    /// collects TX in-process (the sim backend) return 0 and leave the
    /// queues intact.
    fn flush_tx(&mut self) -> usize;

    /// Queue `q`'s counters on port `dir`.
    fn queue_stats(&self, dir: Direction, q: usize) -> PortStats;

    /// Port-wide counters: the sum over queues.
    fn port_stats(&self, dir: Direction) -> PortStats {
        (0..self.queue_count()).fold(PortStats::default(), |a, q| {
            let s = self.queue_stats(dir, q);
            PortStats {
                rx: a.rx + s.rx,
                rx_dropped: a.rx_dropped + s.rx_dropped,
                tx: a.tx + s.tx,
                tx_bytes: a.tx_bytes + s.tx_bytes,
            }
        })
    }
}

/// Tester-side frame staging and collection — how a measurement
/// harness gets frames *into* a backend and reads what came out.
///
/// For the sim backend this is direct ring access (classify + enqueue,
/// exactly the legacy testbed's `offer`/`collect_tx`). For an OS
/// backend the "tester" sits on the far end of the wire: the veth-pair
/// test rig ([`os::OsTestRig`]) implements `stage` by sending on the
/// peer interface's own raw socket and `reap` by receiving there.
/// The RFC 2544 harness is generic over this trait, so the same
/// measurement methodology spans simulated and real packet paths.
pub trait TesterIo: PacketIo {
    /// Write one frame with `fields_writer` (which returns the frame
    /// length) and inject it into port `dir`. Returns the RX queue the
    /// frame classifies to, or `None` when it could not be admitted
    /// (full ring / exhausted pool / send failure — counted by the
    /// backend where the contract requires it).
    fn stage(
        &mut self,
        dir: Direction,
        fields_writer: impl FnOnce(&mut [u8]) -> usize,
    ) -> Option<usize>;

    /// Collect every frame the NF transmitted out of port `dir`, as
    /// `(tx_queue, frame bytes)` in transmission order (queue order,
    /// FIFO within a queue, for backends with inspectable TX queues).
    fn reap(&mut self, dir: Direction) -> Vec<(usize, Vec<u8>)>;
}
