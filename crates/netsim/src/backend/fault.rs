//! Deterministic fault injection at the [`PacketIo`] seam.
//!
//! The paper's proof covers the NAT's semantics; everything below the
//! driver contract — NIC, DMA, kernel socket path — is trusted to
//! either deliver a frame intact or lose it cleanly. [`FaultIo`] makes
//! that trust assumption *testable*: it wraps any backend and injects
//! seeded, schedulable faults exactly at the seam every backend already
//! flows through, so the chaos suites can prove the verified state
//! machine stays closed under environment failure
//! (`tests/chaos_equivalence.rs`):
//!
//! * **frame drops** — a received frame vanishes (buffer reclaimed,
//!   loss attributed to [`FaultStats::rx_injected_drops`]);
//! * **truncation / corruption** — a received frame is cut short or
//!   has header bytes damaged before the parser sees it; profiles
//!   ([`TruncateKind`], [`CorruptKind`]) target the exact malformations
//!   the parser must reject (bad IHL, garbage version, short L4);
//! * **duplicate / reordered delivery** — a frame is delivered twice,
//!   or swapped with its neighbor within a burst (the within-queue
//!   reordering a retransmitting link produces);
//! * **per-queue stalls** — a queue reports empty for a scheduled
//!   window of service rounds; frames are delayed, never lost;
//! * **transient syscall errors** — `pump_rx` returns without pumping,
//!   the simulated `EINTR`/`EAGAIN` a signal-heavy host injects;
//! * **forced ring overruns** — `tx_put` refuses a run of frames, the
//!   simulated `ENOBUFS` burst that forces the driver's bounded
//!   retry-then-drop path.
//!
//! **Identity theorem**: with the empty schedule ([`FaultPlan::none`])
//! every method forwards verbatim — `FaultIo<B>` is byte-for-byte and
//! stat-for-stat indistinguishable from `B`. The conformance suite
//! pins this down differentially for the sim, per-frame, and mmap
//! backends, which is what licenses wrapping `FaultIo` around any
//! backend in any existing test without weakening it.
//!
//! Every decision comes from one SplitMix64 stream seeded by the plan,
//! so a fault schedule is a pure function of `(seed, call sequence)` —
//! chaos runs replay exactly.

use super::{PacketIo, TesterIo};
use crate::dpdk::{BufIdx, Mempool, PortStats};
use vig_packet::Direction;

/// How a truncation fault cuts a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncateKind {
    /// Cut at a pseudo-random offset below the original length
    /// (anywhere, including inside the Ethernet header — the parser
    /// must reject arbitrary prefixes).
    RandomTail,
    /// Cut inside the L4 header: `14 + IHL·4 + (0..8)` bytes, the
    /// "IP header complete, transport header short" shape the L4
    /// parser must reject without reading past the end.
    ShortL4,
}

/// How a corruption fault damages header bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// XOR a pseudo-random byte anywhere in the frame with a non-zero
    /// mask (may or may not still parse — general bit-rot).
    RandomByte,
    /// Force the IPv4 IHL nibble below 5 (header shorter than the
    /// fixed part — the parser must reject, never index with it).
    BadIhl,
    /// Force the IP version nibble to anything but 4.
    BadVersion,
}

/// A scheduled per-queue stall: RX queue `queue` of port `dir` reports
/// empty during service rounds `[start_round, start_round + rounds)`.
/// Rounds are counted by [`PacketIo::pump_rx`] calls on the wrapper —
/// one per driver service round. Stalled frames are delayed, not lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// Stalled port.
    pub dir: Direction,
    /// Stalled RX queue on that port.
    pub queue: usize,
    /// First stalled service round (rounds count from 1).
    pub start_round: u64,
    /// Number of consecutive stalled rounds.
    pub rounds: u64,
}

/// A seeded, schedulable fault plan. [`FaultPlan::none`] is the empty
/// schedule (the identity); rates are expressed as "fire once per `n`
/// opportunities in expectation" with `n == 0` meaning never and
/// `n == 1` meaning always.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    drop_1_in: u64,
    truncate_1_in: u64,
    truncate_kind: TruncateKind,
    corrupt_1_in: u64,
    corrupt_kind: CorruptKind,
    duplicate_1_in: u64,
    reorder_1_in: u64,
    pump_error_1_in: u64,
    tx_reject_1_in: u64,
    tx_overrun_len: u64,
    stalls: Vec<StallWindow>,
}

impl FaultPlan {
    /// The empty schedule: no faults, ever. `FaultIo` with this plan is
    /// the identity wrapper (proven differentially in
    /// `tests/backend_conformance.rs`).
    pub fn none() -> FaultPlan {
        FaultPlan::seeded(0)
    }

    /// An empty plan carrying `seed`; compose faults with the builder
    /// methods.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_1_in: 0,
            truncate_1_in: 0,
            truncate_kind: TruncateKind::RandomTail,
            corrupt_1_in: 0,
            corrupt_kind: CorruptKind::RandomByte,
            duplicate_1_in: 0,
            reorder_1_in: 0,
            pump_error_1_in: 0,
            tx_reject_1_in: 0,
            tx_overrun_len: 1,
            stalls: Vec::new(),
        }
    }

    /// Drop one received frame in `n` (buffer reclaimed, loss counted).
    pub fn drop_1_in(mut self, n: u64) -> FaultPlan {
        self.drop_1_in = n;
        self
    }

    /// Truncate one received frame in `n` with the given profile.
    pub fn truncate_1_in(mut self, n: u64, kind: TruncateKind) -> FaultPlan {
        self.truncate_1_in = n;
        self.truncate_kind = kind;
        self
    }

    /// Corrupt one received frame in `n` with the given profile.
    pub fn corrupt_1_in(mut self, n: u64, kind: CorruptKind) -> FaultPlan {
        self.corrupt_1_in = n;
        self.corrupt_kind = kind;
        self
    }

    /// Deliver one received frame in `n` twice (the duplicate rides in
    /// the same burst, budget permitting).
    pub fn duplicate_1_in(mut self, n: u64) -> FaultPlan {
        self.duplicate_1_in = n;
        self
    }

    /// Swap one received frame in `n` with its successor in the burst
    /// (within-queue reordering).
    pub fn reorder_1_in(mut self, n: u64) -> FaultPlan {
        self.reorder_1_in = n;
        self
    }

    /// Make one `pump_rx` call in `n` return without pumping — the
    /// simulated transient `EINTR`/`EAGAIN`. Frames are delayed to the
    /// next pump, never lost.
    pub fn pump_error_1_in(mut self, n: u64) -> FaultPlan {
        self.pump_error_1_in = n;
        self
    }

    /// Make one `tx_put` in `n` fail as if the ring were full
    /// (simulated `ENOBUFS`), and keep failing for `overrun_len`
    /// consecutive puts — `overrun_len` larger than the driver's retry
    /// budget forces a ring-overrun drop.
    pub fn tx_reject_1_in(mut self, n: u64, overrun_len: u64) -> FaultPlan {
        self.tx_reject_1_in = n;
        self.tx_overrun_len = overrun_len.max(1);
        self
    }

    /// Schedule a per-queue stall window (see [`StallWindow`]).
    pub fn stall(
        mut self,
        dir: Direction,
        queue: usize,
        start_round: u64,
        rounds: u64,
    ) -> FaultPlan {
        self.stalls.push(StallWindow {
            dir,
            queue,
            start_round,
            rounds,
        });
        self
    }

    /// Whether this plan is the empty schedule (the identity wrapper).
    pub fn is_identity(&self) -> bool {
        self.drop_1_in == 0
            && self.truncate_1_in == 0
            && self.corrupt_1_in == 0
            && self.duplicate_1_in == 0
            && self.reorder_1_in == 0
            && self.pump_error_1_in == 0
            && self.tx_reject_1_in == 0
            && self.stalls.is_empty()
    }
}

/// Attribution counters: every frame the fault layer loses, delays, or
/// fabricates lands in exactly one of these — the chaos suites close
/// the conservation equation over them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Received frames deliberately dropped (buffers reclaimed).
    pub rx_injected_drops: u64,
    /// Received frames truncated (frame survives, shorter).
    pub rx_truncated: u64,
    /// Received frames with damaged bytes (frame survives, same length).
    pub rx_corrupted: u64,
    /// Extra copies fabricated by duplication faults.
    pub rx_duplicated: u64,
    /// Duplication faults that fired but found no free buffer (no frame
    /// gained or lost — the fault degraded to a no-op, honestly).
    pub dup_pool_denied: u64,
    /// Adjacent-swap reorderings applied within a burst.
    pub rx_reordered: u64,
    /// `pump_rx` calls turned into simulated transient errors.
    pub pump_faults: u64,
    /// `tx_put` calls refused with a simulated full ring.
    pub tx_rejections: u64,
    /// Service rounds during which at least one queue was stalled.
    pub stalled_rounds: u64,
}

/// A [`PacketIo`] wrapper injecting the faults scheduled by a
/// [`FaultPlan`] — see the module docs for the taxonomy and the
/// identity theorem.
pub struct FaultIo<B: PacketIo> {
    inner: B,
    plan: FaultPlan,
    stats: FaultStats,
    rng: u64,
    round: u64,
    tx_overrun_left: u64,
    // The plan is immutable after construction, so the identity test
    // is hoisted out of the per-call hot path: with the empty schedule
    // every PacketIo method is one branch plus the delegate, which is
    // what keeps the disarmed seam under the 2% `fault_overhead` gate
    // in `BENCH_throughput.json`.
    identity: bool,
}

impl<B: PacketIo> FaultIo<B> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> FaultIo<B> {
        let rng = plan.seed;
        let identity = plan.is_identity();
        FaultIo {
            inner,
            plan,
            stats: FaultStats::default(),
            rng,
            round: 0,
            tx_overrun_left: 0,
            identity,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Mutable access to the wrapped backend (tester-side staging).
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Unwrap, returning the backend.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// The fault attribution counters so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    /// The plan this wrapper runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Service rounds seen (one per [`PacketIo::pump_rx`] call).
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// SplitMix64 — one deterministic stream drives every decision.
    fn next_rng(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Fire a 1-in-`rate` fault (`rate == 0`: never, consumes no
    /// randomness — the identity fast path stays bit-exact).
    fn fire(&mut self, rate: u64) -> bool {
        rate != 0 && self.next_rng().is_multiple_of(rate)
    }

    fn stalled(&self, dir: Direction, q: usize) -> bool {
        self.plan.stalls.iter().any(|w| {
            w.dir == dir
                && w.queue == q
                && self.round >= w.start_round
                && self.round < w.start_round + w.rounds
        })
    }

    fn any_stall_active(&self) -> bool {
        self.plan
            .stalls
            .iter()
            .any(|w| self.round >= w.start_round && self.round < w.start_round + w.rounds)
    }

    /// Apply per-frame RX faults to the freshly-drained tail
    /// `out[start..]`, in a fixed order (drop → truncate → corrupt →
    /// duplicate → reorder) so a schedule replays exactly.
    fn fault_rx_tail(&mut self, max: usize, out: &mut Vec<BufIdx>, start: usize) {
        // Drops: reclaim the buffer, attribute the loss.
        let mut i = start;
        while i < out.len() {
            if self.fire(self.plan.drop_1_in) {
                let buf = out.remove(i);
                self.inner.pool_mut().put(buf);
                self.stats.rx_injected_drops += 1;
            } else {
                i += 1;
            }
        }
        // Truncations: rewrite the buffer with a shorter prefix.
        for &buf in out.iter().skip(start) {
            if !self.fire(self.plan.truncate_1_in) {
                continue;
            }
            let len = self.inner.pool().frame(buf).len();
            if len == 0 {
                continue;
            }
            let cut = match self.plan.truncate_kind {
                TruncateKind::RandomTail => (self.next_rng() % len as u64) as usize,
                TruncateKind::ShortL4 => {
                    if len <= 14 {
                        continue;
                    }
                    let ihl = (self.inner.pool().frame(buf)[14] & 0x0f) as usize;
                    let cut = 14 + ihl * 4 + (self.next_rng() % 8) as usize;
                    if cut >= len {
                        continue;
                    }
                    cut
                }
            };
            // Faults are rare; a per-fault allocation keeps the hot
            // (fault-free) path allocation-free.
            let prefix = self.inner.pool().frame(buf)[..cut].to_vec();
            self.inner.pool_mut().write_frame(buf, &prefix);
            self.stats.rx_truncated += 1;
        }
        // Corruption: damage bytes in place, length unchanged.
        for &buf in out.iter().skip(start) {
            if !self.fire(self.plan.corrupt_1_in) {
                continue;
            }
            let len = self.inner.pool().frame(buf).len();
            match self.plan.corrupt_kind {
                CorruptKind::RandomByte => {
                    if len == 0 {
                        continue;
                    }
                    let at = (self.next_rng() % len as u64) as usize;
                    let mask = (self.next_rng() as u8) | 1;
                    self.inner.pool_mut().frame_mut(buf)[at] ^= mask;
                }
                CorruptKind::BadIhl => {
                    if len <= 14 {
                        continue;
                    }
                    let bad = (self.next_rng() % 5) as u8; // IHL 0..=4 < minimum 5
                    let b = &mut self.inner.pool_mut().frame_mut(buf)[14];
                    *b = (*b & 0xf0) | bad;
                }
                CorruptKind::BadVersion => {
                    if len <= 14 {
                        continue;
                    }
                    let mut v = (self.next_rng() % 15) as u8;
                    if v >= 4 {
                        v += 1; // anything but 4
                    }
                    let b = &mut self.inner.pool_mut().frame_mut(buf)[14];
                    *b = (v << 4) | (*b & 0x0f);
                }
            }
            self.stats.rx_corrupted += 1;
        }
        // Duplication: fabricate a copy at the end of the burst, budget
        // and pool permitting.
        let tail_len = out.len() - start;
        for i in start..start + tail_len {
            if !self.fire(self.plan.duplicate_1_in) {
                continue;
            }
            if out.len() - start >= max {
                break; // burst budget exhausted — no frame gained or lost
            }
            let src = out[i];
            match self.inner.pool_mut().get() {
                Some(dup) => {
                    let bytes = self.inner.pool().frame(src).to_vec();
                    self.inner.pool_mut().write_frame(dup, &bytes);
                    out.push(dup);
                    self.stats.rx_duplicated += 1;
                }
                None => self.stats.dup_pool_denied += 1,
            }
        }
        // Reordering: adjacent swaps within the burst.
        if out.len() - start >= 2 {
            for i in start..out.len() - 1 {
                if self.fire(self.plan.reorder_1_in) {
                    out.swap(i, i + 1);
                    self.stats.rx_reordered += 1;
                }
            }
        }
    }
}

impl<B: PacketIo> PacketIo for FaultIo<B> {
    fn queue_count(&self) -> usize {
        self.inner.queue_count()
    }

    fn pool(&self) -> &Mempool {
        self.inner.pool()
    }

    fn pool_mut(&mut self) -> &mut Mempool {
        self.inner.pool_mut()
    }

    fn pump_rx(&mut self) -> usize {
        self.round += 1;
        if self.identity {
            return self.inner.pump_rx();
        }
        if self.any_stall_active() {
            self.stats.stalled_rounds += 1;
        }
        if self.fire(self.plan.pump_error_1_in) {
            // Simulated transient EINTR/EAGAIN: nothing pumped this
            // round; the outside world keeps its frames for the next.
            self.stats.pump_faults += 1;
            return 0;
        }
        self.inner.pump_rx()
    }

    fn rx_len(&self, dir: Direction, q: usize) -> usize {
        if !self.identity && self.stalled(dir, q) {
            0
        } else {
            self.inner.rx_len(dir, q)
        }
    }

    fn rx_burst(&mut self, dir: Direction, q: usize, max: usize, out: &mut Vec<BufIdx>) -> usize {
        if self.identity {
            return self.inner.rx_burst(dir, q, max, out);
        }
        if self.stalled(dir, q) {
            return 0;
        }
        let start = out.len();
        let n = self.inner.rx_burst(dir, q, max, out);
        if n > 0 {
            self.fault_rx_tail(max, out, start);
        }
        out.len() - start
    }

    fn tx_put(&mut self, dir: Direction, q: usize, buf: BufIdx) -> bool {
        if self.identity {
            return self.inner.tx_put(dir, q, buf);
        }
        if self.tx_overrun_left > 0 {
            self.tx_overrun_left -= 1;
            self.stats.tx_rejections += 1;
            return false;
        }
        if self.fire(self.plan.tx_reject_1_in) {
            self.stats.tx_rejections += 1;
            self.tx_overrun_left = self.plan.tx_overrun_len - 1;
            return false;
        }
        self.inner.tx_put(dir, q, buf)
    }

    fn flush_tx(&mut self) -> usize {
        self.inner.flush_tx()
    }

    fn queue_stats(&self, dir: Direction, q: usize) -> PortStats {
        self.inner.queue_stats(dir, q)
    }

    fn port_stats(&self, dir: Direction) -> PortStats {
        self.inner.port_stats(dir)
    }
}

impl<B: TesterIo> TesterIo for FaultIo<B> {
    fn stage(
        &mut self,
        dir: Direction,
        fields_writer: impl FnOnce(&mut [u8]) -> usize,
    ) -> Option<usize> {
        self.inner.stage(dir, fields_writer)
    }

    fn reap(&mut self, dir: Direction) -> Vec<(usize, Vec<u8>)> {
        self.inner.reap(dir)
    }
}

#[cfg(target_os = "linux")]
impl<B: super::os::WireBackend> super::os::WireBackend for FaultIo<B> {
    fn classifier(&self) -> crate::frame_env::RssClassifier {
        self.inner.classifier()
    }

    fn set_rx_log(&mut self, on: bool) {
        self.inner.set_rx_log(on)
    }

    fn take_rx_log(&mut self) -> Vec<(Direction, Vec<u8>)> {
        self.inner.take_rx_log()
    }

    fn rx_seen(&self) -> u64 {
        self.inner.rx_seen()
    }

    fn rx_errors(&self) -> u64 {
        self.inner.rx_errors()
    }

    fn tx_errors(&self) -> u64 {
        self.inner.tx_errors()
    }

    fn kernel_drops(&mut self) -> u64 {
        self.inner.kernel_drops()
    }

    fn io_retries(&self) -> super::os::IoRetryStats {
        self.inner.io_retries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use crate::frame_env::RssClassifier;
    use vig_packet::builder::PacketBuilder;
    use vig_packet::Ip4;
    use vig_spec::NatConfig;

    fn test_cfg() -> NatConfig {
        NatConfig {
            capacity: 256,
            expiry_ns: 1_000_000_000,
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1000,
            ..NatConfig::paper_default()
        }
    }

    fn sim(queues: usize) -> SimBackend {
        SimBackend::new(RssClassifier::for_nat(&test_cfg(), queues), 16)
    }

    fn stage_udp(io: &mut impl TesterIo, i: u32) -> Option<usize> {
        let frame = PacketBuilder::udp(
            Ip4(0x0a00_0100 | (i & 0xff)),
            Ip4::new(1, 1, 1, 1),
            5000 + i as u16,
            53,
        )
        .build();
        io.stage(Direction::Internal, |b| {
            b[..frame.len()].copy_from_slice(&frame);
            frame.len()
        })
    }

    #[test]
    fn empty_plan_is_identity_on_a_burst() {
        let mut bare = sim(2);
        let mut wrapped = FaultIo::new(sim(2), FaultPlan::none());
        for i in 0..32 {
            assert_eq!(stage_udp(&mut bare, i), stage_udp(&mut wrapped, i));
        }
        for q in 0..2 {
            let mut a = Vec::new();
            let mut b = Vec::new();
            assert_eq!(
                bare.rx_burst(Direction::Internal, q, 64, &mut a),
                wrapped.rx_burst(Direction::Internal, q, 64, &mut b)
            );
            let fa: Vec<Vec<u8>> = a.iter().map(|&x| bare.pool().frame(x).to_vec()).collect();
            let fb: Vec<Vec<u8>> = b
                .iter()
                .map(|&x| wrapped.pool().frame(x).to_vec())
                .collect();
            assert_eq!(fa, fb);
            assert_eq!(
                bare.queue_stats(Direction::Internal, q),
                wrapped.queue_stats(Direction::Internal, q)
            );
        }
        assert_eq!(wrapped.fault_stats(), FaultStats::default());
    }

    #[test]
    fn drop_always_loses_every_frame_with_attribution() {
        let mut io = FaultIo::new(sim(1), FaultPlan::seeded(7).drop_1_in(1));
        let free0 = io.inner().pool_available();
        for i in 0..8 {
            stage_udp(&mut io, i).expect("staged");
        }
        let mut out = Vec::new();
        assert_eq!(io.rx_burst(Direction::Internal, 0, 64, &mut out), 0);
        assert_eq!(io.fault_stats().rx_injected_drops, 8);
        assert_eq!(io.inner().pool_available(), free0, "buffers reclaimed");
    }

    #[test]
    fn stall_window_delays_but_never_loses() {
        let mut io = FaultIo::new(
            sim(1),
            FaultPlan::seeded(7).stall(Direction::Internal, 0, 1, 2),
        );
        stage_udp(&mut io, 1).expect("staged");
        io.pump_rx(); // round 1: stalled
        assert_eq!(io.rx_len(Direction::Internal, 0), 0);
        let mut out = Vec::new();
        assert_eq!(io.rx_burst(Direction::Internal, 0, 64, &mut out), 0);
        io.pump_rx(); // round 2: still stalled
        assert_eq!(io.rx_len(Direction::Internal, 0), 0);
        io.pump_rx(); // round 3: window over — the frame is back
        assert_eq!(io.rx_len(Direction::Internal, 0), 1);
        assert_eq!(io.rx_burst(Direction::Internal, 0, 64, &mut out), 1);
        assert_eq!(io.fault_stats().stalled_rounds, 2);
    }

    #[test]
    fn corruption_profiles_hit_their_header_fields() {
        for kind in [CorruptKind::BadIhl, CorruptKind::BadVersion] {
            let mut io = FaultIo::new(sim(1), FaultPlan::seeded(3).corrupt_1_in(1, kind));
            for i in 0..8 {
                stage_udp(&mut io, i).expect("staged");
            }
            let mut out = Vec::new();
            let n = io.rx_burst(Direction::Internal, 0, 64, &mut out);
            assert_eq!(n, 8);
            for &b in &out {
                let vihl = io.pool().frame(b)[14];
                let rejected = match kind {
                    CorruptKind::BadIhl => vihl & 0x0f < 5,
                    CorruptKind::BadVersion => vihl >> 4 != 4,
                    CorruptKind::RandomByte => unreachable!(),
                };
                assert!(rejected, "profile {kind:?} applied");
            }
            assert_eq!(io.fault_stats().rx_corrupted, 8);
        }
    }

    #[test]
    fn tx_overrun_burst_rejects_consecutive_puts() {
        let mut io = FaultIo::new(sim(1), FaultPlan::seeded(3).tx_reject_1_in(1, 3));
        let b = io.pool_mut().get().expect("buffer");
        io.pool_mut().write_frame(b, &[0u8; 64]);
        for _ in 0..3 {
            assert!(!io.tx_put(Direction::External, 0, b));
        }
        assert_eq!(io.fault_stats().tx_rejections, 3);
        io.pool_mut().put(b);
    }
}
