//! The persistent core-pinned shard runtime: long-lived worker threads
//! fed through lock-free SPSC rings.
//!
//! [`ParallelShardedNat`](crate::harness::ParallelShardedNat) proved
//! the N-shard NAT *correct* under parallel execution, but it spawns
//! its scoped workers **per burst** — thread creation and teardown on
//! every burst swamps the per-packet work, which is why the honest
//! wall-clock number in `BENCH_throughput.json` sat ~20x below the
//! per-shard sum. This module is the deployment-shaped fix, the
//! software analog of DPDK's `rte_eal_remote_launch` + `rte_ring`
//! topology:
//!
//! * **one long-lived worker thread per shard**, spawned once per
//!   session ([`with_shard_runtime`]) and kept hot across every burst;
//! * each worker **pinned to a CPU** with `sched_setaffinity` (via the
//!   safe wrappers in [`crate::backend::os`]; `unsafe` stays confined
//!   to that module's `sys` block). Pinning failure — unprivileged or
//!   cgroup-restricted runners — degrades gracefully to unpinned
//!   persistent workers, and the [`PinReport`] says so;
//! * dispatcher ↔ worker traffic rides two [`libvig::spsc`] rings per
//!   shard (jobs down, results up): single-producer/single-consumer,
//!   cache-line-padded cursors, batched word transfers — no locks
//!   anywhere on the datapath, matching the paper's no-shared-state
//!   discipline (§5: every structure single-owner);
//! * workers **busy-poll with exponential idle backoff** (spin → yield
//!   → sleep, the thread-world analog of
//!   [`crate::eventloop::Poller`]'s virtual backoff), so an idle shard
//!   cedes its core — which matters on the very runners where pinning
//!   is also restricted.
//!
//! ## Determinism (the oracle contract)
//!
//! Parallelism changes *when* work happens, never *what* the result
//! is. Dispatch is the same RSS function the flow table routes by, so
//! shards share no flow state; each worker drains its sub-burst
//! run-to-completion in [`MAX_BURST`] chunks (an empty sub-burst still
//! runs one empty chunk — the expiry tick a polling core performs
//! every iteration); and the dispatcher merges results in shard order,
//! scattering verdicts and rewritten bytes back to arrival positions.
//! The result: for any interleaving of worker execution, N-worker
//! output and state are byte-identical to the sequential
//! [`ShardedFlowManager`] oracle — `tests/runtime_equivalence.rs`
//! proves it differentially at 1/2/4 workers.
//!
//! ## Deadlock freedom
//!
//! Rings are bounded, so a naive "push whole job, then read whole
//! result" dispatcher could deadlock against a worker blocked on a
//! full result ring. The dispatcher therefore never blocks: it pumps
//! round-robin — push as many job words as fit, drain whatever result
//! words arrived — until every stream completes. Workers *may* block
//! (with backoff) on both rings, because the dispatcher is always
//! draining the other end.

use crate::dpdk::{BufIdx, Mempool, MBUF_SIZE};
use crate::frame_env::{BurstEnv, BurstScratch, RssClassifier};
use crate::middlebox::Verdict;
use libvig::spsc;
use libvig::time::Time;
use vig_packet::Direction;
use vignat::{nat_process_batch, IterationOutcome, ShardedFlowManager, MAX_BURST};

/// Job-stream sentinel header: "session over, worker exits".
const SHUTDOWN: u64 = u64::MAX;

/// Default per-ring capacity in words (64 Ki words = 512 KiB): holds a
/// full 4096-frame burst of minimum-size frames on one shard, so the
/// steady-state pump rarely has to split a job across refills.
pub const DEFAULT_RING_WORDS: usize = 1 << 16;

/// What happened when the session asked for core pinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinReport {
    /// Whether pinning was requested for this session.
    pub requested: bool,
    /// Worker threads the session ran.
    pub workers: usize,
    /// Workers whose `sched_setaffinity` succeeded (0 when pinning was
    /// not requested, or on non-Linux hosts, or when the runner forbids
    /// it — the graceful-degradation path).
    pub pinned: usize,
    /// CPUs the process may run on (`sched_getaffinity`), the honest
    /// core budget under taskset/cgroup limits. Worker `s` pins to
    /// `allowed[s % host_cores]`.
    pub host_cores: usize,
}

/// Post-session summary returned by [`with_shard_runtime`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeReport {
    /// Pinning outcome (see [`PinReport`]).
    pub pin: PinReport,
    /// Flows expired by workers over the whole session.
    pub expired: u64,
}

// --- affinity shims (backend::os is Linux-only) ----------------------------

#[cfg(target_os = "linux")]
fn pin_to(cpu: usize) -> bool {
    crate::backend::os::pin_current_thread(cpu).is_ok()
}

#[cfg(not(target_os = "linux"))]
fn pin_to(_cpu: usize) -> bool {
    false
}

#[cfg(target_os = "linux")]
fn host_allowed_cpus() -> Vec<usize> {
    crate::backend::os::allowed_cpus().unwrap_or_else(|_| fallback_cpus())
}

#[cfg(not(target_os = "linux"))]
fn host_allowed_cpus() -> Vec<usize> {
    fallback_cpus()
}

fn fallback_cpus() -> Vec<usize> {
    let n = std::thread::available_parallelism().map_or(1, |p| p.get());
    (0..n).collect()
}

// --- word codec ------------------------------------------------------------

/// Words a `len`-byte payload occupies (8 bytes per word, last padded).
fn payload_words(len: usize) -> usize {
    len.div_ceil(8)
}

/// Append `[len, payload…]` for one frame to a word stream.
fn encode_frame(words: &mut Vec<u64>, frame: &[u8]) {
    words.push(frame.len() as u64);
    for chunk in frame.chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        words.push(u64::from_le_bytes(b));
    }
}

/// Decode `payload_words(len)` words into `out[..len]`.
fn decode_payload(words: &[u64], out: &mut [u8]) {
    for (i, w) in words.iter().enumerate() {
        let b = w.to_le_bytes();
        let lo = i * 8;
        let hi = (lo + 8).min(out.len());
        out[lo..hi].copy_from_slice(&b[..hi - lo]);
    }
}

// --- worker-side blocking ring ops with idle backoff -----------------------

/// Spin → yield → sleep ladder for a worker waiting on its rings: the
/// real-time analog of the event loop's virtual idle backoff. The spin
/// phase keeps the hot path latency-free; the sleep phase (doubling
/// 1 µs → 128 µs) matters on hosts with fewer cores than workers,
/// where a spinning worker would starve the dispatcher it is waiting
/// on.
struct Backoff {
    step: u32,
}

impl Backoff {
    const SPINS: u32 = 64;
    const YIELDS: u32 = 16;
    const SLEEP_MIN_NS: u64 = 1_000;
    const SLEEP_MAX_NS: u64 = 128_000;

    fn new() -> Backoff {
        Backoff { step: 0 }
    }

    fn reset(&mut self) {
        self.step = 0;
    }

    fn wait(&mut self) {
        if self.step < Self::SPINS {
            std::hint::spin_loop();
        } else if self.step < Self::SPINS + Self::YIELDS {
            std::thread::yield_now();
        } else {
            let exp = (self.step - Self::SPINS - Self::YIELDS).min(16);
            let ns = (Self::SLEEP_MIN_NS << exp).min(Self::SLEEP_MAX_NS);
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
        self.step = self.step.saturating_add(1);
    }
}

/// Blocking single-word pop (worker side only — the dispatcher never
/// blocks; see the module docs' deadlock argument).
fn pop_blocking(ring: &mut spsc::Consumer, backoff: &mut Backoff) -> u64 {
    loop {
        if let Some(w) = ring.try_pop() {
            backoff.reset();
            return w;
        }
        backoff.wait();
    }
}

/// Blocking slice push (worker side only).
fn push_blocking(ring: &mut spsc::Producer, words: &[u64], backoff: &mut Backoff) {
    let mut sent = 0;
    while sent < words.len() {
        let n = ring.push_slice(&words[sent..]);
        if n == 0 {
            backoff.wait();
        } else {
            backoff.reset();
            sent += n;
        }
    }
}

// --- the worker loop -------------------------------------------------------

/// One shard's long-lived worker: pin (best effort), report pin status
/// as the first result word, then serve jobs until the shutdown
/// sentinel.
///
/// Job stream per burst: `[count, dir, now_ns, count × (len,
/// payload…)]`. Result stream: `count × (verdict, len, payload…)`
/// followed by one expired-count trailer word. Frames are processed
/// run-to-completion in [`MAX_BURST`] chunks exactly like the scoped
/// per-burst driver, so state trajectories are identical; a zero-count
/// job runs one empty chunk (the polling core's expiry tick).
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    fm: &mut vignat::FlowManager,
    pool: &mut Mempool,
    scratch: &mut BurstScratch,
    cfg: vig_spec::NatConfig,
    jobs: &mut spsc::Consumer,
    results: &mut spsc::Producer,
    pin_cpu: Option<usize>,
) {
    let pinned = pin_cpu.is_some_and(pin_to);
    let mut backoff = Backoff::new();
    push_blocking(results, &[u64::from(pinned)], &mut backoff);
    let mut frame_buf = vec![0u8; MBUF_SIZE];
    let mut words: Vec<u64> = Vec::with_capacity(MBUF_SIZE / 8 + 2);
    let mut bufs: Vec<BufIdx> = Vec::with_capacity(MAX_BURST.max(1));
    loop {
        let header = pop_blocking(jobs, &mut backoff);
        if header == SHUTDOWN {
            return;
        }
        let count = header as usize;
        let dir = if pop_blocking(jobs, &mut backoff) == 0 {
            Direction::Internal
        } else {
            Direction::External
        };
        let now = Time::ZERO.plus(pop_blocking(jobs, &mut backoff));
        let mut expired = 0usize;
        if count == 0 {
            // Idle shard: one empty burst, so expiry ticks exactly as
            // in the sequential oracle (which expires every shard per
            // burst) and in the scoped per-burst driver.
            let mut env = BurstEnv::new(fm, pool, &[], dir, now, scratch);
            let outcomes = nat_process_batch(&mut env, &cfg);
            debug_assert!(outcomes.is_empty());
            expired += env.expired();
            env.finish();
        }
        let mut remaining = count;
        while remaining > 0 {
            let take = remaining.min(MAX_BURST.max(1));
            bufs.clear();
            for _ in 0..take {
                let len = pop_blocking(jobs, &mut backoff) as usize;
                debug_assert!(len <= MBUF_SIZE);
                words.clear();
                for _ in 0..payload_words(len) {
                    words.push(pop_blocking(jobs, &mut backoff));
                }
                decode_payload(&words, &mut frame_buf[..len]);
                let b = pool.get().expect("per-shard pool sized for a burst");
                pool.write_frame(b, &frame_buf[..len]);
                bufs.push(b);
            }
            let mut env = BurstEnv::new(fm, pool, &bufs, dir, now, scratch);
            let outcomes = nat_process_batch(&mut env, &cfg);
            debug_assert_eq!(outcomes.len(), bufs.len());
            expired += env.expired();
            env.finish();
            for (&b, o) in bufs.iter().zip(outcomes) {
                let verdict = match o {
                    IterationOutcome::Forwarded(Direction::Internal) => 1,
                    IterationOutcome::Forwarded(Direction::External) => 2,
                    IterationOutcome::Dropped(_) => 0,
                    IterationOutcome::NoPacket => unreachable!("staged buffer"),
                };
                words.clear();
                words.push(verdict);
                encode_frame(&mut words, pool.frame(b));
                push_blocking(results, &words, &mut backoff);
                pool.put(b);
            }
            remaining -= take;
        }
        push_blocking(results, &[expired as u64], &mut backoff);
    }
}

// --- the dispatcher session ------------------------------------------------

/// The dispatcher's handle to a live worker fleet, valid inside one
/// [`with_shard_runtime`] call. Owns the job-ring producers and
/// result-ring consumers; the workers own the opposite ends plus their
/// shard's flow state, mempool, and scratch (disjoint `&mut` borrows —
/// the compiler enforces the no-shared-state discipline).
pub struct ShardRuntimeSession {
    jobs: Vec<spsc::Producer>,
    results: Vec<spsc::Consumer>,
    classifier: RssClassifier,
    expired: u64,
    pin: PinReport,
}

impl ShardRuntimeSession {
    /// Number of worker threads (== shards).
    pub fn worker_count(&self) -> usize {
        self.jobs.len()
    }

    /// Pinning outcome for this session's workers.
    pub fn pin_report(&self) -> PinReport {
        self.pin
    }

    /// Flows expired by workers so far this session.
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Process one burst arriving on `dir` at instant `now` across the
    /// persistent workers. Frames are rewritten in place; returns one
    /// verdict per frame in arrival order. Semantically identical to
    /// [`crate::harness::ParallelShardedNat::process_burst_parallel`] —
    /// same dispatch, same chunking, same merge order — minus the
    /// per-burst thread spawn.
    pub fn process_burst(
        &mut self,
        dir: Direction,
        frames: &mut [Vec<u8>],
        now: Time,
    ) -> Vec<Verdict> {
        let n = self.worker_count();
        // Dispatch: route every frame to its shard (RSS function).
        let mut routed: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, f) in frames.iter().enumerate() {
            routed[self.classifier.queue_of(dir, f)].push(i);
        }
        // Encode each shard's job stream and compute the exact result
        // stream length (the NAT rewrites in place, so output length ==
        // input length: `count × (verdict + len + payload) + trailer`).
        let dir_word = match dir {
            Direction::Internal => 0u64,
            Direction::External => 1u64,
        };
        let mut job_words: Vec<Vec<u64>> = Vec::with_capacity(n);
        let mut need: Vec<usize> = Vec::with_capacity(n);
        for idxs in &routed {
            let mut w = Vec::with_capacity(3 + idxs.len() * (1 + MBUF_SIZE / 8));
            w.push(idxs.len() as u64);
            w.push(dir_word);
            w.push(now.nanos());
            let mut result_len = 1; // expired trailer
            for &i in idxs {
                encode_frame(&mut w, &frames[i]);
                result_len += 2 + payload_words(frames[i].len());
            }
            job_words.push(w);
            need.push(result_len);
        }
        // Non-blocking pump: interleave job pushes and result drains so
        // bounded rings can never deadlock (see module docs).
        let mut sent = vec![0usize; n];
        let mut recv: Vec<Vec<u64>> = need.iter().map(|&m| Vec::with_capacity(m)).collect();
        loop {
            let mut done = true;
            let mut progress = false;
            for s in 0..n {
                if sent[s] < job_words[s].len() {
                    let pushed = self.jobs[s].push_slice(&job_words[s][sent[s]..]);
                    sent[s] += pushed;
                    progress |= pushed > 0;
                    done &= sent[s] == job_words[s].len();
                }
                if recv[s].len() < need[s] {
                    let want = need[s] - recv[s].len();
                    let popped = self.results[s].pop_extend(&mut recv[s], want);
                    progress |= popped > 0;
                    done &= recv[s].len() == need[s];
                }
            }
            if done {
                break;
            }
            if !progress {
                std::thread::yield_now();
            }
        }
        // Merge in deterministic shard order: scatter verdicts and
        // rewritten bytes back to arrival positions, accumulate expiry.
        let mut out = vec![Verdict::Drop; frames.len()];
        for (s, idxs) in routed.iter().enumerate() {
            let stream = &recv[s];
            let mut at = 0usize;
            for &i in idxs {
                let verdict = stream[at];
                let len = stream[at + 1] as usize;
                debug_assert_eq!(len, frames[i].len(), "NAT rewrites in place");
                let pw = payload_words(len);
                decode_payload(&stream[at + 2..at + 2 + pw], &mut frames[i]);
                at += 2 + pw;
                out[i] = match verdict {
                    0 => Verdict::Drop,
                    1 => Verdict::Forward(Direction::Internal),
                    2 => Verdict::Forward(Direction::External),
                    v => unreachable!("bad verdict word {v}"),
                };
            }
            self.expired += stream[at];
            debug_assert_eq!(at + 1, need[s]);
        }
        out
    }
}

/// Run `f` with a live shard runtime: one persistent worker thread per
/// shard of `table`, each owning its shard's [`Mempool`] and
/// [`BurstScratch`], connected to the calling (dispatcher) thread by
/// SPSC rings of `ring_words` words (use [`DEFAULT_RING_WORDS`]).
///
/// With `pin` set, worker `s` pins itself to the `s % host_cores`-th
/// *allowed* CPU; failures degrade to unpinned workers and are counted
/// in the returned [`RuntimeReport`] — never an error, matching how a
/// restricted CI runner should behave.
///
/// The session (and thus every worker) lives exactly as long as `f`:
/// on return, shutdown sentinels are sent and the scope joins all
/// workers, so `table` is borrowable again immediately after.
pub fn with_shard_runtime<R>(
    table: &mut ShardedFlowManager,
    pools: &mut [Mempool],
    scratches: &mut [BurstScratch],
    ring_words: usize,
    pin: bool,
    f: impl FnOnce(&mut ShardRuntimeSession) -> R,
) -> (R, RuntimeReport) {
    let n = table.shard_count();
    assert_eq!(pools.len(), n, "one mempool per shard");
    assert_eq!(scratches.len(), n, "one scratch per shard");
    let classifier = RssClassifier::for_table(table);
    // Every worker runs the loop body with the *global* config: shard
    // FlowManagers hand out pool-global port offsets (via their slot
    // base), so the loop's `start_port + offset` arithmetic must use
    // the global start port on every core.
    let cfg = table.global_cfg();
    let allowed = host_allowed_cpus();
    let host_cores = allowed.len().max(1);
    let mut job_tx = Vec::with_capacity(n);
    let mut job_rx = Vec::with_capacity(n);
    let mut res_tx = Vec::with_capacity(n);
    let mut res_rx = Vec::with_capacity(n);
    for _ in 0..n {
        let (p, c) = spsc::channel(ring_words);
        job_tx.push(p);
        job_rx.push(c);
        let (p, c) = spsc::channel(ring_words);
        res_tx.push(p);
        res_rx.push(c);
    }
    std::thread::scope(|sc| {
        let workers = table
            .shards_mut()
            .iter_mut()
            .zip(pools.iter_mut())
            .zip(scratches.iter_mut())
            .zip(job_rx.into_iter().zip(res_tx))
            .enumerate();
        for (s, (((fm, pool), scratch), (mut jobs, mut results))) in workers {
            let pin_cpu = pin.then(|| allowed[s % host_cores]);
            sc.spawn(move || worker_loop(fm, pool, scratch, cfg, &mut jobs, &mut results, pin_cpu));
        }
        let mut session = ShardRuntimeSession {
            jobs: job_tx,
            results: res_rx,
            classifier,
            expired: 0,
            pin: PinReport {
                requested: pin,
                workers: n,
                pinned: 0,
                host_cores,
            },
        };
        // First result word from each worker is its pin status; collect
        // before handing the session to `f` so reports are complete even
        // if `f` never processes a burst. Workers push it immediately,
        // so this wait is bounded by thread startup.
        let mut pinned = 0usize;
        for c in session.results.iter_mut() {
            let mut backoff = Backoff::new();
            pinned += pop_blocking(c, &mut backoff) as usize;
        }
        session.pin.pinned = pinned;
        let r = f(&mut session);
        // Shutdown: sentinel per worker, then the scope joins them.
        for p in session.jobs.iter_mut() {
            let mut backoff = Backoff::new();
            push_blocking(p, &[SHUTDOWN], &mut backoff);
        }
        let report = RuntimeReport {
            pin: session.pin,
            expired: session.expired,
        };
        (r, report)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrips_odd_lengths() {
        for len in [0usize, 1, 7, 8, 9, 15, 64, 1499] {
            let frame: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let mut words = Vec::new();
            encode_frame(&mut words, &frame);
            assert_eq!(words[0] as usize, len);
            assert_eq!(words.len(), 1 + payload_words(len));
            let mut out = vec![0u8; len];
            decode_payload(&words[1..], &mut out);
            assert_eq!(out, frame);
        }
    }

    #[test]
    fn pin_report_degrades_gracefully() {
        let cfg = vig_spec::NatConfig {
            capacity: 64,
            expiry_ns: Time::from_secs(2).nanos(),
            external_ip: vig_packet::Ip4::new(203, 0, 113, 1),
            start_port: 4096,
        };
        let mut table = ShardedFlowManager::new(&cfg, 2);
        let mut pools: Vec<Mempool> = (0..2).map(|_| Mempool::new(8)).collect();
        let mut scratches: Vec<BurstScratch> = (0..2).map(|_| BurstScratch::default()).collect();
        let ((), report) = with_shard_runtime(
            &mut table,
            &mut pools,
            &mut scratches,
            DEFAULT_RING_WORDS,
            true,
            |s| {
                assert_eq!(s.worker_count(), 2);
            },
        );
        assert!(report.pin.requested);
        assert_eq!(report.pin.workers, 2);
        // Pinning either worked or degraded — both are valid outcomes;
        // the report just has to be internally consistent.
        assert!(report.pin.pinned <= 2);
        assert!(report.pin.host_cores >= 1);
    }
}
