//! The persistent core-pinned shard runtime: long-lived worker threads
//! fed through lock-free SPSC rings, under a supervising dispatcher.
//!
//! [`ParallelShardedNat`](crate::harness::ParallelShardedNat) proved
//! the N-shard NAT *correct* under parallel execution, but it spawns
//! its scoped workers **per burst** — thread creation and teardown on
//! every burst swamps the per-packet work, which is why the honest
//! wall-clock number in `BENCH_throughput.json` sat ~20x below the
//! per-shard sum. This module is the deployment-shaped fix, the
//! software analog of DPDK's `rte_eal_remote_launch` + `rte_ring`
//! topology:
//!
//! * **one long-lived worker thread per shard**, spawned once per
//!   session ([`with_shard_runtime`]) and kept hot across every burst;
//! * each worker **pinned to a CPU** with `sched_setaffinity` (via the
//!   safe wrappers in [`crate::backend::os`]; `unsafe` stays confined
//!   to that module's `sys` block). Pinning failure — unprivileged or
//!   cgroup-restricted runners — degrades gracefully to unpinned
//!   persistent workers, and the [`PinReport`] says so;
//! * dispatcher ↔ worker traffic rides two [`libvig::spsc`] rings per
//!   shard (jobs down, results up): single-producer/single-consumer,
//!   cache-line-padded cursors, batched word transfers — no locks
//!   anywhere on the datapath, matching the paper's no-shared-state
//!   discipline (§5: every structure single-owner);
//! * workers **busy-poll with exponential idle backoff** (spin → yield
//!   → sleep, the thread-world analog of
//!   [`crate::eventloop::Poller`]'s virtual backoff), so an idle shard
//!   cedes its core — which matters on the very runners where pinning
//!   is also restricted.
//!
//! ## Determinism (the oracle contract)
//!
//! Parallelism changes *when* work happens, never *what* the result
//! is. Dispatch is the same RSS function the flow table routes by, so
//! shards share no flow state; each worker drains its sub-burst
//! run-to-completion in [`MAX_BURST`] chunks (an empty sub-burst still
//! runs one empty chunk — the expiry tick a polling core performs
//! every iteration); and the dispatcher merges results in shard order,
//! scattering verdicts and rewritten bytes back to arrival positions.
//! The result: for any interleaving of worker execution, N-worker
//! output and state are byte-identical to the sequential
//! [`ShardedFlowManager`] oracle — `tests/runtime_equivalence.rs`
//! proves it differentially at 1/2/4 workers.
//!
//! ## Supervision (graceful degradation)
//!
//! The paper's proof covers the loop body; a deployment also has to
//! survive the loop body's *host* misbehaving. Three failure classes
//! are handled, each with full loss attribution (every frame that
//! does not come back forwarded is counted in exactly one
//! [`SupervisorStats`] bucket):
//!
//! 1. **Worker panic.** Each worker reads its *entire* job off the
//!    ring before touching shard state, and buffers its *entire*
//!    result before pushing — so the rings only ever see whole
//!    responses, never a torn stream. The job itself runs under
//!    `catch_unwind`; on panic the worker discards the suspect shard
//!    state ([`vignat::FlowManager::reset`] — mid-batch, any subset of
//!    table/chain/wheel updates may have landed — plus a fresh
//!    [`Mempool`], since staged buffers leak on unwind), re-attempts
//!    its pin, and answers with a two-word `DOWN` report instead of a
//!    result body. The dispatcher maps the whole job to
//!    [`Verdict::Drop`], records a [`WorkerDown`] event, and the next
//!    burst finds the shard alive and empty. Surviving shards are
//!    untouched: their merge is byte-identical to a run where the dead
//!    shard's frames simply never arrived.
//! 2. **Worker death.** If a shard stops making ring progress for
//!    longer than the session's stall budget
//!    ([`ShardRuntimeSession::set_stall_budget`]), the dispatcher
//!    retires it: the in-flight job is dropped with accounting, the
//!    dead result ring is drained (words counted, not abandoned), and
//!    the shard is marked dead. This is also the **bounded
//!    backpressure** guarantee — a full job ring can delay a burst by
//!    at most the stall budget, never stall it forever.
//! 3. **Retired shards.** Frames the RSS function routes to a dead
//!    shard are dropped at dispatch (`backpressure_drops`), before any
//!    ring traffic — the session keeps serving every surviving shard.
//!
//! Mempool exhaustion inside a worker is *not* a failure: admission is
//! checked per frame, denied frames come back as [`Verdict::Drop`]
//! with their bytes unmodified, and the count rides the result trailer
//! into `SupervisorStats::pool_denied`.
//!
//! ## Deadlock freedom
//!
//! Rings are bounded, so a naive "push whole job, then read whole
//! result" dispatcher could deadlock against a worker blocked on a
//! full result ring. The dispatcher therefore never blocks: it pumps
//! round-robin — push as many job words as fit, drain whatever result
//! words arrived — until every stream completes or exceeds its stall
//! budget. Workers *may* block (with backoff) on both rings, because
//! the dispatcher is always draining the other end.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crate::dpdk::{BufIdx, Mempool, MBUF_SIZE};
use crate::frame_env::{BurstEnv, BurstScratch, RssClassifier};
use crate::middlebox::Verdict;
use libvig::spsc;
use libvig::time::Time;
use vig_packet::Direction;
use vignat::{nat_process_batch, IterationOutcome, ShardedFlowManager, MAX_BURST};

/// Job-stream sentinel header: "session over, worker exits".
const SHUTDOWN: u64 = u64::MAX;

/// Job-stream sentinel header: arm the worker to panic partway through
/// its next job — the chaos seam behind the supervised-restart tests.
const KILL: u64 = u64::MAX - 1;

/// Job-stream sentinel header: the worker thread exits immediately and
/// silently — a simulated hard death (SIGKILL analog) that exercises
/// the dispatcher's stall-budget retirement path.
const HALT: u64 = u64::MAX - 2;

/// First word of every per-job response: a complete result body
/// follows (`count × (verdict, len, payload…), expired, pool_denied`).
const STATUS_OK: u64 = 0;

/// First word of a response from a worker that panicked on the job:
/// one more word follows (whether the re-pin after restart succeeded).
const STATUS_DOWN: u64 = 1;

/// Default per-ring capacity in words (64 Ki words = 512 KiB): holds a
/// full 4096-frame burst of minimum-size frames on one shard, so the
/// steady-state pump rarely has to split a job across refills.
pub const DEFAULT_RING_WORDS: usize = 1 << 16;

/// Default [`ShardRuntimeSession::set_stall_budget`]: how long a shard
/// may make zero ring progress mid-burst before the dispatcher retires
/// it. Generous — a healthy worker chewing a full 4096-frame job
/// finishes orders of magnitude faster — because a false positive
/// retires a live shard.
pub const DEFAULT_STALL_BUDGET: Duration = Duration::from_secs(1);

/// What happened when the session asked for core pinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinReport {
    /// Whether pinning was requested for this session.
    pub requested: bool,
    /// Worker threads the session ran.
    pub workers: usize,
    /// Workers whose `sched_setaffinity` succeeded (0 when pinning was
    /// not requested, or on non-Linux hosts, or when the runner forbids
    /// it — the graceful-degradation path). Kept current across
    /// supervised restarts: a restarted worker re-attempts its pin and
    /// reports the outcome; a retired shard stops counting.
    pub pinned: usize,
    /// CPUs the process may run on (`sched_getaffinity`), the honest
    /// core budget under taskset/cgroup limits. Worker `s` pins to
    /// `allowed[s % host_cores]`.
    pub host_cores: usize,
}

/// Supervisor counters: every frame the runtime failed to process is
/// attributed to exactly one bucket here (the chaos suites assert the
/// conservation law). All counters accumulate over a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Worker panics caught and recovered (shard state reset, worker
    /// kept serving). One [`WorkerDown`] event each.
    pub worker_downs: u64,
    /// Shards retired after exceeding the dispatcher's stall budget
    /// with zero ring progress (worker thread presumed dead).
    pub hard_deaths: u64,
    /// Frames lost to a panicking or dying worker: the whole in-flight
    /// job maps to [`Verdict::Drop`].
    pub frames_lost: u64,
    /// Frames dropped at dispatch because their shard was already
    /// retired — the bounded-backpressure path (no ring traffic, no
    /// stall).
    pub backpressure_drops: u64,
    /// Frames denied a buffer by a worker's checked mempool admission:
    /// returned as [`Verdict::Drop`] with bytes unmodified.
    pub pool_denied: u64,
    /// Result-ring words drained and discarded from dead shards —
    /// counted so in-flight data is accounted, never silently
    /// abandoned.
    pub drained_result_words: u64,
}

/// One supervised-failure event, in occurrence order
/// ([`ShardRuntimeSession::down_events`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerDown {
    /// Which shard went down.
    pub shard: usize,
    /// Frames of the in-flight job lost to the failure (all returned
    /// as [`Verdict::Drop`]).
    pub frames_lost: usize,
    /// Whether the restarted worker's re-pin succeeded (always `false`
    /// for hard deaths — there is no worker left to pin).
    pub repinned: bool,
    /// `true`: panic caught, worker restarted on a fresh shard and
    /// still serving. `false`: hard death, shard retired for the rest
    /// of the session.
    pub restarted: bool,
}

/// Post-session summary returned by [`with_shard_runtime`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeReport {
    /// Pinning outcome (see [`PinReport`]).
    pub pin: PinReport,
    /// Flows expired by workers over the whole session.
    pub expired: u64,
    /// Supervisor counters (see [`SupervisorStats`]): all zero on a
    /// fault-free session.
    pub chaos: SupervisorStats,
}

// --- affinity shims (backend::os is Linux-only) ----------------------------

#[cfg(target_os = "linux")]
fn pin_to(cpu: usize) -> bool {
    crate::backend::os::pin_current_thread(cpu).is_ok()
}

#[cfg(not(target_os = "linux"))]
fn pin_to(_cpu: usize) -> bool {
    false
}

#[cfg(target_os = "linux")]
fn host_allowed_cpus() -> Vec<usize> {
    crate::backend::os::allowed_cpus().unwrap_or_else(|_| fallback_cpus())
}

#[cfg(not(target_os = "linux"))]
fn host_allowed_cpus() -> Vec<usize> {
    fallback_cpus()
}

fn fallback_cpus() -> Vec<usize> {
    let n = std::thread::available_parallelism().map_or(1, |p| p.get());
    (0..n).collect()
}

// --- word codec ------------------------------------------------------------

/// Words a `len`-byte payload occupies (8 bytes per word, last padded).
fn payload_words(len: usize) -> usize {
    len.div_ceil(8)
}

/// Append `[len, payload…]` for one frame to a word stream.
fn encode_frame(words: &mut Vec<u64>, frame: &[u8]) {
    words.push(frame.len() as u64);
    for chunk in frame.chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        words.push(u64::from_le_bytes(b));
    }
}

/// Decode `payload_words(len)` words into `out[..len]`.
fn decode_payload(words: &[u64], out: &mut [u8]) {
    for (i, w) in words.iter().enumerate() {
        let b = w.to_le_bytes();
        let lo = i * 8;
        let hi = (lo + 8).min(out.len());
        out[lo..hi].copy_from_slice(&b[..hi - lo]);
    }
}

// --- worker-side blocking ring ops with idle backoff -----------------------

/// Spin → yield → sleep ladder for a worker waiting on its rings: the
/// real-time analog of the event loop's virtual idle backoff. The spin
/// phase keeps the hot path latency-free; the sleep phase (doubling
/// 1 µs → 128 µs) matters on hosts with fewer cores than workers,
/// where a spinning worker would starve the dispatcher it is waiting
/// on.
struct Backoff {
    step: u32,
}

impl Backoff {
    const SPINS: u32 = 64;
    const YIELDS: u32 = 16;
    const SLEEP_MIN_NS: u64 = 1_000;
    const SLEEP_MAX_NS: u64 = 128_000;

    fn new() -> Backoff {
        Backoff { step: 0 }
    }

    fn reset(&mut self) {
        self.step = 0;
    }

    fn wait(&mut self) {
        if self.step < Self::SPINS {
            std::hint::spin_loop();
        } else if self.step < Self::SPINS + Self::YIELDS {
            std::thread::yield_now();
        } else {
            let exp = (self.step - Self::SPINS - Self::YIELDS).min(16);
            let ns = (Self::SLEEP_MIN_NS << exp).min(Self::SLEEP_MAX_NS);
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
        self.step = self.step.saturating_add(1);
    }
}

/// Blocking single-word pop (worker side only — the dispatcher never
/// blocks; see the module docs' deadlock argument).
fn pop_blocking(ring: &mut spsc::Consumer, backoff: &mut Backoff) -> u64 {
    loop {
        if let Some(w) = ring.try_pop() {
            backoff.reset();
            return w;
        }
        backoff.wait();
    }
}

/// Blocking slice push (worker side only).
fn push_blocking(ring: &mut spsc::Producer, words: &[u64], backoff: &mut Backoff) {
    let mut sent = 0;
    while sent < words.len() {
        let n = ring.push_slice(&words[sent..]);
        if n == 0 {
            backoff.wait();
        } else {
            backoff.reset();
            sent += n;
        }
    }
}

// --- the worker loop -------------------------------------------------------

/// Run one fully-buffered job against the shard's state and build the
/// complete `OK` response: `[STATUS_OK, count × (verdict, len,
/// payload…), expired, pool_denied]`.
///
/// Frames live in `flat` back-to-back, lengths in `lens`. Processing
/// is run-to-completion in [`MAX_BURST`] chunks exactly like the
/// scoped per-burst driver, so state trajectories are identical; an
/// empty job runs one empty chunk (the polling core's expiry tick).
/// Mempool admission is checked, not assumed: a denied frame is
/// dropped with its bytes echoed unmodified and counted in the
/// `pool_denied` trailer — undersized pools degrade, they don't panic.
///
/// `kill` is the test seam: panic after the first chunk (after the
/// empty tick for an empty job), so shard state is *partially* mutated
/// when the supervisor's reset runs — the hard case.
#[allow(clippy::too_many_arguments)]
fn run_job(
    fm: &mut vignat::FlowManager,
    pool: &mut Mempool,
    scratch: &mut BurstScratch,
    cfg: &vig_spec::NatConfig,
    dir: Direction,
    now: Time,
    flat: &[u8],
    lens: &[usize],
    kill: bool,
) -> Vec<u64> {
    let cap: usize = 3 + lens.iter().map(|&l| 2 + payload_words(l)).sum::<usize>();
    let mut out = Vec::with_capacity(cap);
    out.push(STATUS_OK);
    let mut expired = 0usize;
    let mut pool_denied = 0u64;
    if lens.is_empty() {
        // Idle shard: one empty burst, so expiry ticks exactly as in
        // the sequential oracle (which expires every shard per burst)
        // and in the scoped per-burst driver.
        let mut env = BurstEnv::new(fm, pool, &[], dir, now, scratch);
        let outcomes = nat_process_batch(&mut env, cfg);
        debug_assert!(outcomes.is_empty());
        expired += env.expired();
        env.finish();
        if kill {
            panic!("injected worker kill (test seam)");
        }
    }
    let mut bufs: Vec<BufIdx> = Vec::with_capacity(MAX_BURST.max(1));
    let mut slots: Vec<Option<BufIdx>> = Vec::with_capacity(MAX_BURST.max(1));
    let mut idx = 0usize; // next frame
    let mut at = 0usize; // its offset into `flat`
    let mut first_chunk = true;
    while idx < lens.len() {
        let take = (lens.len() - idx).min(MAX_BURST.max(1));
        bufs.clear();
        slots.clear();
        let mut o = at;
        for &len in &lens[idx..idx + take] {
            match pool.get() {
                Some(b) => {
                    pool.write_frame(b, &flat[o..o + len]);
                    bufs.push(b);
                    slots.push(Some(b));
                }
                None => {
                    pool_denied += 1;
                    slots.push(None);
                }
            }
            o += len;
        }
        let mut env = BurstEnv::new(fm, pool, &bufs, dir, now, scratch);
        let outcomes = nat_process_batch(&mut env, cfg);
        debug_assert_eq!(outcomes.len(), bufs.len());
        expired += env.expired();
        env.finish();
        let mut oi = 0usize;
        let mut o = at;
        for (k, &len) in lens[idx..idx + take].iter().enumerate() {
            match slots[k] {
                Some(b) => {
                    let verdict = match outcomes[oi] {
                        IterationOutcome::Forwarded(Direction::Internal) => 1,
                        IterationOutcome::Forwarded(Direction::External) => 2,
                        IterationOutcome::Dropped(_) => 0,
                        IterationOutcome::NoPacket => unreachable!("staged buffer"),
                    };
                    oi += 1;
                    out.push(verdict);
                    encode_frame(&mut out, pool.frame(b));
                    pool.put(b);
                }
                None => {
                    out.push(0); // Verdict::Drop, bytes unmodified
                    encode_frame(&mut out, &flat[o..o + len]);
                }
            }
            o += len;
        }
        at = o;
        idx += take;
        if kill && first_chunk {
            panic!("injected worker kill (test seam)");
        }
        first_chunk = false;
    }
    out.push(expired as u64);
    out.push(pool_denied);
    out
}

/// One shard's long-lived worker: pin (best effort), report pin status
/// as the first result word, then serve jobs until the shutdown
/// sentinel.
///
/// Job stream per burst: `[count, dir, now_ns, count × (len,
/// payload…)]`. Each response starts with a status word:
/// [`STATUS_OK`] followed by the full result body (see [`run_job`]),
/// or [`STATUS_DOWN`] followed by the re-pin flag when the job
/// panicked. The worker reads the *whole* job before processing and
/// buffers the *whole* response before pushing, so a panic can never
/// leave a torn stream on either ring — the supervisor's framing
/// invariant.
fn worker_loop(
    fm: &mut vignat::FlowManager,
    pool: &mut Mempool,
    scratch: &mut BurstScratch,
    cfg: vig_spec::NatConfig,
    jobs: &mut spsc::Consumer,
    results: &mut spsc::Producer,
    pin_cpu: Option<usize>,
) {
    let pinned = pin_cpu.is_some_and(pin_to);
    let mut backoff = Backoff::new();
    push_blocking(results, &[u64::from(pinned)], &mut backoff);
    let pool_capacity = pool.capacity();
    let mut frame_buf = vec![0u8; MBUF_SIZE];
    let mut words: Vec<u64> = Vec::with_capacity(MBUF_SIZE / 8 + 2);
    let mut flat: Vec<u8> = Vec::new();
    let mut lens: Vec<usize> = Vec::new();
    let mut armed = false;
    loop {
        let header = pop_blocking(jobs, &mut backoff);
        match header {
            SHUTDOWN => return,
            HALT => return, // simulated hard death: exit without a word
            KILL => {
                armed = true;
                continue;
            }
            _ => {}
        }
        let count = header as usize;
        let dir = if pop_blocking(jobs, &mut backoff) == 0 {
            Direction::Internal
        } else {
            Direction::External
        };
        let now = Time::ZERO.plus(pop_blocking(jobs, &mut backoff));
        flat.clear();
        lens.clear();
        for _ in 0..count {
            let len = pop_blocking(jobs, &mut backoff) as usize;
            debug_assert!(len <= MBUF_SIZE);
            words.clear();
            for _ in 0..payload_words(len) {
                words.push(pop_blocking(jobs, &mut backoff));
            }
            decode_payload(&words, &mut frame_buf[..len]);
            flat.extend_from_slice(&frame_buf[..len]);
            lens.push(len);
        }
        // The whole job is now local: shard state is touched only from
        // here on, and only whole responses hit the result ring.
        let kill = std::mem::take(&mut armed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_job(fm, pool, scratch, &cfg, dir, now, &flat, &lens, kill)
        }));
        match outcome {
            Ok(response) => push_blocking(results, &response, &mut backoff),
            Err(_) => {
                // Supervised restart: the shard's state is suspect (any
                // subset of the batch's updates may have landed) and
                // staged mbufs leaked on unwind — rebuild both, re-pin,
                // and report DOWN instead of a result body.
                fm.reset();
                *pool = Mempool::new(pool_capacity);
                *scratch = BurstScratch::default();
                let repinned = pin_cpu.is_some_and(pin_to);
                push_blocking(results, &[STATUS_DOWN, u64::from(repinned)], &mut backoff);
            }
        }
    }
}

// --- the dispatcher session ------------------------------------------------

/// The dispatcher's handle to a live worker fleet, valid inside one
/// [`with_shard_runtime`] call. Owns the job-ring producers and
/// result-ring consumers; the workers own the opposite ends plus their
/// shard's flow state, mempool, and scratch (disjoint `&mut` borrows —
/// the compiler enforces the no-shared-state discipline).
///
/// The session doubles as the supervisor: it detects worker panics
/// (`DOWN` responses), retires unresponsive shards after the stall
/// budget, and attributes every lost frame in [`SupervisorStats`].
pub struct ShardRuntimeSession {
    jobs: Vec<spsc::Producer>,
    results: Vec<spsc::Consumer>,
    classifier: RssClassifier,
    expired: u64,
    pin: PinReport,
    pinned_by_shard: Vec<bool>,
    dead: Vec<bool>,
    chaos: SupervisorStats,
    downs: Vec<WorkerDown>,
    stall_budget: Duration,
}

/// Result-stream words still owed by a shard given what has arrived:
/// unknown until the status word lands, then the full `OK` body or the
/// two-word `DOWN` report.
fn expected_words(stream: &[u64], ok_need: usize) -> usize {
    match stream.first() {
        None => 1,
        Some(&STATUS_OK) => ok_need,
        Some(_) => 2,
    }
}

impl ShardRuntimeSession {
    /// Number of worker threads (== shards).
    pub fn worker_count(&self) -> usize {
        self.jobs.len()
    }

    /// Pinning outcome for this session's workers (kept current across
    /// restarts and retirements).
    pub fn pin_report(&self) -> PinReport {
        self.pin
    }

    /// Flows expired by workers so far this session.
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Supervisor counters so far this session.
    pub fn supervisor(&self) -> SupervisorStats {
        self.chaos
    }

    /// Supervised-failure events so far this session, in order.
    pub fn down_events(&self) -> &[WorkerDown] {
        &self.downs
    }

    /// Whether shard `s` is still serving (not retired by the
    /// supervisor). A worker that panicked and restarted is alive.
    pub fn shard_alive(&self, s: usize) -> bool {
        !self.dead[s]
    }

    /// Replace the stall budget ([`DEFAULT_STALL_BUDGET`]): the longest
    /// a shard may sit mid-burst with zero ring progress before the
    /// dispatcher declares it dead and drops its in-flight job. Chaos
    /// tests shrink it to keep hard-death scenarios fast.
    pub fn set_stall_budget(&mut self, budget: Duration) {
        self.stall_budget = budget;
    }

    /// Arm shard `s`'s worker to panic partway through its next job —
    /// the chaos seam the supervised-restart tests drive. Returns
    /// `false` if the shard is already dead or the sentinel could not
    /// be enqueued within the stall budget.
    pub fn kill_worker(&mut self, s: usize) -> bool {
        self.send_sentinel(s, KILL)
    }

    /// Make shard `s`'s worker thread exit silently — a simulated hard
    /// death (SIGKILL analog). The dispatcher only notices at the next
    /// burst, when the shard exhausts its stall budget and is retired.
    /// Returns `false` if the shard is already dead or the sentinel
    /// could not be enqueued.
    pub fn halt_worker(&mut self, s: usize) -> bool {
        self.send_sentinel(s, HALT)
    }

    fn send_sentinel(&mut self, s: usize, sentinel: u64) -> bool {
        if self.dead[s] {
            return false;
        }
        let deadline = Instant::now() + self.stall_budget;
        loop {
            if self.jobs[s].try_push(sentinel) {
                return true;
            }
            if Instant::now() > deadline {
                return false;
            }
            std::thread::yield_now();
        }
    }

    /// Retire shard `s`: mark dead, account the lost in-flight frames,
    /// and drain whatever the dead worker left on its result ring so
    /// the words are counted rather than silently abandoned.
    fn retire_shard(&mut self, s: usize, frames_lost: usize) {
        self.dead[s] = true;
        self.chaos.hard_deaths += 1;
        self.chaos.frames_lost += frames_lost as u64;
        let mut scrap = Vec::new();
        loop {
            scrap.clear();
            let got = self.results[s].pop_extend(&mut scrap, 1024);
            self.chaos.drained_result_words += got as u64;
            if got == 0 {
                break;
            }
        }
        self.pinned_by_shard[s] = false;
        self.pin.pinned = self.pinned_by_shard.iter().filter(|&&b| b).count();
        self.downs.push(WorkerDown {
            shard: s,
            frames_lost,
            repinned: false,
            restarted: false,
        });
    }

    /// Process one burst arriving on `dir` at instant `now` across the
    /// persistent workers. Frames are rewritten in place; returns one
    /// verdict per frame in arrival order. Semantically identical to
    /// [`crate::harness::ParallelShardedNat::process_burst_parallel`] —
    /// same dispatch, same chunking, same merge order — minus the
    /// per-burst thread spawn.
    ///
    /// Under faults the burst still returns: frames on a panicking or
    /// dying shard come back as [`Verdict::Drop`] with the loss
    /// attributed in [`SupervisorStats`]; surviving shards' verdicts
    /// and bytes are unaffected.
    pub fn process_burst(
        &mut self,
        dir: Direction,
        frames: &mut [Vec<u8>],
        now: Time,
    ) -> Vec<Verdict> {
        let n = self.worker_count();
        // Dispatch: route every frame to its shard (RSS function).
        // Frames bound for a retired shard drop here, with accounting —
        // bounded backpressure, not an unbounded stall.
        let mut routed: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, f) in frames.iter().enumerate() {
            let s = self.classifier.queue_of(dir, f);
            if self.dead[s] {
                self.chaos.backpressure_drops += 1;
                continue;
            }
            routed[s].push(i);
        }
        // Encode each shard's job stream and compute the exact OK
        // result length (the NAT rewrites in place — and pool-denied
        // frames echo — so output length == input length:
        // `status + count × (verdict + len + payload) + 2 trailers`).
        let dir_word = match dir {
            Direction::Internal => 0u64,
            Direction::External => 1u64,
        };
        let mut job_words: Vec<Vec<u64>> = Vec::with_capacity(n);
        let mut ok_need: Vec<usize> = Vec::with_capacity(n);
        for (s, idxs) in routed.iter().enumerate() {
            if self.dead[s] {
                job_words.push(Vec::new());
                ok_need.push(0);
                continue;
            }
            let mut w = Vec::with_capacity(3 + idxs.len() * (1 + MBUF_SIZE / 8));
            w.push(idxs.len() as u64);
            w.push(dir_word);
            w.push(now.nanos());
            let mut result_len = 3; // status word + expired + pool_denied
            for &i in idxs {
                encode_frame(&mut w, &frames[i]);
                result_len += 2 + payload_words(frames[i].len());
            }
            job_words.push(w);
            ok_need.push(result_len);
        }
        // Non-blocking pump: interleave job pushes and result drains so
        // bounded rings can never deadlock (see module docs). A shard
        // with zero progress past the stall budget is retired.
        let mut sent = vec![0usize; n];
        let mut recv: Vec<Vec<u64>> = ok_need.iter().map(|&m| Vec::with_capacity(m)).collect();
        let mut complete: Vec<bool> = (0..n).map(|s| self.dead[s]).collect();
        let mut last_progress: Vec<Instant> = vec![Instant::now(); n];
        loop {
            let mut done = true;
            let mut progress = false;
            for s in 0..n {
                if complete[s] {
                    continue;
                }
                let mut p = false;
                if sent[s] < job_words[s].len() {
                    let pushed = self.jobs[s].push_slice(&job_words[s][sent[s]..]);
                    sent[s] += pushed;
                    p |= pushed > 0;
                }
                let expect = expected_words(&recv[s], ok_need[s]);
                if recv[s].len() < expect {
                    let want = expect - recv[s].len();
                    let popped = self.results[s].pop_extend(&mut recv[s], want);
                    p |= popped > 0;
                }
                let expect = expected_words(&recv[s], ok_need[s]);
                complete[s] = sent[s] == job_words[s].len() && recv[s].len() == expect;
                if p {
                    last_progress[s] = Instant::now();
                }
                progress |= p;
                done &= complete[s];
            }
            if done {
                break;
            }
            if !progress {
                let now_t = Instant::now();
                for s in 0..n {
                    if !complete[s] && now_t.duration_since(last_progress[s]) > self.stall_budget {
                        self.chaos.drained_result_words += recv[s].len() as u64;
                        recv[s].clear();
                        self.retire_shard(s, routed[s].len());
                        complete[s] = true;
                    }
                }
                std::thread::yield_now();
            }
        }
        // Merge in deterministic shard order: scatter verdicts and
        // rewritten bytes back to arrival positions, accumulate expiry.
        // A DOWN response maps its whole job to Drop — the honest loss
        // report; surviving shards merge exactly as on a clean run.
        let mut out = vec![Verdict::Drop; frames.len()];
        for (s, idxs) in routed.iter().enumerate() {
            if self.dead[s] {
                continue;
            }
            let stream = &recv[s];
            debug_assert!(!stream.is_empty());
            if stream[0] == STATUS_DOWN {
                let repinned = stream[1] != 0;
                self.chaos.worker_downs += 1;
                self.chaos.frames_lost += idxs.len() as u64;
                self.pinned_by_shard[s] = repinned;
                self.pin.pinned = self.pinned_by_shard.iter().filter(|&&b| b).count();
                self.downs.push(WorkerDown {
                    shard: s,
                    frames_lost: idxs.len(),
                    repinned,
                    restarted: true,
                });
                continue;
            }
            let mut at = 1usize;
            for &i in idxs {
                let verdict = stream[at];
                let len = stream[at + 1] as usize;
                debug_assert_eq!(len, frames[i].len(), "NAT rewrites in place");
                let pw = payload_words(len);
                decode_payload(&stream[at + 2..at + 2 + pw], &mut frames[i]);
                at += 2 + pw;
                out[i] = match verdict {
                    0 => Verdict::Drop,
                    1 => Verdict::Forward(Direction::Internal),
                    2 => Verdict::Forward(Direction::External),
                    v => unreachable!("bad verdict word {v}"),
                };
            }
            self.expired += stream[at];
            self.chaos.pool_denied += stream[at + 1];
            debug_assert_eq!(at + 2, ok_need[s]);
        }
        out
    }
}

/// Run `f` with a live shard runtime: one persistent worker thread per
/// shard of `table`, each owning its shard's [`Mempool`] and
/// [`BurstScratch`], connected to the calling (dispatcher) thread by
/// SPSC rings of `ring_words` words (use [`DEFAULT_RING_WORDS`]).
///
/// With `pin` set, worker `s` pins itself to the `s % host_cores`-th
/// *allowed* CPU; failures degrade to unpinned workers and are counted
/// in the returned [`RuntimeReport`] — never an error, matching how a
/// restricted CI runner should behave.
///
/// The session (and thus every worker) lives exactly as long as `f`:
/// on return, shutdown sentinels are sent and the scope joins all
/// workers, so `table` is borrowable again immediately after. Shards
/// the supervisor retired get no sentinel — their threads already
/// exited, which is exactly why they were retired.
pub fn with_shard_runtime<R>(
    table: &mut ShardedFlowManager,
    pools: &mut [Mempool],
    scratches: &mut [BurstScratch],
    ring_words: usize,
    pin: bool,
    f: impl FnOnce(&mut ShardRuntimeSession) -> R,
) -> (R, RuntimeReport) {
    let n = table.shard_count();
    assert_eq!(pools.len(), n, "one mempool per shard");
    assert_eq!(scratches.len(), n, "one scratch per shard");
    let classifier = RssClassifier::for_table(table);
    // Every worker runs the loop body with the *global* config: shard
    // FlowManagers hand out pool-global port offsets (via their slot
    // base), so the loop's `start_port + offset` arithmetic must use
    // the global start port on every core.
    let cfg = table.global_cfg();
    let allowed = host_allowed_cpus();
    let host_cores = allowed.len().max(1);
    let mut job_tx = Vec::with_capacity(n);
    let mut job_rx = Vec::with_capacity(n);
    let mut res_tx = Vec::with_capacity(n);
    let mut res_rx = Vec::with_capacity(n);
    for _ in 0..n {
        let (p, c) = spsc::channel(ring_words);
        job_tx.push(p);
        job_rx.push(c);
        let (p, c) = spsc::channel(ring_words);
        res_tx.push(p);
        res_rx.push(c);
    }
    std::thread::scope(|sc| {
        let workers = table
            .shards_mut()
            .iter_mut()
            .zip(pools.iter_mut())
            .zip(scratches.iter_mut())
            .zip(job_rx.into_iter().zip(res_tx))
            .enumerate();
        for (s, (((fm, pool), scratch), (mut jobs, mut results))) in workers {
            let pin_cpu = pin.then(|| allowed[s % host_cores]);
            sc.spawn(move || worker_loop(fm, pool, scratch, cfg, &mut jobs, &mut results, pin_cpu));
        }
        let mut session = ShardRuntimeSession {
            jobs: job_tx,
            results: res_rx,
            classifier,
            expired: 0,
            pin: PinReport {
                requested: pin,
                workers: n,
                pinned: 0,
                host_cores,
            },
            pinned_by_shard: Vec::with_capacity(n),
            dead: vec![false; n],
            chaos: SupervisorStats::default(),
            downs: Vec::new(),
            stall_budget: DEFAULT_STALL_BUDGET,
        };
        // First result word from each worker is its pin status; collect
        // before handing the session to `f` so reports are complete even
        // if `f` never processes a burst. Workers push it immediately,
        // so this wait is bounded by thread startup.
        for c in session.results.iter_mut() {
            let mut backoff = Backoff::new();
            let pinned = pop_blocking(c, &mut backoff) != 0;
            session.pinned_by_shard.push(pinned);
        }
        session.pin.pinned = session.pinned_by_shard.iter().filter(|&&b| b).count();
        let r = f(&mut session);
        // Shutdown: sentinel per live worker, then the scope joins
        // them. Retired shards' threads already exited.
        for (s, p) in session.jobs.iter_mut().enumerate() {
            if session.dead[s] {
                continue;
            }
            let mut backoff = Backoff::new();
            push_blocking(p, &[SHUTDOWN], &mut backoff);
        }
        let report = RuntimeReport {
            pin: session.pin,
            expired: session.expired,
            chaos: session.chaos,
        };
        (r, report)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vig_packet::builder::PacketBuilder;
    use vig_packet::Ip4;

    #[test]
    fn codec_roundtrips_odd_lengths() {
        for len in [0usize, 1, 7, 8, 9, 15, 64, 1499] {
            let frame: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let mut words = Vec::new();
            encode_frame(&mut words, &frame);
            assert_eq!(words[0] as usize, len);
            assert_eq!(words.len(), 1 + payload_words(len));
            let mut out = vec![0u8; len];
            decode_payload(&words[1..], &mut out);
            assert_eq!(out, frame);
        }
    }

    fn test_cfg() -> vig_spec::NatConfig {
        vig_spec::NatConfig {
            capacity: 64,
            expiry_ns: Time::from_secs(2).nanos(),
            external_ip: Ip4::new(203, 0, 113, 1),
            start_port: 4096,
            ..vig_spec::NatConfig::paper_default()
        }
    }

    fn flow_frame(host: u8, sport: u16) -> Vec<u8> {
        PacketBuilder::udp(Ip4::new(10, 0, 0, host), Ip4::new(1, 1, 1, 1), sport, 53).build()
    }

    #[test]
    fn pin_report_degrades_gracefully() {
        let cfg = test_cfg();
        let mut table = ShardedFlowManager::new(&cfg, 2);
        let mut pools: Vec<Mempool> = (0..2).map(|_| Mempool::new(8)).collect();
        let mut scratches: Vec<BurstScratch> = (0..2).map(|_| BurstScratch::default()).collect();
        let ((), report) = with_shard_runtime(
            &mut table,
            &mut pools,
            &mut scratches,
            DEFAULT_RING_WORDS,
            true,
            |s| {
                assert_eq!(s.worker_count(), 2);
            },
        );
        assert!(report.pin.requested);
        assert_eq!(report.pin.workers, 2);
        // Pinning either worked or degraded — both are valid outcomes;
        // the report just has to be internally consistent.
        assert!(report.pin.pinned <= 2);
        assert!(report.pin.host_cores >= 1);
        assert_eq!(report.chaos, SupervisorStats::default());
    }

    #[test]
    fn undersized_pool_denies_frames_instead_of_panicking() {
        let cfg = test_cfg();
        let mut table = ShardedFlowManager::new(&cfg, 1);
        // Two buffers for an eight-frame burst: six frames must be
        // denied admission, zero may panic the worker.
        let mut pools = vec![Mempool::new(2)];
        let mut scratches = vec![BurstScratch::default()];
        let (v, report) = with_shard_runtime(
            &mut table,
            &mut pools,
            &mut scratches,
            DEFAULT_RING_WORDS,
            false,
            |s| {
                let mut frames: Vec<Vec<u8>> =
                    (0..8).map(|i| flow_frame(2, 1000 + i as u16)).collect();
                let originals = frames.clone();
                let verdicts = s.process_burst(Direction::Internal, &mut frames, Time::ZERO);
                assert_eq!(s.supervisor().pool_denied, 6);
                assert_eq!(s.supervisor().worker_downs, 0);
                // Denied frames drop with bytes unmodified; admitted
                // ones forward rewritten.
                for (i, v) in verdicts.iter().enumerate() {
                    if i < 2 {
                        assert_eq!(*v, Verdict::Forward(Direction::External));
                        assert_ne!(frames[i], originals[i]);
                    } else {
                        assert_eq!(*v, Verdict::Drop);
                        assert_eq!(frames[i], originals[i]);
                    }
                }
                // The session keeps serving afterwards.
                let mut again = vec![flow_frame(2, 1000)];
                let v2 = s.process_burst(Direction::Internal, &mut again, Time::ZERO.plus(1));
                assert_eq!(v2, vec![Verdict::Forward(Direction::External)]);
                verdicts
            },
        );
        assert_eq!(v.len(), 8);
        assert_eq!(report.chaos.pool_denied, 6);
        assert_eq!(report.chaos.frames_lost, 0);
    }

    #[test]
    fn killed_worker_reports_down_and_restarts_on_fresh_state() {
        let cfg = test_cfg();
        let mut table = ShardedFlowManager::new(&cfg, 1);
        let mut pools = vec![Mempool::new(64)];
        let mut scratches = vec![BurstScratch::default()];
        let ((), report) = with_shard_runtime(
            &mut table,
            &mut pools,
            &mut scratches,
            DEFAULT_RING_WORDS,
            false,
            |s| {
                // Establish a flow, then kill the worker mid-job.
                let mut burst1 = vec![flow_frame(2, 1025)];
                let v1 = s.process_burst(Direction::Internal, &mut burst1, Time::ZERO);
                assert_eq!(v1, vec![Verdict::Forward(Direction::External)]);
                assert!(s.kill_worker(0));
                let mut burst2 = vec![flow_frame(3, 2000)];
                let original = burst2[0].clone();
                // Note: the injected panic prints the usual thread
                // panic message to stderr — expected noise here.
                let v2 = s.process_burst(Direction::Internal, &mut burst2, Time::ZERO.plus(1));
                assert_eq!(v2, vec![Verdict::Drop]);
                assert_eq!(burst2[0], original, "lost frames come back unmodified");
                assert_eq!(s.supervisor().worker_downs, 1);
                assert_eq!(s.supervisor().frames_lost, 1);
                assert_eq!(s.down_events().len(), 1);
                let ev = s.down_events()[0];
                assert_eq!(ev.shard, 0);
                assert_eq!(ev.frames_lost, 1);
                assert!(ev.restarted);
                assert!(s.shard_alive(0));
                // The restarted worker serves from a *fresh* table: the
                // first flow after restart gets the first port again.
                let mut burst3 = vec![flow_frame(4, 3000)];
                let v3 = s.process_burst(Direction::Internal, &mut burst3, Time::ZERO.plus(2));
                assert_eq!(v3, vec![Verdict::Forward(Direction::External)]);
                let mut burst1b = vec![flow_frame(2, 1025)];
                let v1b = s.process_burst(Direction::Internal, &mut burst1b, Time::ZERO.plus(3));
                assert_eq!(v1b, vec![Verdict::Forward(Direction::External)]);
                assert_ne!(
                    burst1b[0], burst1[0],
                    "restart cleared the old mapping: the flow re-maps to a new port"
                );
            },
        );
        assert_eq!(report.chaos.worker_downs, 1);
        assert_eq!(report.chaos.hard_deaths, 0);
    }

    #[test]
    fn halted_worker_is_retired_within_the_stall_budget() {
        let cfg = test_cfg();
        let mut table = ShardedFlowManager::new(&cfg, 1);
        let mut pools = vec![Mempool::new(64)];
        let mut scratches = vec![BurstScratch::default()];
        let ((), report) = with_shard_runtime(
            &mut table,
            &mut pools,
            &mut scratches,
            DEFAULT_RING_WORDS,
            false,
            |s| {
                s.set_stall_budget(Duration::from_millis(50));
                assert!(s.halt_worker(0));
                // The dead worker never answers: the burst returns
                // after the stall budget with the loss attributed.
                let mut burst = vec![flow_frame(2, 1025), flow_frame(2, 1026)];
                let v = s.process_burst(Direction::Internal, &mut burst, Time::ZERO);
                assert_eq!(v, vec![Verdict::Drop, Verdict::Drop]);
                assert_eq!(s.supervisor().hard_deaths, 1);
                assert_eq!(s.supervisor().frames_lost, 2);
                assert!(!s.shard_alive(0));
                assert!(!s.down_events()[0].restarted);
                // Later bursts drop at dispatch — bounded backpressure,
                // no ring traffic, no stall.
                let mut burst2 = vec![flow_frame(3, 2000)];
                let v2 = s.process_burst(Direction::Internal, &mut burst2, Time::ZERO.plus(1));
                assert_eq!(v2, vec![Verdict::Drop]);
                assert_eq!(s.supervisor().backpressure_drops, 1);
                // Sentinels to a dead shard are refused.
                assert!(!s.kill_worker(0));
            },
        );
        assert_eq!(report.chaos.hard_deaths, 1);
        assert_eq!(report.chaos.backpressure_drops, 1);
    }
}
