//! The DPDK-analog runtime: mempool, rings, devices.
//!
//! Faithful to the parts of DPDK the paper's NFs relied on:
//!
//! * **all memory preallocated** — `Mempool::new` grabs every buffer up
//!   front, `get`/`put` are free-list pushes/pops, nothing allocates on
//!   the datapath (the property §5.1.1 of the paper builds on);
//! * **fixed-capacity rings** — like `rte_ring`, excess traffic is
//!   dropped at the RX ring and counted, which is where "loss" in the
//!   RFC 2544 throughput experiments comes from;
//! * **port statistics** — rx/tx/drop counters per device, the numbers
//!   the harness reads to compute loss rates.

/// Default buffer size: one standard mbuf data room (holds any frame the
/// evaluation uses; the paper's experiments are 64-byte frames).
pub const MBUF_SIZE: usize = 2048;

/// A handle to a mempool buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufIdx(pub usize);

/// Preallocated packet-buffer pool (DPDK `rte_mempool` analog).
#[derive(Debug)]
pub struct Mempool {
    bufs: Vec<Vec<u8>>,
    lens: Vec<usize>,
    free: Vec<usize>,
}

impl Mempool {
    /// Preallocate `count` buffers of [`MBUF_SIZE`] bytes.
    pub fn new(count: usize) -> Mempool {
        assert!(count > 0, "mempool must hold at least one buffer");
        Mempool {
            bufs: (0..count).map(|_| vec![0u8; MBUF_SIZE]).collect(),
            lens: vec![0; count],
            free: (0..count).rev().collect(),
        }
    }

    /// Total buffers.
    pub fn capacity(&self) -> usize {
        self.bufs.len()
    }

    /// Buffers currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Take a buffer. `None` when exhausted (DPDK returns `ENOMEM`; NFs
    /// must treat it as packet loss, never crash — the leak Vigor caught
    /// in VigNAT was exactly a buffer that never came back here).
    pub fn get(&mut self) -> Option<BufIdx> {
        self.free.pop().map(BufIdx)
    }

    /// Return a buffer.
    ///
    /// Panics on double-free — on the datapath this is a bug class the
    /// paper proves absent (P2); the simulator enforces it dynamically.
    pub fn put(&mut self, idx: BufIdx) {
        assert!(
            idx.0 < self.bufs.len(),
            "foreign buffer returned to mempool"
        );
        assert!(
            !self.free.contains(&idx.0),
            "double free of mempool buffer {}",
            idx.0
        );
        self.lens[idx.0] = 0;
        self.free.push(idx.0);
    }

    /// Write a frame into a buffer, recording its length.
    pub fn write_frame(&mut self, idx: BufIdx, frame: &[u8]) {
        assert!(frame.len() <= MBUF_SIZE, "frame exceeds mbuf data room");
        self.bufs[idx.0][..frame.len()].copy_from_slice(frame);
        self.lens[idx.0] = frame.len();
    }

    /// The valid bytes of a buffer.
    pub fn frame(&self, idx: BufIdx) -> &[u8] {
        &self.bufs[idx.0][..self.lens[idx.0]]
    }

    /// Mutable access to the valid bytes of a buffer.
    pub fn frame_mut(&mut self, idx: BufIdx) -> &mut [u8] {
        let len = self.lens[idx.0];
        &mut self.bufs[idx.0][..len]
    }
}

/// Fixed-capacity FIFO of `(buffer, length-at-enqueue)` — the
/// `rte_ring` analog backing RX/TX queues.
#[derive(Debug)]
pub struct Ring {
    slots: Vec<BufIdx>,
    head: usize,
    len: usize,
}

impl Ring {
    /// Ring with room for `capacity` descriptors.
    pub fn new(capacity: usize) -> Ring {
        assert!(capacity > 0, "ring capacity must be non-zero");
        Ring {
            slots: vec![BufIdx(0); capacity],
            head: 0,
            len: 0,
        }
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied descriptors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when full.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Enqueue; `false` when full (caller counts a drop).
    pub fn push(&mut self, buf: BufIdx) -> bool {
        if self.is_full() {
            return false;
        }
        let tail = (self.head + self.len) % self.slots.len();
        self.slots[tail] = buf;
        self.len += 1;
        true
    }

    /// Dequeue.
    pub fn pop(&mut self) -> Option<BufIdx> {
        if self.len == 0 {
            return None;
        }
        let buf = self.slots[self.head];
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        Some(buf)
    }
}

/// Per-port statistics (DPDK `rte_eth_stats` analog).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Frames accepted into the RX ring.
    pub rx: u64,
    /// Frames dropped at the RX ring (imissed).
    pub rx_dropped: u64,
    /// Frames transmitted.
    pub tx: u64,
}

/// A simulated NIC port: an RX ring the tester feeds, a TX ring the NF
/// fills, and counters.
#[derive(Debug)]
pub struct Device {
    /// Inbound queue.
    pub rx: Ring,
    /// Outbound queue.
    pub tx: Ring,
    /// Counters.
    pub stats: PortStats,
}

impl Device {
    /// Device with the given ring sizes (the paper's setup used default
    /// DPDK rings; 512 descriptors is representative).
    pub fn new(ring_size: usize) -> Device {
        Device {
            rx: Ring::new(ring_size),
            tx: Ring::new(ring_size),
            stats: PortStats::default(),
        }
    }

    /// Tester-side: offer a frame to the port. Returns `false` (and
    /// counts a drop) when the RX ring is full — this is packet loss.
    pub fn offer(&mut self, buf: BufIdx) -> bool {
        if self.rx.push(buf) {
            self.stats.rx += 1;
            true
        } else {
            self.stats.rx_dropped += 1;
            false
        }
    }

    /// NF-side: take the next received frame.
    pub fn rx_burst_one(&mut self) -> Option<BufIdx> {
        self.rx.pop()
    }

    /// NF-side: drain up to `max` received frames into `out` (the
    /// `rte_eth_rx_burst` analog). Returns how many were taken.
    pub fn rx_burst(&mut self, max: usize, out: &mut Vec<BufIdx>) -> usize {
        let mut n = 0;
        while n < max {
            match self.rx.pop() {
                Some(b) => {
                    out.push(b);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// NF-side: queue a frame for transmission.
    pub fn tx_put(&mut self, buf: BufIdx) -> bool {
        let ok = self.tx.push(buf);
        if ok {
            self.stats.tx += 1;
        }
        ok
    }

    /// Tester-side: collect a transmitted frame.
    pub fn tx_take(&mut self) -> Option<BufIdx> {
        self.tx.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mempool_get_put_roundtrip() {
        let mut p = Mempool::new(2);
        let a = p.get().unwrap();
        let b = p.get().unwrap();
        assert_ne!(a, b);
        assert!(p.get().is_none(), "exhausted pool yields None");
        p.put(a);
        assert_eq!(p.available(), 1);
        let c = p.get().unwrap();
        assert_eq!(c, a, "free list reuses buffers");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn mempool_double_free_is_caught() {
        let mut p = Mempool::new(2);
        let a = p.get().unwrap();
        p.put(a);
        p.put(a);
    }

    #[test]
    fn mempool_frames_roundtrip() {
        let mut p = Mempool::new(1);
        let a = p.get().unwrap();
        p.write_frame(a, &[1, 2, 3, 4]);
        assert_eq!(p.frame(a), &[1, 2, 3, 4]);
        p.frame_mut(a)[0] = 9;
        assert_eq!(p.frame(a), &[9, 2, 3, 4]);
    }

    #[test]
    fn ring_fifo_and_overflow() {
        let mut r = Ring::new(2);
        assert!(r.push(BufIdx(1)));
        assert!(r.push(BufIdx(2)));
        assert!(!r.push(BufIdx(3)), "full ring rejects");
        assert_eq!(r.pop(), Some(BufIdx(1)));
        assert!(r.push(BufIdx(3)));
        assert_eq!(r.pop(), Some(BufIdx(2)));
        assert_eq!(r.pop(), Some(BufIdx(3)));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn device_counts_loss() {
        let mut d = Device::new(1);
        assert!(d.offer(BufIdx(0)));
        assert!(
            !d.offer(BufIdx(1)),
            "second offer overflows the 1-slot ring"
        );
        assert_eq!(d.stats.rx, 1);
        assert_eq!(d.stats.rx_dropped, 1);
        let got = d.rx_burst_one().unwrap();
        assert!(d.tx_put(got));
        assert_eq!(d.stats.tx, 1);
        assert_eq!(d.tx_take(), Some(BufIdx(0)));
    }

    #[test]
    fn ring_wraps_many_times() {
        let mut r = Ring::new(3);
        for i in 0..100 {
            assert!(r.push(BufIdx(i)));
            assert_eq!(r.pop(), Some(BufIdx(i)));
        }
    }
}
