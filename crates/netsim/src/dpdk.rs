//! The DPDK-analog runtime: mempool, rings, devices.
//!
//! Faithful to the parts of DPDK the paper's NFs relied on:
//!
//! * **all memory preallocated** — `Mempool::new` grabs every buffer up
//!   front, `get`/`put` are free-list pushes/pops, nothing allocates on
//!   the datapath (the property §5.1.1 of the paper builds on);
//! * **fixed-capacity rings** — like `rte_ring`, excess traffic is
//!   dropped at the RX ring and counted, which is where "loss" in the
//!   RFC 2544 throughput experiments comes from;
//! * **port statistics** — rx/tx/drop counters per device, the numbers
//!   the harness reads to compute loss rates.

/// Default buffer size: one standard mbuf data room (holds any frame the
/// evaluation uses; the paper's experiments are 64-byte frames).
pub const MBUF_SIZE: usize = 2048;

/// A handle to a mempool buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufIdx(pub usize);

/// Preallocated packet-buffer pool (DPDK `rte_mempool` analog).
#[derive(Debug)]
pub struct Mempool {
    bufs: Vec<Vec<u8>>,
    lens: Vec<usize>,
    free: Vec<usize>,
}

impl Mempool {
    /// Preallocate `count` buffers of [`MBUF_SIZE`] bytes.
    pub fn new(count: usize) -> Mempool {
        assert!(count > 0, "mempool must hold at least one buffer");
        Mempool {
            bufs: (0..count).map(|_| vec![0u8; MBUF_SIZE]).collect(),
            lens: vec![0; count],
            free: (0..count).rev().collect(),
        }
    }

    /// Total buffers.
    pub fn capacity(&self) -> usize {
        self.bufs.len()
    }

    /// Buffers currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Take a buffer. `None` when exhausted (DPDK returns `ENOMEM`; NFs
    /// must treat it as packet loss, never crash — the leak Vigor caught
    /// in VigNAT was exactly a buffer that never came back here).
    pub fn get(&mut self) -> Option<BufIdx> {
        self.free.pop().map(BufIdx)
    }

    /// Return a buffer.
    ///
    /// Panics on double-free — on the datapath this is a bug class the
    /// paper proves absent (P2); the simulator enforces it dynamically.
    pub fn put(&mut self, idx: BufIdx) {
        assert!(
            idx.0 < self.bufs.len(),
            "foreign buffer returned to mempool"
        );
        assert!(
            !self.free.contains(&idx.0),
            "double free of mempool buffer {}",
            idx.0
        );
        self.lens[idx.0] = 0;
        self.free.push(idx.0);
    }

    /// Write a frame into a buffer, recording its length.
    pub fn write_frame(&mut self, idx: BufIdx, frame: &[u8]) {
        assert!(frame.len() <= MBUF_SIZE, "frame exceeds mbuf data room");
        self.bufs[idx.0][..frame.len()].copy_from_slice(frame);
        self.lens[idx.0] = frame.len();
    }

    /// The valid bytes of a buffer.
    pub fn frame(&self, idx: BufIdx) -> &[u8] {
        &self.bufs[idx.0][..self.lens[idx.0]]
    }

    /// Mutable access to the valid bytes of a buffer.
    pub fn frame_mut(&mut self, idx: BufIdx) -> &mut [u8] {
        let len = self.lens[idx.0];
        &mut self.bufs[idx.0][..len]
    }
}

/// Fixed-capacity FIFO of `(buffer, length-at-enqueue)` — the
/// `rte_ring` analog backing RX/TX queues.
#[derive(Debug)]
pub struct Ring {
    slots: Vec<BufIdx>,
    head: usize,
    len: usize,
}

impl Ring {
    /// Ring with room for `capacity` descriptors.
    pub fn new(capacity: usize) -> Ring {
        assert!(capacity > 0, "ring capacity must be non-zero");
        Ring {
            slots: vec![BufIdx(0); capacity],
            head: 0,
            len: 0,
        }
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied descriptors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when full.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Enqueue; `false` when full (caller counts a drop).
    pub fn push(&mut self, buf: BufIdx) -> bool {
        if self.is_full() {
            return false;
        }
        let tail = (self.head + self.len) % self.slots.len();
        self.slots[tail] = buf;
        self.len += 1;
        true
    }

    /// Dequeue.
    pub fn pop(&mut self) -> Option<BufIdx> {
        if self.len == 0 {
            return None;
        }
        let buf = self.slots[self.head];
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        Some(buf)
    }
}

/// Per-port statistics (DPDK `rte_eth_stats` analog).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Frames accepted into the RX ring.
    pub rx: u64,
    /// Frames dropped at the RX ring (imissed).
    pub rx_dropped: u64,
    /// Frames transmitted.
    pub tx: u64,
    /// Bytes transmitted (`obytes`). Attributed when the frame is
    /// handed to the transmit path: at `tx_put` for the device models
    /// (the NIC owns the frame from that point), at flush time for the
    /// OS backends (only a frame the kernel accepted counts).
    pub tx_bytes: u64,
}

/// A simulated NIC port: an RX ring the tester feeds, a TX ring the NF
/// fills, and counters.
#[derive(Debug)]
pub struct Device {
    /// Inbound queue.
    pub rx: Ring,
    /// Outbound queue.
    pub tx: Ring,
    /// Counters.
    pub stats: PortStats,
}

impl Device {
    /// Device with the given ring sizes (the paper's setup used default
    /// DPDK rings; 512 descriptors is representative).
    pub fn new(ring_size: usize) -> Device {
        Device {
            rx: Ring::new(ring_size),
            tx: Ring::new(ring_size),
            stats: PortStats::default(),
        }
    }

    /// Tester-side: offer a frame to the port. Returns `false` (and
    /// counts a drop) when the RX ring is full — this is packet loss.
    pub fn offer(&mut self, buf: BufIdx) -> bool {
        if self.rx.push(buf) {
            self.stats.rx += 1;
            true
        } else {
            self.stats.rx_dropped += 1;
            false
        }
    }

    /// NF-side: take the next received frame.
    pub fn rx_burst_one(&mut self) -> Option<BufIdx> {
        self.rx.pop()
    }

    /// NF-side: drain up to `max` received frames into `out` (the
    /// `rte_eth_rx_burst` analog). Returns how many were taken.
    pub fn rx_burst(&mut self, max: usize, out: &mut Vec<BufIdx>) -> usize {
        let mut n = 0;
        while n < max {
            match self.rx.pop() {
                Some(b) => {
                    out.push(b);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// NF-side: queue a frame of `bytes` bytes for transmission.
    pub fn tx_put(&mut self, buf: BufIdx, bytes: usize) -> bool {
        let ok = self.tx.push(buf);
        if ok {
            self.stats.tx += 1;
            self.stats.tx_bytes += bytes as u64;
        }
        ok
    }

    /// Tester-side: collect a transmitted frame.
    pub fn tx_take(&mut self) -> Option<BufIdx> {
        self.tx.pop()
    }
}

/// A simulated multi-queue NIC port: N independent RX/TX ring pairs
/// with per-queue statistics — the device model behind RSS (receive
/// side scaling), where the NIC hashes each arriving frame and steers
/// it to one of several hardware queues so that independent cores can
/// drain them concurrently.
///
/// The classification step itself is *not* here: which queue a frame
/// belongs to is the RSS function's business
/// (`netsim::frame_env::RssClassifier`, shared with the software
/// dispatch of `ParallelShardedNat`), and the tester applies it before
/// calling [`MultiQueueDevice::offer_to`] — exactly like hardware,
/// where the hash unit runs before the descriptor is posted to a queue.
///
/// Queues are fully independent: a full RX ring drops (and counts) on
/// that queue only and can never stall or corrupt a sibling — the
/// per-queue overflow tests pin this down.
#[derive(Debug)]
pub struct MultiQueueDevice {
    rx: Vec<Ring>,
    tx: Vec<Ring>,
    stats: Vec<PortStats>,
}

impl MultiQueueDevice {
    /// A port with `queues` RX/TX ring pairs of `ring_size` descriptors
    /// each. A 1-queue device is behaviourally identical to [`Device`].
    pub fn new(queues: usize, ring_size: usize) -> MultiQueueDevice {
        assert!(queues > 0, "need at least one queue");
        MultiQueueDevice {
            rx: (0..queues).map(|_| Ring::new(ring_size)).collect(),
            tx: (0..queues).map(|_| Ring::new(ring_size)).collect(),
            stats: vec![PortStats::default(); queues],
        }
    }

    /// Number of RX/TX queue pairs.
    pub fn queue_count(&self) -> usize {
        self.rx.len()
    }

    /// Tester-side: offer a frame to RX queue `q` (the queue the RSS
    /// classifier picked). Returns `false` — and counts a drop in *this
    /// queue's* stats — when that ring is full; siblings are untouched.
    pub fn offer_to(&mut self, q: usize, buf: BufIdx) -> bool {
        if self.rx[q].push(buf) {
            self.stats[q].rx += 1;
            true
        } else {
            self.stats[q].rx_dropped += 1;
            false
        }
    }

    /// Frames currently waiting in RX queue `q` (the readiness signal
    /// an epoll-style poller level-triggers on).
    pub fn rx_len(&self, q: usize) -> usize {
        self.rx[q].len()
    }

    /// Tester-side: record an RX drop on queue `q` without touching the
    /// ring — the accounting for a frame lost *before* the ring (e.g.
    /// mempool exhaustion, a NIC with no free descriptors).
    pub fn note_rx_drop(&mut self, q: usize) {
        self.stats[q].rx_dropped += 1;
    }

    /// NF-side: drain up to `max` frames from RX queue `q` into `out`
    /// (the per-queue `rte_eth_rx_burst` analog). Returns the count.
    pub fn rx_burst(&mut self, q: usize, max: usize, out: &mut Vec<BufIdx>) -> usize {
        let mut n = 0;
        while n < max {
            match self.rx[q].pop() {
                Some(b) => {
                    out.push(b);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// NF-side: queue a frame of `bytes` bytes on TX queue `q`
    /// (run-to-completion cores transmit on their own queue index).
    pub fn tx_put(&mut self, q: usize, buf: BufIdx, bytes: usize) -> bool {
        let ok = self.tx[q].push(buf);
        if ok {
            self.stats[q].tx += 1;
            self.stats[q].tx_bytes += bytes as u64;
        }
        ok
    }

    /// Tester-side: collect a transmitted frame from TX queue `q`.
    pub fn tx_take(&mut self, q: usize) -> Option<BufIdx> {
        self.tx[q].pop()
    }

    /// Queue `q`'s counters.
    pub fn queue_stats(&self, q: usize) -> PortStats {
        self.stats[q]
    }

    /// Port-wide counters: the sum over queues (what `rte_eth_stats`
    /// reports at the port level).
    pub fn port_stats(&self) -> PortStats {
        self.stats
            .iter()
            .fold(PortStats::default(), |a, s| PortStats {
                rx: a.rx + s.rx,
                rx_dropped: a.rx_dropped + s.rx_dropped,
                tx: a.tx + s.tx,
                tx_bytes: a.tx_bytes + s.tx_bytes,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mempool_get_put_roundtrip() {
        let mut p = Mempool::new(2);
        let a = p.get().unwrap();
        let b = p.get().unwrap();
        assert_ne!(a, b);
        assert!(p.get().is_none(), "exhausted pool yields None");
        p.put(a);
        assert_eq!(p.available(), 1);
        let c = p.get().unwrap();
        assert_eq!(c, a, "free list reuses buffers");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn mempool_double_free_is_caught() {
        let mut p = Mempool::new(2);
        let a = p.get().unwrap();
        p.put(a);
        p.put(a);
    }

    #[test]
    fn mempool_frames_roundtrip() {
        let mut p = Mempool::new(1);
        let a = p.get().unwrap();
        p.write_frame(a, &[1, 2, 3, 4]);
        assert_eq!(p.frame(a), &[1, 2, 3, 4]);
        p.frame_mut(a)[0] = 9;
        assert_eq!(p.frame(a), &[9, 2, 3, 4]);
    }

    #[test]
    fn ring_fifo_and_overflow() {
        let mut r = Ring::new(2);
        assert!(r.push(BufIdx(1)));
        assert!(r.push(BufIdx(2)));
        assert!(!r.push(BufIdx(3)), "full ring rejects");
        assert_eq!(r.pop(), Some(BufIdx(1)));
        assert!(r.push(BufIdx(3)));
        assert_eq!(r.pop(), Some(BufIdx(2)));
        assert_eq!(r.pop(), Some(BufIdx(3)));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn device_counts_loss() {
        let mut d = Device::new(1);
        assert!(d.offer(BufIdx(0)));
        assert!(
            !d.offer(BufIdx(1)),
            "second offer overflows the 1-slot ring"
        );
        assert_eq!(d.stats.rx, 1);
        assert_eq!(d.stats.rx_dropped, 1);
        let got = d.rx_burst_one().unwrap();
        assert!(d.tx_put(got, 64));
        assert_eq!(d.stats.tx, 1);
        assert_eq!(d.stats.tx_bytes, 64);
        assert_eq!(d.tx_take(), Some(BufIdx(0)));
    }

    #[test]
    fn multiqueue_queues_are_independent() {
        let mut d = MultiQueueDevice::new(3, 2);
        assert_eq!(d.queue_count(), 3);
        // Fill queue 1 past capacity; queues 0 and 2 keep working.
        assert!(d.offer_to(1, BufIdx(0)));
        assert!(d.offer_to(1, BufIdx(1)));
        assert!(!d.offer_to(1, BufIdx(2)), "queue 1 overflows");
        assert!(d.offer_to(0, BufIdx(3)));
        assert!(d.offer_to(2, BufIdx(4)));
        assert_eq!(d.queue_stats(1).rx_dropped, 1);
        assert_eq!(d.queue_stats(0).rx_dropped, 0);
        assert_eq!(d.queue_stats(2).rx_dropped, 0);
        assert_eq!(d.rx_len(0), 1);
        assert_eq!(d.rx_len(1), 2);
        assert_eq!(d.rx_len(2), 1);
        let total = d.port_stats();
        assert_eq!((total.rx, total.rx_dropped, total.tx), (4, 1, 0));
    }

    #[test]
    fn multiqueue_rx_tx_roundtrip_per_queue() {
        let mut d = MultiQueueDevice::new(2, 4);
        for i in 0..3 {
            assert!(d.offer_to(0, BufIdx(i)));
        }
        let mut out = Vec::new();
        assert_eq!(d.rx_burst(0, 2, &mut out), 2);
        assert_eq!(out, vec![BufIdx(0), BufIdx(1)]);
        assert_eq!(d.rx_burst(1, 8, &mut out), 0, "sibling queue is empty");
        assert!(d.tx_put(0, BufIdx(0), 128));
        assert_eq!(d.tx_take(0), Some(BufIdx(0)));
        assert_eq!(d.tx_take(1), None);
        assert_eq!(d.queue_stats(0).tx, 1);
        assert_eq!(d.queue_stats(0).tx_bytes, 128);
        assert_eq!(d.queue_stats(1).tx, 0);
        assert_eq!(d.port_stats().tx_bytes, 128, "port sum includes bytes");
    }

    #[test]
    fn ring_wraps_many_times() {
        let mut r = Ring::new(3);
        for i in 0..100 {
            assert!(r.push(BufIdx(i)));
            assert_eq!(r.pop(), Some(BufIdx(i)));
        }
    }
}
