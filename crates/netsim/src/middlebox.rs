//! The uniform middlebox interface the harness measures, plus the
//! VigNAT and no-op instances.
//!
//! [`Middlebox::process`] is "one frame in, verdict out, rewrite in
//! place" — the DPDK run-to-completion model. The harness wraps every
//! call in the same mempool/ring transaction, so the *differences*
//! between NFs come entirely from what happens inside `process`, which
//! is exactly how the paper's Fig. 12/14 isolate NAT-specific cost on
//! top of a shared DPDK baseline.

use crate::frame_env::{FrameEnv, FrameVerdict};
use libvig::time::Time;
use vig_packet::Direction;
use vig_spec::NatConfig;
use vignat::{nat_loop_iteration, FlowManager};

/// What a middlebox did with a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Frame (rewritten in place) leaves on this interface.
    Forward(Direction),
    /// Frame is dropped.
    Drop,
}

/// A middlebox under test. See module docs.
pub trait Middlebox {
    /// Display name (used in bench tables).
    fn name(&self) -> &'static str;

    /// Process one frame arriving on `dir` at virtual time `now`,
    /// rewriting it in place.
    fn process(&mut self, dir: Direction, frame: &mut [u8], now: Time) -> Verdict;

    /// Current flow-table occupancy, if the NF keeps one (for the
    /// occupancy experiments).
    fn occupancy(&self) -> usize {
        0
    }
}

/// The paper's "No-op forwarding" baseline: receives on one port,
/// forwards out the other, no header inspection beyond what DPDK does.
#[derive(Debug, Default)]
pub struct NoopForwarder {
    processed: u64,
}

impl NoopForwarder {
    /// A fresh forwarder.
    pub fn new() -> NoopForwarder {
        NoopForwarder::default()
    }
}

impl Middlebox for NoopForwarder {
    fn name(&self) -> &'static str {
        "No-op"
    }

    fn process(&mut self, dir: Direction, frame: &mut [u8], _now: Time) -> Verdict {
        // Touch the frame the way a real forwarder's descriptor handling
        // does (read the first cacheline), then forward.
        let _ethertype = frame.get(12).copied().unwrap_or(0);
        self.processed += 1;
        Verdict::Forward(dir.flip())
    }
}

/// The Verified NAT: the real `vignat` loop body over [`FrameEnv`].
pub struct VigNatMb {
    cfg: NatConfig,
    fm: FlowManager,
    expired_total: u64,
}

impl VigNatMb {
    /// Build with the given configuration (panics on invalid config,
    /// like `FlowManager::new`).
    pub fn new(cfg: NatConfig) -> VigNatMb {
        VigNatMb { fm: FlowManager::new(&cfg), cfg, expired_total: 0 }
    }

    /// The flow manager (tests/statistics).
    pub fn flow_manager(&self) -> &FlowManager {
        &self.fm
    }

    /// Total flows expired over the run.
    pub fn expired_total(&self) -> u64 {
        self.expired_total
    }
}

impl Middlebox for VigNatMb {
    fn name(&self) -> &'static str {
        "Verified NAT"
    }

    fn process(&mut self, dir: Direction, frame: &mut [u8], now: Time) -> Verdict {
        let mut env = FrameEnv::new(&mut self.fm, frame, dir, now);
        nat_loop_iteration(&mut env, &self.cfg);
        let expired = env.expired() as u64;
        let verdict = env.verdict().expect("one frame in => one verdict out");
        self.expired_total += expired;
        match verdict {
            FrameVerdict::Forward(d) => Verdict::Forward(d),
            FrameVerdict::Drop => Verdict::Drop,
        }
    }

    fn occupancy(&self) -> usize {
        self.fm.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vig_packet::{builder::PacketBuilder, parse_l3l4, Ip4};

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 8,
            expiry_ns: Time::from_secs(2).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 4000,
        }
    }

    #[test]
    fn noop_forwards_everything_unchanged() {
        let mut nf = NoopForwarder::new();
        let orig = PacketBuilder::udp(Ip4::new(1, 1, 1, 1), Ip4::new(2, 2, 2, 2), 1, 9).build();
        let mut frame = orig.clone();
        let v = nf.process(Direction::Internal, &mut frame, Time::ZERO);
        assert_eq!(v, Verdict::Forward(Direction::External));
        assert_eq!(frame, orig, "no-op must not modify the frame");
        let v = nf.process(Direction::External, &mut frame, Time::ZERO);
        assert_eq!(v, Verdict::Forward(Direction::Internal));
    }

    #[test]
    fn vignat_middlebox_translates_and_expires() {
        let mut nf = VigNatMb::new(cfg());
        let mut f1 =
            PacketBuilder::udp(Ip4::new(192, 168, 0, 1), Ip4::new(5, 5, 5, 5), 1111, 53).build();
        assert_eq!(
            nf.process(Direction::Internal, &mut f1, Time::from_secs(1)),
            Verdict::Forward(Direction::External)
        );
        assert_eq!(nf.occupancy(), 1);
        let (_, ff) = parse_l3l4(&f1).unwrap();
        assert_eq!(ff.src_ip, Ip4::new(10, 1, 0, 1));

        // After Texp the flow is gone; the next packet expires it.
        let mut f2 =
            PacketBuilder::udp(Ip4::new(192, 168, 0, 2), Ip4::new(5, 5, 5, 5), 2222, 53).build();
        nf.process(Direction::Internal, &mut f2, Time::from_secs(4));
        assert_eq!(nf.expired_total(), 1);
        assert_eq!(nf.occupancy(), 1, "old flow expired, new one inserted");
    }
}
