//! The uniform middlebox interface the harness measures, plus the
//! VigNAT and no-op instances.
//!
//! [`Middlebox::process`] is "one frame in, verdict out, rewrite in
//! place" — the DPDK run-to-completion model. The harness wraps every
//! call in the same mempool/ring transaction, so the *differences*
//! between NFs come entirely from what happens inside `process`, which
//! is exactly how the paper's Fig. 12/14 isolate NAT-specific cost on
//! top of a shared DPDK baseline.

use crate::dpdk::{BufIdx, Mempool};
use crate::frame_env::{BurstEnv, BurstScratch, FrameEnv, FrameVerdict};
use libvig::time::Time;
use vig_packet::Direction;
use vig_spec::NatConfig;
use vignat::{
    nat_loop_iteration, nat_process_batch, FlowManager, FlowTable, IterationOutcome,
    ShardedFlowManager, MAX_BURST,
};

/// What a middlebox did with a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Frame (rewritten in place) leaves on this interface.
    Forward(Direction),
    /// Frame is dropped.
    Drop,
}

/// A middlebox under test. See module docs.
pub trait Middlebox {
    /// Display name (used in bench tables).
    fn name(&self) -> &'static str;

    /// Process one frame arriving on `dir` at virtual time `now`,
    /// rewriting it in place.
    fn process(&mut self, dir: Direction, frame: &mut [u8], now: Time) -> Verdict;

    /// Process a burst of mempool-resident frames arriving on `dir` at
    /// one instant, returning one verdict per buffer in order.
    ///
    /// Must be observationally identical to calling
    /// [`Middlebox::process`] per frame at the same `now` — the default
    /// does exactly that, so every NF supports bursts. NFs with a
    /// genuine fast path (VigNAT) override it to amortize per-packet
    /// overhead: one expiry scan per burst, batched flow-table probes.
    fn process_burst(
        &mut self,
        dir: Direction,
        pool: &mut Mempool,
        bufs: &[BufIdx],
        now: Time,
    ) -> Vec<Verdict> {
        bufs.iter()
            .map(|&b| self.process(dir, pool.frame_mut(b), now))
            .collect()
    }

    /// Current flow-table occupancy, if the NF keeps one (for the
    /// occupancy experiments).
    fn occupancy(&self) -> usize {
        0
    }
}

/// The paper's "No-op forwarding" baseline: receives on one port,
/// forwards out the other, no header inspection beyond what DPDK does.
#[derive(Debug, Default)]
pub struct NoopForwarder {
    processed: u64,
}

impl NoopForwarder {
    /// A fresh forwarder.
    pub fn new() -> NoopForwarder {
        NoopForwarder::default()
    }
}

impl Middlebox for NoopForwarder {
    fn name(&self) -> &'static str {
        "No-op"
    }

    fn process(&mut self, dir: Direction, frame: &mut [u8], _now: Time) -> Verdict {
        // Touch the frame the way a real forwarder's descriptor handling
        // does (read the first cacheline), then forward.
        let _ethertype = frame.get(12).copied().unwrap_or(0);
        self.processed += 1;
        Verdict::Forward(dir.flip())
    }
}

/// The Verified NAT: the real `vignat` loop body over [`FrameEnv`],
/// generic in the flow table it keeps — the unsharded [`FlowManager`]
/// by default, or the RSS-partitioned [`ShardedFlowManager`] (see
/// [`ShardedVigNatMb`]). Either way the loop body is the identical
/// monomorphization source; only the state layout changes.
pub struct VigNatMb<T: FlowTable = FlowManager> {
    cfg: NatConfig,
    fm: T,
    name: &'static str,
    expired_total: u64,
    scratch: BurstScratch,
}

/// The Verified NAT over an N-shard flow table, processed
/// run-to-completion on one core — the single-threaded reference the
/// `std::thread` driver ([`crate::harness::ParallelShardedNat`]) is
/// differentially tested against.
pub type ShardedVigNatMb = VigNatMb<ShardedFlowManager>;

impl VigNatMb {
    /// Build with the given configuration (panics on invalid config,
    /// like `FlowManager::new`).
    pub fn new(cfg: NatConfig) -> VigNatMb {
        VigNatMb::with_table(FlowManager::new(&cfg), cfg, "Verified NAT")
    }

    /// Build with an explicit [`vignat::ExpiryMode`] — the
    /// wheel-vs-scan differential suites run the whole middlebox twice,
    /// once per mode, and demand identical verdicts, frames, and
    /// expiry counts.
    pub fn with_expiry(cfg: NatConfig, mode: vignat::ExpiryMode) -> VigNatMb {
        VigNatMb::with_table(FlowManager::with_expiry(&cfg, mode), cfg, "Verified NAT")
    }
}

impl ShardedVigNatMb {
    /// Build an N-shard Verified NAT (panics on invalid config or
    /// shard count, like `ShardedFlowManager::new`).
    pub fn sharded(cfg: NatConfig, shards: usize) -> ShardedVigNatMb {
        VigNatMb::with_table(
            ShardedFlowManager::new(&cfg, shards),
            cfg,
            "Verified NAT (sharded)",
        )
    }

    /// N-shard Verified NAT with an explicit [`vignat::ExpiryMode`]
    /// (see [`VigNatMb::with_expiry`]).
    pub fn sharded_with_expiry(
        cfg: NatConfig,
        shards: usize,
        mode: vignat::ExpiryMode,
    ) -> ShardedVigNatMb {
        VigNatMb::with_table(
            ShardedFlowManager::with_expiry(&cfg, shards, mode),
            cfg,
            "Verified NAT (sharded)",
        )
    }
}

impl<T: FlowTable> VigNatMb<T> {
    fn with_table(fm: T, cfg: NatConfig, name: &'static str) -> VigNatMb<T> {
        VigNatMb {
            fm,
            cfg,
            name,
            expired_total: 0,
            scratch: BurstScratch::default(),
        }
    }

    /// The flow table (tests/statistics).
    pub fn flow_manager(&self) -> &T {
        &self.fm
    }

    /// The flow table, mutably — the chaos suites use this to mirror a
    /// supervised shard reset onto the sequential oracle.
    pub fn flow_manager_mut(&mut self) -> &mut T {
        &mut self.fm
    }

    /// Total flows expired over the run.
    pub fn expired_total(&self) -> u64 {
        self.expired_total
    }
}

impl<T: FlowTable> Middlebox for VigNatMb<T> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn process(&mut self, dir: Direction, frame: &mut [u8], now: Time) -> Verdict {
        let mut env = FrameEnv::new(&mut self.fm, frame, dir, now);
        nat_loop_iteration(&mut env, &self.cfg);
        let expired = env.expired() as u64;
        let verdict = env.verdict().expect("one frame in => one verdict out");
        self.expired_total += expired;
        match verdict {
            FrameVerdict::Forward(d) => Verdict::Forward(d),
            FrameVerdict::Drop => Verdict::Drop,
        }
    }

    fn occupancy(&self) -> usize {
        self.fm.flow_count()
    }

    fn process_burst(
        &mut self,
        dir: Direction,
        pool: &mut Mempool,
        bufs: &[BufIdx],
        now: Time,
    ) -> Vec<Verdict> {
        let mut verdicts = Vec::with_capacity(bufs.len());
        // nat_process_batch drains up to MAX_BURST packets per call;
        // feed it ring-order chunks so arrival order is preserved.
        for chunk in bufs.chunks(MAX_BURST) {
            let mut env = BurstEnv::new(&mut self.fm, pool, chunk, dir, now, &mut self.scratch);
            let outcomes = nat_process_batch(&mut env, &self.cfg);
            debug_assert_eq!(outcomes.len(), chunk.len(), "burst must drain its chunk");
            self.expired_total += env.expired() as u64;
            env.finish();
            verdicts.extend(outcomes.into_iter().map(|o| match o {
                IterationOutcome::Forwarded(d) => Verdict::Forward(d),
                IterationOutcome::Dropped(_) => Verdict::Drop,
                IterationOutcome::NoPacket => unreachable!("staged buffer not received"),
            }));
        }
        verdicts
    }
}

/// The real-clock middlebox mode: wraps any NF and replaces the
/// harness's *virtual* arrival time with a reading of the host's
/// monotonic clock on every `process`/`process_burst` call.
///
/// The netsim testbed normally passes virtual time, which removes the
/// per-packet clock read a production run-to-completion loop pays (and
/// which the burst path amortizes to one read per burst). Wrapping an
/// NF in `SystemClockMb` puts that cost back *inside* the timed region
/// — one `Instant::now()` per `process` call, one per burst through
/// `process_burst`, exactly the production cadence — so fig12/fig14
/// can report virtual-time and real-clock numbers side by side.
///
/// Time starts at `origin` (default 1 s) and advances with the host
/// clock; it is monotone by construction, so expiry semantics are
/// unchanged — at benchmark timescales (microseconds of real time
/// against multi-second expiries) no flow expires mid-measurement,
/// matching the steady-state workloads this mode is reported on.
pub struct SystemClockMb<M> {
    inner: M,
    base: std::time::Instant,
    origin_ns: u64,
    name: &'static str,
}

impl<M: Middlebox> SystemClockMb<M> {
    /// Wrap `inner`; its clock starts at 1 s of virtual time and then
    /// follows the host's monotonic clock.
    pub fn new(inner: M, name: &'static str) -> SystemClockMb<M> {
        SystemClockMb {
            inner,
            base: std::time::Instant::now(),
            origin_ns: Time::from_secs(1).nanos(),
            name,
        }
    }

    /// The wrapped NF.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    fn real_now(&self) -> Time {
        Time(self.origin_ns + self.base.elapsed().as_nanos() as u64)
    }
}

impl<M: Middlebox> Middlebox for SystemClockMb<M> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn process(&mut self, dir: Direction, frame: &mut [u8], _now: Time) -> Verdict {
        let now = self.real_now();
        self.inner.process(dir, frame, now)
    }

    fn process_burst(
        &mut self,
        dir: Direction,
        pool: &mut Mempool,
        bufs: &[BufIdx],
        _now: Time,
    ) -> Vec<Verdict> {
        let now = self.real_now();
        self.inner.process_burst(dir, pool, bufs, now)
    }

    fn occupancy(&self) -> usize {
        self.inner.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vig_packet::{builder::PacketBuilder, parse_l3l4, Ip4};

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 8,
            expiry_ns: Time::from_secs(2).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 4000,
            ..NatConfig::paper_default()
        }
    }

    #[test]
    fn noop_forwards_everything_unchanged() {
        let mut nf = NoopForwarder::new();
        let orig = PacketBuilder::udp(Ip4::new(1, 1, 1, 1), Ip4::new(2, 2, 2, 2), 1, 9).build();
        let mut frame = orig.clone();
        let v = nf.process(Direction::Internal, &mut frame, Time::ZERO);
        assert_eq!(v, Verdict::Forward(Direction::External));
        assert_eq!(frame, orig, "no-op must not modify the frame");
        let v = nf.process(Direction::External, &mut frame, Time::ZERO);
        assert_eq!(v, Verdict::Forward(Direction::Internal));
    }

    #[test]
    fn burst_path_matches_frame_at_a_time_path() {
        use crate::dpdk::Mempool;
        // Two identical NATs, same traffic: one processes buffers via
        // process_burst, the other frame at a time. Verdicts, frame
        // bytes, and occupancy must match exactly.
        let mut batched = VigNatMb::new(cfg());
        let mut sequential = VigNatMb::new(cfg());
        let mut pool = Mempool::new(64);

        let frames: Vec<Vec<u8>> = (0..40u8)
            .map(|i| {
                // mix: new flows, repeats (i % 8), TCP/UDP
                let host = i % 8;
                if i % 2 == 0 {
                    PacketBuilder::udp(
                        Ip4::new(192, 168, 0, host),
                        Ip4::new(5, 5, 5, 5),
                        1000 + u16::from(host),
                        53,
                    )
                    .build()
                } else {
                    PacketBuilder::tcp(
                        Ip4::new(192, 168, 1, host),
                        Ip4::new(6, 6, 6, 6),
                        2000 + u16::from(host),
                        443,
                    )
                    .build()
                }
            })
            .collect();

        let now = Time::from_secs(1);
        // Batched: stage everything in the pool, one process_burst call.
        let bufs: Vec<_> = frames
            .iter()
            .map(|f| {
                let b = pool.get().unwrap();
                pool.write_frame(b, f);
                b
            })
            .collect();
        let burst_verdicts = batched.process_burst(Direction::Internal, &mut pool, &bufs, now);

        // Sequential reference on copies of the same frames.
        for (i, f) in frames.iter().enumerate() {
            let mut frame = f.clone();
            let v = sequential.process(Direction::Internal, &mut frame, now);
            assert_eq!(v, burst_verdicts[i], "verdict diverged at frame {i}");
            assert_eq!(
                frame,
                pool.frame(bufs[i]),
                "rewritten bytes diverged at frame {i}"
            );
        }
        assert_eq!(batched.occupancy(), sequential.occupancy());
        assert_eq!(batched.expired_total(), sequential.expired_total());
        batched.flow_manager().check_coherence().unwrap();
    }

    #[test]
    fn system_clock_mode_translates_like_virtual_time() {
        // Same NAT semantics under the real clock: flows allocate,
        // translate, and return traffic maps back — only the time
        // source differs (and nothing expires at bench timescales).
        let mut nf = SystemClockMb::new(
            VigNatMb::new(NatConfig {
                expiry_ns: Time::from_secs(60).nanos(),
                ..cfg()
            }),
            "Verified NAT (sysclock)",
        );
        let mut f1 =
            PacketBuilder::udp(Ip4::new(192, 168, 0, 1), Ip4::new(5, 5, 5, 5), 1111, 53).build();
        // The virtual `now` passed here is deliberately absurd (0): the
        // wrapper must ignore it and read the host clock.
        assert_eq!(
            nf.process(Direction::Internal, &mut f1, Time::ZERO),
            Verdict::Forward(Direction::External)
        );
        assert_eq!(nf.occupancy(), 1);
        let (_, ff) = parse_l3l4(&f1).unwrap();
        assert_eq!(ff.src_ip, Ip4::new(10, 1, 0, 1));
        let ext_port = ff.src_port;

        let mut back =
            PacketBuilder::udp(Ip4::new(5, 5, 5, 5), Ip4::new(10, 1, 0, 1), 53, ext_port).build();
        assert_eq!(
            nf.process(Direction::External, &mut back, Time::ZERO),
            Verdict::Forward(Direction::Internal)
        );
        assert_eq!(
            nf.inner().expired_total(),
            0,
            "nothing expires in microseconds"
        );
    }

    #[test]
    fn vignat_middlebox_translates_and_expires() {
        let mut nf = VigNatMb::new(cfg());
        let mut f1 =
            PacketBuilder::udp(Ip4::new(192, 168, 0, 1), Ip4::new(5, 5, 5, 5), 1111, 53).build();
        assert_eq!(
            nf.process(Direction::Internal, &mut f1, Time::from_secs(1)),
            Verdict::Forward(Direction::External)
        );
        assert_eq!(nf.occupancy(), 1);
        let (_, ff) = parse_l3l4(&f1).unwrap();
        assert_eq!(ff.src_ip, Ip4::new(10, 1, 0, 1));

        // After Texp the flow is gone; the next packet expires it.
        let mut f2 =
            PacketBuilder::udp(Ip4::new(192, 168, 0, 2), Ip4::new(5, 5, 5, 5), 2222, 53).build();
        nf.process(Direction::Internal, &mut f2, Time::from_secs(4));
        assert_eq!(nf.expired_total(), 1);
        assert_eq!(nf.occupancy(), 1, "old flow expired, new one inserted");
    }
}
