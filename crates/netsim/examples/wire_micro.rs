//! Isolates the TX and RX halves of each wire transport so the
//! whole-loop mmap-vs-per-frame speedup can be read component by
//! component (documented in `docs/BENCHMARKS.md`, "Reading the
//! speedup"):
//!
//! - **TX blast**: fill + kick through the TPACKET_V2 ring vs one
//!   `sendto` per frame. On veth both are dominated by the same
//!   synchronous per-frame xmit + peer-delivery cost, so they land
//!   within a few percent of each other (~1.3 µs/frame on the dev
//!   container).
//! - **RX drain**: frames are staged untimed from the peer, then the
//!   timed path dequeues them — block-walk + copy for the mmap ring
//!   (~0.5 µs/frame) vs `recvmmsg` + copy for the per-frame socket
//!   (~1.0 µs/frame). This is where zero-copy actually wins: the
//!   kernel's copy into the mmap ring happened during the *tester's*
//!   send, off the measured path.
//!
//! Needs `CAP_NET_RAW`/`CAP_NET_ADMIN` (creates veth pairs):
//! `sudo -E cargo run --release -p netsim --example wire_micro`
#![cfg(target_os = "linux")]

use libvig::time::Time;
use netsim::backend::os::mmap::{MmapBackend, MmapRingConfig};
use netsim::backend::os::{OsBackend, OsTestRig, VethPair, WireBackend};
use netsim::backend::PacketIo;
use netsim::frame_env::RssClassifier;
use vig_packet::{Direction, Ip4};
use vig_spec::NatConfig;

const N: usize = 20_000;
const BATCH: usize = 64;

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 65_535,
        expiry_ns: Time::from_secs(60).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1,
        ..NatConfig::paper_default()
    }
}

fn frame_bytes(i: usize) -> Vec<u8> {
    // Minimal UDP frame like FlowGen's, unique src port per i.
    let mut f = vec![0u8; 64];
    f[12] = 0x08; // ethertype IPv4
    f[13] = 0x00;
    f[14] = 0x45;
    f[23] = 17; // UDP
    f[26..30].copy_from_slice(&[10, 0, (i >> 8) as u8, i as u8]); // src ip
    f[30..34].copy_from_slice(&[203, 0, 113, 9]); // dst ip
    f[34..36].copy_from_slice(&(((i % 60000) + 1) as u16).to_be_bytes());
    f[36..38].copy_from_slice(&53u16.to_be_bytes());
    f
}

fn tx_blast<B: WireBackend>(rig: &mut OsTestRig<B>, label: &str) {
    let pre = frame_bytes(7);
    let t0 = std::time::Instant::now();
    let mut sent = 0usize;
    while sent < N {
        for _ in 0..BATCH {
            let Some(buf) = rig.pool_mut().get() else {
                break;
            };
            rig.pool_mut().write_frame(buf, &pre);
            if !rig.tx_put(Direction::External, 0, buf) {
                rig.flush_tx();
                if !rig.tx_put(Direction::External, 0, buf) {
                    rig.pool_mut().put(buf);
                    break;
                }
            }
        }
        rig.flush_tx();
        sent += BATCH;
    }
    let el = t0.elapsed();
    println!(
        "{label}: tx {} frames in {:.1}ms = {:.0}ns/frame",
        N,
        el.as_secs_f64() * 1e3,
        el.as_nanos() as f64 / N as f64
    );
    // Drain tester-side sockets so nothing lingers.
    use netsim::backend::TesterIo;
    while !rig.reap(Direction::External).is_empty() {}
}

fn rx_blast<B: WireBackend>(rig: &mut OsTestRig<B>, label: &str) {
    use netsim::backend::TesterIo;
    // Stage in chunks, pump after each chunk (single CPU: delivery
    // happens inside the tester's send syscalls).
    let mut total_timed = std::time::Duration::ZERO;
    let mut got = 0usize;
    let mut scratch = Vec::new();
    let mut staged = 0usize;
    while got < N {
        let mut k = 0;
        while k < BATCH && staged < N + 4096 {
            let f = frame_bytes(staged);
            if rig
                .stage(Direction::Internal, |b| {
                    b[..f.len()].copy_from_slice(&f);
                    f.len()
                })
                .is_some()
            {
                k += 1;
                staged += 1;
            } else {
                break;
            }
        }
        let t0 = std::time::Instant::now();
        rig.pump_rx();
        for q in 0..rig.queue_count() {
            scratch.clear();
            got += rig.rx_burst(Direction::Internal, q, BATCH * 2, &mut scratch);
            for &b in &scratch {
                rig.pool_mut().put(b);
            }
        }
        total_timed += t0.elapsed();
    }
    println!(
        "{label}: rx {} frames, timed pump+burst {:.1}ms = {:.0}ns/frame",
        got,
        total_timed.as_secs_f64() * 1e3,
        total_timed.as_nanos() as f64 / got as f64
    );
}

fn main() {
    let c = cfg();
    let cls = RssClassifier::for_nat(&c, 2);
    {
        let int_v = VethPair::create("wmf-i0", "wmf-i1").expect("veth");
        let ext_v = VethPair::create("wmf-e0", "wmf-e1").expect("veth");
        let mut rig: OsTestRig<OsBackend> = OsTestRig::open(&int_v, &ext_v, cls, 256).expect("rig");
        tx_blast(&mut rig, "frame");
        rx_blast(&mut rig, "frame");
    }
    {
        let int_v = VethPair::create("wmm-i0", "wmm-i1").expect("veth");
        let ext_v = VethPair::create("wmm-e0", "wmm-e1").expect("veth");
        let backend = MmapBackend::open(&int_v.a, &ext_v.a, cls, 256, MmapRingConfig::default())
            .expect("mmap");
        let mut rig = OsTestRig::with_backend(backend, &int_v, &ext_v).expect("rig");
        tx_blast(&mut rig, "mmap ");
        rx_blast(&mut rig, "mmap ");
    }
}
