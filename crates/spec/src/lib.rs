//! # vig-spec — the formal NAT specification (paper §4.1)
//!
//! The paper's authors wrote a 300-line separation-logic specification
//! formalizing their reading of RFC 3022 *Traditional NAT*, structured as
//! a decision tree of pre-conditions (on abstract NAT state and the
//! incoming packet) and post-conditions (on the outgoing packet and the
//! updated state) — summarized in the paper's Fig. 6.
//!
//! This crate is the executable Rust analog, playing the same role the
//! separation-logic spec played for Vigor:
//!
//! * [`state::AbstractNat`] — the abstract state: a bounded set of flows
//!   with timestamps (the paper's `flow_table`), plus the three static
//!   configuration parameters `CAP`, `Texp`, `EXT_IP`.
//! * [`rfc3022`] — the decision tree itself, exposed as a *relation*
//!   ([`rfc3022::step_allows`]): given a pre-state, an input packet, the
//!   arrival time and an observed output, it either derives the unique
//!   post-state or reports a [`rfc3022::SpecViolation`]. A relation
//!   rather than a function because the RFC leaves the choice of
//!   external port nondeterministic; the spec only *constrains* it
//!   (fresh, non-zero).
//! * [`rfc3022::SpecChecker`] — the trace form: feed it every packet the
//!   NF sees along with what the NF did, and it maintains the abstract
//!   state and flags the first divergence. The differential tester
//!   (netsim) runs this against millions of concrete packets; the
//!   Validator discharges it symbolically per execution path (P1).
//! * [`discard`] — the tiny spec of the paper's §3 discard-protocol
//!   example NF, used to demonstrate toolchain generality.
//!
//! The paper reports their spec took 3 person-days and 300 lines; ours
//! is of comparable size and, like theirs, is *trusted*: it is the thing
//! VigNAT is verified against, so it is kept small, obvious, and heavily
//! cross-tested against hand-worked RFC examples (this crate's tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod discard;
pub mod rfc3022;
pub mod state;
pub mod tcp;

pub use rfc3022::{step_allows, Output, PacketInput, SpecChecker, SpecViolation};
pub use state::{AbstractFlow, AbstractNat, NatConfig};
pub use tcp::{TcpState, TimeoutClass};
