//! Specification of the paper's §3 example NF: the discard protocol
//! (RFC 863) filter.
//!
//! The NF receives packets on one interface, discards those addressed to
//! port 9, and forwards the rest through another interface, buffering
//! bursts in a ring. The paper proves two properties; this module states
//! both, in trace form:
//!
//! 1. **Safety** (the paper's headline): no emitted packet has target
//!    port 9.
//! 2. **FIFO faithfulness** (implied by the ring contracts): the emitted
//!    sequence is exactly the subsequence of accepted (non-port-9)
//!    received packets, in order, each at most once, never invented.
//!
//! The checker is deliberately generic over a packet summary type so the
//! same spec drives the concrete NF (netsim) and the symbolic validator.

use std::collections::VecDeque;

/// Trace events of the discard NF, at the spec's level of abstraction:
/// receive/send with the packet's target port and an opaque identity tag
/// (the payload stand-in — lets the spec detect reordering/duplication
/// even between packets with equal ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscardEvent {
    /// The NF received a packet with this target port and identity.
    Received {
        /// Target port.
        port: u16,
        /// Opaque packet identity.
        tag: u64,
    },
    /// The NF emitted a packet.
    Sent {
        /// Target port.
        port: u16,
        /// Opaque packet identity.
        tag: u64,
    },
}

/// How a discard-NF trace can violate the spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscardViolation {
    /// A packet with target port 9 was emitted — the paper's headline
    /// property broken.
    SentPort9 {
        /// Identity of the offending packet.
        tag: u64,
    },
    /// An emitted packet was never received, or was received but already
    /// emitted (duplication), or overtook an earlier accepted packet
    /// (reordering).
    NotHeadOfLine {
        /// Identity of the offending packet.
        tag: u64,
    },
    /// An emitted packet had been received with a different port —
    /// storage altered the packet.
    Altered {
        /// Identity of the offending packet.
        tag: u64,
        /// Port at receive time.
        received_port: u16,
        /// Port at send time.
        sent_port: u16,
    },
}

impl core::fmt::Display for DiscardViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DiscardViolation::SentPort9 { tag } => {
                write!(f, "packet {tag:#x} with target port 9 was emitted")
            }
            DiscardViolation::NotHeadOfLine { tag } => {
                write!(f, "packet {tag:#x} emitted out of order / duplicated / invented")
            }
            DiscardViolation::Altered { tag, received_port, sent_port } => write!(
                f,
                "packet {tag:#x} altered in storage: received port {received_port}, sent {sent_port}"
            ),
        }
    }
}

impl std::error::Error for DiscardViolation {}

/// Online checker for discard-NF traces.
#[derive(Debug, Clone, Default)]
pub struct DiscardSpec {
    /// Accepted (non-port-9) packets not yet emitted, in arrival order.
    pending: VecDeque<(u16, u64)>,
}

impl DiscardSpec {
    /// Fresh checker.
    pub fn new() -> DiscardSpec {
        DiscardSpec::default()
    }

    /// Packets accepted but not yet emitted.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Feed one trace event.
    pub fn observe(&mut self, ev: DiscardEvent) -> Result<(), DiscardViolation> {
        match ev {
            DiscardEvent::Received { port, tag } => {
                if port != 9 {
                    self.pending.push_back((port, tag));
                }
                // port-9 packets are discarded: the spec forgets them,
                // so emitting one later trips NotHeadOfLine or SentPort9.
                Ok(())
            }
            DiscardEvent::Sent { port, tag } => {
                if port == 9 {
                    return Err(DiscardViolation::SentPort9 { tag });
                }
                match self.pending.pop_front() {
                    Some((rx_port, rx_tag)) if rx_tag == tag => {
                        if rx_port != port {
                            Err(DiscardViolation::Altered {
                                tag,
                                received_port: rx_port,
                                sent_port: port,
                            })
                        } else {
                            Ok(())
                        }
                    }
                    _ => Err(DiscardViolation::NotHeadOfLine { tag }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DiscardEvent::{Received, Sent};

    #[test]
    fn clean_trace_passes() {
        let mut s = DiscardSpec::new();
        s.observe(Received { port: 80, tag: 1 }).unwrap();
        s.observe(Received { port: 9, tag: 2 }).unwrap(); // discarded
        s.observe(Received { port: 443, tag: 3 }).unwrap();
        s.observe(Sent { port: 80, tag: 1 }).unwrap();
        s.observe(Sent { port: 443, tag: 3 }).unwrap();
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn emitting_port9_is_caught() {
        let mut s = DiscardSpec::new();
        s.observe(Received { port: 9, tag: 7 }).unwrap();
        assert_eq!(
            s.observe(Sent { port: 9, tag: 7 }),
            Err(DiscardViolation::SentPort9 { tag: 7 })
        );
    }

    #[test]
    fn reordering_is_caught() {
        let mut s = DiscardSpec::new();
        s.observe(Received { port: 80, tag: 1 }).unwrap();
        s.observe(Received { port: 81, tag: 2 }).unwrap();
        assert_eq!(
            s.observe(Sent { port: 81, tag: 2 }),
            Err(DiscardViolation::NotHeadOfLine { tag: 2 })
        );
    }

    #[test]
    fn duplication_is_caught() {
        let mut s = DiscardSpec::new();
        s.observe(Received { port: 80, tag: 1 }).unwrap();
        s.observe(Sent { port: 80, tag: 1 }).unwrap();
        assert!(s.observe(Sent { port: 80, tag: 1 }).is_err());
    }

    #[test]
    fn invention_is_caught() {
        let mut s = DiscardSpec::new();
        assert!(s.observe(Sent { port: 80, tag: 99 }).is_err());
    }

    #[test]
    fn alteration_is_caught() {
        let mut s = DiscardSpec::new();
        s.observe(Received { port: 80, tag: 1 }).unwrap();
        assert_eq!(
            s.observe(Sent { port: 8080, tag: 1 }),
            Err(DiscardViolation::Altered {
                tag: 1,
                received_port: 80,
                sent_port: 8080
            })
        );
    }
}
