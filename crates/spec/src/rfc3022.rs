//! The RFC 3022 decision tree (paper Fig. 6), as an executable relation.
//!
//! Fig. 6 defines, for a packet `P` arriving at time `t`:
//!
//! ```text
//! expire_flows(t);  update_flow(P, t);  forward(P)
//! ```
//!
//! where `forward` either rewrites and emits exactly one packet `S` on
//! the opposite interface or drops `P`. The *only* nondeterminism is the
//! external port chosen for a fresh flow, so the spec is a relation:
//! [`step_allows`] checks an observed output against the tree and, when
//! admissible, returns the unique post-state it implies.
//!
//! ## Faithfulness notes
//!
//! * With a single-address pool (the paper's configuration), external
//!   packets are matched purely by `(ext_port, remote ip, remote port,
//!   proto)` — Fig. 6 does not test the packet's destination address
//!   against `EXT_IP` (on the paper's testbed, L2 delivery guarantees
//!   it). We mirror that exactly: `external_key` canonicalizes the
//!   external address to `EXT_IP` whenever `num_external_ips() == 1`.
//!   With a multi-address pool (a beyond-the-paper extension for >64k
//!   flows) the destination address *must* participate — it selects
//!   which pool address the mapping lives on.
//! * `S.data = P.data` (payload untouched) is a byte-level property the
//!   field-level relation cannot see; the differential tester checks it
//!   on concrete packets, and the Validator checks it symbolically via
//!   the payload-tag mechanism.

use crate::state::{AbstractNat, InsertError};
use libvig::time::Time;
use vig_packet::{Direction, ExtKey, FlowFields, FlowId};

/// A packet presented to the NAT: which interface it arrived on, its
/// 5-tuple, and — for TCP — the segment's flag byte, which drives the
/// connection tracker. (Non-TCP/UDP and malformed packets never reach
/// the spec — Fig. 6's "P is accepted" premise; the parse-and-drop
/// paths are covered by the low-level properties, not the semantic
/// ones.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketInput {
    /// Arrival interface.
    pub dir: Direction,
    /// The packet's 5-tuple as read off the wire.
    pub fields: FlowFields,
    /// The TCP flag byte (0 for UDP packets; an empty flag set never
    /// steps the tracker, so the two encodings coincide).
    pub tcp_flags: u8,
}

impl PacketInput {
    /// `F(P)` for an internal packet: the 5-tuple is the flow id. With
    /// RFC 4787 endpoint-independent mapping the remote endpoint does
    /// not participate — the id is the internal endpoint alone, with
    /// the remote fields canonicalized to zero.
    pub fn internal_fid(&self, cfg: &crate::state::NatConfig) -> FlowId {
        if cfg.eim {
            FlowId {
                src_ip: self.fields.src_ip,
                src_port: self.fields.src_port,
                dst_ip: vig_packet::Ip4(0),
                dst_port: 0,
                proto: self.fields.proto,
            }
        } else {
            FlowId {
                src_ip: self.fields.src_ip,
                src_port: self.fields.src_port,
                dst_ip: self.fields.dst_ip,
                dst_port: self.fields.dst_port,
                proto: self.fields.proto,
            }
        }
    }

    /// `F(P)` for an external (return) packet: keyed by the endpoint we
    /// allocated (the packet's destination) and the remote endpoint
    /// (the packet's source). `cfg` canonicalizes the external address:
    /// with a single-address pool the packet's destination address is
    /// *not* consulted (Fig. 6's exact behavior — see the module
    /// faithfulness notes); with a larger pool it must select which
    /// pool address the mapping lives on. Under endpoint-independent
    /// mapping the remote endpoint is canonicalized to zero, so *any*
    /// external sender matches the mapping (full-cone).
    pub fn external_key(&self, cfg: &crate::state::NatConfig) -> ExtKey {
        let ext_ip = if cfg.num_external_ips() == 1 {
            cfg.external_ip
        } else {
            self.fields.dst_ip
        };
        if cfg.eim {
            ExtKey {
                ext_ip,
                ext_port: self.fields.dst_port,
                dst_ip: vig_packet::Ip4(0),
                dst_port: 0,
                proto: self.fields.proto,
            }
        } else {
            ExtKey {
                ext_ip,
                ext_port: self.fields.dst_port,
                dst_ip: self.fields.src_ip,
                dst_port: self.fields.src_port,
                proto: self.fields.proto,
            }
        }
    }
}

/// What the NF did with a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Output {
    /// Emitted one packet with these fields on this interface.
    Forward {
        /// Egress interface.
        iface: Direction,
        /// The emitted packet's 5-tuple.
        fields: FlowFields,
    },
    /// Dropped the packet; nothing was emitted.
    Drop,
}

/// A divergence between observed NF behaviour and the RFC 3022 tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecViolation {
    /// The spec requires forwarding (a flow matched, or a fresh internal
    /// flow fit in the table) but the NF dropped.
    ShouldForward {
        /// The matched or insertable flow id.
        fid: FlowId,
    },
    /// The spec requires a drop (no match and not insertable) but the NF
    /// forwarded.
    ShouldDrop,
    /// Forwarded on the wrong interface.
    WrongInterface {
        /// Interface the spec requires.
        expected: Direction,
        /// Interface the NF used.
        got: Direction,
    },
    /// A rewritten field differs from what Fig. 6 prescribes.
    FieldMismatch {
        /// Which field (for diagnostics).
        field: &'static str,
        /// Expected value (numeric form).
        expected: u64,
        /// Observed value.
        got: u64,
    },
    /// A freshly allocated external port violates its constraints
    /// (zero, or already in use by another flow).
    BadPortAllocation {
        /// The offending port.
        port: u16,
        /// Why it is rejected.
        reason: &'static str,
    },
    /// A freshly allocated external endpoint lies outside the NAT's
    /// configured address pool.
    BadEndpointAllocation {
        /// The offending address (raw u32 form).
        ip: u32,
        /// The offending port.
        port: u16,
    },
    /// Internal bookkeeping failure — indicates a bug in the spec
    /// client, not the NF (e.g. feeding packets out of time order).
    StateError(&'static str),
}

impl core::fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpecViolation::ShouldForward { fid } => {
                write!(f, "spec requires forwarding flow {fid}, NF dropped")
            }
            SpecViolation::ShouldDrop => write!(f, "spec requires a drop, NF forwarded"),
            SpecViolation::WrongInterface { expected, got } => {
                write!(f, "forwarded on {got:?}, spec requires {expected:?}")
            }
            SpecViolation::FieldMismatch {
                field,
                expected,
                got,
            } => {
                write!(f, "field {field}: expected {expected:#x}, got {got:#x}")
            }
            SpecViolation::BadPortAllocation { port, reason } => {
                write!(f, "bad external port {port}: {reason}")
            }
            SpecViolation::BadEndpointAllocation { ip, port } => {
                write!(
                    f,
                    "external endpoint {}:{port} outside the configured pool",
                    vig_packet::Ip4(*ip)
                )
            }
            SpecViolation::StateError(m) => write!(f, "spec-state error: {m}"),
        }
    }
}

impl std::error::Error for SpecViolation {}

fn expect_field(field: &'static str, expected: u64, got: u64) -> Result<(), SpecViolation> {
    if expected == got {
        Ok(())
    } else {
        Err(SpecViolation::FieldMismatch {
            field,
            expected,
            got,
        })
    }
}

fn check_forward_fields(
    expected_iface: Direction,
    expected: &FlowFields,
    observed: &Output,
    matched_fid: FlowId,
) -> Result<(), SpecViolation> {
    match observed {
        Output::Drop => Err(SpecViolation::ShouldForward { fid: matched_fid }),
        Output::Forward { iface, fields } => {
            if *iface != expected_iface {
                return Err(SpecViolation::WrongInterface {
                    expected: expected_iface,
                    got: *iface,
                });
            }
            expect_field(
                "src_ip",
                u64::from(expected.src_ip.raw()),
                u64::from(fields.src_ip.raw()),
            )?;
            expect_field(
                "dst_ip",
                u64::from(expected.dst_ip.raw()),
                u64::from(fields.dst_ip.raw()),
            )?;
            expect_field(
                "src_port",
                u64::from(expected.src_port),
                u64::from(fields.src_port),
            )?;
            expect_field(
                "dst_port",
                u64::from(expected.dst_port),
                u64::from(fields.dst_port),
            )?;
            expect_field(
                "proto",
                u64::from(expected.proto.number()),
                u64::from(fields.proto.number()),
            )?;
            Ok(())
        }
    }
}

/// The Fig. 6 relation: does `observed` conform to RFC 3022 for packet
/// `input` arriving at `now` in state `pre`? On success, returns the
/// implied post-state.
pub fn step_allows(
    pre: &AbstractNat,
    input: &PacketInput,
    now: Time,
    observed: &Output,
) -> Result<AbstractNat, SpecViolation> {
    let mut state = pre.clone();

    // Fig. 6 line 2: expire_flows(t).
    state.expire_flows(now);

    match input.dir {
        Direction::Internal => {
            let fid = input.internal_fid(state.config());
            // RFC 4787 hairpinning: an internal packet addressed to a
            // pool endpoint is translated back inside (when enabled).
            if state.config().hairpinning
                && state
                    .config()
                    .pool_contains(input.fields.dst_ip, input.fields.dst_port)
            {
                return hairpin_allows(state, input, fid, now, observed);
            }
            if let Some(flow) = state.lookup_internal(&fid).copied() {
                // Match: rewrite src to the flow's allocated external
                // endpoint (the pool address — EXT_IP itself when the
                // pool is one address), forward east.
                let expected = FlowFields {
                    src_ip: flow.ext_ip,
                    src_port: flow.ext_port,
                    dst_ip: input.fields.dst_ip,
                    dst_port: input.fields.dst_port,
                    proto: input.fields.proto,
                };
                check_forward_fields(Direction::External, &expected, observed, fid)?;
                if !state.refresh_with(&fid, now, Direction::Internal, input.tcp_flags) {
                    return Err(SpecViolation::StateError("refresh of matched flow failed"));
                }
                Ok(state)
            } else if !state.is_full() {
                // Fig. 6 lines 14–16 + 20–28: insert then forward. The
                // port is the NF's choice; validate its constraints.
                match observed {
                    Output::Drop => Err(SpecViolation::ShouldForward { fid }),
                    Output::Forward { iface, fields } => {
                        if *iface != Direction::External {
                            return Err(SpecViolation::WrongInterface {
                                expected: Direction::External,
                                got: *iface,
                            });
                        }
                        // The endpoint (address + port) is the NF's
                        // choice; validate its constraints via insert.
                        let port = fields.src_port;
                        let ip = fields.src_ip;
                        let expected = FlowFields {
                            src_ip: ip,     // the NF's choice, constrained below
                            src_port: port, // the NF's choice, constrained below
                            dst_ip: input.fields.dst_ip,
                            dst_port: input.fields.dst_port,
                            proto: input.fields.proto,
                        };
                        check_forward_fields(Direction::External, &expected, observed, fid)?;
                        match state.insert_with_flags(fid, ip, port, now, input.tcp_flags) {
                            Ok(()) => Ok(state),
                            Err(InsertError::PortZero) => Err(SpecViolation::BadPortAllocation {
                                port,
                                reason: "port zero",
                            }),
                            Err(InsertError::EndpointInUse(..)) => {
                                Err(SpecViolation::BadPortAllocation {
                                    port,
                                    reason: "endpoint already allocated to another flow",
                                })
                            }
                            Err(InsertError::EndpointOutsidePool(..)) => {
                                Err(SpecViolation::BadEndpointAllocation { ip: ip.raw(), port })
                            }
                            Err(InsertError::TableFull) => {
                                Err(SpecViolation::StateError("insert into full table"))
                            }
                            Err(InsertError::DuplicateFlowId) => {
                                Err(SpecViolation::StateError("duplicate fid on insert"))
                            }
                        }
                    }
                }
            } else {
                // Table full, no match: update_flow is a no-op, forward
                // finds nothing, the packet is dropped (Fig. 6 line 39).
                match observed {
                    Output::Drop => Ok(state),
                    Output::Forward { .. } => Err(SpecViolation::ShouldDrop),
                }
            }
        }
        Direction::External => {
            let ek = input.external_key(state.config());
            if let Some(flow) = state.lookup_external(&ek).copied() {
                // Match: rewrite dst to the internal endpoint, forward west.
                let expected = FlowFields {
                    src_ip: input.fields.src_ip,
                    src_port: input.fields.src_port,
                    dst_ip: flow.fid.src_ip,
                    dst_port: flow.fid.src_port,
                    proto: input.fields.proto,
                };
                let fid = flow.fid;
                check_forward_fields(Direction::Internal, &expected, observed, fid)?;
                if !state.refresh_with(&fid, now, Direction::External, input.tcp_flags) {
                    return Err(SpecViolation::StateError("refresh of matched flow failed"));
                }
                Ok(state)
            } else {
                // Fig. 6 line 13-19: external packets never create flows.
                match observed {
                    Output::Drop => Ok(state),
                    Output::Forward { .. } => Err(SpecViolation::ShouldDrop),
                }
            }
        }
    }
}

/// The RFC 4787 hairpin leg of the relation: `input` is an internal
/// packet whose destination is a pool endpoint. The NAT resolves the
/// target mapping by external lookup, resolves (or creates) the
/// *sender's* mapping exactly as for an outbound packet, and forwards
/// back on the internal interface with source rewritten to the
/// sender's external endpoint ("external source address and port", the
/// RFC's hairpinning of type EIM) and destination rewritten to the
/// target's internal endpoint. No target mapping, or no room for the
/// sender's mapping, means a drop. Only the sender's flow is
/// refreshed — the target sees traffic *to* it, which no more refreshes
/// its mapping than any other inbound packet creates state.
fn hairpin_allows(
    mut state: AbstractNat,
    input: &PacketInput,
    fid: FlowId,
    now: Time,
    observed: &Output,
) -> Result<AbstractNat, SpecViolation> {
    // Which internal host owns the targeted pool endpoint?
    let target_key = ExtKey {
        ext_ip: if state.config().num_external_ips() == 1 {
            state.config().external_ip
        } else {
            input.fields.dst_ip
        },
        ext_port: input.fields.dst_port,
        // Hairpinning requires EIM (enforced at config check), so the
        // mapping's remote fields are always the canonical zeros.
        dst_ip: vig_packet::Ip4(0),
        dst_port: 0,
        proto: input.fields.proto,
    };
    let Some(target) = state.lookup_external(&target_key).copied() else {
        // Nobody owns the endpoint: the packet is unroutable inside.
        return match observed {
            Output::Drop => Ok(state),
            Output::Forward { .. } => Err(SpecViolation::ShouldDrop),
        };
    };
    let expected_dst = (target.fid.src_ip, target.fid.src_port);
    if let Some(sender) = state.lookup_internal(&fid).copied() {
        let expected = FlowFields {
            src_ip: sender.ext_ip,
            src_port: sender.ext_port,
            dst_ip: expected_dst.0,
            dst_port: expected_dst.1,
            proto: input.fields.proto,
        };
        check_forward_fields(Direction::Internal, &expected, observed, fid)?;
        if !state.refresh_with(&fid, now, Direction::Internal, input.tcp_flags) {
            return Err(SpecViolation::StateError("refresh of matched flow failed"));
        }
        Ok(state)
    } else if !state.is_full() {
        match observed {
            Output::Drop => Err(SpecViolation::ShouldForward { fid }),
            Output::Forward { iface, fields } => {
                if *iface != Direction::Internal {
                    return Err(SpecViolation::WrongInterface {
                        expected: Direction::Internal,
                        got: *iface,
                    });
                }
                // The sender's external endpoint is the NF's choice,
                // constrained through insert as in the outbound case.
                let (ip, port) = (fields.src_ip, fields.src_port);
                let expected = FlowFields {
                    src_ip: ip,
                    src_port: port,
                    dst_ip: expected_dst.0,
                    dst_port: expected_dst.1,
                    proto: input.fields.proto,
                };
                check_forward_fields(Direction::Internal, &expected, observed, fid)?;
                match state.insert_with_flags(fid, ip, port, now, input.tcp_flags) {
                    Ok(()) => Ok(state),
                    Err(InsertError::PortZero) => Err(SpecViolation::BadPortAllocation {
                        port,
                        reason: "port zero",
                    }),
                    Err(InsertError::EndpointInUse(..)) => Err(SpecViolation::BadPortAllocation {
                        port,
                        reason: "endpoint already allocated to another flow",
                    }),
                    Err(InsertError::EndpointOutsidePool(..)) => {
                        Err(SpecViolation::BadEndpointAllocation { ip: ip.raw(), port })
                    }
                    Err(InsertError::TableFull) => {
                        Err(SpecViolation::StateError("insert into full table"))
                    }
                    Err(InsertError::DuplicateFlowId) => {
                        Err(SpecViolation::StateError("duplicate fid on insert"))
                    }
                }
            }
        }
    } else {
        match observed {
            Output::Drop => Ok(state),
            Output::Forward { .. } => Err(SpecViolation::ShouldDrop),
        }
    }
}

/// Trace-level spec checking: feeds [`step_allows`] one packet at a
/// time, carrying the abstract state along. The first violation is
/// sticky (subsequent calls keep returning it) so a long differential
/// run reports the earliest divergence.
#[derive(Debug, Clone)]
pub struct SpecChecker {
    state: AbstractNat,
    last_time: Time,
    steps: u64,
    violation: Option<(u64, SpecViolation)>,
}

impl SpecChecker {
    /// Start checking from an empty NAT.
    pub fn new(config: crate::state::NatConfig) -> SpecChecker {
        SpecChecker {
            state: AbstractNat::new(config),
            last_time: Time::ZERO,
            steps: 0,
            violation: None,
        }
    }

    /// The abstract state the spec believes the NAT is in.
    pub fn state(&self) -> &AbstractNat {
        &self.state
    }

    /// Packets checked so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The first violation, if any, with the 0-based step it occurred at.
    pub fn violation(&self) -> Option<&(u64, SpecViolation)> {
        self.violation.as_ref()
    }

    /// Check one observed step. Time must be non-decreasing across calls.
    pub fn observe(
        &mut self,
        input: &PacketInput,
        now: Time,
        output: &Output,
    ) -> Result<(), SpecViolation> {
        if let Some((_, v)) = &self.violation {
            return Err(v.clone());
        }
        if now < self.last_time {
            let v = SpecViolation::StateError("time went backwards in trace");
            self.violation = Some((self.steps, v.clone()));
            return Err(v);
        }
        self.last_time = now;
        match step_allows(&self.state, input, now, output) {
            Ok(post) => {
                self.state = post;
                self.steps += 1;
                Ok(())
            }
            Err(v) => {
                self.violation = Some((self.steps, v.clone()));
                Err(v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NatConfig;
    use vig_packet::{Ip4, Proto};

    const EXT_IP: Ip4 = Ip4::new(10, 1, 0, 1);

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 2,
            expiry_ns: Time::from_secs(10).nanos(),
            external_ip: EXT_IP,
            start_port: 1000,
            ..NatConfig::paper_default()
        }
    }

    fn internal_pkt(host: u8, sport: u16) -> PacketInput {
        PacketInput {
            dir: Direction::Internal,
            fields: FlowFields {
                src_ip: Ip4::new(192, 168, 0, host),
                dst_ip: Ip4::new(1, 1, 1, 1),
                src_port: sport,
                dst_port: 80,
                proto: Proto::Tcp,
            },
            tcp_flags: 0,
        }
    }

    fn return_pkt(ext_port: u16) -> PacketInput {
        PacketInput {
            dir: Direction::External,
            fields: FlowFields {
                src_ip: Ip4::new(1, 1, 1, 1),
                dst_ip: EXT_IP,
                src_port: 80,
                dst_port: ext_port,
                proto: Proto::Tcp,
            },
            tcp_flags: 0,
        }
    }

    fn fwd_ext(src_port: u16, input: &PacketInput) -> Output {
        Output::Forward {
            iface: Direction::External,
            fields: FlowFields {
                src_ip: EXT_IP,
                src_port,
                dst_ip: input.fields.dst_ip,
                dst_port: input.fields.dst_port,
                proto: input.fields.proto,
            },
        }
    }

    #[test]
    fn new_internal_flow_is_translated() {
        let pre = AbstractNat::new(cfg());
        let input = internal_pkt(5, 4000);
        let post = step_allows(&pre, &input, Time::from_secs(1), &fwd_ext(1000, &input)).unwrap();
        assert_eq!(post.len(), 1);
        assert_eq!(post.flows()[0].ext_port, 1000);
    }

    #[test]
    fn dropping_a_translatable_packet_violates() {
        let pre = AbstractNat::new(cfg());
        let input = internal_pkt(5, 4000);
        let err = step_allows(&pre, &input, Time::from_secs(1), &Output::Drop).unwrap_err();
        assert!(matches!(err, SpecViolation::ShouldForward { .. }));
    }

    #[test]
    fn repeated_packet_must_reuse_port() {
        let pre = AbstractNat::new(cfg());
        let input = internal_pkt(5, 4000);
        let mid = step_allows(&pre, &input, Time::from_secs(1), &fwd_ext(1000, &input)).unwrap();
        // same flow again: must use the same port, any other is a violation
        assert!(step_allows(&mid, &input, Time::from_secs(2), &fwd_ext(1000, &input)).is_ok());
        let err =
            step_allows(&mid, &input, Time::from_secs(2), &fwd_ext(1001, &input)).unwrap_err();
        assert!(matches!(
            err,
            SpecViolation::FieldMismatch {
                field: "src_port",
                ..
            }
        ));
    }

    #[test]
    fn port_reuse_across_flows_violates() {
        let pre = AbstractNat::new(cfg());
        let a = internal_pkt(5, 4000);
        let mid = step_allows(&pre, &a, Time::from_secs(1), &fwd_ext(1000, &a)).unwrap();
        let b = internal_pkt(6, 4000);
        let err = step_allows(&mid, &b, Time::from_secs(2), &fwd_ext(1000, &b)).unwrap_err();
        assert!(matches!(
            err,
            SpecViolation::BadPortAllocation { port: 1000, .. }
        ));
    }

    #[test]
    fn return_traffic_is_reverse_translated() {
        let pre = AbstractNat::new(cfg());
        let out = internal_pkt(5, 4000);
        let mid = step_allows(&pre, &out, Time::from_secs(1), &fwd_ext(1000, &out)).unwrap();
        let back = return_pkt(1000);
        let expected = Output::Forward {
            iface: Direction::Internal,
            fields: FlowFields {
                src_ip: Ip4::new(1, 1, 1, 1),
                src_port: 80,
                dst_ip: Ip4::new(192, 168, 0, 5),
                dst_port: 4000,
                proto: Proto::Tcp,
            },
        };
        step_allows(&mid, &back, Time::from_secs(2), &expected).unwrap();
    }

    #[test]
    fn unsolicited_external_packet_must_drop() {
        let pre = AbstractNat::new(cfg());
        let back = return_pkt(1000);
        assert!(step_allows(&pre, &back, Time::from_secs(1), &Output::Drop).is_ok());
        let err = step_allows(
            &pre,
            &back,
            Time::from_secs(1),
            &Output::Forward {
                iface: Direction::Internal,
                fields: back.fields,
            },
        )
        .unwrap_err();
        assert_eq!(err, SpecViolation::ShouldDrop);
    }

    #[test]
    fn full_table_drops_new_flows_but_serves_old() {
        let pre = AbstractNat::new(cfg());
        let a = internal_pkt(1, 1);
        let b = internal_pkt(2, 2);
        let s1 = step_allows(&pre, &a, Time::from_secs(1), &fwd_ext(1000, &a)).unwrap();
        let s2 = step_allows(&s1, &b, Time::from_secs(1), &fwd_ext(1001, &b)).unwrap();
        assert!(s2.is_full());
        let c = internal_pkt(3, 3);
        assert!(step_allows(&s2, &c, Time::from_secs(2), &Output::Drop).is_ok());
        // old flow still translates
        assert!(step_allows(&s2, &a, Time::from_secs(2), &fwd_ext(1000, &a)).is_ok());
    }

    #[test]
    fn expiry_frees_capacity_and_kills_translation() {
        let pre = AbstractNat::new(cfg());
        let a = internal_pkt(1, 1);
        let s1 = step_allows(&pre, &a, Time::from_secs(1), &fwd_ext(1000, &a)).unwrap();
        // at t=11s the flow (stamped 1s, Texp=10s) is dead: its return
        // packet must now be dropped...
        let back = return_pkt(1000);
        assert!(step_allows(&s1, &back, Time::from_secs(11), &Output::Drop).is_ok());
        // ...and the same internal packet is a *new* flow, free to get a
        // new port.
        let s2 = step_allows(&s1, &a, Time::from_secs(11), &fwd_ext(1007, &a)).unwrap();
        assert_eq!(s2.flows()[0].ext_port, 1007);
    }

    #[test]
    fn wrong_interface_is_flagged() {
        let pre = AbstractNat::new(cfg());
        let input = internal_pkt(5, 4000);
        let out = Output::Forward {
            iface: Direction::Internal, // should be External
            fields: fwd_fields(&input),
        };
        fn fwd_fields(i: &PacketInput) -> FlowFields {
            FlowFields {
                src_ip: EXT_IP,
                src_port: 1000,
                dst_ip: i.fields.dst_ip,
                dst_port: i.fields.dst_port,
                proto: i.fields.proto,
            }
        }
        let err = step_allows(&pre, &input, Time::from_secs(1), &out).unwrap_err();
        assert!(matches!(err, SpecViolation::WrongInterface { .. }));
    }

    #[test]
    fn checker_reports_first_violation_and_sticks() {
        let mut chk = SpecChecker::new(cfg());
        let a = internal_pkt(1, 1);
        chk.observe(&a, Time::from_secs(1), &fwd_ext(1000, &a))
            .unwrap();
        assert!(chk.observe(&a, Time::from_secs(2), &Output::Drop).is_err());
        let (step, _) = chk.violation().unwrap().clone();
        assert_eq!(step, 1);
        // sticky
        assert!(chk
            .observe(&a, Time::from_secs(3), &fwd_ext(1000, &a))
            .is_err());
    }

    #[test]
    fn checker_rejects_time_reversal() {
        let mut chk = SpecChecker::new(cfg());
        let a = internal_pkt(1, 1);
        chk.observe(&a, Time::from_secs(5), &fwd_ext(1000, &a))
            .unwrap();
        let err = chk
            .observe(&a, Time::from_secs(4), &fwd_ext(1000, &a))
            .unwrap_err();
        assert!(matches!(err, SpecViolation::StateError(_)));
    }

    #[test]
    fn tcp_lifetimes_follow_the_tracker_through_the_relation() {
        // Transitory 2s, established 30s, UDP 10s.
        let c = NatConfig {
            tcp_transitory_ns: Time::from_secs(2).nanos(),
            tcp_established_ns: Time::from_secs(30).nanos(),
            ..cfg()
        };
        use vig_packet::tcp::flags;
        let pre = AbstractNat::new(c);
        let mut syn = internal_pkt(5, 4000);
        syn.tcp_flags = flags::SYN;
        let s = step_allows(&pre, &syn, Time::from_secs(1), &fwd_ext(1000, &syn)).unwrap();
        // Half-open: dies on the transitory timer. The SYN-ACK at 2s
        // must still translate (stamped 1s, dead only at 3s)...
        let mut synack = return_pkt(1000);
        synack.tcp_flags = flags::SYN | flags::ACK;
        let back_fields = FlowFields {
            src_ip: Ip4::new(1, 1, 1, 1),
            src_port: 80,
            dst_ip: Ip4::new(192, 168, 0, 5),
            dst_port: 4000,
            proto: Proto::Tcp,
        };
        let fwd_back = Output::Forward {
            iface: Direction::Internal,
            fields: back_fields,
        };
        let s = step_allows(&s, &synack, Time::from_secs(2), &fwd_back).unwrap();
        // ...and the handshake ACK establishes: the flow now survives
        // far past the transitory horizon.
        let mut ack = internal_pkt(5, 4000);
        ack.tcp_flags = flags::ACK;
        let s = step_allows(&s, &ack, Time::from_secs(3), &fwd_ext(1000, &ack)).unwrap();
        assert_eq!(
            s.flows()[0].tcp_state,
            Some(crate::tcp::TcpState::Established)
        );
        // At 20s (17s idle > 2s transitory) the established flow still
        // translates; a half-open one would be long dead.
        assert!(step_allows(&s, &ack, Time::from_secs(20), &fwd_ext(1000, &ack)).is_ok());
        // An RST demotes it; 2s later it no longer translates and the
        // same 5-tuple is a fresh flow.
        let mut rst = internal_pkt(5, 4000);
        rst.tcp_flags = flags::RST;
        let s = step_allows(&s, &rst, Time::from_secs(21), &fwd_ext(1000, &rst)).unwrap();
        let s2 = step_allows(&s, &ack, Time::from_secs(23), &fwd_ext(1009, &ack)).unwrap();
        assert_eq!(s2.flows()[0].ext_port, 1009);
    }

    #[test]
    fn eim_maps_by_internal_endpoint_alone() {
        let c = NatConfig { eim: true, ..cfg() };
        let pre = AbstractNat::new(c);
        // Host 5:4000 talks to 1.1.1.1:80...
        let a = internal_pkt(5, 4000);
        let s = step_allows(&pre, &a, Time::from_secs(1), &fwd_ext(1000, &a)).unwrap();
        assert_eq!(s.len(), 1);
        // ...then to a different remote: SAME mapping, same port — and
        // a different port is a FieldMismatch, not a fresh allocation.
        let mut b = internal_pkt(5, 4000);
        b.fields.dst_ip = Ip4::new(2, 2, 2, 2);
        b.fields.dst_port = 443;
        let s = step_allows(&s, &b, Time::from_secs(2), &fwd_ext(1000, &b)).unwrap();
        assert_eq!(s.len(), 1, "EIM: one mapping per internal endpoint");
        assert!(matches!(
            step_allows(&s, &b, Time::from_secs(2), &fwd_ext(1001, &b)).unwrap_err(),
            SpecViolation::FieldMismatch {
                field: "src_port",
                ..
            }
        ));
        // Full-cone: an unsolicited remote the host never contacted
        // reaches it through the mapping.
        let stranger = PacketInput {
            dir: Direction::External,
            fields: FlowFields {
                src_ip: Ip4::new(9, 9, 9, 9),
                src_port: 1234,
                dst_ip: EXT_IP,
                dst_port: 1000,
                proto: Proto::Tcp,
            },
            tcp_flags: 0,
        };
        let deliver = Output::Forward {
            iface: Direction::Internal,
            fields: FlowFields {
                src_ip: Ip4::new(9, 9, 9, 9),
                src_port: 1234,
                dst_ip: Ip4::new(192, 168, 0, 5),
                dst_port: 4000,
                proto: Proto::Tcp,
            },
        };
        step_allows(&s, &stranger, Time::from_secs(3), &deliver).unwrap();
    }

    #[test]
    fn without_eim_distinct_remotes_are_distinct_flows() {
        let pre = AbstractNat::new(cfg());
        let a = internal_pkt(5, 4000);
        let s = step_allows(&pre, &a, Time::from_secs(1), &fwd_ext(1000, &a)).unwrap();
        let mut b = internal_pkt(5, 4000);
        b.fields.dst_ip = Ip4::new(2, 2, 2, 2);
        let s = step_allows(&s, &b, Time::from_secs(2), &fwd_ext(1001, &b)).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn hairpin_reaches_the_mapped_internal_host() {
        let c = NatConfig {
            capacity: 3,
            eim: true,
            hairpinning: true,
            ..cfg()
        };
        let pre = AbstractNat::new(c);
        // Host 7 opens a mapping (the hairpin target).
        let a = internal_pkt(7, 4000);
        let s = step_allows(&pre, &a, Time::from_secs(1), &fwd_ext(1000, &a)).unwrap();
        // Host 5 sends to the pool endpoint EXT_IP:1000. The NAT must
        // allocate host 5 a mapping (NF picks 1001) and deliver back
        // inside: src = host 5's external endpoint, dst = host 7.
        let hairpin = PacketInput {
            dir: Direction::Internal,
            fields: FlowFields {
                src_ip: Ip4::new(192, 168, 0, 5),
                src_port: 5000,
                dst_ip: EXT_IP,
                dst_port: 1000,
                proto: Proto::Tcp,
            },
            tcp_flags: 0,
        };
        let delivered = Output::Forward {
            iface: Direction::Internal,
            fields: FlowFields {
                src_ip: EXT_IP,
                src_port: 1001,
                dst_ip: Ip4::new(192, 168, 0, 7),
                dst_port: 4000,
                proto: Proto::Tcp,
            },
        };
        let s = step_allows(&s, &hairpin, Time::from_secs(2), &delivered).unwrap();
        assert_eq!(s.len(), 2, "hairpin created the sender's mapping");
        // Dropping a resolvable hairpin packet violates the spec.
        assert!(matches!(
            step_allows(&s, &hairpin, Time::from_secs(3), &Output::Drop).unwrap_err(),
            SpecViolation::ShouldForward { .. }
        ));
        // A pool endpoint nobody owns is unroutable: must drop.
        // (Port 1002 is inside the 3-slot pool but unallocated; a port
        // outside the pool entirely would take the normal outbound
        // path instead.)
        let dangling = PacketInput {
            fields: FlowFields {
                dst_port: 1002,
                ..hairpin.fields
            },
            ..hairpin
        };
        assert!(step_allows(&s, &dangling, Time::from_secs(3), &Output::Drop).is_ok());
        let err = step_allows(&s, &dangling, Time::from_secs(3), &delivered).unwrap_err();
        assert_eq!(err, SpecViolation::ShouldDrop);
    }

    #[test]
    fn udp_and_tcp_flows_are_distinct() {
        let pre = AbstractNat::new(cfg());
        let mut tcp = internal_pkt(1, 1);
        let s1 = step_allows(&pre, &tcp, Time::from_secs(1), &fwd_ext(1000, &tcp)).unwrap();
        tcp.fields.proto = Proto::Udp;
        let udp = tcp;
        // same 4-tuple, different proto: a distinct flow needing a port
        let s2 = step_allows(&s1, &udp, Time::from_secs(1), &fwd_ext(1001, &udp)).unwrap();
        assert_eq!(s2.len(), 2);
    }
}
